// Command proxrouter is the thin reverse proxy in front of a sharded
// metricproxd cluster: it embeds the same consistent-hash ring the nodes
// use, sends every session-scoped request to the session's primary, and
// falls back through the session's replicas when the primary stops
// answering. It holds no session state of its own — ownership is a pure
// function of (member list, ring seed, session name) — so any number of
// routers can run side by side and a router restart loses nothing.
//
// Clients that can embed the ring themselves (internal/proxclient's
// ClusterClient) skip the router hop entirely; proxrouter exists for
// everything else: curl, dashboards, and clients in other languages.
//
// Usage:
//
//	proxrouter -cluster a=http://h1:7600,b=http://h2:7600,c=http://h3:7600 -listen :7500
//
// The member list, -replicas, and -ring-seed must match the flags the
// metricproxd nodes were started with — a disagreeing ring routes
// sessions to non-owners, which costs cold rebuilds (never wrong
// answers, but all the oracle savings are lost).
//
// The router serves its own /metrics (cluster_requests_total by node and
// status, cluster_failovers_total, cluster_node_up) and /debug/pprof on
// the same listener. /healthz reports the prober's per-node view.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metricprox/internal/buildinfo"
	"metricprox/internal/cluster"
	"metricprox/internal/obs"
	"metricprox/internal/obs/obshttp"
)

func main() {
	var (
		clusterFlag = flag.String("cluster", "", "cluster member list as name=url,... (required)")
		listenFlag  = flag.String("listen", ":7500", "address to serve the routed API, /metrics, and /debug/pprof on")
		replFlag    = flag.Int("replicas", 0, "replica owners per session beyond the primary (0 = default); must match the nodes")
		ringSeed    = flag.Int64("ring-seed", 0, "consistent-hash ring seed; must match the nodes")
		probeEvery  = flag.Duration("probe-interval", cluster.DefaultProbeInterval, "health-probe period")
		drainFlag   = flag.Duration("drain", 10*time.Second, "shutdown drain budget for in-flight requests")
		versionFlag = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *versionFlag {
		fmt.Println(buildinfo.String("proxrouter"))
		return
	}
	if *clusterFlag == "" {
		fmt.Fprintln(os.Stderr, "proxrouter: -cluster is required (name=url,...)")
		os.Exit(2)
	}
	nodes, err := cluster.ParseNodes(*clusterFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxrouter: -cluster: %v\n", err)
		os.Exit(2)
	}
	topo, err := cluster.NewTopology(cluster.Config{
		Nodes:    nodes,
		Replicas: *replFlag,
		Seed:     *ringSeed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxrouter: -cluster: %v\n", err)
		os.Exit(2)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "proxrouter: "+format+"\n", args...)
	}
	reg := obs.NewRegistry()
	prober := cluster.NewProber(cluster.ProberConfig{
		Topology: topo,
		Interval: *probeEvery,
		Registry: reg,
		Logf:     logf,
	})
	prober.Start()
	defer prober.Stop()

	router := cluster.NewRouter(cluster.RouterConfig{
		Topology: topo,
		Prober:   prober,
		Registry: reg,
		Logf:     logf,
	})

	mux := obshttp.Mux(reg)
	mux.Handle("/healthz", router.Handler())
	mux.Handle("/v1/", router.Handler())
	hs, err := obshttp.ServeHandler(*listenFlag, mux)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proxrouter: -listen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "proxrouter: routing %d nodes (%d owner(s) per session) on http://%s\n",
		len(topo.Nodes()), topo.Replicas()+1, hs.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	sig := <-stop
	fmt.Fprintf(os.Stderr, "proxrouter: %s received, draining (budget %s)\n", sig, *drainFlag)
	ctx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "proxrouter: forced shutdown with requests in flight:", err)
	}
	fmt.Fprintln(os.Stderr, "proxrouter: drained, bye")
}
