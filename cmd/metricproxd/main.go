// Command metricproxd is the networked session service: a long-running
// daemon that owns one metric space and hosts named multi-tenant bound
// sessions over it, so many clients share one pool of resolved distances
// and tightened bounds. Clients speak the HTTP/JSON API documented in
// docs/API.md — primitive comparisons, batches, and whole-problem runs —
// typically through internal/proxclient, whose Session makes the prox
// algorithms run against this daemon unmodified and output-identical.
//
// Usage:
//
//	metricproxd -demo 500 -listen :7600
//	metricproxd -in points.csv -p 1 -listen 127.0.0.1:7600
//	metricproxd -demo 500 -cache-dir /var/lib/metricproxd  # warm restarts
//	metricproxd -demo 500 -faults seed=3,rate=0.2          # chaos drill
//	metricproxd -demo 500 -near-metric eps=0.05            # imperfect oracle
//
// -near-metric serves a deterministically perturbed near-metric (triangle
// violations bounded by eps, see internal/faultmetric) instead of the
// true space: the server-side half of the robustness drill. Slack is a
// per-session property declared by clients at session creation
// (slack_eps / slack_ratio / slack_auto in the API; SessionOptions in
// proxclient), not a daemon flag — different tenants may declare
// different contracts over the same oracle. When -faults and -near-metric
// are combined, one injector serves both and the seed comes from -faults.
//
// The daemon exposes the service API and the observability surface on the
// same listener: /metrics serves the obs registry (per-endpoint latency
// histograms, queue depth, shed and eviction counters) and /debug/pprof/
// the pprof suite. On SIGINT/SIGTERM it drains: new work is refused with
// 503/draining, in-flight requests finish, sessions are evicted (syncing
// their cache stores), and only then does the process exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"metricprox/internal/buildinfo"
	"metricprox/internal/cluster"
	"metricprox/internal/datasets"
	"metricprox/internal/faultmetric"
	"metricprox/internal/metric"
	"metricprox/internal/obs"
	"metricprox/internal/obs/obshttp"
	"metricprox/internal/resilient"
	"metricprox/internal/service"
)

func main() {
	var (
		inFlag      = flag.String("in", "", "CSV point file (one point per line)")
		demoFlag    = flag.Int("demo", 0, "use a synthetic road-network dataset of this size instead of -in")
		planarFlag  = flag.Bool("planar", false, "with -demo, use the planar (closed-form) SF surrogate instead of the road network")
		pFlag       = flag.Float64("p", 2, "Minkowski norm for CSV input")
		seedFlag    = flag.Int64("seed", 1, "seed for the synthetic dataset")
		listenFlag  = flag.String("listen", ":7600", "address to serve the API, /metrics, and /debug/pprof on")
		faultsFlag  = flag.String("faults", "", "inject oracle faults: seed=N,rate=P with P in (0,1]")
		nearFlag    = flag.String("near-metric", "", "serve a perturbed near-metric: eps=X[,ratio=R][,seed=N]")
		cacheDir    = flag.String("cache-dir", "", "directory for per-session distance caches (enables warm restarts)")
		maxSessions = flag.Int("max-sessions", 16, "maximum live sessions (0 = unlimited)")
		sessionTTL  = flag.Duration("session-ttl", 0, "evict sessions idle for this long (0 = never)")
		queueFlag   = flag.Int("queue", service.DefaultQueue, "per-session admission queue depth")
		drainFlag   = flag.Duration("drain", 10*time.Second, "shutdown drain budget for in-flight requests")
		clusterFlag = flag.String("cluster", "", "cluster member list as name=url,... (enables cluster mode; requires -node and -cache-dir)")
		nodeFlag    = flag.String("node", "", "this node's name in the -cluster list")
		replFlag    = flag.Int("replicas", 0, "replica owners per session beyond the primary (0 = default)")
		ringSeed    = flag.Int64("ring-seed", 0, "consistent-hash ring seed; must agree across the cluster")
		versionFlag = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *versionFlag {
		fmt.Println(buildinfo.String("metricproxd"))
		return
	}
	if *inFlag != "" && *demoFlag > 0 {
		fmt.Fprintln(os.Stderr, "metricproxd: -in and -demo are mutually exclusive; pick one input")
		os.Exit(2)
	}
	if *maxSessions < 0 || *queueFlag < 1 {
		fmt.Fprintln(os.Stderr, "metricproxd: -max-sessions must be >= 0 and -queue >= 1")
		os.Exit(2)
	}
	var faultCfg faultmetric.Config
	if *faultsFlag != "" {
		var err error
		if faultCfg, err = faultmetric.ParseSpec(*faultsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "metricproxd: -faults: %v\n", err)
			os.Exit(2)
		}
	}
	if *nearFlag != "" {
		nearCfg, err := faultmetric.ParseNearMetricSpec(*nearFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricproxd: -near-metric: %v\n", err)
			os.Exit(2)
		}
		if *faultsFlag != "" {
			// One injector serves both fault classes; its schedule — and
			// hence the seed — comes from -faults, so a second seed here
			// would be silently ignored. Reject the ambiguity instead.
			if hasSeedKey(*nearFlag) {
				fmt.Fprintln(os.Stderr, "metricproxd: -near-metric: seed is taken from -faults when both flags are set")
				os.Exit(2)
			}
			faultCfg.NearMetricEps = nearCfg.NearMetricEps
			faultCfg.NearMetricRatio = nearCfg.NearMetricRatio
		} else {
			faultCfg = nearCfg
		}
	}

	var topo *cluster.Topology
	if *clusterFlag != "" {
		if *nodeFlag == "" || *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "metricproxd: -cluster requires -node (this node's name) and -cache-dir (replica state lives on disk)")
			os.Exit(2)
		}
		nodes, err := cluster.ParseNodes(*clusterFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricproxd: -cluster: %v\n", err)
			os.Exit(2)
		}
		topo, err = cluster.NewTopology(cluster.Config{
			Self:     *nodeFlag,
			Nodes:    nodes,
			Replicas: *replFlag,
			Seed:     *ringSeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricproxd: -cluster: %v\n", err)
			os.Exit(2)
		}
	} else if *nodeFlag != "" {
		fmt.Fprintln(os.Stderr, "metricproxd: -node without -cluster")
		os.Exit(2)
	}

	space, err := loadSpace(*inFlag, *demoFlag, *planarFlag, *pFlag, *seedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricproxd:", err)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	var oracle metric.FallibleOracle = metric.NewOracle(space)
	if *faultsFlag != "" || *nearFlag != "" {
		inj := faultmetric.New(space, faultCfg)
		inj.Observe(reg)
		oracle = inj
		if faultCfg.TransientRate > 0 {
			// The retry policy only earns its keep over transient
			// failures; a pure near-metric injector never fails.
			ro := resilient.New(inj, resilient.RetryOnlyPolicy(faultCfg.Seed))
			ro.Observe(reg)
			oracle = ro
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "metricproxd: "+format+"\n", args...)
	}
	var repl *cluster.Replicator
	if topo != nil {
		repl = cluster.NewReplicator(cluster.ReplicatorConfig{
			Topology: topo,
			Registry: reg,
			Logf:     logf,
		})
	}
	srv, err := service.New(service.Config{
		Oracle:      oracle,
		MaxSessions: *maxSessions,
		SessionTTL:  *sessionTTL,
		Queue:       *queueFlag,
		CacheDir:    *cacheDir,
		Registry:    reg,
		Cluster:     topo,
		Replicator:  repl,
		Logf:        logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricproxd:", err)
		os.Exit(1)
	}
	if repl != nil {
		repl.Start()
		// Join/restart story: push any session state already on disk to the
		// sessions' current owners, in the background — peers may still be
		// starting, and a missed push only costs the next primary a colder
		// start, never correctness.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			if n, err := cluster.Rebalance(ctx, *cacheDir, topo, nil, 0, logf); err != nil {
				logf("rebalance: %v", err)
			} else if n > 0 {
				logf("rebalance: pushed %d session logs to their owners", n)
			}
		}()
	}

	// One listener for everything: the service API plus the obs
	// exposition and pprof routes that obshttp.Mux mounts.
	mux := obshttp.Mux(reg)
	mux.Handle("/healthz", srv.Handler())
	mux.Handle("/v1/", srv.Handler())
	hs, err := obshttp.ServeHandler(*listenFlag, mux)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricproxd: -listen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "metricproxd: %d objects, serving on http://%s (API under /v1, metrics at /metrics)\n",
		space.Len(), hs.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	sig := <-stop
	fmt.Fprintf(os.Stderr, "metricproxd: %s received, draining (budget %s)\n", sig, *drainFlag)

	// Drain order matters: refuse new work first, then let the HTTP
	// server finish in-flight requests, then evict sessions so their
	// cache stores sync to disk.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "metricproxd: forced shutdown with requests in flight:", err)
	}
	if repl != nil {
		// Handoff: every committed edge reaches the replicas before the
		// stores close, so a drained node's successors start fully warm.
		if err := repl.Flush(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "metricproxd: replication handoff incomplete:", err)
		}
	}
	srv.Close()
	if repl != nil {
		repl.Close()
	}
	fmt.Fprintln(os.Stderr, "metricproxd: drained, bye")
}

// hasSeedKey reports whether a key=value spec sets "seed", for rejecting
// the ambiguous -faults + -near-metric seed combination.
func hasSeedKey(spec string) bool {
	for _, field := range strings.Split(spec, ",") {
		if key, _, ok := strings.Cut(strings.TrimSpace(field), "="); ok && key == "seed" {
			return true
		}
	}
	return false
}

// loadSpace mirrors cmd/metricprox: a synthetic demo or a CSV point file
// under the Minkowski-p metric. -planar picks the closed-form surrogate,
// whose distances are a pure function of the pair — the road network
// answers from cached Dijkstra rows, which can drift by an ulp with call
// history, so bit-exact cross-process diffs (the CI server-smoke job)
// want the planar variant.
func loadSpace(in string, demo int, planar bool, p float64, seed int64) (metric.Space, error) {
	switch {
	case demo > 0 && planar:
		return datasets.SFPOIPlanar(demo, seed), nil
	case demo > 0:
		return datasets.SFPOI(demo, seed), nil
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return datasets.LoadPointsCSV(f, p, 0)
	default:
		return nil, fmt.Errorf("provide -in <csv> or -demo <n> (see -h)")
	}
}
