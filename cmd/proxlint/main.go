// Command proxlint is the project's analyzer suite: a multichecker that
// mechanically enforces the oracle-discipline invariants (see DESIGN.md,
// "Static guarantees").
//
// It runs in two modes:
//
//   - vettool mode, driven by the go command:
//
//     go build -o bin/proxlint ./cmd/proxlint
//     go vet -vettool=bin/proxlint ./...
//
//     This is how CI gates the repository; it covers test files and
//     caches results per package like any vet run.
//
//   - standalone mode, for quick local runs on non-test code:
//
//     go run ./cmd/proxlint ./...
//
// Analyzers: oracleescape, lockheldoracle, commitonce, floatcmp,
// obspurity, exporteddoc.
// Suppress a finding with an explanation:
//
//	//proxlint:allow <analyzer> -- <rationale>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"metricprox/internal/analysis"
	"metricprox/internal/buildinfo"
	"metricprox/internal/proxlint"
)

const version = "v1.0.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes the tool before using it as a vettool:
	// `proxlint -V=full` must print a version line usable as a cache
	// key, and `proxlint -flags` must describe the supported flags.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		fmt.Printf("proxlint version %s\n", version)
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		printFlagsJSON()
		return 0
	}

	fs := flag.NewFlagSet("proxlint", flag.ExitOnError)
	verFlag := fs.Bool("version", false, "print version and exit")
	jsonOut := fs.Bool("json", false, "emit JSON diagnostics to stdout instead of text to stderr")
	fs.Int("c", -1, "display offending line with this many lines of context (accepted for vet compatibility; ignored)")
	fs.Bool("fix", false, "accepted for vet compatibility; proxlint never rewrites code")
	enabled := make(map[string]*bool)
	for _, a := range proxlint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, false, "enable only the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *verFlag {
		fmt.Printf("%s (analyzer suite %s)\n", buildinfo.String("proxlint"), version)
		return 0
	}
	analyzers := selectAnalyzers(enabled)

	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return runVet(fs.Arg(0), analyzers, *jsonOut)
	}
	return runStandalone(fs.Args(), analyzers, *jsonOut)
}

// selectAnalyzers honours explicit -<name> flags; with none set, the full
// suite runs.
func selectAnalyzers(enabled map[string]*bool) []*analysis.Analyzer {
	any := false
	for _, v := range enabled {
		any = any || *v
	}
	all := proxlint.Analyzers()
	if !any {
		return all
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// runVet implements the go vet -vettool contract for one package unit.
func runVet(cfgPath string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	res, err := analysis.RunUnit(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxlint: %v\n", err)
		return 1
	}
	return emit([]*analysis.UnitResult{res}, jsonOut)
}

// runStandalone loads the named package patterns (default ./...) from
// source and analyzes each.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxlint: %v\n", err)
		return 1
	}
	var results []*analysis.UnitResult
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxlint: %v\n", err)
			return 1
		}
		results = append(results, &analysis.UnitResult{ImportPath: pkg.Pkg.Path(), Diagnostics: diags})
	}
	return emit(results, jsonOut)
}

// emit prints diagnostics and returns the process exit code: 0 when
// clean, 2 when findings exist (the exit code go vet expects from a
// failing vet tool).
func emit(results []*analysis.UnitResult, jsonOut bool) int {
	if jsonOut {
		// The unitchecker JSON shape: package -> analyzer -> findings.
		type posDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		out := make(map[string]map[string][]posDiag)
		for _, r := range results {
			if len(r.Diagnostics) == 0 {
				continue
			}
			byAnalyzer := make(map[string][]posDiag)
			for _, d := range r.Diagnostics {
				byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], posDiag{Posn: d.Position.String(), Message: d.Message})
			}
			out[r.ImportPath] = byAnalyzer
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return 0
	}
	found := false
	for _, r := range results {
		for _, d := range r.Diagnostics {
			fmt.Fprintln(os.Stderr, d.String())
			found = true
		}
	}
	if found {
		return 2
	}
	return 0
}

// printFlagsJSON answers the go command's -flags probe with the list of
// flags the tool accepts, in the encoding cmd/go expects.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []jsonFlag{
		{Name: "version", Bool: true, Usage: "print version and exit"},
		{Name: "json", Bool: true, Usage: "emit JSON diagnostics"},
		{Name: "c", Bool: false, Usage: "display offending line plus this many lines of context"},
		{Name: "fix", Bool: true, Usage: "no-op; proxlint never rewrites code"},
	}
	for _, a := range proxlint.Analyzers() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, _ := json.Marshal(flags)
	fmt.Println(string(data))
}
