// Command proxlint is the project's analyzer suite: a multichecker that
// mechanically enforces the oracle-discipline invariants (see DESIGN.md,
// "Static guarantees", and docs/LINT.md for the full reference).
//
// It runs in two modes:
//
//   - vettool mode, driven by the go command:
//
//     go build -o bin/proxlint ./cmd/proxlint
//     go vet -vettool=bin/proxlint ./...
//
//     This is how CI gates the repository; it covers test files, caches
//     results per package like any vet run, and carries cross-package
//     facts (rowescape's slab-growth sets, degradedtaint's
//     estimate-returning functions, wireinf's raw-float wire types)
//     through the unitchecker vetx files.
//
//   - standalone mode, for quick local runs on non-test code:
//
//     go run ./cmd/proxlint ./...
//
//     Facts flow between the packages named by the patterns (analyzed in
//     dependency order); facts from packages outside the patterns are
//     unavailable, so prefer ./... over narrow patterns.
//
// Analyzers: oracleescape, lockheldoracle, commitonce, floatcmp,
// obspurity, exporteddoc, rowescape, degradedtaint, ctxflow, wireinf.
// Suppress a finding with an explanation:
//
//	//proxlint:allow <analyzer> -- <rationale>
//
// A directive that suppresses nothing is itself reported as an error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"metricprox/internal/analysis"
	"metricprox/internal/buildinfo"
	"metricprox/internal/proxlint"
)

// version keys the go command's vet result cache: bump it whenever the
// analyzer suite, the fact encoding, or the diagnostic set changes, so
// stale cached results (and stale vetx fact files) are never reused.
const version = "v1.2.0"

// fixUsage is the single source of truth for the -fix flag's description:
// it is registered once in run and echoed verbatim by the -flags probe,
// so the two can never diverge again.
const fixUsage = "accepted for go vet compatibility; proxlint never rewrites code (ignored, with a warning in standalone mode)"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes the tool before using it as a vettool:
	// `proxlint -V=full` must print a version line usable as a cache
	// key, and `proxlint -flags` must describe the supported flags.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		fmt.Printf("proxlint version %s\n", version)
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		printFlagsJSON()
		return 0
	}

	fs := flag.NewFlagSet("proxlint", flag.ExitOnError)
	verFlag := fs.Bool("version", false, "print version and exit")
	jsonOut := fs.Bool("json", false, "emit JSON diagnostics to stdout instead of text to stderr")
	fs.Int("c", -1, "display offending line with this many lines of context (accepted for vet compatibility; ignored)")
	fixFlag := fs.Bool("fix", false, fixUsage)
	enabled := make(map[string]*bool)
	for _, a := range proxlint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, false, "enable only the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *verFlag {
		fmt.Printf("%s (analyzer suite %s)\n", buildinfo.String("proxlint"), version)
		return 0
	}
	analyzers := selectAnalyzers(enabled)

	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return runVet(fs.Arg(0), analyzers, *jsonOut)
	}
	if *fixFlag {
		fmt.Fprintln(os.Stderr, "proxlint: warning: -fix is ignored; proxlint never rewrites code")
	}
	return runStandalone(fs.Args(), analyzers, *jsonOut)
}

// selectAnalyzers honours explicit -<name> flags; with none set, the full
// suite runs.
func selectAnalyzers(enabled map[string]*bool) []*analysis.Analyzer {
	any := false
	for _, v := range enabled {
		any = any || *v
	}
	all := proxlint.Analyzers()
	if !any {
		return all
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// runVet implements the go vet -vettool contract for one package unit.
func runVet(cfgPath string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	res, err := analysis.RunUnit(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxlint: %v\n", err)
		return 1
	}
	return emit([]*analysis.UnitResult{res}, jsonOut)
}

// runStandalone loads the named package patterns (default ./...) from
// source and analyzes each in dependency order, threading one fact table
// through the whole set so cross-package analyzers work within the
// pattern's closure.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxlint: %v\n", err)
		return 1
	}
	facts := analysis.NewFactTable()
	var results []*analysis.UnitResult
	for _, pkg := range pkgs {
		diags, err := analysis.RunFacts(pkg, analyzers, facts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxlint: %v\n", err)
			return 1
		}
		results = append(results, &analysis.UnitResult{ImportPath: pkg.Pkg.Path(), Diagnostics: diags})
	}
	return emit(results, jsonOut)
}

// emit prints diagnostics and returns the process exit code: 0 when
// clean, 2 when findings exist (the exit code go vet expects from a
// failing vet tool).
func emit(results []*analysis.UnitResult, jsonOut bool) int {
	if jsonOut {
		// The unitchecker JSON shape: package -> analyzer -> findings.
		type posDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		out := make(map[string]map[string][]posDiag)
		for _, r := range results {
			if len(r.Diagnostics) == 0 {
				continue
			}
			byAnalyzer := make(map[string][]posDiag)
			for _, d := range r.Diagnostics {
				byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], posDiag{Posn: d.Position.String(), Message: d.Message})
			}
			out[r.ImportPath] = byAnalyzer
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return 0
	}
	found := false
	for _, r := range results {
		for _, d := range r.Diagnostics {
			fmt.Fprintln(os.Stderr, d.String())
			found = true
		}
	}
	if found {
		return 2
	}
	return 0
}

// printFlagsJSON answers the go command's -flags probe with the list of
// flags the tool accepts, in the encoding cmd/go expects.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []jsonFlag{
		{Name: "version", Bool: true, Usage: "print version and exit"},
		{Name: "json", Bool: true, Usage: "emit JSON diagnostics"},
		{Name: "c", Bool: false, Usage: "display offending line plus this many lines of context"},
		{Name: "fix", Bool: true, Usage: fixUsage},
	}
	for _, a := range proxlint.Analyzers() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, _ := json.Marshal(flags)
	fmt.Println(string(data))
}
