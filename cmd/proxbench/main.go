// Command proxbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	proxbench -list                 # show every experiment id
//	proxbench -exp table2,fig3a     # run selected experiments
//	proxbench -exp all              # run the whole evaluation
//	proxbench -exp all -full        # paper-scale sizes (slow)
//	proxbench -exp table2 -seed 7   # change the dataset seed
//
// Output is aligned-markdown tables on stdout, one per artifact, with
// footnotes recording scaling and substitution decisions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"metricprox/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		listFlag = flag.Bool("list", false, "list available experiments and exit")
		fullFlag = flag.Bool("full", false, "paper-scale sizes (minutes of runtime)")
		seedFlag = flag.Int64("seed", 42, "dataset and algorithm seed")
		csvFlag  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *listFlag || *expFlag == "" {
		fmt.Println("Available experiments (run with -exp <id>[,<id>…] or -exp all):")
		for _, r := range experiments.All() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Title)
		}
		if !*listFlag {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{Full: *fullFlag, Seed: *seedFlag}

	var runners []experiments.Runner
	if *expFlag == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "proxbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		table := r.Run(cfg)
		if *csvFlag {
			fmt.Printf("# %s — %s\n", table.ID, table.Title)
			if err := table.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "proxbench:", err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		table.Note("regenerated in %s (seed %d, full=%v)", time.Since(start).Round(time.Millisecond), *seedFlag, *fullFlag)
		table.Render(os.Stdout)
	}
}
