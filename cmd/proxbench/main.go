// Command proxbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	proxbench -list                 # show every experiment id
//	proxbench -exp table2,fig3a     # run selected experiments
//	proxbench -exp all              # run the whole evaluation
//	proxbench -exp all -full        # paper-scale sizes (slow)
//	proxbench -exp table2 -seed 7   # change the dataset seed
//
//	proxbench -exp table2 -faults seed=3,rate=0.2
//	                                # same tables under injected oracle
//	                                # faults (outputs preserved by retry)
//
//	proxbench -exp table2 -obs      # append the observability summary
//	proxbench -exp table2 -trace t.jsonl
//	                                # trace every comparison: the per-IF
//	                                # "why did we pay?" breakdown on
//	                                # stdout, one JSON event per line in
//	                                # t.jsonl ('-' streams to stderr)
//
// Output is aligned-markdown tables on stdout, one per artifact, with
// footnotes recording scaling and substitution decisions. -obs and
// -trace never change the numbers in the tables — observation is
// write-only (DESIGN.md §8); field semantics are in docs/METRICS.md.
//
// All flags are validated before any experiment runs: unknown experiment
// ids, malformed -faults specs, and contradictory combinations exit with
// a diagnostic instead of falling through to partial work.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"metricprox/internal/buildinfo"
	"metricprox/internal/experiments"
	"metricprox/internal/faultmetric"
	"metricprox/internal/obs"
)

func main() {
	var (
		expFlag    = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		listFlag   = flag.Bool("list", false, "list available experiments and exit")
		fullFlag   = flag.Bool("full", false, "paper-scale sizes (minutes of runtime)")
		seedFlag   = flag.Int64("seed", 42, "dataset and algorithm seed")
		csvFlag    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		faultsFlag = flag.String("faults", "", "inject oracle faults: seed=N,rate=P with P in (0,1]")
		obsFlag    = flag.Bool("obs", false, "collect observability metrics and print the summary after the run")
		traceFlag  = flag.String("trace", "", "trace every comparison: JSONL events to this file ('-' for stderr); implies -obs")
		verFlag    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *verFlag {
		fmt.Println(buildinfo.String("proxbench"))
		return
	}

	if args := flag.Args(); len(args) > 0 {
		fmt.Fprintf(os.Stderr, "proxbench: unexpected arguments %q (flags only; see -h)\n", args)
		os.Exit(2)
	}
	if *listFlag {
		for _, bad := range []struct {
			set  bool
			name string
		}{{*expFlag != "", "-exp"}, {*csvFlag, "-csv"}, {*fullFlag, "-full"}, {*faultsFlag != "", "-faults"}, {*obsFlag, "-obs"}, {*traceFlag != "", "-trace"}} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "proxbench: -list runs nothing and ignores %s; drop one of the two\n", bad.name)
				os.Exit(2)
			}
		}
	}

	if *expFlag == "" && !*listFlag {
		for _, bad := range []struct {
			set  bool
			name string
		}{{*csvFlag, "-csv"}, {*fullFlag, "-full"}, {*faultsFlag != "", "-faults"}, {*obsFlag, "-obs"}, {*traceFlag != "", "-trace"}} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "proxbench: %s does nothing without -exp; add -exp <id> or -exp all\n", bad.name)
				os.Exit(2)
			}
		}
	}

	if *listFlag || *expFlag == "" {
		fmt.Println("Available experiments (run with -exp <id>[,<id>…] or -exp all):")
		for _, r := range experiments.All() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Title)
		}
		if !*listFlag {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{Full: *fullFlag, Seed: *seedFlag}
	if *faultsFlag != "" {
		fcfg, err := faultmetric.ParseSpec(*faultsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: -faults: %v\n", err)
			os.Exit(2)
		}
		cfg.FaultRate = fcfg.TransientRate
		cfg.FaultSeed = fcfg.Seed
	}
	var sinkFile *os.File
	if *obsFlag || *traceFlag != "" {
		var sink io.Writer
		switch *traceFlag {
		case "":
		case "-":
			sink = os.Stderr
		default:
			f, err := os.Create(*traceFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "proxbench: -trace: %v\n", err)
				os.Exit(2)
			}
			sinkFile, sink = f, f
		}
		cfg.Observer = obs.NewObserver(*traceFlag != "", 0, sink)
	}

	var runners []experiments.Runner
	if *expFlag == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "proxbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		table := r.Run(cfg)
		if *csvFlag {
			fmt.Printf("# %s — %s\n", table.ID, table.Title)
			if err := table.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "proxbench:", err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		table.Note("regenerated in %s (seed %d, full=%v)", time.Since(start).Round(time.Millisecond), *seedFlag, *fullFlag)
		if cfg.FaultRate > 0 {
			table.Note("oracle faults injected: transient rate %g, fault seed %d — outputs preserved by retry; call counts are successful resolutions", cfg.FaultRate, cfg.FaultSeed)
		}
		table.Render(os.Stdout)
	}

	if cfg.Observer != nil {
		fmt.Println()
		obs.WriteSummary(os.Stdout, cfg.Observer.Registry, cfg.Observer.Tracer)
		if t := cfg.Observer.Tracer; t != nil {
			if err := t.SinkErr(); err != nil {
				fmt.Fprintln(os.Stderr, "proxbench: trace sink failed part-way; the JSONL file is incomplete:", err)
			}
		}
		if sinkFile != nil {
			if err := sinkFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "proxbench: -trace:", err)
				os.Exit(1)
			}
		}
	}
}
