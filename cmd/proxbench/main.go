// Command proxbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	proxbench -list                 # show every experiment id
//	proxbench -exp table2,fig3a     # run selected experiments
//	proxbench -exp all              # run the whole evaluation
//	proxbench -exp all -full        # paper-scale sizes (slow)
//	proxbench -exp table2 -seed 7   # change the dataset seed
//
//	proxbench -exp table2 -faults seed=3,rate=0.2
//	                                # same tables under injected oracle
//	                                # faults (outputs preserved by retry)
//
// Output is aligned-markdown tables on stdout, one per artifact, with
// footnotes recording scaling and substitution decisions.
//
// All flags are validated before any experiment runs: unknown experiment
// ids, malformed -faults specs, and contradictory combinations exit with
// a diagnostic instead of falling through to partial work.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"metricprox/internal/experiments"
	"metricprox/internal/faultmetric"
)

func main() {
	var (
		expFlag    = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		listFlag   = flag.Bool("list", false, "list available experiments and exit")
		fullFlag   = flag.Bool("full", false, "paper-scale sizes (minutes of runtime)")
		seedFlag   = flag.Int64("seed", 42, "dataset and algorithm seed")
		csvFlag    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		faultsFlag = flag.String("faults", "", "inject oracle faults: seed=N,rate=P with P in (0,1]")
	)
	flag.Parse()

	if args := flag.Args(); len(args) > 0 {
		fmt.Fprintf(os.Stderr, "proxbench: unexpected arguments %q (flags only; see -h)\n", args)
		os.Exit(2)
	}
	if *listFlag {
		for _, bad := range []struct {
			set  bool
			name string
		}{{*expFlag != "", "-exp"}, {*csvFlag, "-csv"}, {*fullFlag, "-full"}, {*faultsFlag != "", "-faults"}} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "proxbench: -list runs nothing and ignores %s; drop one of the two\n", bad.name)
				os.Exit(2)
			}
		}
	}

	if *expFlag == "" && !*listFlag {
		for _, bad := range []struct {
			set  bool
			name string
		}{{*csvFlag, "-csv"}, {*fullFlag, "-full"}, {*faultsFlag != "", "-faults"}} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "proxbench: %s does nothing without -exp; add -exp <id> or -exp all\n", bad.name)
				os.Exit(2)
			}
		}
	}

	if *listFlag || *expFlag == "" {
		fmt.Println("Available experiments (run with -exp <id>[,<id>…] or -exp all):")
		for _, r := range experiments.All() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Title)
		}
		if !*listFlag {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{Full: *fullFlag, Seed: *seedFlag}
	if *faultsFlag != "" {
		fcfg, err := faultmetric.ParseSpec(*faultsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: -faults: %v\n", err)
			os.Exit(2)
		}
		cfg.FaultRate = fcfg.TransientRate
		cfg.FaultSeed = fcfg.Seed
	}

	var runners []experiments.Runner
	if *expFlag == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "proxbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		table := r.Run(cfg)
		if *csvFlag {
			fmt.Printf("# %s — %s\n", table.ID, table.Title)
			if err := table.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "proxbench:", err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		table.Note("regenerated in %s (seed %d, full=%v)", time.Since(start).Round(time.Millisecond), *seedFlag, *fullFlag)
		if cfg.FaultRate > 0 {
			table.Note("oracle faults injected: transient rate %g, fault seed %d — outputs preserved by retry; call counts are successful resolutions", cfg.FaultRate, cfg.FaultSeed)
		}
		table.Render(os.Stdout)
	}
}
