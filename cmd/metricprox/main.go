// Command metricprox runs the library's proximity algorithms over a CSV
// point file, reporting results and the oracle calls saved by the chosen
// bound scheme.
//
// Usage:
//
//	metricprox -in points.csv -algo mst                     # Prim + Tri
//	metricprox -in points.csv -algo knn -k 10 -scheme splub
//	metricprox -demo 500 -algo search -k 10 -m 8 -ef 32     # approx kNN (NSW)
//	metricprox -in points.csv -algo pam -l 8 -scheme noop   # unmodified
//	metricprox -in points.csv -algo kcenter -l 5 -cache d.cache
//	metricprox -demo 500 -algo tsp                          # synthetic demo
//	metricprox -demo 500 -algo mst -faults seed=3,rate=0.2  # flaky oracle
//	metricprox -demo 500 -algo knn -near-metric eps=0.1 -slack eps=0.1
//	metricprox -calibrate -cache d.cache                    # repair a cache
//
// The input is one point per line, comma-separated coordinates, optional
// header; distances are Minkowski-p (default Euclidean) normalised into
// [0,1]. A -cache file persists resolved distances across invocations.
//
// -faults routes every distance call through a deterministic fault
// injector and the resilient retry policy; the run then reports retries,
// timeouts, and breaker opens alongside the usual call counts, and warns
// when answers degraded to bounds-only estimates.
//
// -near-metric perturbs the oracle into a seeded near-metric (triangle
// violations bounded by eps, see internal/faultmetric); -slack declares
// the tolerated violation (eps=X[,ratio=R], or auto) so the bound
// schemes stay sound over it, and -audit attaches a violation auditor
// that cross-checks resolved triangles for free. When -faults and
// -near-metric are combined, one injector serves both and the seed comes
// from -faults.
//
// -calibrate repairs a -cache file offline: it projects the cached
// distances onto the metric polytope (HLWB-anchored cyclic projection,
// see internal/lp) and rewrites the file atomically, printing the
// violation margin before and after. No dataset is needed or read.
//
// -listen (e.g. -listen :6060) serves live observability for the
// duration of the run: the obs metrics registry as JSON at /metrics and
// the net/http/pprof suite at /debug/pprof/. See docs/METRICS.md for the
// exposed series and the README "Watching a run" walkthrough.
//
// Every flag is validated before the dataset is loaded: an unknown
// algorithm or scheme name, a malformed -faults spec, or a contradictory
// combination exits immediately instead of after minutes of bootstrap.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"metricprox/internal/buildinfo"
	"metricprox/internal/cachestore"
	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/faultmetric"
	"metricprox/internal/metric"
	"metricprox/internal/nsw"
	"metricprox/internal/obs"
	"metricprox/internal/obs/obshttp"
	"metricprox/internal/prox"
	"metricprox/internal/resilient"
)

// algoNames lists the -algo values runAlgo accepts, for up-front
// validation.
var algoNames = []string{"mst", "kruskal", "boruvka", "knn", "search", "pam", "clarans", "kcenter", "tsp", "linkage"}

func main() {
	var (
		inFlag      = flag.String("in", "", "CSV point file (one point per line)")
		demoFlag    = flag.Int("demo", 0, "use a synthetic road-network dataset of this size instead of -in")
		algoFlag    = flag.String("algo", "mst", "algorithm: mst | kruskal | boruvka | knn | search | pam | clarans | kcenter | tsp | linkage")
		schemeFlag  = flag.String("scheme", "tri", "bound scheme: noop | tri | splub | adm | laesa | tlaesa | hybrid")
		kFlag       = flag.Int("k", 5, "neighbours for -algo knn and -algo search")
		mFlag       = flag.Int("m", 0, "links per node for -algo search (0 = default)")
		efFlag      = flag.Int("ef", 0, "beam width for -algo search, build and query (0 = default)")
		lFlag       = flag.Int("l", 8, "clusters/centers for pam, clarans, kcenter")
		pFlag       = flag.Float64("p", 2, "Minkowski norm for CSV input")
		landmarks   = flag.Int("landmarks", 0, "bootstrap landmarks (0 = log2 n)")
		seedFlag    = flag.Int64("seed", 1, "seed for randomised algorithms")
		cacheFlag   = flag.String("cache", "", "persistent distance-cache file")
		faultsFlag  = flag.String("faults", "", "inject oracle faults: seed=N,rate=P with P in (0,1]")
		nearFlag    = flag.String("near-metric", "", "perturb the oracle into a near-metric: eps=X[,ratio=R][,seed=N]")
		slackFlag   = flag.String("slack", "", "tolerate near-metric oracles: eps=X[,ratio=R], or auto")
		auditFlag   = flag.Bool("audit", false, "cross-check resolved triangles for metric violations (no extra oracle calls)")
		calFlag     = flag.Bool("calibrate", false, "repair the -cache file into metric consistency and exit (no dataset needed)")
		calTolFlag  = flag.Float64("calibrate-tol", 1e-9, "target triangle-violation tolerance for -calibrate")
		listenFlag  = flag.String("listen", "", "serve /metrics JSON and /debug/pprof on this address (e.g. :6060) for the duration of the run")
		versionFlag = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *versionFlag {
		fmt.Println(buildinfo.String("metricprox"))
		return
	}
	if *calFlag {
		calibrate(*cacheFlag, *calTolFlag)
		return
	}

	// Validate every flag before touching the dataset.
	scheme, err := core.ParseScheme(*schemeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricprox: %v (see -h)\n", err)
		os.Exit(2)
	}
	validAlgo := false
	for _, a := range algoNames {
		validAlgo = validAlgo || a == *algoFlag
	}
	if !validAlgo {
		fmt.Fprintf(os.Stderr, "metricprox: unknown algorithm %q (see -h)\n", *algoFlag)
		os.Exit(2)
	}
	if *inFlag != "" && *demoFlag > 0 {
		fmt.Fprintln(os.Stderr, "metricprox: -in and -demo are mutually exclusive; pick one input")
		os.Exit(2)
	}
	if *kFlag < 1 || *lFlag < 1 || *landmarks < 0 || *demoFlag < 0 {
		fmt.Fprintln(os.Stderr, "metricprox: -k and -l must be >= 1; -landmarks and -demo must be >= 0")
		os.Exit(2)
	}
	var faultCfg faultmetric.Config
	if *faultsFlag != "" {
		var err error
		if faultCfg, err = faultmetric.ParseSpec(*faultsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "metricprox: -faults: %v\n", err)
			os.Exit(2)
		}
	}
	if *nearFlag != "" {
		nearCfg, err := faultmetric.ParseNearMetricSpec(*nearFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricprox: -near-metric: %v\n", err)
			os.Exit(2)
		}
		if *faultsFlag != "" {
			// One injector serves both fault classes; its schedule — and
			// hence the seed — comes from -faults, so a second seed here
			// would be silently ignored. Reject the ambiguity instead.
			if hasSeedKey(*nearFlag) {
				fmt.Fprintln(os.Stderr, "metricprox: -near-metric: seed is taken from -faults when both flags are set")
				os.Exit(2)
			}
			faultCfg.NearMetricEps = nearCfg.NearMetricEps
			faultCfg.NearMetricRatio = nearCfg.NearMetricRatio
		} else {
			faultCfg = nearCfg
		}
	}
	var slack core.SlackPolicy
	if *slackFlag != "" {
		var err error
		if slack, err = core.ParseSlackSpec(*slackFlag); err != nil {
			fmt.Fprintf(os.Stderr, "metricprox: -slack: %v\n", err)
			os.Exit(2)
		}
		if err := core.SlackSupported(slack, scheme); err != nil {
			fmt.Fprintf(os.Stderr, "metricprox: -slack: %v\n", err)
			os.Exit(2)
		}
	}

	space, err := loadSpace(*inFlag, *demoFlag, *pFlag, *seedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricprox:", err)
		os.Exit(1)
	}
	n := space.Len()

	k := *landmarks
	if k == 0 {
		for v := n; v > 1; v /= 2 {
			k++
		}
	}
	lms := core.PickLandmarks(n, k, *seedFlag)

	var observer *obs.Observer
	if *listenFlag != "" {
		observer = obs.NewObserver(false, 0, nil)
		srv, err := obshttp.Serve(*listenFlag, observer.Registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricprox: -listen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metricprox: serving metrics on http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx) // drain in-flight scrapes before exit
		}()
	}

	var oracle metric.FallibleOracle = metric.NewOracle(space)
	if *faultsFlag != "" || *nearFlag != "" {
		inj := faultmetric.New(space, faultCfg)
		if observer != nil {
			inj.Observe(observer.Registry)
		}
		oracle = inj
		if faultCfg.TransientRate > 0 {
			// The retry policy only earns its keep over transient
			// failures; a pure near-metric injector never fails.
			ro := resilient.New(inj, resilient.RetryOnlyPolicy(faultCfg.Seed))
			if observer != nil {
				ro.Observe(observer.Registry)
			}
			oracle = ro
		}
	}
	var opts []core.Option
	if observer != nil {
		opts = append(opts, core.WithObserver(observer))
	}
	if slack.Active() {
		opts = append(opts, core.WithSlack(slack))
	}
	if *auditFlag && !slack.Auto {
		// Auto slack attaches its own auditor inside WithSlack.
		opts = append(opts, core.WithAuditor(metric.NewAuditor(0)))
	}
	s := core.NewFallibleSessionWithLandmarks(oracle, scheme, lms, opts...)

	if *cacheFlag != "" {
		store, err := cachestore.OpenOrCreate(*cacheFlag, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricprox:", err)
			os.Exit(1)
		}
		defer store.Close()
		if err := s.AttachStore(store); err != nil {
			fmt.Fprintln(os.Stderr, "metricprox:", err)
			os.Exit(1)
		}
	}
	if scheme != core.SchemeNoop {
		if _, err := s.BootstrapErr(lms); err != nil {
			fmt.Fprintln(os.Stderr, "metricprox: bootstrap aborted, continuing with partial bounds:", err)
		}
	}

	start := time.Now()
	summary, err := runAlgo(s, *algoFlag, *kFlag, *lFlag, *seedFlag, lms, *mFlag, *efFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricprox:", err)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	fmt.Println(summary)
	st := s.Stats()
	total := int64(n) * int64(n-1) / 2
	fmt.Printf("objects: %d   pairs: %d\n", n, total)
	fmt.Printf("oracle calls: %d (%.1f%% of all pairs; bootstrap %d)\n",
		st.OracleCalls, 100*float64(st.OracleCalls)/float64(total), st.BootstrapCalls)
	fmt.Printf("comparisons: %d saved by bounds, %d resolved, %d cache hits\n",
		st.SavedComparisons, st.ResolvedComparisons, st.CacheHits)
	if st.Retries > 0 || st.Timeouts > 0 || st.BreakerOpens > 0 {
		fmt.Printf("resilience: %d retries, %d timeouts, %d breaker opens\n",
			st.Retries, st.Timeouts, st.BreakerOpens)
	}
	if aud := s.Auditor(); aud != nil {
		fmt.Printf("audit: %d/%d triangles violated, worst margin %.3g, worst ratio %.3g\n",
			aud.Violations(), aud.Triangles(), aud.Margin(), aud.Ratio())
	}
	if st.SlackResolved > 0 {
		fmt.Printf("slack: %d comparisons resolved from relaxed intervals (sound for the declared near-metric)\n",
			st.SlackResolved)
	}
	fmt.Printf("wall time: %s\n", elapsed.Round(time.Millisecond))
	if err := s.OracleErr(); err != nil {
		fmt.Fprintln(os.Stderr, "metricprox: oracle degraded — results are best-effort, not exact:", err)
		fmt.Fprintf(os.Stderr, "metricprox: %d answers came from bounds or estimates instead of the oracle\n", st.DegradedAnswers)
	} else if st.Retries > 0 {
		fmt.Println("all answers exact: every injected fault was retried to success")
	}
	if err := s.StoreErr(); err != nil {
		fmt.Fprintln(os.Stderr, "metricprox: cache warning:", err)
	}
	if err := s.ViolationErr(); err != nil {
		sl := s.Slack()
		switch {
		case !sl.Active():
			// Strict mode: every bound the run used assumed the triangle
			// inequality, so the output-preservation guarantee is void.
			fmt.Fprintln(os.Stderr, "metricprox: the oracle is not a metric — results assume the triangle inequality; re-run with -slack (or -slack auto) to stay sound:", err)
			os.Exit(1)
		case !sl.Auto && s.Auditor().Margin() > sl.Additive:
			// Violations beyond the declared contract: the relaxed
			// intervals were too narrow for this oracle.
			fmt.Fprintf(os.Stderr, "metricprox: observed violation margin %.3g exceeds the declared -slack eps %.3g — results are not guaranteed; raise eps or use -slack auto\n",
				s.Auditor().Margin(), sl.Additive)
			os.Exit(1)
		}
		// Violations within the declared (or auto-grown) slack are exactly
		// what the relaxed intervals already tolerate; the audit line above
		// records them.
	}
}

// hasSeedKey reports whether a key=value spec sets "seed", for rejecting
// the ambiguous -faults + -near-metric seed combination.
func hasSeedKey(spec string) bool {
	for _, field := range strings.Split(spec, ",") {
		if key, _, ok := strings.Cut(strings.TrimSpace(field), "="); ok && key == "seed" {
			return true
		}
	}
	return false
}

// calibrate repairs the cache file in place and prints the report; it is
// the offline half of the near-metric story (detection and slack are the
// online half).
func calibrate(path string, tol float64) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "metricprox: -calibrate requires -cache <file>")
		os.Exit(2)
	}
	rep, err := cachestore.Calibrate(path, tol, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricprox: -calibrate:", err)
		os.Exit(1)
	}
	fmt.Printf("calibrated %s: %d records, %d fully-cached triangles\n", path, rep.Records, rep.Triangles)
	fmt.Printf("violation margin: %.6g before, %.6g after (%d projection sweeps)\n",
		rep.MarginBefore, rep.MarginAfter, rep.Iterations)
	if rep.MarginAfter > tol {
		fmt.Fprintf(os.Stderr, "metricprox: margin %.3g still above tolerance %.3g after the sweep budget\n", rep.MarginAfter, tol)
		os.Exit(1)
	}
}

func loadSpace(in string, demo int, p float64, seed int64) (metric.Space, error) {
	switch {
	case demo > 0:
		return datasets.SFPOI(demo, seed), nil
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return datasets.LoadPointsCSV(f, p, 0)
	default:
		return nil, fmt.Errorf("provide -in <csv> or -demo <n> (see -h)")
	}
}

func runAlgo(s *core.Session, algo string, k, l int, seed int64, lms []int, m, ef int) (string, error) {
	switch algo {
	case "mst":
		m := prox.PrimMST(s)
		return fmt.Sprintf("MST (Prim): weight %.6f over %d edges", m.Weight, len(m.Edges)), nil
	case "kruskal":
		m := prox.KruskalMST(s)
		return fmt.Sprintf("MST (Kruskal): weight %.6f over %d edges", m.Weight, len(m.Edges)), nil
	case "boruvka":
		m := prox.BoruvkaMST(s)
		return fmt.Sprintf("MST (Boruvka): weight %.6f over %d edges", m.Weight, len(m.Edges)), nil
	case "knn":
		g := prox.KNNGraph(s, k)
		sum := 0.0
		for _, ns := range g {
			for _, nb := range ns {
				sum += nb.Dist
			}
		}
		return fmt.Sprintf("%d-NN graph: mean neighbour distance %.6f", k, sum/float64(len(g)*k)), nil
	case "search":
		// The approximate counterpart of -algo knn: build a navigable
		// search graph (beams seeded from the session's bootstrapped
		// landmarks, every comparison through the IF) and answer a k-NN
		// query for every object over it.
		g, err := nsw.Build(s, nsw.Params{M: m, EfConstruction: ef, Seed: seed, Landmarks: lms})
		if err != nil {
			return "", fmt.Errorf("search graph build: %w", err)
		}
		efs := ef
		if efs <= 0 {
			efs = nsw.DefaultEfConstruction
		}
		sum, cnt := 0.0, 0
		for q := 0; q < g.N(); q++ {
			res, err := g.Search(s, q, k, efs)
			if err != nil {
				return "", fmt.Errorf("search query %d: %w", q, err)
			}
			for _, nb := range res {
				sum += nb.Dist
				cnt++
			}
		}
		p := g.Params()
		return fmt.Sprintf("search graph (nsw m=%d efc=%d): %d nodes, %d edges; approx %d-NN mean neighbour distance %.6f",
			p.M, p.EfConstruction, g.Inserted(), g.Edges(), k, sum/float64(cnt)), nil
	case "pam":
		c := prox.PAM(s, l, seed)
		return fmt.Sprintf("PAM: %d medoids %v, cost %.6f", l, c.Medoids, c.Cost), nil
	case "clarans":
		c := prox.CLARANS(s, l, prox.CLARANSConfig{Seed: seed})
		return fmt.Sprintf("CLARANS: %d medoids %v, cost %.6f", l, c.Medoids, c.Cost), nil
	case "kcenter":
		c := prox.KCenter(s, l)
		return fmt.Sprintf("k-center: centers %v, radius %.6f", c.Centers, c.Radius), nil
	case "tsp":
		t := prox.TwoOpt(s, prox.TSPNearestNeighbour(s), 5)
		return fmt.Sprintf("TSP (NN + 2-opt): tour length %.6f", t.Length), nil
	case "linkage":
		d := prox.SingleLinkage(s)
		mid := d.Merges[len(d.Merges)/2].Dist
		return fmt.Sprintf("single-linkage: %d merges; cutting at %.4f yields %d clusters",
			len(d.Merges), mid, d.Clusters(mid)), nil
	default:
		return "", fmt.Errorf("unknown algorithm %q", algo)
	}
}
