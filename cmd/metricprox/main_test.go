package main

import (
	"strings"
	"testing"

	"metricprox/internal/core"
	"metricprox/internal/metric"
)

func testSession(t *testing.T) *core.Session {
	t.Helper()
	space, err := loadSpace("", 40, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewSession(metric.NewOracle(space), core.SchemeTri)
}

func TestLoadSpaceDemoAndErrors(t *testing.T) {
	if _, err := loadSpace("", 0, 2, 1); err == nil {
		t.Fatal("no input accepted")
	}
	if _, err := loadSpace("/nonexistent/file.csv", 0, 2, 1); err == nil {
		t.Fatal("missing file accepted")
	}
	s, err := loadSpace("", 25, 2, 1)
	if err != nil || s.Len() != 25 {
		t.Fatalf("demo space: %v, len %d", err, s.Len())
	}
}

func TestRunAlgoAll(t *testing.T) {
	wants := map[string]string{
		"mst":     "MST (Prim)",
		"kruskal": "MST (Kruskal)",
		"boruvka": "MST (Boruvka)",
		"knn":     "-NN graph",
		"pam":     "PAM:",
		"clarans": "CLARANS:",
		"kcenter": "k-center:",
		"tsp":     "TSP",
		"linkage": "single-linkage",
		"search":  "search graph (nsw",
	}
	for algo, want := range wants {
		s := testSession(t)
		out, err := runAlgo(s, algo, 3, 4, 1, nil, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out, want) {
			t.Fatalf("%s: summary %q missing %q", algo, out, want)
		}
	}
	if _, err := runAlgo(testSession(t), "bogus", 3, 4, 1, nil, 0, 0); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
