package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: metricprox
cpu: some CPU
BenchmarkTriBoundsCSR-8          3825606     151.2 ns/op     0 B/op   0 allocs/op
BenchmarkTriBoundsCSR-8          3901220     148.8 ns/op     0 B/op   0 allocs/op
BenchmarkTriBoundsCSR-8          3791004     150.1 ns/op     0 B/op   0 allocs/op
BenchmarkTriBoundsBatch-8          10000   118130 ns/op     0.0 allocs/pair   1024 pairs/op
BenchmarkTriBoundsRBTreeRef-8     702458    1703 ns/op    96 B/op   4 allocs/op
BenchmarkTriBoundsRBTreeRef-8     698121    1711 ns/op    96 B/op   4 allocs/op
PASS
ok  	metricprox	12.345s
`

func TestParseBench(t *testing.T) {
	best, runs, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ns   float64
		runs int
	}{
		{"BenchmarkTriBoundsCSR", 148.8, 3},
		{"BenchmarkTriBoundsBatch", 118130, 1},
		{"BenchmarkTriBoundsRBTreeRef", 1703, 2},
	}
	if len(best) != len(cases) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(best), len(cases), best)
	}
	for _, c := range cases {
		if best[c.name] != c.ns {
			t.Errorf("%s: best = %v, want %v (minimum across runs)", c.name, best[c.name], c.ns)
		}
		if runs[c.name] != c.runs {
			t.Errorf("%s: runs = %d, want %d", c.name, runs[c.name], c.runs)
		}
	}
}

func TestParseBenchKeepsDashedNames(t *testing.T) {
	// Only a numeric trailing segment is a GOMAXPROCS suffix; sub-benchmark
	// names with dashes survive intact.
	in := "BenchmarkThing/size-big-4   10   50.0 ns/op\nBenchmarkPlain   10   25.0 ns/op\n"
	best, _, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := best["BenchmarkThing/size-big"]; !ok {
		t.Errorf("GOMAXPROCS suffix not stripped: %v", best)
	}
	if best["BenchmarkPlain"] != 25 {
		t.Errorf("suffix-free benchmark mangled: %v", best)
	}
}

func TestGatePassAndFail(t *testing.T) {
	rep, err := gate(strings.NewReader(sampleOutput),
		"BenchmarkTriBoundsCSR", "BenchmarkTriBoundsRBTreeRef", 5)
	if err != nil {
		t.Fatal(err)
	}
	base, subj := 1703.0, 148.8
	want := base / subj
	if rep.Speedup != want {
		t.Errorf("speedup = %v, want %v", rep.Speedup, want)
	}
	if !rep.Pass {
		t.Errorf("gate failed at floor 5 with speedup %.2f", rep.Speedup)
	}
	if len(rep.Benchmarks) != 3 {
		t.Errorf("report carries %d benchmarks, want 3", len(rep.Benchmarks))
	}

	rep, err = gate(strings.NewReader(sampleOutput),
		"BenchmarkTriBoundsCSR", "BenchmarkTriBoundsRBTreeRef", 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Error("gate passed at an impossible floor of 100x")
	}
}

func TestGateMissingBenchmark(t *testing.T) {
	if _, err := gate(strings.NewReader(sampleOutput), "BenchmarkNope", "BenchmarkTriBoundsRBTreeRef", 5); err == nil {
		t.Error("missing subject benchmark not reported")
	}
	if _, err := gate(strings.NewReader("PASS\nok x 1s\n"), "A", "B", 5); err == nil {
		t.Error("benchmark-free input not reported")
	}
}
