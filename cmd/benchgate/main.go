// Command benchgate turns `go test -bench` output into a pass/fail
// throughput gate plus a machine-readable report. CI's bench-smoke job
// pipes the bound-store benchmarks through it to enforce the flat CSR
// layout's speedup floor over the rbtree reference — both benchmarks run
// in the same job on the same machine, so the enforced quantity is a
// ratio, not a machine-dependent absolute time.
//
// Usage:
//
//	go test -run '^$' -bench 'TriBounds' -count 3 . | benchgate \
//	    -subject BenchmarkTriBoundsCSR \
//	    -base BenchmarkTriBoundsRBTreeRef \
//	    -min 5 -out BENCH_boundstore.json
//
// Every benchmark line on stdin is recorded in the JSON report; with
// -count > 1 the best (minimum) ns/op per benchmark is used, the usual
// guard against scheduler noise. Exit status 1 when the subject or base
// benchmark is missing or the speedup is below -min.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's aggregated measurement in the JSON report.
type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"` // best (min) across runs
	Runs    int     `json:"runs"`
}

// report is the BENCH_boundstore.json schema.
type report struct {
	Subject    string   `json:"subject"`
	Base       string   `json:"base"`
	Speedup    float64  `json:"speedup"` // base ns/op ÷ subject ns/op
	MinSpeedup float64  `json:"min_speedup"`
	Pass       bool     `json:"pass"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	subject := flag.String("subject", "BenchmarkTriBoundsCSR", "benchmark whose throughput is gated")
	base := flag.String("base", "BenchmarkTriBoundsRBTreeRef", "baseline benchmark the subject is compared against")
	min := flag.Float64("min", 5, "minimum required speedup (base ns/op ÷ subject ns/op)")
	out := flag.String("out", "", "write the JSON report to this file ('' = stdout only)")
	flag.Parse()

	rep, err := gate(os.Stdin, *subject, *base, *min)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: encode report: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	os.Stdout.Write(blob)
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s is %.2fx faster than %s, floor is %.2fx\n",
			rep.Subject, rep.Speedup, rep.Base, rep.MinSpeedup)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgate: ok: %s is %.2fx faster than %s (floor %.2fx)\n",
		rep.Subject, rep.Speedup, rep.Base, rep.MinSpeedup)
}

// gate parses benchmark output and evaluates the speedup floor. It is
// the whole tool behind the flag handling, split out for testing.
func gate(r io.Reader, subject, base string, minSpeedup float64) (*report, error) {
	best, runs, err := parseBench(r)
	if err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("no benchmark lines on input (want `go test -bench` output)")
	}
	sNs, okS := best[subject]
	bNs, okB := best[base]
	if !okS || !okB {
		names := make([]string, 0, len(best))
		for n := range best {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("subject %q present=%v, base %q present=%v; saw %v", subject, okS, base, okB, names)
	}
	rep := &report{
		Subject:    subject,
		Base:       base,
		Speedup:    bNs / sNs,
		MinSpeedup: minSpeedup,
	}
	rep.Pass = rep.Speedup >= minSpeedup
	names := make([]string, 0, len(best))
	for n := range best {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rep.Benchmarks = append(rep.Benchmarks, result{Name: n, NsPerOp: best[n], Runs: runs[n]})
	}
	return rep, nil
}

// parseBench extracts ns/op figures from `go test -bench` output. A
// benchmark line looks like
//
//	BenchmarkTriBoundsCSR-8   3825606   148.8 ns/op   0 B/op   0 allocs/op
//
// (the -8 GOMAXPROCS suffix is optional). Repeated lines for the same
// benchmark (-count > 1) keep the minimum. Non-benchmark lines are
// ignored, so the raw `go test` stream can be piped in unfiltered.
func parseBench(r io.Reader) (best map[string]float64, runs map[string]int, err error) {
	best = make(map[string]float64)
	runs = make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		// Locate the "ns/op" unit; its value is the preceding field.
		ns := -1.0
		for x := 2; x < len(f); x++ {
			if f[x] == "ns/op" {
				v, perr := strconv.ParseFloat(f[x-1], 64)
				if perr != nil {
					return nil, nil, fmt.Errorf("line %q: bad ns/op value %q", sc.Text(), f[x-1])
				}
				ns = v
				break
			}
		}
		if ns < 0 {
			continue
		}
		name := f[0]
		if cut := strings.LastIndexByte(name, '-'); cut > 0 {
			// Strip the GOMAXPROCS suffix iff numeric (benchmark names
			// themselves may contain dashes).
			if _, perr := strconv.Atoi(name[cut+1:]); perr == nil {
				name = name[:cut]
			}
		}
		if old, ok := best[name]; !ok || ns < old {
			best[name] = ns
		}
		runs[name]++
	}
	return best, runs, sc.Err()
}
