// Command dftprobe quantifies how often the DIRECT FEASIBILITY TEST (an LP
// over the full metric polytope) decides a distance comparison that the
// tightest interval bounds (SPLUB/ADM) cannot.
//
// This is the analysis behind a reproduction note in EXPERIMENTS.md: on
// random partial metrics the LP's joint reasoning adds nothing over fresh
// tightest interval bounds for single comparisons — max(x_e − x_f) over
// the metric polytope is attained at the per-edge extremes — so DFT's
// call counts match ADM's in this reproduction, unlike the 27–58% gap the
// paper reports against its ADM baseline.
//
// Usage: dftprobe [-trials 10] [-n 8] [-reveal 0.5]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"metricprox/internal/bounds"
	"metricprox/internal/buildinfo"
	"metricprox/internal/datasets"
	"metricprox/internal/pgraph"
)

func main() {
	trials := flag.Int("trials", 10, "number of random partial metrics")
	n := flag.Int("n", 8, "objects per instance")
	reveal := flag.Float64("reveal", 0.5, "fraction of edges revealed")
	verFlag := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *verFlag {
		fmt.Println(buildinfo.String("dftprobe"))
		return
	}

	lpWins, intervalDecided, total, unsound := 0, 0, 0, 0
	for trial := int64(0); trial < int64(*trials); trial++ {
		m := datasets.RandomMetric(*n, trial)
		rng := rand.New(rand.NewSource(trial + 100))
		g := pgraph.New(*n)
		splub := bounds.NewSPLUB(g, 1)
		dft := bounds.NewDFT(*n, 1)
		for i := 0; i < *n; i++ {
			for j := i + 1; j < *n; j++ {
				if rng.Float64() < *reveal {
					//proxlint:allow oracleescape -- diagnostic tool: probes bound quality against ground truth directly, deliberately outside any session
					d := m.Distance(i, j)
					g.AddEdge(i, j, d)
					dft.Update(i, j, d)
				}
			}
		}
		for i := 0; i < *n; i++ {
			for j := i + 1; j < *n; j++ {
				if g.Known(i, j) {
					continue
				}
				for k := 0; k < *n; k++ {
					for l := k + 1; l < *n; l++ {
						if g.Known(k, l) || (i == k && j == l) {
							continue
						}
						total++
						_, ub1 := splub.Bounds(i, j)
						lb2, _ := splub.Bounds(k, l)
						iv := ub1 < lb2
						lp := dft.ProveLess(i, j, k, l)
						if iv {
							intervalDecided++
						}
						if lp && !iv {
							lpWins++
						}
						if iv && !lp {
							unsound++ // must stay 0: LP subsumes intervals
						}
					}
				}
			}
		}
	}
	fmt.Printf("comparisons=%d interval-decided=%d lp-extra-wins=%d interval-not-lp=%d\n",
		total, intervalDecided, lpWins, unsound)
}
