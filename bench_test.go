// Package metricprox's root benchmarks: one testing.B benchmark per table
// and figure of the paper's evaluation (run the cmd/proxbench CLI for the
// full formatted reproduction), plus ablation benchmarks for the design
// choices called out in DESIGN.md §9.
package metricprox_test

import (
	"math/rand"
	"testing"

	"metricprox/internal/bounds"
	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/experiments"
	"metricprox/internal/metric"
	"metricprox/internal/pgraph"
	"metricprox/internal/prox"
	"metricprox/internal/rbtree"
)

// benchExperiment runs a registered experiment at quick scale per iteration.
func benchExperiment(b *testing.B, id string) {
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := experiments.Config{Quick: true, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tb := r.Run(cfg); len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig3a(b *testing.B)  { benchExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)  { benchExperiment(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)  { benchExperiment(b, "fig3c") }
func BenchmarkFig4a(b *testing.B)  { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)  { benchExperiment(b, "fig4b") }
func BenchmarkFig5a(b *testing.B)  { benchExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)  { benchExperiment(b, "fig5b") }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)  { benchExperiment(b, "fig6c") }
func BenchmarkFig6d(b *testing.B)  { benchExperiment(b, "fig6d") }
func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFig7c(b *testing.B)  { benchExperiment(b, "fig7c") }
func BenchmarkFig7d(b *testing.B)  { benchExperiment(b, "fig7d") }
func BenchmarkFig8a(b *testing.B)  { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)  { benchExperiment(b, "fig8c") }
func BenchmarkFig8d(b *testing.B)  { benchExperiment(b, "fig8d") }
func BenchmarkFig9a(b *testing.B)  { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { benchExperiment(b, "fig9b") }
func BenchmarkFig9c(b *testing.B)  { benchExperiment(b, "fig9c") }
func BenchmarkFig9d(b *testing.B)  { benchExperiment(b, "fig9d") }
func BenchmarkExt1(b *testing.B)   { benchExperiment(b, "ext1") }
func BenchmarkExt2(b *testing.B)   { benchExperiment(b, "ext2") }
func BenchmarkExt3(b *testing.B)   { benchExperiment(b, "ext3") }
func BenchmarkExt4(b *testing.B)   { benchExperiment(b, "ext4") }
func BenchmarkExt5(b *testing.B)   { benchExperiment(b, "ext5") }
func BenchmarkExt6(b *testing.B)   { benchExperiment(b, "ext6") }
func BenchmarkExt7(b *testing.B)   { benchExperiment(b, "ext7") }
func BenchmarkExt8(b *testing.B)   { benchExperiment(b, "ext8") }
func BenchmarkExt9(b *testing.B)   { benchExperiment(b, "ext9") }
func BenchmarkExt10(b *testing.B)  { benchExperiment(b, "ext10") }
func BenchmarkExt12(b *testing.B)  { benchExperiment(b, "ext12") }
func BenchmarkExt13(b *testing.B)  { benchExperiment(b, "ext13") }

// BenchmarkSearchGraphBuildIF / BenchmarkSearchGraphBuildNaive are the
// ext13 gate pair: the same NSW construction over the planar SF
// surrogate, IF-driven (Tri session, landmark-seeded beams, bootstrap
// included) versus naive (raw oracle, textbook single entry). Each
// reports its deterministic oracle-call count as the ns/op metric, so
// the benchgate "speedup" — naive calls ÷ IF calls — is an exact call
// ratio, independent of machine and scheduler; CI's bench-smoke job
// enforces ≥1.5× via:
//
//	go test -run '^$' -bench 'SearchGraphBuild' -benchtime 1x . | benchgate \
//	    -subject BenchmarkSearchGraphBuildIF \
//	    -base BenchmarkSearchGraphBuildNaive \
//	    -min 1.5 -out BENCH_searchgraph.json
func BenchmarkSearchGraphBuildIF(b *testing.B) {
	var calls int64
	for i := 0; i < b.N; i++ {
		calls = experiments.SearchGraphIFBuildCalls(searchGraphN, searchGraphSeed)
	}
	b.ReportMetric(float64(calls), "ns/op")
}

func BenchmarkSearchGraphBuildNaive(b *testing.B) {
	var calls int64
	for i := 0; i < b.N; i++ {
		calls = experiments.SearchGraphNaiveBuildCalls(searchGraphN, searchGraphSeed)
	}
	b.ReportMetric(float64(calls), "ns/op")
}

// The gated workload's scale: large enough that the one-time landmark
// bootstrap (≈ 9·n calls at this size) is amortised, small enough to
// run in CI per push.
const (
	searchGraphN    = 400
	searchGraphSeed = 1
)

// BenchmarkClusterWarmReplay / BenchmarkClusterColdSession are the
// cluster-failover gate pair: the same server-side kNN build on a node
// that inherited replicated bound state from a dead primary versus a
// node starting from nothing. Each reports its deterministic oracle-call
// count as the ns/op metric, so the benchgate "speedup" — cold calls ÷
// warm calls — is an exact call ratio; CI's bench-smoke job enforces
// ≥1.5× via:
//
//	go test -run '^$' -bench 'Cluster(WarmReplay|ColdSession)' -benchtime 1x . | benchgate \
//	    -subject BenchmarkClusterWarmReplay \
//	    -base BenchmarkClusterColdSession \
//	    -min 1.5 -out BENCH_cluster.json
func BenchmarkClusterWarmReplay(b *testing.B) {
	var calls int64
	for i := 0; i < b.N; i++ {
		calls = experiments.ClusterWarmReplayCalls(clusterBenchN, clusterBenchSeed)
	}
	b.ReportMetric(float64(calls), "ns/op")
}

func BenchmarkClusterColdSession(b *testing.B) {
	var calls int64
	for i := 0; i < b.N; i++ {
		calls = experiments.ClusterColdSessionCalls(clusterBenchN, clusterBenchSeed)
	}
	b.ReportMetric(float64(calls), "ns/op")
}

// The cluster gate's scale: big enough that the kNN build resolves far
// more pairs than the pre-kill workload covers (so the warm number is
// honest work, not zero), small enough for per-push CI.
const (
	clusterBenchN    = 200
	clusterBenchSeed = 1
)

// --- micro-benchmarks of the core primitives ---

func BenchmarkSessionLessTri(b *testing.B) { benchSessionLess(b, core.SchemeTri) }

func BenchmarkSessionLessSPLUB(b *testing.B) { benchSessionLess(b, core.SchemeSPLUB) }

func benchSessionLess(b *testing.B, scheme core.Scheme) {
	m := datasets.SFPOI(256, 1)
	o := metric.NewOracle(m)
	s := core.NewSession(o, scheme)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y, z, w := rng.Intn(256), rng.Intn(256), rng.Intn(256), rng.Intn(256)
		if x == y || z == w {
			continue
		}
		s.Less(x, y, z, w)
	}
}

// BenchmarkNearMetricAuditOn measures the paper's canonical workload — a
// Tri-scheme kNN-graph build — with the violation auditor attached, over
// a true metric (no violations: the common case the overhead budget is
// written for). The auditor rides only the resolve path, checking the
// triangles the scheme's own adjacency already enumerates; CI's
// bench-smoke job gates this at ≥0.95× of BenchmarkNearMetricAuditOff
// via cmd/benchgate (report artifact: BENCH_nearmetric.json). Compare
// the two from separate go test invocations: in a shared process the
// first-run benchmark pays the warm-up and the ratio reads as phantom
// overhead.
func BenchmarkNearMetricAuditOn(b *testing.B) { benchNearMetricAudit(b, true) }

// BenchmarkNearMetricAuditOff is the baseline for the auditor-overhead
// gate: the identical build with no auditor attached.
func BenchmarkNearMetricAuditOff(b *testing.B) { benchNearMetricAudit(b, false) }

func benchNearMetricAudit(b *testing.B, audit bool) {
	const n, k = 128, 4
	m := datasets.RandomMetric(n, 7)
	o := metric.NewOracle(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var opts []core.Option
		if audit {
			opts = append(opts, core.WithAuditor(metric.NewAuditor(0)))
		}
		// A fresh session per iteration so the resolutions — the only
		// places the auditor does work — happen anew each time.
		s := core.NewSession(o, core.SchemeTri, opts...)
		prox.KNNGraph(s, k)
	}
}

// --- ablation benchmarks (DESIGN.md §9) ---

// BenchmarkTriBoundsCSR measures the Tri Scheme query as shipped: a
// sorted-merge intersection over the graph's flat CSR adjacency rows.
func BenchmarkTriBoundsCSR(b *testing.B) {
	g, pairs := triWorkload()
	tri := bounds.NewTri(g, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		tri.Bounds(p[0], p[1])
	}
}

// BenchmarkTriBoundsBatch measures the batch entry point on the same
// workload: all 1024 query pairs answered per outer iteration, grouped by
// anchor so each shared row streams through the cache once.
func BenchmarkTriBoundsBatch(b *testing.B) {
	g, pairs := triWorkload()
	tri := bounds.NewTri(g, 1)
	is := make([]int, len(pairs))
	js := make([]int, len(pairs))
	for q, p := range pairs {
		is[q], js[q] = p[0], p[1]
	}
	lb := make([]float64, len(pairs))
	ub := make([]float64, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tri.BoundsBatch(is, js, lb, ub)
	}
	b.ReportMetric(float64(len(pairs)), "pairs/op")
}

// BenchmarkTriBoundsRBTreeRef is the reference the flat layout replaced:
// the identical triangle search as a sorted-merge of two per-node
// red–black trees via per-query iterators — the Tri.Bounds design the
// CSR store superseded, including its per-query iterator churn (the tree
// survives in internal/rbtree as the differential-test oracle). The ≥5×
// throughput floor that CI's bench-smoke job enforces is
// BenchmarkTriBoundsCSR vs this.
func BenchmarkTriBoundsRBTreeRef(b *testing.B) {
	g, pairs := triWorkload()
	adj := make([]*rbtree.Tree, g.N())
	for i := range adj {
		adj[i] = rbtree.New()
	}
	known := make(map[int64]float64, len(g.Edges()))
	for _, e := range g.Edges() {
		adj[e.U].Put(e.V, e.W)
		adj[e.V].Put(e.U, e.W)
		known[pgraph.Key(e.U, e.V)] = e.W
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, ok := known[pgraph.Key(p[0], p[1])]; ok {
			continue
		}
		lb, ub := 0.0, 1.0
		iti, itj := adj[p[0]].Iter(), adj[p[1]].Iter()
		ki, wi, oki := iti.Next()
		kj, wj, okj := itj.Next()
		for oki && okj {
			switch {
			case ki == kj:
				if d := wi - wj; d > lb {
					lb = d
				} else if d := wj - wi; d > lb {
					lb = d
				}
				if s := wi + wj; s < ub {
					ub = s
				}
				ki, wi, oki = iti.Next()
				kj, wj, okj = itj.Next()
			case ki < kj:
				ki, wi, oki = iti.Next()
			default:
				kj, wj, okj = itj.Next()
			}
		}
		// Deliberately no it.Release(): the replaced implementation
		// predates the iterator pool, and this benchmark is the record of
		// what shipped. (Releasing makes the tree merge allocation-free
		// and ~15% faster; it still loses to the flat rows severalfold.)
	}
}

// BenchmarkTriAdjacencyScan is the remaining ablation: the same triangle
// search as a per-element binary probe of the smaller flat row into the
// larger via Neighbor, instead of the shipped two-cursor sorted merge.
func BenchmarkTriAdjacencyScan(b *testing.B) {
	g, pairs := triWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		lb, ub := 0.0, 1.0
		u, v := p[0], p[1]
		nu, wu := g.Row(u)
		if nv, _ := g.Row(v); len(nv) < len(nu) {
			u, v = v, u
			nu, wu = g.Row(u)
		}
		for t, k := range nu {
			wi := wu[t]
			if wj, ok := g.Neighbor(v, int(k)); ok {
				if d := wi - wj; d > lb {
					lb = d
				} else if d := wj - wi; d > lb {
					lb = d
				}
				if sum := wi + wj; sum < ub {
					ub = sum
				}
			}
		}
	}
}

func triWorkload() (*pgraph.Graph, [][2]int) {
	m := datasets.SFPOI(512, 3)
	g := pgraph.New(512)
	rng := rand.New(rand.NewSource(4))
	for g.M() < 8000 {
		i, j := rng.Intn(512), rng.Intn(512)
		if i != j && !g.Known(i, j) {
			g.AddEdge(i, j, m.Distance(i, j))
		}
	}
	pairs := make([][2]int, 0, 1024)
	for len(pairs) < 1024 {
		i, j := rng.Intn(512), rng.Intn(512)
		if i != j && !g.Known(i, j) {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return g, pairs
}

// BenchmarkSPLUBFullRun vs BenchmarkSPLUBEarlyExit: the upper-bound
// Dijkstra ablation (full run is required for LB anyway; early exit serves
// pure-UB queries).
func BenchmarkSPLUBFullRun(b *testing.B) {
	g, pairs := triWorkload()
	s := bounds.NewSPLUB(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		s.Bounds(p[0], p[1])
	}
}

func BenchmarkSPLUBEarlyExit(b *testing.B) {
	g, pairs := triWorkload()
	s := bounds.NewSPLUB(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		s.TightestUB(p[0], p[1])
	}
}

// BenchmarkKruskalLazy vs BenchmarkKruskalPreResolve: the lazy
// lower-bound-queue Kruskal against the classic resolve-and-sort-everything
// variant, measured in oracle calls per op via ReportMetric.
func BenchmarkKruskalLazy(b *testing.B) {
	m := datasets.UrbanGB(128, 5)
	var calls int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := metric.NewOracle(m)
		s := core.NewSession(o, core.SchemeTri)
		prox.KruskalMST(s)
		calls += o.Calls()
	}
	b.ReportMetric(float64(calls)/float64(b.N), "oracle-calls/op")
}

func BenchmarkKruskalPreResolve(b *testing.B) {
	m := datasets.UrbanGB(128, 5)
	var calls int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := metric.NewOracle(m)
		s := core.NewSession(o, core.SchemeNoop)
		// Classic Kruskal resolves every pair before sorting.
		for x := 0; x < 128; x++ {
			for y := x + 1; y < 128; y++ {
				s.Dist(x, y)
			}
		}
		prox.KruskalMST(s)
		calls += o.Calls()
	}
	b.ReportMetric(float64(calls)/float64(b.N), "oracle-calls/op")
}
