module metricprox

go 1.22
