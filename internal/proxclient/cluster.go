package proxclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"metricprox/internal/cluster"
	"metricprox/internal/service/api"
)

// ClusterClient is the smart client for a sharded metricproxd cluster: it
// computes session ownership locally from the ring and talks straight to
// the owning node, falling back through the session's replicas when the
// primary stops answering. It needs no proxrouter hop — the router exists
// for clients that cannot embed the ring.
//
// Failover taxonomy (identical to cluster.Router's): a transport error, a
// 503/draining, or a bare 502/504 moves to the next owner; a
// 503/overloaded (per-session backpressure) and a 502/oracle_unavailable
// (the shared oracle is down — every node would re-pay the outage) are
// relayed to the caller. Soundness of failing over mid-workload rests on
// the replication design: a promoted replica's bound store is a strict
// prefix of the primary's, so the worst a failover costs is re-paying
// oracle calls for the lost suffix — never a different answer.
type ClusterClient struct {
	topo    *cluster.Topology
	clients map[string]*Client
	logf    func(string, ...any)

	mu      sync.Mutex
	sticky  map[string]string                   // session -> node last known good
	creates map[string]api.CreateSessionRequest // session -> remembered create
}

// NewCluster returns a smart client over the given topology; opts
// configures every per-node transport identically.
func NewCluster(topo *cluster.Topology, opts Options) *ClusterClient {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	cc := &ClusterClient{
		topo:    topo,
		clients: make(map[string]*Client, len(topo.Nodes())),
		logf:    logf,
		sticky:  make(map[string]string),
		creates: make(map[string]api.CreateSessionRequest),
	}
	for _, n := range topo.Nodes() {
		cc.clients[n.Name] = New(n.URL, opts)
	}
	return cc
}

// Topology returns the ring the client routes by.
func (c *ClusterClient) Topology() *cluster.Topology { return c.topo }

// Requests returns the total HTTP requests sent across every node.
func (c *ClusterClient) Requests() int64 {
	var total int64
	for _, cl := range c.clients {
		total += cl.Requests()
	}
	return total
}

// Sessions lists the union of live sessions across the cluster; dead
// nodes contribute nothing rather than failing the list.
func (c *ClusterClient) Sessions(ctx context.Context) ([]string, error) {
	seen := make(map[string]struct{})
	var reached bool
	for _, n := range c.topo.Nodes() {
		var list api.SessionList
		if err := c.clients[n.Name].do(ctx, http.MethodGet, "/v1/sessions", nil, &list); err != nil {
			c.logf("proxclient: cluster list: node %s: %v", n.Name, err)
			continue
		}
		reached = true
		for _, s := range list.Sessions {
			seen[s] = struct{}{}
		}
	}
	if !reached {
		return nil, fmt.Errorf("proxclient: cluster list: no node reachable")
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// Delete evicts a session on every owner — the replicas hold adoptable
// state for it too, and a delete that leaves a replica behind would
// resurrect the session on the next misrouted request.
func (c *ClusterClient) Delete(ctx context.Context, name string) error {
	var lastErr error
	var deleted bool
	for _, n := range c.topo.Owners(name) {
		err := c.clients[n.Name].do(ctx, http.MethodDelete, "/v1/sessions/"+name, nil, nil)
		switch {
		case err == nil:
			deleted = true
		case isNotFound(err):
			// The owner never materialised the session; nothing to evict.
		default:
			lastErr = err
		}
	}
	c.mu.Lock()
	delete(c.sticky, name)
	delete(c.creates, name)
	c.mu.Unlock()
	if deleted {
		return nil
	}
	if lastErr != nil {
		return lastErr
	}
	return &APIError{Status: http.StatusNotFound, Code: api.CodeNotFound,
		Message: fmt.Sprintf("no session %q on any owner", name)}
}

// do routes one logical API call. Session-scoped paths go to the
// session's owners in ring order (sticky node first); everything else is
// tried against each node until one answers.
func (c *ClusterClient) do(ctx context.Context, method, path string, in, out any) error {
	name := sessionFromCall(path, in)
	if name == "" {
		var lastErr error
		for _, n := range c.topo.Nodes() {
			if err := c.clients[n.Name].do(ctx, method, path, in, out); err == nil {
				return nil
			} else if !failoverable(err) {
				return err
			} else {
				lastErr = err
			}
		}
		return fmt.Errorf("proxclient: cluster: no node answered %s %s: %w", method, path, lastErr)
	}

	if method == http.MethodPost && path == "/v1/sessions" {
		if req, ok := in.(api.CreateSessionRequest); ok {
			c.mu.Lock()
			c.creates[name] = req
			c.mu.Unlock()
		}
	}

	var lastErr error
	for _, node := range c.candidates(name) {
		err := c.clients[node].do(ctx, method, path, in, out)
		if err != nil && isNotFound(err) && !strings.HasSuffix(path, "/v1/sessions") {
			// A fallback owner without replicated state answers 404. If we
			// created the session ourselves, re-issue the create there — a
			// cold rebuild costs oracle calls, never correctness — and retry.
			if rerr := c.recreate(ctx, node, name); rerr == nil {
				err = c.clients[node].do(ctx, method, path, in, out)
			}
		}
		if err == nil {
			c.mu.Lock()
			c.sticky[name] = node
			c.mu.Unlock()
			return nil
		}
		if !failoverable(err) {
			return err
		}
		lastErr = err
		c.logf("proxclient: cluster: session %q: node %s failed, trying next owner: %v", name, node, err)
	}
	return fmt.Errorf("proxclient: cluster: session %q: all owners failed: %w", name, lastErr)
}

// candidates returns the node names to try for a session: the sticky node
// first when it is still an owner, then the remaining owners in ring
// order.
func (c *ClusterClient) candidates(name string) []string {
	owners := c.topo.Owners(name)
	c.mu.Lock()
	sticky := c.sticky[name]
	c.mu.Unlock()
	out := make([]string, 0, len(owners))
	if sticky != "" {
		for _, n := range owners {
			if n.Name == sticky {
				out = append(out, sticky)
				break
			}
		}
	}
	for _, n := range owners {
		if n.Name != sticky {
			out = append(out, n.Name)
		}
	}
	return out
}

// recreate re-issues the remembered create for name on the given node.
func (c *ClusterClient) recreate(ctx context.Context, node, name string) error {
	c.mu.Lock()
	req, ok := c.creates[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("proxclient: cluster: no remembered create for %q", name)
	}
	c.logf("proxclient: cluster: session %q: re-creating on node %s", name, node)
	var info api.SessionInfo
	return c.clients[node].do(ctx, http.MethodPost, "/v1/sessions", req, &info)
}

// sessionFromCall extracts the session name a call is about: from the
// path for session-scoped endpoints, from the create body for POST
// /v1/sessions. Empty for cluster-wide calls (healthz, list).
func sessionFromCall(path string, in any) string {
	if rest, ok := strings.CutPrefix(path, "/v1/sessions/"); ok {
		if idx := strings.IndexByte(rest, '/'); idx >= 0 {
			return rest[:idx]
		}
		return rest
	}
	if path == "/v1/sessions" {
		if req, ok := in.(api.CreateSessionRequest); ok {
			return req.Name
		}
	}
	return ""
}

// failoverable reports whether err warrants trying the next owner; see
// the ClusterClient doc for the taxonomy.
func failoverable(err error) bool {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		return true // transport failure: connect refused, reset, timeout
	}
	switch apiErr.Status {
	case http.StatusServiceUnavailable:
		return apiErr.Code == api.CodeDraining
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return apiErr.Code != api.CodeOracleUnavailable
	}
	return false
}

// isNotFound reports a 404/not_found API answer through the retry
// wrapper.
func isNotFound(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}

var _ Caller = (*ClusterClient)(nil)
