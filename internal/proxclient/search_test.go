package proxclient

import (
	"bytes"
	"context"
	"testing"

	"metricprox/internal/core"
	"metricprox/internal/fcmp"
	"metricprox/internal/nsw"
	"metricprox/internal/service"
)

// testLandmarks mirrors the daemon's log2-n default landmark derivation
// (see referenceSession): the server seeds its /search graph from these,
// and a client-side build that wants the byte-identical graph passes the
// same list.
func testLandmarks() []int {
	k := 0
	for v := testN; v > 1; v /= 2 {
		k++
	}
	return core.PickLandmarks(testN, k, testSeed)
}

// TestClientSideSearchGraphMatchesInProcess is the PR's determinism
// centrepiece in miniature: the nsw builder run against the remote
// client view must produce the byte-identical graph to the same builder
// run against an in-process session — every beam decision flows through
// DistIfLess, whose answers don't depend on which side of the wire
// resolves them. The CI server-smoke job repeats this across real
// processes via examples/searchgraph.
func TestClientSideSearchGraphMatchesInProcess(t *testing.T) {
	c, _ := newDaemon(t, service.Config{})
	sess := remoteSession(t, c, "graph-diff")
	p := nsw.Params{M: 6, EfConstruction: 24, Seed: testSeed, Landmarks: testLandmarks()}

	remote, err := nsw.Build(sess, p)
	if err != nil {
		t.Fatalf("remote build: %v", err)
	}
	local, err := nsw.Build(referenceSession(t), p)
	if err != nil {
		t.Fatalf("local build: %v", err)
	}
	var rb, lb bytes.Buffer
	if err := remote.Dump(&rb); err != nil {
		t.Fatalf("remote dump: %v", err)
	}
	if err := local.Dump(&lb); err != nil {
		t.Fatalf("local dump: %v", err)
	}
	if !bytes.Equal(rb.Bytes(), lb.Bytes()) {
		t.Fatalf("remote and local graphs differ:\n%s\nvs\n%s", rb.String(), lb.String())
	}

	// Queries over the two graphs agree as well (same argument: the beam
	// is a pure function of the distances).
	for q := 0; q < testN; q += 7 {
		rres, err := remote.Search(sess, q, 5, 24)
		if err != nil {
			t.Fatalf("remote search %d: %v", q, err)
		}
		lres, err := local.Search(referenceSession(t), q, 5, 24)
		if err != nil {
			t.Fatalf("local search %d: %v", q, err)
		}
		if len(rres) != len(lres) {
			t.Fatalf("search %d: %d vs %d results", q, len(rres), len(lres))
		}
		for x := range rres {
			if rres[x].ID != lres[x].ID || !fcmp.ExactEq(rres[x].Dist, lres[x].Dist) {
				t.Fatalf("search %d result %d: remote %+v, local %+v", q, x, rres[x], lres[x])
			}
		}
	}
}

// TestRemoteSearch exercises the one-round-trip form: the server builds
// and queries its own graph, and the answers match a local build over
// the reference session. Returned distances are committed to the mirror,
// so re-touching those pairs costs no further round-trips.
func TestRemoteSearch(t *testing.T) {
	c, _ := newDaemon(t, service.Config{})
	sess := remoteSession(t, c, "remote-search")
	ctx := context.Background()

	ref := referenceSession(t)
	g, err := nsw.Build(ref, nsw.Params{Seed: testSeed, Landmarks: testLandmarks()})
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}

	ns, built, err := sess.RemoteSearch(ctx, 2, 5, SearchParams{})
	if err != nil {
		t.Fatalf("RemoteSearch: %v", err)
	}
	if !built {
		t.Error("first RemoteSearch did not report building")
	}
	want, err := g.Search(ref, 2, 5, nsw.DefaultEfConstruction)
	if err != nil {
		t.Fatalf("reference search: %v", err)
	}
	if len(ns) != len(want) {
		t.Fatalf("RemoteSearch returned %d results, want %d", len(ns), len(want))
	}
	for x := range ns {
		if ns[x].ID != want[x].ID || !fcmp.ExactEq(ns[x].Dist, want[x].Dist) {
			t.Fatalf("result %d: got %+v, want %+v", x, ns[x], want[x])
		}
	}

	if _, built, err = sess.RemoteSearch(ctx, 3, 5, SearchParams{}); err != nil {
		t.Fatalf("second RemoteSearch: %v", err)
	} else if built {
		t.Error("second RemoteSearch rebuilt the graph")
	}

	// Mirror discipline: the neighbours' distances are now local facts.
	before := c.Requests()
	for _, nb := range ns {
		d, err := sess.DistErr(2, nb.ID)
		if err != nil {
			t.Fatalf("DistErr(2,%d): %v", nb.ID, err)
		}
		if !fcmp.ExactEq(d, nb.Dist) {
			t.Fatalf("mirrored distance (2,%d) = %v, want %v", nb.ID, d, nb.Dist)
		}
	}
	if got := c.Requests(); got != before {
		t.Errorf("mirrored distances still round-tripped: %d extra requests", got-before)
	}
}
