package proxclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/faultmetric"
	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
	"metricprox/internal/resilient"
	"metricprox/internal/service"
	"metricprox/internal/service/api"
)

const (
	testN    = 60
	testSeed = int64(1)
)

// testSpace is the planar SF surrogate: a pure, bitwise-symmetric
// distance function. The road-network SFPOI answers from cached Dijkstra
// rows, so its values can drift by an ulp with oracle call *history* —
// fine for in-process suites that replay identical call sequences, but
// this suite's client short-circuits comparisons locally, which changes
// the server's resolution order relative to the in-process reference.
// Bit-identity across that reordering needs a history-free oracle.
func testSpace() metric.Space { return datasets.SFPOIPlanar(testN, testSeed) }

// fastOptions returns client options with a microsecond-scale backoff so
// retry paths don't slow the suite down.
func fastOptions() Options {
	return Options{Policy: resilient.Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    32 * time.Microsecond,
		Seed:        testSeed,
	}}
}

// newDaemon starts a service.Server over an httptest listener and returns
// a Client pointed at it plus the daemon's oracle call counter.
func newDaemon(t *testing.T, cfg service.Config) (*Client, *metric.Oracle) {
	t.Helper()
	oracle := metric.NewOracle(testSpace())
	if cfg.Oracle == nil {
		cfg.Oracle = oracle
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return New(ts.URL, fastOptions()), oracle
}

// remoteSession creates a bootstrapped tri-scheme session on the daemon.
func remoteSession(t *testing.T, c *Client, name string) *Session {
	t.Helper()
	sess, err := CreateSession(context.Background(), c, name, "tri",
		SessionOptions{Seed: testSeed, Bootstrap: true})
	if err != nil {
		t.Fatalf("CreateSession(%s): %v", name, err)
	}
	return sess
}

// referenceSession builds the in-process session remote runs must match
// bit for bit: same oracle source, scheme, landmarks, seed as the daemon's
// buildSession.
func referenceSession(t *testing.T) *core.Session {
	t.Helper()
	k := 0
	for v := testN; v > 1; v /= 2 {
		k++
	}
	lms := core.PickLandmarks(testN, k, testSeed)
	s := core.NewFallibleSessionWithLandmarks(metric.NewOracle(testSpace()), core.SchemeTri, lms)
	if _, err := s.BootstrapErr(lms); err != nil {
		t.Fatalf("reference bootstrap: %v", err)
	}
	return s
}

func sameGraph(t *testing.T, got, want [][]prox.Neighbor, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for u := range want {
		if len(got[u]) != len(want[u]) {
			t.Fatalf("%s: row %d has %d neighbours, want %d", label, u, len(got[u]), len(want[u]))
		}
		for x := range want[u] {
			if got[u][x].ID != want[u][x].ID || !fcmp.ExactEq(got[u][x].Dist, want[u][x].Dist) {
				t.Fatalf("%s: row %d entry %d = %+v, want %+v", label, u, x, got[u][x], want[u][x])
			}
		}
	}
}

func sameMST(t *testing.T, got, want prox.MST, label string) {
	t.Helper()
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("%s: %d edges, want %d", label, len(got.Edges), len(want.Edges))
	}
	for x := range want.Edges {
		g, w := got.Edges[x], want.Edges[x]
		if g.U != w.U || g.V != w.V || !fcmp.ExactEq(g.W, w.W) {
			t.Fatalf("%s: edge %d = %+v, want %+v", label, x, g, w)
		}
	}
	if !fcmp.ExactEq(got.Weight, want.Weight) {
		t.Fatalf("%s: weight %v, want %v", label, got.Weight, want.Weight)
	}
}

func sameClustering(t *testing.T, got, want prox.Clustering, label string) {
	t.Helper()
	if len(got.Medoids) != len(want.Medoids) || len(got.Assign) != len(want.Assign) {
		t.Fatalf("%s: shape (%d,%d), want (%d,%d)", label,
			len(got.Medoids), len(got.Assign), len(want.Medoids), len(want.Assign))
	}
	for x := range want.Medoids {
		if got.Medoids[x] != want.Medoids[x] {
			t.Fatalf("%s: medoid %d = %d, want %d", label, x, got.Medoids[x], want.Medoids[x])
		}
	}
	for x := range want.Assign {
		if got.Assign[x] != want.Assign[x] {
			t.Fatalf("%s: assign %d = %d, want %d", label, x, got.Assign[x], want.Assign[x])
		}
	}
	if !fcmp.ExactEq(got.Cost, want.Cost) {
		t.Fatalf("%s: cost %v, want %v", label, got.Cost, want.Cost)
	}
}

// TestAlgorithmsOverClientSessionBitIdentical is the tentpole guarantee:
// the prox builders, pointed at a remote Session instead of an in-process
// one, produce bit-identical output.
func TestAlgorithmsOverClientSessionBitIdentical(t *testing.T) {
	c, _ := newDaemon(t, service.Config{})

	ref := referenceSession(t)
	wantKNN := prox.KNNGraph(ref, 3)
	wantMST := prox.PrimMST(ref)
	wantPAM := prox.PAM(referenceSession(t), 4, 7)

	sess := remoteSession(t, c, "algo")
	if sess.N() != testN {
		t.Fatalf("N = %d, want %d", sess.N(), testN)
	}
	sameGraph(t, prox.KNNGraph(sess, 3), wantKNN, "client knn")
	sameMST(t, prox.PrimMST(sess), wantMST, "client mst")
	sameClustering(t, prox.PAM(remoteSession(t, c, "algo-pam"), 4, 7), wantPAM, "client pam")
	if err := sess.OracleErr(); err != nil {
		t.Fatalf("OracleErr latched on a healthy daemon: %v", err)
	}
}

// TestRemoteRunnersBitIdentical checks the whole-problem endpoints through
// the client wrappers.
func TestRemoteRunnersBitIdentical(t *testing.T) {
	c, _ := newDaemon(t, service.Config{})
	ctx := context.Background()

	ref := referenceSession(t)
	wantKNN := prox.KNNGraph(ref, 3)
	wantMST := prox.PrimMST(ref)
	wantPAM := prox.PAM(referenceSession(t), 4, 7)

	sess := remoteSession(t, c, "runner")
	gotKNN, err := sess.RemoteKNN(ctx, 3)
	if err != nil {
		t.Fatalf("RemoteKNN: %v", err)
	}
	sameGraph(t, gotKNN, wantKNN, "remote knn")
	gotMST, err := sess.RemoteMST(ctx)
	if err != nil {
		t.Fatalf("RemoteMST: %v", err)
	}
	sameMST(t, gotMST, wantMST, "remote mst")
	gotPAM, err := remoteSession(t, c, "runner-pam").RemoteMedoid(ctx, 4, 7)
	if err != nil {
		t.Fatalf("RemoteMedoid: %v", err)
	}
	sameClustering(t, gotPAM, wantPAM, "remote pam")
}

// TestClientRunsSurviveSeededFaults drives the client through a daemon
// whose oracle injects a deterministic fault schedule absorbed by the
// server-side retry policy: output must still match the fault-free
// reference bit for bit.
func TestClientRunsSurviveSeededFaults(t *testing.T) {
	cfg, err := faultmetric.ParseSpec("seed=9,rate=0.3")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	flaky := resilient.New(faultmetric.New(testSpace(), cfg), resilient.RetryOnlyPolicy(3))
	c, _ := newDaemon(t, service.Config{Oracle: flaky})

	want := prox.KNNGraph(referenceSession(t), 3)
	sess := remoteSession(t, c, "faulty")
	sameGraph(t, prox.KNNGraph(sess, 3), want, "faulty knn")
	if err := sess.OracleErr(); err != nil {
		t.Fatalf("retry policy should have absorbed the schedule, got %v", err)
	}
}

// TestWarmRestartReplaysCache kills a cachestore-backed daemon mid-build
// and restarts it on the same directory: the resumed client run must
// produce the identical graph while spending strictly fewer oracle calls
// than a cold daemon.
func TestWarmRestartReplaysCache(t *testing.T) {
	dir := t.TempDir()

	ref := referenceSession(t)
	want := prox.KNNGraph(ref, 3)
	coldCalls := ref.Stats().OracleCalls

	// Phase 1: resolve half the rows, then take the daemon down.
	oracle1 := metric.NewOracle(testSpace())
	srv1, err := service.New(service.Config{Oracle: oracle1, CacheDir: dir})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	sess1 := remoteSession(t, New(ts1.URL, fastOptions()), "warm")
	for u := 0; u < testN/2; u++ {
		row := prox.KNNRow(sess1, u, 3)
		for x := range want[u] {
			if row[x].ID != want[u][x].ID || !fcmp.ExactEq(row[x].Dist, want[u][x].Dist) {
				t.Fatalf("phase-1 row %d entry %d = %+v, want %+v", u, x, row[x], want[u][x])
			}
		}
	}
	ts1.Close()
	srv1.Close() // evicts the session, syncing and closing its store

	// Phase 2: a fresh daemon on the same cache directory replays the
	// persisted resolutions on attach.
	oracle2 := metric.NewOracle(testSpace())
	srv2, err := service.New(service.Config{Oracle: oracle2, CacheDir: dir})
	if err != nil {
		t.Fatalf("service.New (restart): %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.Close()
	})
	sess2 := remoteSession(t, New(ts2.URL, fastOptions()), "warm")
	sameGraph(t, prox.KNNGraph(sess2, 3), want, "resumed knn")

	warmCalls := oracle2.Calls()
	if warmCalls >= coldCalls {
		t.Fatalf("warm restart spent %d oracle calls, want < cold run's %d", warmCalls, coldCalls)
	}
	if warmCalls == 0 {
		t.Fatal("warm restart spent 0 oracle calls; phase 1 should not have resolved everything")
	}
}

// TestLocalMirrorShortCircuits checks that facts the client has already
// paid for stop round-tripping: known distances settle Less locally, and
// prefetched bounds settle threshold comparisons locally.
func TestLocalMirrorShortCircuits(t *testing.T) {
	c, _ := newDaemon(t, service.Config{})
	sess := remoteSession(t, c, "mirror")

	d01, err := sess.DistErr(0, 1)
	if err != nil {
		t.Fatalf("DistErr: %v", err)
	}
	if _, err := sess.DistErr(2, 3); err != nil {
		t.Fatalf("DistErr: %v", err)
	}

	before := c.Requests()
	if got := sess.Dist(0, 1); !fcmp.ExactEq(got, d01) {
		t.Fatalf("cached Dist = %v, want %v", got, d01)
	}
	sess.Less(0, 1, 2, 3)      // both pairs known
	sess.LessThan(0, 1, d01+1) // known pair vs threshold
	if d, ok := sess.Known(0, 1); !ok || !fcmp.ExactEq(d, d01) {
		t.Fatalf("Known(0,1) = (%v,%v), want (%v,true)", d, ok, d01)
	}
	if c.Requests() != before {
		t.Fatalf("locally decidable calls spent %d round-trips", c.Requests()-before)
	}

	// A batched prefetch warms many pairs in one round-trip.
	var pairs []core.Pair
	for v := 10; v < 30; v++ {
		pairs = append(pairs, core.Pair{A: 5, B: v})
	}
	before = c.Requests()
	sess.PrefetchBounds(pairs)
	if got := c.Requests() - before; got != 1 {
		t.Fatalf("PrefetchBounds(20 pairs) spent %d round-trips, want 1", got)
	}
	before = c.Requests()
	for _, p := range pairs {
		sess.Bounds(p.A, p.B)
	}
	if c.Requests() != before {
		t.Fatal("Bounds after prefetch still round-tripped")
	}

	// Self-pairs never round-trip and keep core's semantics.
	before = c.Requests()
	if d := sess.Dist(7, 7); !fcmp.ExactEq(d, 0) {
		t.Fatalf("Dist(7,7) = %v, want 0", d)
	}
	if lb, ub := sess.Bounds(7, 7); !fcmp.ExactEq(lb, 0) || !fcmp.ExactEq(ub, 0) {
		t.Fatalf("Bounds(7,7) = (%v,%v), want (0,0)", lb, ub)
	}
	if sess.LessThan(7, 7, -1) {
		t.Fatal("LessThan(7,7,-1) = true, want false")
	}
	if c.Requests() != before {
		t.Fatal("self-pair primitives round-tripped")
	}
}

// TestRetryHonoursShedAndRetryAfter exercises the client against a server
// that sheds the first attempt with 503/overloaded.
func TestRetryHonoursShedAndRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"code":"overloaded","message":"queue full"}`))
			return
		}
		w.Write([]byte(`{"status":"ok","n":5,"sessions":0}`))
	}))
	defer ts.Close()

	c := New(ts.URL, fastOptions())
	var slept atomic.Int64
	c.sleep = func(d time.Duration) { slept.Add(int64(d)) }

	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatalf("Healthz after shed: %v", err)
	}
	if h.Status != "ok" || hits.Load() != 2 {
		t.Fatalf("status %q after %d attempts, want ok after 2", h.Status, hits.Load())
	}
	if slept.Load() < int64(time.Second) {
		t.Fatalf("slept %v total, want >= 1s (the server's Retry-After ask)", time.Duration(slept.Load()))
	}
}

// TestPermanentErrorsDontRetry checks that a 4xx answer comes back
// immediately and that oracle_unavailable unwraps to the core sentinel.
func TestPermanentErrorsDontRetry(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		w.Write([]byte(`{"code":"oracle_unavailable","message":"retries exhausted"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, fastOptions())
	c.sleep = func(time.Duration) {}
	_, err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("expected an error")
	}
	if hits.Load() != 1 {
		t.Fatalf("server hit %d times, want 1 (permanent errors must not retry)", hits.Load())
	}
	if !errors.Is(err, core.ErrOracleUnavailable) {
		t.Fatalf("err = %v, want errors.Is(.., core.ErrOracleUnavailable)", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeOracleUnavailable {
		t.Fatalf("err = %v, want *APIError with code oracle_unavailable", err)
	}
}

// TestBreakerFailsFastOnDeadDaemon points the client at a dead address:
// after the failure threshold, attempts stop hitting the network.
func TestBreakerFailsFastOnDeadDaemon(t *testing.T) {
	opts := fastOptions()
	opts.Policy.MaxAttempts = 8
	opts.Policy.FailureThreshold = 3
	opts.Policy.Cooldown = time.Hour // no half-open probe within the test
	c := New("http://127.0.0.1:1", opts)
	c.sleep = func(time.Duration) {}

	_, err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("expected an error from a dead daemon")
	}
	if got := c.Requests(); got != 3 {
		t.Fatalf("dead daemon saw %d connection attempts, want 3 (breaker threshold)", got)
	}
	if c.Breaker().State() != resilient.BreakerOpen {
		t.Fatalf("breaker state %v, want open", c.Breaker().State())
	}
}

// TestDegradedViewLatchesOracleErr checks the legacy View methods degrade
// (estimate, latch) instead of failing when the daemon dies mid-session,
// mirroring core.Session's contract.
func TestDegradedViewLatchesOracleErr(t *testing.T) {
	oracle := metric.NewOracle(testSpace())
	srv, err := service.New(service.Config{Oracle: oracle})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	opts := fastOptions()
	opts.Policy.MaxAttempts = 2
	c := New(ts.URL, opts)
	c.sleep = func(time.Duration) {}
	sess, err := CreateSession(context.Background(), c, "dgr", "tri",
		SessionOptions{Seed: testSeed, Bootstrap: true})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	d01, err := sess.DistErr(0, 1)
	if err != nil {
		t.Fatalf("DistErr while alive: %v", err)
	}

	ts.Close()
	srv.Close()

	if _, err := sess.DistErr(0, 2); err == nil {
		t.Fatal("DistErr should fail once the daemon is gone")
	}
	est := sess.Dist(0, 2) // degraded: midpoint of [0, MaxDistance]
	wantEst := sess.MaxDistance() / 2
	if !fcmp.ExactEq(est, wantEst) {
		t.Fatalf("degraded Dist = %v, want bounds midpoint %v", est, wantEst)
	}
	if sess.OracleErr() == nil {
		t.Fatal("degraded Dist did not latch OracleErr")
	}
	// Mirror facts stay exact even while degraded.
	if d, ok := sess.Known(0, 1); !ok || !fcmp.ExactEq(d, d01) {
		t.Fatalf("Known(0,1) = (%v,%v) after daemon death, want (%v,true)", d, ok, d01)
	}
}
