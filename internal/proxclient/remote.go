package proxclient

import (
	"context"
	"net/http"

	"metricprox/internal/pgraph"
	"metricprox/internal/prox"
	"metricprox/internal/service/api"
)

// RemoteKNN runs the kNN-graph builder server-side — one round-trip for
// the whole problem — and returns the graph in prox's shape.
func (s *Session) RemoteKNN(ctx context.Context, k int) ([][]prox.Neighbor, error) {
	var resp api.KNNResponse
	err := s.c.do(ctx, http.MethodPost, s.path("knn"), api.KNNRequest{K: k}, &resp)
	if err != nil {
		return nil, err
	}
	rows := make([][]prox.Neighbor, len(resp.Rows))
	for u, row := range resp.Rows {
		ns := make([]prox.Neighbor, len(row))
		for x, wn := range row {
			ns[x] = prox.Neighbor{ID: wn.ID, Dist: float64(wn.D)}
		}
		rows[u] = ns
	}
	return rows, nil
}

// RemoteMST runs Prim's MST server-side and returns it in prox's shape.
func (s *Session) RemoteMST(ctx context.Context) (prox.MST, error) {
	var resp api.MSTResponse
	err := s.c.do(ctx, http.MethodPost, s.path("mst"), nil, &resp)
	if err != nil {
		return prox.MST{}, err
	}
	edges := make([]pgraph.Edge, len(resp.Edges))
	for x, we := range resp.Edges {
		edges[x] = pgraph.Edge{U: we.U, V: we.V, W: float64(we.W)}
	}
	return prox.MST{Edges: edges, Weight: float64(resp.Weight)}, nil
}

// RemoteMedoid runs PAM clustering server-side and returns it in prox's
// shape.
func (s *Session) RemoteMedoid(ctx context.Context, l int, seed int64) (prox.Clustering, error) {
	var resp api.MedoidResponse
	err := s.c.do(ctx, http.MethodPost, s.path("medoid"),
		api.MedoidRequest{L: l, Seed: seed}, &resp)
	if err != nil {
		return prox.Clustering{}, err
	}
	return prox.Clustering{
		Medoids: resp.Medoids,
		Assign:  resp.Assign,
		Cost:    float64(resp.Cost),
	}, nil
}
