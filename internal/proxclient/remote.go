package proxclient

import (
	"context"
	"net/http"

	"metricprox/internal/pgraph"
	"metricprox/internal/prox"
	"metricprox/internal/service/api"
)

// RemoteKNN runs the kNN-graph builder server-side — one round-trip for
// the whole problem — and returns the graph in prox's shape.
func (s *Session) RemoteKNN(ctx context.Context, k int) ([][]prox.Neighbor, error) {
	var resp api.KNNResponse
	err := s.c.do(ctx, http.MethodPost, s.path("knn"), api.KNNRequest{K: k}, &resp)
	if err != nil {
		return nil, err
	}
	rows := make([][]prox.Neighbor, len(resp.Rows))
	for u, row := range resp.Rows {
		ns := make([]prox.Neighbor, len(row))
		for x, wn := range row {
			ns[x] = prox.Neighbor{ID: wn.ID, Dist: float64(wn.D)}
		}
		rows[u] = ns
	}
	return rows, nil
}

// SearchParams carries the optional knobs of a remote approximate-kNN
// search (api.SearchRequest). The zero value asks for the server
// defaults; build-time fields (M, EfConstruction, Seed) must agree with
// the session's already-built graph or the server answers 409/conflict.
type SearchParams struct {
	// EfSearch is the query beam width; 0 means the server default.
	EfSearch int
	// M is the graph's links-per-node parameter; 0 means the server
	// default. Only consulted when this request triggers the build.
	M int
	// EfConstruction is the insertion beam width; 0 means the server
	// default. Build-only, like M.
	EfConstruction int
	// Seed drives the insertion order; 0 means the session's create seed.
	// Build-only, like M.
	Seed int64
}

// RemoteSearch answers an approximate k-nearest-neighbour query for
// object q over the session's server-side navigable search graph,
// building the graph on the daemon's side if this is the session's first
// search. The returned neighbours arrive in canonical (distance, id)
// order with exact distances; each one is committed to the local mirror
// (a server-resolved distance is permanently true), so later primitive
// calls touching those pairs decide locally. built reports whether this
// request paid for the construction.
//
// The alternative — running nsw.Build and Graph.Search client-side
// against the Session view — produces the byte-identical graph at many
// round-trips; RemoteSearch is the one-round-trip form, exactly like
// RemoteKNN next to prox.KNNGraph.
func (s *Session) RemoteSearch(ctx context.Context, q, k int, p SearchParams) (ns []prox.Neighbor, built bool, err error) {
	var resp api.SearchResponse
	err = s.c.do(ctx, http.MethodPost, s.path("search"), api.SearchRequest{
		Q:              q,
		K:              k,
		EfSearch:       p.EfSearch,
		M:              p.M,
		EfConstruction: p.EfConstruction,
		Seed:           p.Seed,
	}, &resp)
	if err != nil {
		return nil, false, err
	}
	ns = make([]prox.Neighbor, len(resp.Neighbors))
	for x, wn := range resp.Neighbors {
		d := float64(wn.D)
		ns[x] = prox.Neighbor{ID: wn.ID, Dist: d}
		s.noteDist(q, wn.ID, d)
	}
	return ns, resp.Built, nil
}

// RemoteMST runs Prim's MST server-side and returns it in prox's shape.
func (s *Session) RemoteMST(ctx context.Context) (prox.MST, error) {
	var resp api.MSTResponse
	err := s.c.do(ctx, http.MethodPost, s.path("mst"), nil, &resp)
	if err != nil {
		return prox.MST{}, err
	}
	edges := make([]pgraph.Edge, len(resp.Edges))
	for x, we := range resp.Edges {
		edges[x] = pgraph.Edge{U: we.U, V: we.V, W: float64(we.W)}
	}
	return prox.MST{Edges: edges, Weight: float64(resp.Weight)}, nil
}

// RemoteMedoid runs PAM clustering server-side and returns it in prox's
// shape.
func (s *Session) RemoteMedoid(ctx context.Context, l int, seed int64) (prox.Clustering, error) {
	var resp api.MedoidResponse
	err := s.c.do(ctx, http.MethodPost, s.path("medoid"),
		api.MedoidRequest{L: l, Seed: seed}, &resp)
	if err != nil {
		return prox.Clustering{}, err
	}
	return prox.Clustering{
		Medoids: resp.Medoids,
		Assign:  resp.Assign,
		Cost:    float64(resp.Cost),
	}, nil
}
