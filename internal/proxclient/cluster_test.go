package proxclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"metricprox/internal/cluster"
	"metricprox/internal/metric"
	"metricprox/internal/service"
	"metricprox/internal/service/api"
)

// testCluster is a three-node in-process cluster: full service.Servers
// over httptest listeners, each replicating to its ring peers.
type testCluster struct {
	topo  *cluster.Topology // non-member view, as the smart client sees it
	srvs  map[string]*service.Server
	ts    map[string]*httptest.Server
	repls map[string]*cluster.Replicator
}

func newTestCluster(t *testing.T, names ...string) *testCluster {
	t.Helper()
	tc := &testCluster{
		srvs:  make(map[string]*service.Server),
		ts:    make(map[string]*httptest.Server),
		repls: make(map[string]*cluster.Replicator),
	}
	var nodes []cluster.Node
	for _, name := range names {
		ts := httptest.NewServer(nil)
		t.Cleanup(ts.Close)
		tc.ts[name] = ts
		nodes = append(nodes, cluster.Node{Name: name, URL: ts.URL})
	}
	for _, name := range names {
		topo, err := cluster.NewTopology(cluster.Config{Self: name, Nodes: nodes, Replicas: 1})
		if err != nil {
			t.Fatal(err)
		}
		repl := cluster.NewReplicator(cluster.ReplicatorConfig{
			Topology: topo,
			Interval: 2 * time.Millisecond,
		})
		t.Cleanup(repl.Close)
		repl.Start()
		srv, err := service.New(service.Config{
			Oracle:     metric.NewOracle(testSpace()),
			CacheDir:   t.TempDir(),
			Cluster:    topo,
			Replicator: repl,
			Logf:       t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		tc.srvs[name] = srv
		tc.repls[name] = repl
		tc.ts[name].Config.Handler = srv.Handler()
	}
	var err error
	tc.topo, err = cluster.NewTopology(cluster.Config{Nodes: nodes, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// kill closes a node's listener so further requests are transport errors,
// then flushes and stops its replicator — an orderly approximation of a
// crash; the hard SIGKILL variant lives in the e2e suite.
func (tc *testCluster) kill(name string) {
	tc.ts[name].Close()
	tc.repls[name].Close()
}

func TestClusterClientRoutesBySession(t *testing.T) {
	tc := newTestCluster(t, "a", "b", "c")
	cc := NewCluster(tc.topo, fastOptions())

	sess, err := CreateSession(context.Background(), cc, "route-me", "tri",
		SessionOptions{Seed: testSeed, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := sess.Dist(3, 17); d <= 0 {
		t.Fatalf("Dist = %v, want > 0", d)
	}
	// The session must live only on its ring owners.
	owners := map[string]bool{}
	for _, n := range tc.topo.Owners("route-me") {
		owners[n.Name] = true
	}
	for name, srv := range tc.srvs {
		_ = srv
		var list api.SessionList
		resp, err := http.Get(tc.ts[name].URL + "/v1/sessions")
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, &list)
		hosts := len(list.Sessions) > 0
		if hosts && !owners[name] {
			t.Fatalf("non-owner %s hosts %v", name, list.Sessions)
		}
		if !hosts && name == tc.topo.Owners("route-me")[0].Name {
			t.Fatalf("primary %s hosts nothing", name)
		}
	}
}

func TestClusterClientFailsOverToPromotedReplica(t *testing.T) {
	tc := newTestCluster(t, "a", "b", "c")
	cc := NewCluster(tc.topo, fastOptions())
	const name = "failover-smart"

	sess, err := CreateSession(context.Background(), cc, name, "tri",
		SessionOptions{Seed: testSeed, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}

	// Resolve a workload on the primary and remember the answers — but
	// through a second, mirror-free session handle, so the post-failover
	// reads below must round-trip instead of answering from local state.
	probe, err := CreateSession(context.Background(), cc, name, "tri",
		SessionOptions{Seed: testSeed, Bootstrap: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ i, j int }
	pairs := []pair{{0, 1}, {4, 9}, {12, 33}, {7, 48}, {21, 55}, {3, 40}}
	want := map[pair]float64{}
	for _, p := range pairs {
		d, err := sess.DistErr(p.i, p.j)
		if err != nil {
			t.Fatal(err)
		}
		want[p] = d
	}

	// Let replication drain, then kill the primary.
	primary := tc.topo.Owners(name)[0].Name
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tc.repls[primary].Flush(ctx); err != nil {
		t.Fatal(err)
	}
	tc.kill(primary)

	// The mirror-free handle re-reads every pair: the smart client must
	// fall back to the replica, which promotes and answers identically
	// with zero new oracle calls.
	for _, p := range pairs {
		d, err := probe.DistErr(p.i, p.j)
		if err != nil {
			t.Fatalf("post-failover Dist(%d,%d): %v", p.i, p.j, err)
		}
		if d != want[p] {
			t.Fatalf("pair %v: failover answered %v, primary answered %v", p, d, want[p])
		}
	}
	st := probe.Stats()
	if st.OracleCalls != 0 {
		t.Fatalf("promoted replica paid %d oracle calls for replicated pairs, want 0", st.OracleCalls)
	}

	// Stickiness: the failed-over node stays first in the candidate order.
	if got := cc.candidates(name)[0]; got == primary {
		t.Fatalf("candidates still lead with dead primary %s", got)
	}
}

func TestClusterClientRecreatesOnStatelessFallback(t *testing.T) {
	// Kill the primary before replication is configured to have delivered
	// anything useful: here, before the session even exists on a replica
	// (created with replication pumps closed). The smart client must
	// re-issue its remembered create on the fallback node — a cold session
	// is slower, never wrong.
	tc := newTestCluster(t, "a", "b", "c")
	const name = "cold-fallback"
	primary := tc.topo.Owners(name)[0].Name
	tc.repls[primary].Close() // nothing will replicate

	cc := NewCluster(tc.topo, fastOptions())
	sess, err := CreateSession(context.Background(), cc, name, "tri",
		SessionOptions{Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := sess.DistErr(5, 11)
	if err != nil {
		t.Fatal(err)
	}
	tc.ts[primary].Close()

	probe, err := CreateSession(context.Background(), cc, name, "tri",
		SessionOptions{Seed: testSeed, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := probe.DistErr(5, 11)
	if err != nil {
		t.Fatalf("post-failover resolve: %v", err)
	}
	if d1 != d2 {
		t.Fatalf("cold fallback answered %v, original %v", d2, d1)
	}
}

func TestClusterClientDeleteEvictsAllOwners(t *testing.T) {
	tc := newTestCluster(t, "a", "b")
	cc := NewCluster(tc.topo, fastOptions())
	const name = "del-me"
	sess, err := CreateSession(context.Background(), cc, name, "tri", SessionOptions{Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.DistErr(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := cc.Delete(context.Background(), name); err != nil {
		t.Fatal(err)
	}
	names, err := cc.Sessions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("sessions after delete: %v", names)
	}
}

func TestSessionFromCall(t *testing.T) {
	cases := []struct {
		path string
		in   any
		want string
	}{
		{"/v1/sessions/foo/dist", nil, "foo"},
		{"/v1/sessions/foo", nil, "foo"},
		{"/v1/sessions", api.CreateSessionRequest{Name: "bar"}, "bar"},
		{"/v1/sessions", nil, ""},
		{"/healthz", nil, ""},
	}
	for _, c := range cases {
		if got := sessionFromCall(c.path, c.in); got != c.want {
			t.Fatalf("sessionFromCall(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

func TestFailoverable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("dial tcp: connection refused"), true},
		{&APIError{Status: 503, Code: api.CodeDraining}, true},
		{&APIError{Status: 503, Code: api.CodeOverloaded}, false},
		{&APIError{Status: 502, Code: api.CodeOracleUnavailable}, false},
		{&APIError{Status: 502, Code: api.CodeInternal}, true},
		{&APIError{Status: 504, Code: api.CodeInternal}, true},
		{&APIError{Status: 404, Code: api.CodeNotFound}, false},
		{&APIError{Status: 400, Code: api.CodeBadRequest}, false},
		{fmt.Errorf("wrapped: %w", &APIError{Status: 503, Code: api.CodeDraining}), true},
	}
	for i, c := range cases {
		if got := failoverable(c.err); got != c.want {
			t.Fatalf("case %d (%v): failoverable = %v, want %v", i, c.err, got, c.want)
		}
	}
}

// decodeBody decodes a JSON response body and closes it.
func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
