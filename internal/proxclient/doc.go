// Package proxclient is the Go client of the metricproxd session service.
// Its Session speaks the same core-shaped comparison interface (core.View
// / core.FallibleView) as an in-process session, so the prox algorithms
// run unmodified against a remote daemon — with bit-identical output,
// because every decision is either made server-side by the real session
// or made locally from cached bounds that are sound by construction
// (bounds only tighten; a stale bound is a looser bound, and loose bounds
// can delay but never change a decision).
//
// The transport reuses internal/resilient: deterministic retry/backoff
// for transient failures, Retry-After honoured on load-shed responses,
// and a circuit breaker so a dead daemon fails fast instead of eating the
// full retry budget on every call.
//
// Two search paths exist: Session.RemoteSearch queries the daemon's
// /search endpoint (server-built graph, one round-trip per query, the
// returned neighbour distances are committed into the local mirror), and
// running nsw.Build/nsw.Search directly over the Session rebuilds the
// byte-identical graph client-side, batching bound prefetches along each
// beam frontier to cut round-trips.
package proxclient
