package proxclient

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"metricprox/internal/faultmetric"
	"metricprox/internal/metric"
	"metricprox/internal/service"
	"metricprox/internal/service/api"
)

// slackTestSpace is a 1-D space with distances ≤ 0.01·n and one pair
// inflated far enough to violate every triangle it closes — the wire
// analogue of the core package's strict-mode fixture.
type slackTestSpace struct {
	metric.Space
	i, j int
	d    float64
}

func (v slackTestSpace) Distance(i, j int) float64 {
	if (i == v.i && j == v.j) || (i == v.j && j == v.i) {
		return v.d
	}
	return v.Space.Distance(i, j)
}

func lineSpace(n int) metric.Space {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i) * 0.01}
	}
	return metric.NewVectors(pts, 2, 1)
}

// TestSlackSessionOverWire declares an ε-slack session against a daemon
// whose oracle is a seeded near-metric injector: every interval the
// client sees must contain the value the daemon's oracle serves, and the
// served ε must reach the mirror.
func TestSlackSessionOverWire(t *testing.T) {
	cfg := faultmetric.Config{Seed: 3, NearMetricEps: 0.2}
	inj := faultmetric.New(testSpace(), cfg)
	c, _ := newDaemon(t, service.Config{Oracle: inj})

	sess, err := CreateSession(context.Background(), c, "slacked", "tri",
		SessionOptions{Seed: testSeed, SlackEps: cfg.MarginBound()})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for i := 1; i < 12; i++ {
		if _, err := sess.DistErr(0, i); err != nil {
			t.Fatalf("DistErr(0,%d): %v", i, err)
		}
	}
	ctx := context.Background()
	for i := 1; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			lb, ub := sess.Bounds(i, j)
			d, err := inj.DistanceCtx(ctx, i, j)
			if err != nil {
				t.Fatal(err)
			}
			if d < lb-1e-12 || d > ub+1e-12 {
				t.Fatalf("interval [%v,%v] excludes served d(%d,%d)=%v", lb, ub, i, j, d)
			}
		}
	}
	if got := sess.SlackEps(); got != cfg.MarginBound() {
		t.Fatalf("mirror SlackEps = %v, want the declared %v", got, cfg.MarginBound())
	}

	// Attaching with a different slack policy is a conflict, like any
	// other creation-parameter mismatch.
	_, err = CreateSession(context.Background(), c, "slacked", "tri",
		SessionOptions{Seed: testSeed, SlackEps: 0.5})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeConflict {
		t.Fatalf("re-create with different slack: got %v, want %s", err, api.CodeConflict)
	}
}

// TestSlackSchemeRejectedOverWire maps the core constructor panic onto a
// 400 instead of crashing the daemon.
func TestSlackSchemeRejectedOverWire(t *testing.T) {
	c, _ := newDaemon(t, service.Config{})
	_, err := CreateSession(context.Background(), c, "bad", "splub",
		SessionOptions{Seed: testSeed, SlackEps: 0.1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest {
		t.Fatalf("slack on splub: got %v, want %s", err, api.CodeBadRequest)
	}
}

// TestAutoSlackEscalationDropsMirror drives a server-side auto policy
// past its escalation point and checks the client mirror reacts: cached
// intervals from the ε=0 era are dropped and replaced with relaxed ones.
func TestAutoSlackEscalationDropsMirror(t *testing.T) {
	const n = 16
	evil := slackTestSpace{Space: lineSpace(n), i: 2, j: 9, d: 0.9}
	srv, err := service.New(service.Config{Oracle: metric.NewOracle(evil)})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	sess, err := CreateSession(context.Background(), New(ts.URL, fastOptions()),
		"auto", "tri", SessionOptions{Seed: testSeed, SlackAuto: true})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}

	// Era 1 (ε = 0): resolve a hub and cache one derived interval.
	for i := 1; i < n; i++ {
		if _, err := sess.DistErr(0, i); err != nil {
			t.Fatal(err)
		}
	}
	lb1, ub1 := sess.Bounds(5, 12)
	if sess.SlackEps() != 0 {
		t.Fatalf("pre-escalation SlackEps = %v, want 0", sess.SlackEps())
	}

	// Escalate: resolving the planted pair closes violating triangles, so
	// the server's auditor margin — and with it the auto ε — jumps.
	if _, err := sess.DistErr(2, 9); err != nil {
		t.Fatal(err)
	}
	// Detection is lazy: the mirror learns of the rise on its next bounds
	// round-trip (a cached pair would answer locally), and that response's
	// Eps drops every cached interval — including (5,12)'s.
	sess.Bounds(6, 13)
	lb2, ub2 := sess.Bounds(5, 12)
	if sess.SlackEps() <= 0 {
		t.Fatal("escalation not observed by the mirror")
	}
	if lb2 > lb1 || ub2 < ub1 || (lb2 == lb1 && ub2 == ub1) {
		t.Fatalf("post-escalation interval [%v,%v] is not strictly wider than cached [%v,%v]; stale mirror interval survived the ε rise",
			lb2, ub2, lb1, ub1)
	}
	if st := sess.Stats(); st.Violations == 0 {
		t.Fatal("StatsResponse did not carry the auditor's violation count")
	}
}
