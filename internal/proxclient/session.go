package proxclient

import (
	"context"
	"net/http"
	"sync"

	"metricprox/internal/core"
	"metricprox/internal/service/api"
)

// SessionOptions configures CreateSession.
type SessionOptions struct {
	// Landmarks is the bootstrap landmark count; 0 means the server default
	// (log2 n).
	Landmarks int
	// Seed drives the server-side landmark choice.
	Seed int64
	// Bootstrap resolves the landmark rows up front, server-side.
	Bootstrap bool
	// NoCache disables the local known-distance mirror. Every primitive
	// then round-trips. Exists so the ext11 experiment can measure the
	// naive client; production callers should leave it false.
	NoCache bool
	// NoPrefetch makes PrefetchBounds a no-op; see NoCache.
	NoPrefetch bool
	// SlackEps declares the daemon's oracle a near-metric with additive
	// margin ε (server-side core.SlackPolicy.Additive). Only
	// single-triangle schemes accept it.
	SlackEps float64
	// SlackRatio declares a multiplicative factor ρ ≥ 1; 0 means none.
	SlackRatio float64
	// SlackAuto lets the server grow ε as its auditor observes larger
	// margins; the mirror watches the served ε and drops cached intervals
	// on escalation.
	SlackAuto bool
	// Audit attaches a server-side violation auditor without slack
	// (strict mode).
	Audit bool
}

// Session is a remote session hosted by metricproxd, shaped like an
// in-process session: it implements core.View, core.FallibleView and
// core.BoundsPrefetcher, so the prox builders run against it unmodified.
//
// Correctness model: the server session is the source of truth; the client
// keeps a mirror of facts it has already paid round-trips for — resolved
// distances and the loosest-known interval bounds. A locally decided
// comparison uses only facts that are permanently true (a resolved
// distance never changes; server bounds only tighten, so a cached bound is
// a stale-but-sound bound). Decisions made from sound bounds are the same
// decisions the server would make, which is why remote runs stay
// bit-identical to in-process runs.
//
// The mutex guards only the mirror maps and is never held across an HTTP
// round-trip.
type Session struct {
	c    Caller
	name string
	n    int
	max  float64

	noCache    bool
	noPrefetch bool

	mu        sync.Mutex
	known     map[uint64]float64
	lb, ub    map[uint64]float64
	eps       float64 // high-water slack ε observed in server responses
	oracleErr error
}

// CreateSession creates (or attaches to) the named session on the daemon
// and returns the client-side view of it.
func CreateSession(ctx context.Context, c Caller, name, scheme string, opts SessionOptions) (*Session, error) {
	req := api.CreateSessionRequest{
		Name:       name,
		Scheme:     scheme,
		Landmarks:  opts.Landmarks,
		Seed:       opts.Seed,
		Bootstrap:  opts.Bootstrap,
		SlackEps:   api.WireFloat(opts.SlackEps),
		SlackRatio: api.WireFloat(opts.SlackRatio),
		SlackAuto:  opts.SlackAuto,
		Audit:      opts.Audit,
	}
	var info api.SessionInfo
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info); err != nil {
		return nil, err
	}
	return &Session{
		c:          c,
		name:       name,
		n:          info.N,
		max:        float64(info.MaxDistance),
		noCache:    opts.NoCache,
		noPrefetch: opts.NoPrefetch,
		known:      make(map[uint64]float64),
		lb:         make(map[uint64]float64),
		ub:         make(map[uint64]float64),
	}, nil
}

// Name returns the session's registry name on the daemon.
func (s *Session) Name() string { return s.name }

// Client returns the transport the session rides on.
func (s *Session) Client() Caller { return s.c }

// pairKey normalises (i, j) to i < j and packs it into one map key.
func pairKey(i, j int) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// path returns the session-scoped endpoint path.
func (s *Session) path(op string) string {
	return "/v1/sessions/" + s.name + "/" + op
}

// N returns the universe size.
func (s *Session) N() int { return s.n }

// MaxDistance returns the daemon's a-priori distance cap.
func (s *Session) MaxDistance() float64 { return s.max }

// localKnown reads the mirror's resolved distance for (i, j).
func (s *Session) localKnown(i, j int) (float64, bool) {
	if i == j {
		return 0, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.known[pairKey(i, j)]
	return d, ok
}

// localBounds reads the mirror's interval for (i, j); absent entries give
// the trivial [0, MaxDistance] interval.
func (s *Session) localBounds(i, j int) (lb, ub float64) {
	if i == j {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.localBoundsLocked(pairKey(i, j))
}

func (s *Session) localBoundsLocked(key uint64) (lb, ub float64) {
	if d, ok := s.known[key]; ok {
		return d, d
	}
	lb, ub = 0, s.max
	if v, ok := s.lb[key]; ok && v > lb {
		lb = v
	}
	if v, ok := s.ub[key]; ok && v < ub {
		ub = v
	}
	return lb, ub
}

// noteDist commits a server-resolved distance to the mirror.
func (s *Session) noteDist(i, j int, d float64) {
	if s.noCache || i == j {
		return
	}
	s.mu.Lock()
	key := pairKey(i, j)
	s.known[key] = d
	delete(s.lb, key)
	delete(s.ub, key)
	s.mu.Unlock()
}

// noteLowerBound raises the mirror's lower bound for (i, j) — used after
// the server proves dist(i, j) ≥ c.
func (s *Session) noteLowerBound(i, j int, c float64) {
	if s.noCache || i == j {
		return
	}
	s.mu.Lock()
	key := pairKey(i, j)
	if _, ok := s.known[key]; !ok {
		if v, ok := s.lb[key]; !ok || c > v {
			s.lb[key] = c
		}
	}
	s.mu.Unlock()
}

// noteBounds overwrites the mirror's interval with a fresh server
// interval. At a fixed slack ε server bounds only tighten, so replacing
// the cached interval wholesale is sound; under an auto slack policy ε
// itself can grow, at which point older (narrower) cached intervals stop
// being sound for the new contract — every bounds response therefore
// carries the ε it was relaxed by, and the mirror drops all cached
// intervals when it sees ε rise (resolved distances in known are exact
// oracle values and survive the escalation). Detection is lazy — the
// mirror learns of a rise on its next bounds round-trip — which is sound
// for the same reason core's auto mode is: decisions already made used
// the contract as declared at the time, and every later decision uses
// intervals refreshed under the larger ε. A collapsed interval is
// deliberately NOT promoted to a known distance: bound arithmetic can sit
// one ulp away from the resolved value, and the mirror's known map must
// hold exact server resolutions only — bounds are for decisions, never
// for values (the same discipline core.Session keeps).
func (s *Session) noteBounds(i, j int, lb, ub, eps float64) {
	if s.noCache || i == j {
		return
	}
	s.mu.Lock()
	if eps > s.eps {
		s.lb = make(map[uint64]float64)
		s.ub = make(map[uint64]float64)
		s.eps = eps
	}
	key := pairKey(i, j)
	if _, ok := s.known[key]; !ok {
		s.lb[key] = lb
		s.ub[key] = ub
	}
	s.mu.Unlock()
}

// latch records the first remote resolution failure, mirroring
// core.Session's sticky OracleErr.
func (s *Session) latch(err error) {
	s.mu.Lock()
	if s.oracleErr == nil {
		s.oracleErr = err
	}
	s.mu.Unlock()
}

// OracleErr returns the first latched resolution failure, nil while every
// answer so far is exact.
func (s *Session) OracleErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.oracleErr
}

// estimate mirrors core.Session.estimate: the midpoint of the current
// (local) bounds, used by the degrading legacy methods.
func (s *Session) estimate(i, j int) float64 {
	lb, ub := s.localBounds(i, j)
	return (lb + ub) / 2
}

// Known reports a pair resolved in the local mirror. A pair the server
// resolved but this client never asked about reports false — the miss
// falls through to Dist, which returns the identical memoised value, so
// answers are unaffected.
func (s *Session) Known(i, j int) (float64, bool) { return s.localKnown(i, j) }

// Bounds returns interval bounds for (i, j): the mirror's if it has any
// facts, otherwise one round-trip to the server's bounds endpoint (cached
// for next time). The interval may be staler (looser) than the server's
// current one; it is never wrong.
func (s *Session) Bounds(i, j int) (lb, ub float64) {
	if i == j {
		return 0, 0
	}
	if !s.noCache {
		s.mu.Lock()
		key := pairKey(i, j)
		_, haveKnown := s.known[key]
		_, haveLB := s.lb[key]
		_, haveUB := s.ub[key]
		lb, ub = s.localBoundsLocked(key)
		s.mu.Unlock()
		if haveKnown || haveLB || haveUB {
			return lb, ub
		}
	}
	var resp api.BoundsResponse
	err := s.c.do(context.Background(), http.MethodPost, s.path("bounds"), api.PairRequest{I: i, J: j}, &resp)
	if err != nil {
		// Bounds never fails in core; fall back to the trivial interval.
		return 0, s.max
	}
	s.noteBounds(i, j, float64(resp.LB), float64(resp.UB), float64(resp.Eps))
	return float64(resp.LB), float64(resp.UB)
}

// SlackEps returns the highest additive slack ε the server has reported
// in bounds responses so far — 0 for a strict session.
func (s *Session) SlackEps() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eps
}

// DistErr resolves the exact distance, round-tripping only on a mirror
// miss.
func (s *Session) DistErr(i, j int) (float64, error) {
	if d, ok := s.localKnown(i, j); ok {
		return d, nil
	}
	var resp api.DistResponse
	err := s.c.do(context.Background(), http.MethodPost, s.path("dist"), api.PairRequest{I: i, J: j}, &resp)
	if err != nil {
		return 0, err
	}
	d := float64(resp.D)
	s.noteDist(i, j, d)
	return d, nil
}

// Dist is DistErr degraded to the legacy contract: on failure it latches
// OracleErr and returns the bounds-midpoint estimate, like core.Session.
func (s *Session) Dist(i, j int) float64 {
	d, err := s.DistErr(i, j)
	if err != nil {
		s.latch(err)
		return s.estimate(i, j)
	}
	return d
}

// decideLess settles dist(i,j) < dist(k,l) from the mirror alone.
func (s *Session) decideLess(i, j, k, l int) (result bool, out core.Outcome) {
	d1, ok1 := s.localKnown(i, j)
	d2, ok2 := s.localKnown(k, l)
	if ok1 && ok2 {
		return d1 < d2, core.OutcomeExact
	}
	lb1, ub1 := s.localBounds(i, j)
	lb2, ub2 := s.localBounds(k, l)
	if ub1 < lb2 {
		return true, core.OutcomeBounds
	}
	if lb1 >= ub2 {
		return false, core.OutcomeBounds
	}
	return false, core.OutcomeUndecided
}

// LessErr reports dist(i,j) < dist(k,l), deciding locally when the mirror
// can and round-tripping otherwise.
func (s *Session) LessErr(i, j, k, l int) (bool, error) {
	if r, out := s.decideLess(i, j, k, l); out != core.OutcomeUndecided {
		return r, nil
	}
	if i == j || k == l {
		// The comparison endpoint rejects self-pairs; resolve the real
		// pair instead (a self-pair's distance is locally known to be 0).
		d1, err := s.DistErr(i, j)
		if err != nil {
			return false, err
		}
		d2, err := s.DistErr(k, l)
		if err != nil {
			return false, err
		}
		return d1 < d2, nil
	}
	var resp api.LessResponse
	err := s.c.do(context.Background(), http.MethodPost, s.path("less"),
		api.LessRequest{I: i, J: j, K: k, L: l}, &resp)
	if err != nil {
		return false, err
	}
	return resp.Less, nil
}

// LessOutcome is Less plus an outcome report; on a remote failure it
// degrades to comparing bound midpoints, like core.Session.
func (s *Session) LessOutcome(i, j, k, l int) (bool, core.Outcome) {
	if r, out := s.decideLess(i, j, k, l); out != core.OutcomeUndecided {
		return r, out
	}
	if i == j || k == l {
		r, err := s.LessErr(i, j, k, l)
		if err != nil {
			s.latch(err)
			return s.estimate(i, j) < s.estimate(k, l), core.OutcomeUnavailable
		}
		return r, core.OutcomeExact
	}
	var resp api.LessResponse
	err := s.c.do(context.Background(), http.MethodPost, s.path("less"),
		api.LessRequest{I: i, J: j, K: k, L: l}, &resp)
	if err != nil {
		s.latch(err)
		return s.estimate(i, j) < s.estimate(k, l), core.OutcomeUnavailable
	}
	return resp.Less, core.OutcomeExact
}

// Less reports dist(i,j) < dist(k,l), degrading like the legacy core
// method on failure.
func (s *Session) Less(i, j, k, l int) bool {
	r, _ := s.LessOutcome(i, j, k, l)
	return r
}

// decideLessThan settles dist(i,j) < c from the mirror alone.
func (s *Session) decideLessThan(i, j int, c float64) (result bool, out core.Outcome) {
	if d, ok := s.localKnown(i, j); ok {
		return d < c, core.OutcomeExact
	}
	lb, ub := s.localBounds(i, j)
	if ub < c {
		return true, core.OutcomeBounds
	}
	if lb >= c {
		return false, core.OutcomeBounds
	}
	return false, core.OutcomeUndecided
}

// LessThanErr reports dist(i,j) < c with error propagation.
func (s *Session) LessThanErr(i, j int, c float64) (bool, error) {
	if r, out := s.decideLessThan(i, j, c); out != core.OutcomeUndecided {
		return r, nil
	}
	var resp api.LessResponse
	err := s.c.do(context.Background(), http.MethodPost, s.path("lessthan"),
		api.LessThanRequest{I: i, J: j, C: api.WireFloat(c)}, &resp)
	if err != nil {
		return false, err
	}
	if !resp.Less {
		s.noteLowerBound(i, j, c)
	}
	return resp.Less, nil
}

// LessThan reports dist(i,j) < c, degrading like the legacy core method on
// failure.
func (s *Session) LessThan(i, j int, c float64) bool {
	r, err := s.LessThanErr(i, j, c)
	if err != nil {
		s.latch(err)
		return s.estimate(i, j) < c
	}
	return r
}

// DistIfLessErr resolves dist(i,j) only when it cannot be proved ≥ c,
// with error propagation. When the server answers "not less", the mirror's
// lower bound rises to c, so repeated probes against non-increasing
// thresholds (Prim's relaxation pattern) stop round-tripping.
func (s *Session) DistIfLessErr(i, j int, c float64) (float64, bool, error) {
	if d, ok := s.localKnown(i, j); ok {
		return d, d < c, nil
	}
	if lb, _ := s.localBounds(i, j); lb >= c {
		return 0, false, nil
	}
	var resp api.DistIfLessResponse
	err := s.c.do(context.Background(), http.MethodPost, s.path("distifless"),
		api.DistIfLessRequest{I: i, J: j, C: api.WireFloat(c)}, &resp)
	if err != nil {
		return 0, false, err
	}
	if resp.Less {
		d := float64(resp.D)
		s.noteDist(i, j, d)
		return d, true, nil
	}
	s.noteLowerBound(i, j, c)
	return 0, false, nil
}

// DistIfLess is DistIfLessErr degraded to the legacy contract.
func (s *Session) DistIfLess(i, j int, c float64) (float64, bool) {
	d, less, err := s.DistIfLessErr(i, j, c)
	if err != nil {
		s.latch(err)
		e := s.estimate(i, j)
		return e, e < c
	}
	return d, less
}

// prefetchChunk is the largest number of bounds ops packed into one batch
// round-trip by PrefetchBounds.
const prefetchChunk = 2048

// PrefetchBounds warms the mirror for pairs with batched bounds reads —
// the core.BoundsPrefetcher hint. It is purely an optimisation: failures
// are swallowed and already-known pairs are skipped, so it can never
// change an answer.
func (s *Session) PrefetchBounds(pairs []core.Pair) {
	if s.noPrefetch || s.noCache {
		return
	}
	var ops []api.BatchOp
	var want []core.Pair
	seen := make(map[uint64]struct{}, len(pairs))
	s.mu.Lock()
	for _, p := range pairs {
		if p.A == p.B {
			continue
		}
		k := pairKey(p.A, p.B)
		if _, dup := seen[k]; dup {
			// Builders announce candidate lists with repeats; one bounds
			// read per unordered pair per hint is enough.
			continue
		}
		seen[k] = struct{}{}
		if _, ok := s.known[k]; ok {
			continue
		}
		ops = append(ops, api.BatchOp{Op: api.OpBounds, I: p.A, J: p.B})
		want = append(want, p)
	}
	s.mu.Unlock()
	for len(ops) > 0 {
		chunk := ops
		pw := want
		if len(chunk) > prefetchChunk {
			chunk, pw = chunk[:prefetchChunk], pw[:prefetchChunk]
		}
		ops, want = ops[len(chunk):], want[len(chunk):]
		var resp api.BatchResponse
		err := s.c.do(context.Background(), http.MethodPost, s.path("batch"),
			api.BatchRequest{Ops: chunk}, &resp)
		if err != nil || len(resp.Results) != len(chunk) {
			return // a failed hint is just a cold cache
		}
		for x, res := range resp.Results {
			if res.Err != "" {
				continue
			}
			s.noteBounds(pw[x].A, pw[x].B, float64(res.LB), float64(res.UB), float64(res.Eps))
		}
	}
}

// Stats snapshots the server session's statistics over the wire; a
// transport failure yields the zero Stats rather than an error, matching
// the View contract.
func (s *Session) Stats() core.Stats {
	var resp api.StatsResponse
	err := s.c.do(context.Background(), http.MethodGet, "/v1/sessions/"+s.name, nil, &resp)
	if err != nil {
		return core.Stats{}
	}
	return core.Stats{
		OracleCalls:         resp.OracleCalls,
		BootstrapCalls:      resp.BootstrapCalls,
		BoundProbes:         resp.BoundProbes,
		SavedComparisons:    resp.SavedComparisons,
		ResolvedComparisons: resp.ResolvedComparisons,
		CacheHits:           resp.CacheHits,
		Retries:             resp.Retries,
		Timeouts:            resp.Timeouts,
		BreakerOpens:        resp.BreakerOpens,
		DegradedAnswers:     resp.DegradedAnswers,
		StoreErrors:         resp.StoreErrors,
		SlackResolved:       resp.SlackResolved,
		Violations:          resp.Violations,
	}
}

// Bootstrap asks the server to resolve the given landmark rows up front.
func (s *Session) Bootstrap(ctx context.Context, landmarks []int) (int64, error) {
	var resp api.BootstrapResponse
	err := s.c.do(ctx, http.MethodPost, s.path("bootstrap"),
		api.BootstrapRequest{Landmarks: landmarks}, &resp)
	if err != nil {
		return 0, err
	}
	return resp.Calls, nil
}

// Delete evicts the session server-side. The local mirror stays valid for
// reads but further round-trips will 404.
func (s *Session) Delete(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, "/v1/sessions/"+s.name, nil, nil)
}

var (
	_ core.View             = (*Session)(nil)
	_ core.FallibleView     = (*Session)(nil)
	_ core.BoundsPrefetcher = (*Session)(nil)
)
