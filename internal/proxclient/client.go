package proxclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"metricprox/internal/core"
	"metricprox/internal/resilient"
	"metricprox/internal/service/api"
)

// APIError is a non-2xx response from the daemon, decoded from the wire
// error envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the wire error code (api.Code* constants).
	Code string
	// Message elaborates.
	Message string

	// retryAfter is the server's Retry-After ask in seconds, 0 if absent.
	retryAfter int
}

// Error formats the error for logs.
func (e *APIError) Error() string {
	return fmt.Sprintf("metricproxd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// Unwrap maps oracle_unavailable onto core.ErrOracleUnavailable so
// errors.Is works across the wire, matching in-process semantics.
func (e *APIError) Unwrap() error {
	if e.Code == api.CodeOracleUnavailable {
		return core.ErrOracleUnavailable
	}
	return nil
}

// retryable reports whether the request that produced e may be retried:
// load shedding and drain are transient by definition; everything else
// the server said is final (in particular oracle_unavailable — the
// server-side resilient policy already spent its retry budget).
func (e *APIError) retryable() bool {
	return e.Code == api.CodeOverloaded || e.Code == api.CodeDraining
}

// Caller is the transport a Session rides on: a single-node Client or a
// cluster-aware ClusterClient. Sessions are written against this
// interface so the same mirror/builder code runs unmodified over either.
type Caller interface {
	// Requests returns the number of HTTP requests sent so far — the
	// round-trip count the batching experiment measures.
	Requests() int64

	do(ctx context.Context, method, path string, in, out any) error
}

// Options configures a Client.
type Options struct {
	// Policy is the retry/backoff/breaker policy for transport errors;
	// zero-value fields take resilient's defaults.
	Policy resilient.Policy
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Logf, when non-nil, receives retry/breaker log lines.
	Logf func(format string, args ...any)
}

// Client is a connection to one metricproxd base URL. It is safe for
// concurrent use; all state is the round-trip counter and the breaker.
type Client struct {
	base     string
	hc       *http.Client
	policy   resilient.Policy
	breaker  *resilient.Breaker
	logf     func(string, ...any)
	requests atomic.Int64
	sleep    func(time.Duration) // test seam
}

// New returns a Client for the daemon at base (e.g. "http://127.0.0.1:7600").
func New(base string, opts Options) *Client {
	p := opts.Policy.Normalize()
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      hc,
		policy:  p,
		breaker: resilient.NewBreaker(p.FailureThreshold, p.Cooldown),
		logf:    logf,
		sleep:   time.Sleep,
	}
}

// Requests returns the number of HTTP requests sent so far — the
// round-trip count the batching experiment measures.
func (c *Client) Requests() int64 { return c.requests.Load() }

// Breaker exposes the transport circuit breaker for tests and metrics.
func (c *Client) Breaker() *resilient.Breaker { return c.breaker }

// do runs one logical API call with the full retry/backoff/breaker
// treatment: transport errors and retryable API errors burn attempts with
// deterministic backoff (honouring Retry-After when the server asked for
// a pause); permanent API errors return immediately.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.sleep(c.backoff(attempt - 1))
		}
		if !c.breaker.Allow() {
			lastErr = fmt.Errorf("proxclient: breaker open for %s %s", method, path)
			continue
		}
		err := c.once(ctx, method, path, in, out)
		if err == nil {
			c.breaker.Record(true)
			return nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			// The daemon answered: the transport works.
			c.breaker.Record(true)
			if !apiErr.retryable() {
				return err
			}
			if ra := apiErr.retryAfter; ra > 0 {
				if d := time.Duration(ra) * time.Second; d > c.backoff(attempt) {
					c.sleep(d - c.backoff(attempt)) // top up to the server's ask
				}
			}
			lastErr = err
			c.logf("proxclient: %s %s attempt %d shed: %v", method, path, attempt+1, err)
			continue
		}
		// Transport failure (connect refused, reset, timeout).
		c.breaker.Record(false)
		lastErr = err
		c.logf("proxclient: %s %s attempt %d failed: %v", method, path, attempt+1, err)
		if ctx.Err() != nil {
			break
		}
	}
	return fmt.Errorf("proxclient: %s %s failed after retries: %w", method, path, lastErr)
}

// backoff returns the deterministic delay before retrying after attempt
// failures, reusing the resilient policy's jittered exponential schedule
// keyed by the request sequence number (requests are not pair-shaped, so
// the sequence plays the role of the pair).
func (c *Client) backoff(attempt int) time.Duration {
	seq := int(c.requests.Load())
	return c.policy.Backoff(0, seq, attempt+1)
}

// once sends a single HTTP request and decodes the response.
func (c *Client) once(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("proxclient: encode request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	if c.policy.PerCallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.policy.PerCallTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.requests.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode, Code: api.CodeInternal}
		var eb api.ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Code != "" {
			apiErr.Code, apiErr.Message = eb.Code, eb.Message
		} else {
			apiErr.Message = strings.TrimSpace(string(data))
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			apiErr.retryAfter = ra
		}
		return apiErr
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("proxclient: decode response: %w", err)
		}
	}
	return nil
}

// Healthz probes the daemon.
func (c *Client) Healthz(ctx context.Context) (api.Healthz, error) {
	var h api.Healthz
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Sessions lists the daemon's live sessions.
func (c *Client) Sessions(ctx context.Context) ([]string, error) {
	var list api.SessionList
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &list); err != nil {
		return nil, err
	}
	return list.Sessions, nil
}

// Delete evicts a session server-side.
func (c *Client) Delete(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+name, nil, nil)
}
