package resilient

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"metricprox/internal/metric"
)

// scriptedOracle serves a fixed outcome sequence per call (round-robin
// over the script), recording how many attempts it saw.
type scriptedOracle struct {
	mu     sync.Mutex
	n      int
	script []scriptStep
	calls  int
}

type scriptStep struct {
	d   float64
	err error
}

func (s *scriptedOracle) Len() int { return s.n }

func (s *scriptedOracle) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	step := s.script[s.calls%len(s.script)]
	s.calls++
	s.mu.Unlock()
	return step.d, step.err
}

func (s *scriptedOracle) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

var errBoom = errors.New("boom")

// instantSleep makes retry tests run in microseconds while still honouring
// cancellation, like the real sleep.
func instantSleep(o *Oracle) {
	o.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
}

func TestRetryUntilSuccess(t *testing.T) {
	base := &scriptedOracle{n: 8, script: []scriptStep{
		{err: errBoom}, {err: errBoom}, {d: 0.25},
	}}
	o := New(base, Policy{MaxAttempts: 5, Seed: 1})
	instantSleep(o)
	d, err := o.DistanceCtx(context.Background(), 0, 1)
	if err != nil || d != 0.25 {
		t.Fatalf("DistanceCtx = (%v, %v), want (0.25, nil)", d, err)
	}
	ct := o.Counters()
	if ct.Attempts != 3 || ct.Retries != 2 || ct.Successes != 1 {
		t.Fatalf("counters = %+v, want 3 attempts / 2 retries / 1 success", ct)
	}
}

func TestAttemptBudgetExhaustion(t *testing.T) {
	base := &scriptedOracle{n: 8, script: []scriptStep{{err: errBoom}}}
	o := New(base, Policy{MaxAttempts: 3, FailureThreshold: -1, Seed: 1})
	instantSleep(o)
	_, err := o.DistanceCtx(context.Background(), 0, 1)
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want ErrExhausted wrapping errBoom", err)
	}
	if base.callCount() != 3 {
		t.Fatalf("backend saw %d attempts, want 3", base.callCount())
	}
	ct := o.Counters()
	if ct.Retries != 2 || ct.Exhausted != 1 {
		t.Fatalf("counters = %+v, want 2 retries / 1 exhausted", ct)
	}
}

func TestCorruptValuesAreRejectedAndRetried(t *testing.T) {
	base := &scriptedOracle{n: 8, script: []scriptStep{
		{d: math.NaN()}, {d: -2}, {d: 0.5},
	}}
	o := New(base, Policy{MaxAttempts: 4, Seed: 1})
	instantSleep(o)
	d, err := o.DistanceCtx(context.Background(), 1, 2)
	if err != nil || d != 0.5 {
		t.Fatalf("DistanceCtx = (%v, %v), want (0.5, nil)", d, err)
	}
	if ct := o.Counters(); ct.Corrupts != 2 || ct.Retries != 2 {
		t.Fatalf("counters = %+v, want 2 corrupt rejections and 2 retries", ct)
	}
}

func TestBreakerOpensAndFastFails(t *testing.T) {
	base := &scriptedOracle{n: 8, script: []scriptStep{{err: errBoom}}}
	now := time.Unix(0, 0)
	o := New(base, Policy{MaxAttempts: 1, FailureThreshold: 3, Cooldown: time.Second, Seed: 1})
	instantSleep(o)
	o.now = func() time.Time { return now }

	for c := 0; c < 3; c++ {
		if _, err := o.DistanceCtx(context.Background(), 0, 1); !errors.Is(err, ErrExhausted) {
			t.Fatalf("call %d: err = %v, want ErrExhausted", c, err)
		}
	}
	if st := o.State(); st != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", st)
	}
	if o.Ready() {
		t.Fatal("Ready() = true with an open breaker mid-cooldown")
	}
	attemptsBefore := base.callCount()
	if _, err := o.DistanceCtx(context.Background(), 0, 1); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker call: err = %v, want ErrBreakerOpen", err)
	}
	if base.callCount() != attemptsBefore {
		t.Fatal("open breaker still reached the backend")
	}
	ct := o.Counters()
	if ct.BreakerOpens != 1 || ct.FastFails != 1 {
		t.Fatalf("counters = %+v, want 1 breaker open and 1 fast fail", ct)
	}

	// Cooldown over: half-open admits a probe; a failed probe reopens.
	now = now.Add(2 * time.Second)
	if st := o.State(); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	if _, err := o.DistanceCtx(context.Background(), 0, 1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("probe call: err = %v, want ErrExhausted", err)
	}
	if st := o.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	if ct := o.Counters(); ct.BreakerOpens != 2 {
		t.Fatalf("BreakerOpens = %d, want 2", ct.BreakerOpens)
	}

	// A successful probe closes the breaker.
	now = now.Add(2 * time.Second)
	base.mu.Lock()
	base.script = []scriptStep{{d: 0.125}}
	base.mu.Unlock()
	d, err := o.DistanceCtx(context.Background(), 0, 1)
	if err != nil || d != 0.125 {
		t.Fatalf("post-recovery call = (%v, %v), want (0.125, nil)", d, err)
	}
	if st := o.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if !o.Ready() {
		t.Fatal("Ready() = false with a closed breaker")
	}
}

func TestPerCallTimeout(t *testing.T) {
	slow := metric.NewLatencyOracle(unitSpace(8), time.Hour)
	o := New(slow, Policy{MaxAttempts: 2, PerCallTimeout: time.Millisecond, FailureThreshold: -1, Seed: 1})
	instantSleep(o)
	_, err := o.DistanceCtx(context.Background(), 0, 1)
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrExhausted wrapping DeadlineExceeded", err)
	}
	if ct := o.Counters(); ct.Timeouts != 2 {
		t.Fatalf("Timeouts = %d, want 2", ct.Timeouts)
	}
}

func TestParentContextCancellationIsTerminal(t *testing.T) {
	base := &scriptedOracle{n: 8, script: []scriptStep{{err: errBoom}}}
	o := New(base, Policy{MaxAttempts: 100, FailureThreshold: -1, Seed: 1})
	instantSleep(o)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.DistanceCtx(ctx, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if base.callCount() != 0 {
		t.Fatalf("cancelled call reached the backend %d times", base.callCount())
	}
}

func TestBackoffDeadlineShortCircuit(t *testing.T) {
	// Delays of ~1h against a 50ms deadline: the policy must refuse to
	// sleep into certain failure rather than blocking until the deadline.
	base := &scriptedOracle{n: 8, script: []scriptStep{{err: errBoom}}}
	o := New(base, Policy{
		MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour,
		FailureThreshold: -1, Seed: 1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := o.DistanceCtx(ctx, 0, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("backoff ignored the deadline, blocked %v", elapsed)
	}
	if base.callCount() != 1 {
		t.Fatalf("backend saw %d attempts, want 1 (backoff refused)", base.callCount())
	}
}

func TestBackoffDeterminismAndCap(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42}.Normalize()
	q := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42}.Normalize()
	r := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 43}.Normalize()
	differs := false
	for attempt := 1; attempt <= 12; attempt++ {
		for _, pair := range [][2]int{{0, 1}, {3, 9}, {100, 7}} {
			a := p.Backoff(pair[0], pair[1], attempt)
			b := q.Backoff(pair[0], pair[1], attempt)
			c := r.Backoff(pair[0], pair[1], attempt)
			if a != b {
				t.Fatalf("same seed, different delays: %v vs %v (pair %v attempt %d)", a, b, pair, attempt)
			}
			if a != c {
				differs = true
			}
			if attempt == 1 && a != 0 {
				t.Fatalf("first attempt must not back off, got %v", a)
			}
			if a > p.MaxDelay {
				t.Fatalf("delay %v exceeds cap %v", a, p.MaxDelay)
			}
			if attempt > 1 {
				if min := time.Duration(float64(p.BaseDelay) * (1 - p.JitterFrac)); a < min {
					t.Fatalf("delay %v below jitter floor %v", a, min)
				}
			}
		}
	}
	if !differs {
		t.Fatal("different seeds never changed any delay (jitter not seeded?)")
	}
}

func TestBackoffTable(t *testing.T) {
	// JitterFrac ~0 pins delays to the raw exponential curve.
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Multiplier: 2, JitterFrac: 1e-12, Seed: 1}.Normalize()
	want := []time.Duration{0, 10, 20, 40, 80, 80, 80}
	for attempt, w := range want {
		got := p.Backoff(0, 1, attempt+1)
		wantD := w * time.Millisecond
		if diff := got - wantD; diff < -time.Millisecond || diff > time.Millisecond {
			t.Fatalf("Backoff(attempt %d) = %v, want ~%v", attempt+1, got, wantD)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	base := &scriptedOracle{n: 64, script: []scriptStep{
		{err: errBoom}, {d: 0.5}, {d: 0.25}, {err: errBoom}, {d: 0.75},
	}}
	o := New(base, Policy{MaxAttempts: 6, FailureThreshold: -1, Seed: 1})
	instantSleep(o)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				if _, err := o.DistanceCtx(context.Background(), w, 8+k%8); err != nil {
					panic(fmt.Sprintf("unexpected failure: %v", err))
				}
			}
		}(w)
	}
	wg.Wait()
	ct := o.Counters()
	if ct.Successes != 400 {
		t.Fatalf("Successes = %d, want 400", ct.Successes)
	}
	if ct.Attempts != ct.Successes+ct.Retries {
		t.Fatalf("attempt ledger out of balance: %+v", ct)
	}
}

func unitSpace(n int) metric.Space {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i) / float64(n)}
	}
	return metric.NewVectors(pts, 2, 1)
}
