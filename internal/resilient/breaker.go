package resilient

import (
	"sync"
	"time"
)

// Breaker is a standalone three-state circuit breaker with the same
// semantics as the one built into Oracle: FailureThreshold consecutive
// failures open it, an open breaker fast-fails every caller until the
// cooldown elapses, and exactly one half-open probe is admitted per
// cooldown — its outcome closes the breaker or re-opens it for another
// cooldown.
//
// Oracle embeds this state machine for distance calls; Breaker exports it
// for transports that are not pair-shaped, most notably the HTTP request
// loop of internal/proxclient, so the service client fails fast during a
// daemon outage instead of hammering a dead endpoint with retries.
//
// A Breaker is safe for concurrent use.
type Breaker struct {
	mu          sync.Mutex
	threshold   int // consecutive failures that open the breaker; < 0 disables
	cooldown    time.Duration
	now         func() time.Time
	state       BreakerState
	consecutive int
	reopenAt    time.Time
	probing     bool
	opens       int64
}

// NewBreaker returns a breaker following the Policy defaults: threshold 0
// means the default of 5 consecutive failures, a negative threshold
// disables the breaker (Allow always admits), and cooldown 0 means the
// default 100ms.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	p := Policy{FailureThreshold: threshold, Cooldown: cooldown}.Normalize()
	return &Breaker{threshold: p.FailureThreshold, cooldown: p.Cooldown, now: time.Now}
}

// Allow reports whether an attempt may proceed. While the breaker is open
// and cooling down it returns false without any state change; once the
// cooldown has elapsed it admits exactly one half-open probe and
// fast-fails everyone else until that probe's outcome is recorded. Every
// admitted attempt must be followed by exactly one Record call.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold < 0 {
		return true
	}
	switch b.state {
	case BreakerOpen:
		if b.now().Before(b.reopenAt) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// Record feeds one attempt outcome into the state machine: success closes
// the breaker and clears the failure streak; a failed half-open probe
// re-opens it immediately; a failure streak reaching the threshold opens
// it for a cooldown.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold < 0 {
		return
	}
	switch {
	case ok:
		b.state = BreakerClosed
		b.consecutive = 0
		b.probing = false
	case b.state == BreakerHalfOpen:
		b.state = BreakerOpen
		b.probing = false
		b.reopenAt = b.now().Add(b.cooldown)
		b.opens++
	default:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = BreakerOpen
			b.consecutive = 0
			b.reopenAt = b.now().Add(b.cooldown)
			b.opens++
		}
	}
}

// State returns the breaker state, reporting half-open once an open
// breaker's cooldown has elapsed (mirroring Oracle.State).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && !b.now().Before(b.reopenAt) {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens returns the number of closed/half-open → open transitions.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
