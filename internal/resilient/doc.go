// Package resilient wraps any fallible distance oracle with the retry
// discipline an expensive external backend demands: per-attempt
// context deadlines, capped exponential backoff with deterministic jitter,
// a three-state circuit breaker (closed / open / half-open), and a total
// attempt budget per call.
//
// The layer is deliberately value-agnostic: it never inspects distances
// beyond rejecting corrupt (NaN / negative) responses, so it composes with
// any metric.FallibleOracle — the in-process metric.Oracle, the
// faultmetric chaos injector, or a real network client. The session layer
// above it (internal/core) degrades to bounds-only answers when the
// breaker reports the backend unavailable.
//
// Determinism: backoff jitter is a pure function of (Seed, pair, attempt)
// — see Backoff — so a retry schedule is reproducible from its seed, which
// the chaos harness and the backoff fuzz target rely on.
//
// # Observability
//
// Oracle.Observe attaches an obs.Registry and mirrors every Counters
// event into metric instruments (resilient_* series: attempt/retry/
// timeout counters, the breaker-state gauge, the per-attempt latency
// histogram), exposed alongside the session-layer series on the
// cmd/metricprox -listen endpoint. Observation is write-only — no retry
// or breaker decision ever reads an instrument — so an observed run
// behaves identically to an unobserved one. See docs/METRICS.md and
// DESIGN.md §8.
package resilient
