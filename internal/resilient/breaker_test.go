package resilient

import (
	"testing"
	"time"
)

// fakeClock drives a Breaker through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("attempt %d blocked before threshold", i)
		}
		b.Record(false)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt during cooldown")
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens() = %d, want 1", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	b.Record(false)
	b.Record(false)
	clk.advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Successful probe closes the breaker for everyone.
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused an attempt")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Record(false) // open
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Record(false) // failed probe → reopen for another cooldown
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted an attempt before the new cooldown")
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens() = %d, want 2", got)
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after second cooldown")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after recovery = %v, want closed", got)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Record(false)
	b.Record(false)
	b.Record(true) // streak reset
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed: success must reset the failure streak", got)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := newTestBreaker(-1, time.Second)
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("disabled breaker blocked an attempt")
		}
		b.Record(false)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("disabled breaker state = %v, want closed", got)
	}
	if got := b.Opens(); got != 0 {
		t.Fatalf("disabled breaker Opens() = %d, want 0", got)
	}
}

func TestBreakerDefaultsMatchPolicy(t *testing.T) {
	b := NewBreaker(0, 0)
	def := Policy{}.Normalize()
	if b.threshold != def.FailureThreshold || b.cooldown != def.Cooldown {
		t.Fatalf("NewBreaker(0,0) = threshold %d cooldown %v, want policy defaults %d/%v",
			b.threshold, b.cooldown, def.FailureThreshold, def.Cooldown)
	}
}
