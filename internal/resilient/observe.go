package resilient

import "metricprox/internal/obs"

// Metric names recorded by the policy layer once Observe attaches a
// registry. Each mirrors one Counters field (plus the breaker-state gauge
// and per-attempt latency histogram, which have no Counters equivalent);
// full semantics live in docs/METRICS.md.
const (
	// MetricAttempts mirrors Counters.Attempts.
	MetricAttempts = "resilient_attempts_total"
	// MetricSuccesses mirrors Counters.Successes.
	MetricSuccesses = "resilient_successes_total"
	// MetricRetries mirrors Counters.Retries.
	MetricRetries = "resilient_retries_total"
	// MetricTimeouts mirrors Counters.Timeouts.
	MetricTimeouts = "resilient_timeouts_total"
	// MetricCorrupts mirrors Counters.Corrupts.
	MetricCorrupts = "resilient_corrupt_responses_total"
	// MetricBreakerOpens mirrors Counters.BreakerOpens.
	MetricBreakerOpens = "resilient_breaker_opens_total"
	// MetricFastFails mirrors Counters.FastFails.
	MetricFastFails = "resilient_fast_fails_total"
	// MetricExhausted mirrors Counters.Exhausted.
	MetricExhausted = "resilient_exhausted_total"
	// MetricBreakerState is a gauge holding the breaker's stored state as
	// its numeric value (0 closed, 1 open, 2 half-open). It reflects the
	// last transition; an open breaker whose cooldown has expired still
	// reads 1 until the next attempt flips it.
	MetricBreakerState = "resilient_breaker_state"
	// MetricAttemptLatency is the histogram (nanoseconds) of individual
	// backend attempts — one observation per attempt, unlike the session's
	// oracle-latency histogram which spans a whole retried resolution.
	MetricAttemptLatency = "resilient_attempt_latency_ns"
)

// instruments is the policy layer's set of obs handles, mirroring the
// Counters fields one-to-one plus the gauge and histogram.
type instruments struct {
	attempts       *obs.Counter
	successes      *obs.Counter
	retries        *obs.Counter
	timeouts       *obs.Counter
	corrupts       *obs.Counter
	breakerOpens   *obs.Counter
	fastFails      *obs.Counter
	exhausted      *obs.Counter
	breakerState   *obs.Gauge
	attemptLatency *obs.Histogram
}

// Observe registers the policy layer's instruments in r and mirrors every
// future event into them. The counters are seeded with the events already
// counted, so registry values equal Counters() snapshots no matter when
// observation is attached. Call at most once per Oracle (a second call
// with the same registry would double the seeded history). Observation is
// write-only: no policy decision reads an instrument.
func (o *Oracle) Observe(r *obs.Registry) {
	ins := &instruments{
		attempts:       r.Counter(MetricAttempts),
		successes:      r.Counter(MetricSuccesses),
		retries:        r.Counter(MetricRetries),
		timeouts:       r.Counter(MetricTimeouts),
		corrupts:       r.Counter(MetricCorrupts),
		breakerOpens:   r.Counter(MetricBreakerOpens),
		fastFails:      r.Counter(MetricFastFails),
		exhausted:      r.Counter(MetricExhausted),
		breakerState:   r.Gauge(MetricBreakerState),
		attemptLatency: r.Histogram(MetricAttemptLatency),
	}
	o.mu.Lock()
	ins.attempts.Add(o.counts.Attempts)
	ins.successes.Add(o.counts.Successes)
	ins.retries.Add(o.counts.Retries)
	ins.timeouts.Add(o.counts.Timeouts)
	ins.corrupts.Add(o.counts.Corrupts)
	ins.breakerOpens.Add(o.counts.BreakerOpens)
	ins.fastFails.Add(o.counts.FastFails)
	ins.exhausted.Add(o.counts.Exhausted)
	ins.breakerState.Set(float64(o.state))
	o.ins.Store(ins)
	o.mu.Unlock()
}
