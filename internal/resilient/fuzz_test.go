package resilient

import (
	"testing"
	"time"
)

// FuzzBackoffDeterminism checks, for arbitrary policy coordinates, that
// the backoff schedule is (a) a pure function of its inputs — equal seeds
// give equal delays, (b) capped by MaxDelay, (c) zero before the first
// retry, and (d) never negative.
func FuzzBackoffDeterminism(f *testing.F) {
	f.Add(int64(1), int64(10), int64(80), 0.5, 3, 7, 4)
	f.Add(int64(-9), int64(1), int64(1), 1.0, 0, 0, 1)
	f.Add(int64(42), int64(1000), int64(100), 0.25, 1000000, 2, 12)
	f.Fuzz(func(t *testing.T, seed, baseMs, maxMs int64, jitter float64, i, j, attempt int) {
		if baseMs <= 0 || baseMs > 1<<20 {
			t.Skip()
		}
		if maxMs <= 0 || maxMs > 1<<20 {
			t.Skip()
		}
		if jitter < 0 || jitter > 1 || jitter != jitter {
			t.Skip()
		}
		if attempt < 0 || attempt > 64 {
			t.Skip()
		}
		mk := func(s int64) Policy {
			return Policy{
				BaseDelay:  time.Duration(baseMs) * time.Millisecond,
				MaxDelay:   time.Duration(maxMs) * time.Millisecond,
				JitterFrac: jitter,
				Seed:       s,
			}.Normalize()
		}
		p, q := mk(seed), mk(seed)
		a := p.Backoff(i, j, attempt)
		if b := q.Backoff(i, j, attempt); a != b {
			t.Fatalf("same inputs, different delays: %v vs %v", a, b)
		}
		if a != p.Backoff(i, j, attempt) {
			t.Fatal("Backoff is not stable across repeated calls")
		}
		if a < 0 {
			t.Fatalf("negative delay %v", a)
		}
		if a > p.MaxDelay {
			t.Fatalf("delay %v exceeds cap %v", a, p.MaxDelay)
		}
		if attempt <= 1 && a != 0 {
			t.Fatalf("attempt %d must not back off, got %v", attempt, a)
		}
	})
}
