package resilient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"metricprox/internal/metric"
)

// Typed failures surfaced by the policy layer.
var (
	// ErrBreakerOpen is returned without touching the backend while the
	// circuit breaker is open (fast-fail).
	ErrBreakerOpen = errors.New("resilient: circuit breaker open")
	// ErrExhausted is returned when the per-call attempt budget ran out;
	// it wraps the last attempt's error.
	ErrExhausted = errors.New("resilient: attempt budget exhausted")
)

// Policy tunes the retry/backoff/breaker behaviour. The zero value is
// usable: Normalize fills in the documented defaults.
type Policy struct {
	// MaxAttempts is the total attempt budget per DistanceCtx call
	// (default 4; minimum 1).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 32 × BaseDelay).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// JitterFrac is the fraction of each delay randomised by the
	// deterministic jitter, in [0, 1]: a delay d becomes
	// d × (1 − JitterFrac + JitterFrac·u) with u uniform in [0, 1)
	// (default 0.5).
	JitterFrac float64
	// PerCallTimeout bounds each individual attempt with a child context
	// deadline (default none).
	PerCallTimeout time.Duration
	// FailureThreshold is the number of consecutive failures that opens
	// the breaker (default 5; 0 keeps the default, negative disables the
	// breaker).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 100ms).
	Cooldown time.Duration
	// Seed drives the deterministic jitter.
	Seed int64
}

// Normalize returns p with defaults filled in.
func (p Policy) Normalize() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 32 * p.BaseDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	} else if p.JitterFrac == 0 {
		p.JitterFrac = 0.5
	} else if p.JitterFrac > 1 {
		p.JitterFrac = 1
	}
	if p.FailureThreshold == 0 {
		p.FailureThreshold = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 100 * time.Millisecond
	}
	return p
}

// RetryOnlyPolicy returns a policy tuned for in-process fault injection,
// as used by the -faults flag of cmd/metricprox and cmd/proxbench:
// microsecond-scale backoff (the injected faults cost nothing to retry,
// so real delays would only distort benchmark timings), a disabled
// breaker, and an attempt budget that outlasts the per-pair failure cap
// of faultmetric.ParseSpec — together guaranteeing every resolution
// eventually succeeds and the fault-free output is preserved.
func RetryOnlyPolicy(seed int64) Policy {
	return Policy{
		MaxAttempts:      5, // > faultmetric.SpecMaxFailuresPerPair
		BaseDelay:        time.Microsecond,
		MaxDelay:         32 * time.Microsecond,
		FailureThreshold: -1,
		Seed:             seed,
	}
}

// Backoff returns the deterministic pre-attempt delay before attempt
// (attempt 1 is the first try, so the first nonzero delay precedes attempt
// 2). The exponential curve is capped at MaxDelay before jitter, and the
// jitter is a pure function of (Seed, pair, attempt): equal inputs yield
// equal delays, the property the fuzz target checks.
func (p Policy) Backoff(i, j, attempt int) time.Duration {
	if attempt <= 1 {
		return 0
	}
	d := float64(p.BaseDelay)
	for a := 2; a < attempt; a++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	u := float64(jitterHash(p.Seed, pairKey(i, j), int64(attempt))>>11) / float64(1<<53)
	d *= 1 - p.JitterFrac + p.JitterFrac*u
	return time.Duration(d)
}

// Counters aggregates the policy layer's accounting. The session layer
// surfaces Retries, Timeouts, and BreakerOpens through core.Stats.
type Counters struct {
	Attempts     int64 // attempts forwarded to the backend
	Successes    int64 // calls that returned a valid distance
	Retries      int64 // failed attempts that were retried
	Timeouts     int64 // attempts that hit a context deadline
	Corrupts     int64 // NaN/negative responses rejected (and retried)
	BreakerOpens int64 // closed/half-open → open transitions
	FastFails    int64 // calls rejected without a backend attempt (open breaker)
	Exhausted    int64 // calls that ran out of attempt budget
}

// BreakerState is the circuit breaker's observable state.
type BreakerState int

// The three breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the conventional lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breakerstate(%d)", int(s))
	}
}

// Oracle wraps a fallible backend with the policy. It is safe for
// concurrent use; the mutex guards only breaker state and counters and is
// never held across a backend round-trip or a backoff sleep.
type Oracle struct {
	base  metric.FallibleOracle
	p     Policy
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error

	mu          sync.Mutex
	state       BreakerState
	consecutive int       // consecutive failures while closed
	reopenAt    time.Time // when an open breaker admits a probe
	probing     bool      // a half-open probe is in flight
	counts      Counters

	// ins, once Observe attaches a registry, mirrors every counting event
	// into obs instruments. Atomic so the unlocked latency-timing path in
	// DistanceCtx can read it without the mutex.
	ins atomic.Pointer[instruments]
}

// New wraps base with the (normalised) policy.
func New(base metric.FallibleOracle, p Policy) *Oracle {
	return &Oracle{
		base:  base,
		p:     p.Normalize(),
		now:   time.Now,
		sleep: metric.SleepCtx,
	}
}

// Len returns the backend universe size.
func (o *Oracle) Len() int { return o.base.Len() }

// Policy returns the normalised policy in effect.
func (o *Oracle) Policy() Policy { return o.p }

// Counters snapshots the policy accounting.
func (o *Oracle) Counters() Counters {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.counts
}

// PolicyCounters reports the counters the session layer mirrors into
// core.Stats (retries, timeouts, breaker opens). The method name is the
// contract: core looks it up by interface assertion.
func (o *Oracle) PolicyCounters() (retries, timeouts, breakerOpens int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.counts.Retries, o.counts.Timeouts, o.counts.BreakerOpens
}

// State returns the breaker state, accounting for cooldown expiry.
func (o *Oracle) State() BreakerState {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.state == BreakerOpen && !o.now().Before(o.reopenAt) {
		return BreakerHalfOpen
	}
	return o.state
}

// Ready reports whether the oracle will currently attempt backend calls —
// false only while the breaker is open and cooling down. The session
// layer uses it to account degraded (bounds-only) answers.
func (o *Oracle) Ready() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.state != BreakerOpen || !o.now().Before(o.reopenAt)
}

// allow asks the breaker for permission to attempt. Called with the
// mutex held via attemptBegin.
func (o *Oracle) attemptBegin() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	ins := o.ins.Load()
	if ins != nil {
		// Runs before the unlock (LIFO), capturing any state transition.
		defer func() { ins.breakerState.Set(float64(o.state)) }()
	}
	if o.p.FailureThreshold < 0 {
		o.countAttempt(ins)
		return true
	}
	switch o.state {
	case BreakerOpen:
		if o.now().Before(o.reopenAt) {
			o.counts.FastFails++
			if ins != nil {
				ins.fastFails.Inc()
			}
			return false
		}
		// Cooldown over: admit exactly one half-open probe.
		o.state = BreakerHalfOpen
		o.probing = true
		o.countAttempt(ins)
		return true
	case BreakerHalfOpen:
		if o.probing {
			o.counts.FastFails++
			if ins != nil {
				ins.fastFails.Inc()
			}
			return false
		}
		o.probing = true
		o.countAttempt(ins)
		return true
	default:
		o.countAttempt(ins)
		return true
	}
}

// countAttempt records one admitted attempt; ins may be nil (unobserved).
// Called with the mutex held.
func (o *Oracle) countAttempt(ins *instruments) {
	o.counts.Attempts++
	if ins != nil {
		ins.attempts.Inc()
	}
}

// attemptEnd records an attempt outcome into the breaker.
func (o *Oracle) attemptEnd(ok bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ins := o.ins.Load()
	if ins != nil {
		defer func() { ins.breakerState.Set(float64(o.state)) }()
	}
	if o.p.FailureThreshold < 0 {
		return
	}
	switch {
	case ok:
		o.state = BreakerClosed
		o.consecutive = 0
		o.probing = false
	case o.state == BreakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		o.state = BreakerOpen
		o.probing = false
		o.reopenAt = o.now().Add(o.p.Cooldown)
		o.counts.BreakerOpens++
		if ins != nil {
			ins.breakerOpens.Inc()
		}
	default:
		o.consecutive++
		if o.consecutive >= o.p.FailureThreshold {
			o.state = BreakerOpen
			o.consecutive = 0
			o.reopenAt = o.now().Add(o.p.Cooldown)
			o.counts.BreakerOpens++
			if ins != nil {
				ins.breakerOpens.Inc()
			}
		}
	}
}

// DistanceCtx resolves one distance under the full policy: breaker
// admission, per-attempt deadline, corrupt-value rejection, deterministic
// backoff between attempts, and the total attempt budget.
func (o *Oracle) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	var lastErr error
	for attempt := 1; attempt <= o.p.MaxAttempts; attempt++ {
		ins := o.ins.Load()
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if delay := o.p.Backoff(i, j, attempt); delay > 0 {
			if deadline, ok := ctx.Deadline(); ok && o.now().Add(delay).After(deadline) {
				// The backoff cannot complete before the deadline; give up
				// now instead of sleeping into certain failure.
				o.mu.Lock()
				o.counts.Timeouts++
				o.mu.Unlock()
				if ins != nil {
					ins.timeouts.Inc()
				}
				return 0, fmt.Errorf("%w: backoff exceeds deadline: %w", ErrExhausted, context.DeadlineExceeded)
			}
			if err := o.sleep(ctx, delay); err != nil {
				return 0, err
			}
		}
		if !o.attemptBegin() {
			return 0, fmt.Errorf("%w (cooling down)", ErrBreakerOpen)
		}
		var t0 time.Time
		if ins != nil {
			t0 = o.now()
		}
		d, err := o.callOnce(ctx, i, j)
		if ins != nil {
			ins.attemptLatency.Observe(int64(o.now().Sub(t0)))
		}
		if err == nil {
			if verr := metric.ValidateDistance(d, i, j); verr != nil {
				err = verr
				o.mu.Lock()
				o.counts.Corrupts++
				o.mu.Unlock()
				if ins != nil {
					ins.corrupts.Inc()
				}
			}
		}
		if err == nil {
			o.attemptEnd(true)
			o.mu.Lock()
			o.counts.Successes++
			o.mu.Unlock()
			if ins != nil {
				ins.successes.Inc()
			}
			return d, nil
		}
		o.attemptEnd(false)
		o.mu.Lock()
		if errors.Is(err, context.DeadlineExceeded) {
			o.counts.Timeouts++
			if ins != nil {
				ins.timeouts.Inc()
			}
		}
		if attempt < o.p.MaxAttempts {
			o.counts.Retries++
			if ins != nil {
				ins.retries.Inc()
			}
		} else {
			o.counts.Exhausted++
			if ins != nil {
				ins.exhausted.Inc()
			}
		}
		o.mu.Unlock()
		lastErr = err
		// The parent context dying is terminal regardless of budget.
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
	}
	return 0, fmt.Errorf("%w after %d attempts: %w", ErrExhausted, o.p.MaxAttempts, lastErr)
}

// callOnce performs one backend attempt under the per-attempt deadline.
func (o *Oracle) callOnce(ctx context.Context, i, j int) (float64, error) {
	if o.p.PerCallTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, o.p.PerCallTimeout)
		defer cancel()
		return o.base.DistanceCtx(actx, i, j)
	}
	return o.base.DistanceCtx(ctx, i, j)
}

// pairKey normalises an unordered pair into one int64.
func pairKey(i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	return int64(i)<<32 | int64(uint32(j))
}

// jitterHash mixes the jitter coordinates (splitmix64 finaliser).
func jitterHash(seed, key, attempt int64) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(key)*0xbf58476d1ce4e5b9 ^
		uint64(attempt)*0x94d049bb133111eb ^ 0xa0761d6478bd642f
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

var _ metric.FallibleOracle = (*Oracle)(nil)
