package nsw

import (
	"fmt"
	"math/rand"
	"slices"

	"metricprox/internal/core"
	"metricprox/internal/prox"
)

// Default builder parameters, applied by Params.WithDefaults and shared
// with the service's /search endpoint so a client that omits the knobs
// gets the same graph the server documents.
const (
	// DefaultM is the default number of links added per inserted node.
	DefaultM = 8
	// DefaultEfConstruction is the default insertion beam width.
	DefaultEfConstruction = 64
	// maxDegreeFactor caps a node's adjacency at maxDegreeFactor·M before
	// the list is shrunk back to the M canonically closest neighbours.
	maxDegreeFactor = 2
)

// Params parameterises a build. The zero value is usable: WithDefaults
// fills M and EfConstruction, and Seed 0 is a valid (deterministic)
// seed.
type Params struct {
	// M is the number of links added per inserted node; a node's list may
	// transiently grow to 2·M through reverse links before it is shrunk
	// back to the M closest. 0 means DefaultM.
	M int
	// EfConstruction is the beam width of the insertion-time search;
	// larger values discover better neighbours at more comparisons.
	// 0 means DefaultEfConstruction.
	EfConstruction int
	// Seed drives the insertion order (a seeded permutation of the
	// universe) and thereby the entry point — the first inserted node.
	// The whole build is a pure function of (distances, Params), so equal
	// seeds give byte-identical graphs.
	Seed int64
	// Landmarks, when non-empty, seeds every beam search (insertion and
	// query) with the already-inserted landmarks in addition to the entry
	// point, so the beam starts next to the query instead of navigating
	// in from a global entry. On a session bootstrapped on the same
	// landmarks the seeding distances are cache hits — the IF already
	// holds every d(landmark, ·) row — which is what makes the seeded
	// build dramatically cheaper in oracle calls than a naive one (see
	// ext13). Nil gives the classic single-entry NSW. The list is part of
	// the build's identity: equal (distances, Params) give byte-identical
	// graphs.
	Landmarks []int
}

// Equal reports whether two Params describe the same build. Params is
// not ==-comparable (Landmarks is a slice); this is the comparison the
// service uses to refuse conflicting /search requests.
func (p Params) Equal(o Params) bool {
	return p.M == o.M && p.EfConstruction == o.EfConstruction &&
		p.Seed == o.Seed && slices.Equal(p.Landmarks, o.Landmarks)
}

// WithDefaults returns p with zero knobs replaced by the package
// defaults.
func (p Params) WithDefaults() Params {
	if p.M <= 0 {
		p.M = DefaultM
	}
	if p.EfConstruction <= 0 {
		p.EfConstruction = DefaultEfConstruction
	}
	if p.EfConstruction < p.M {
		// A beam narrower than M cannot supply M link candidates.
		p.EfConstruction = p.M
	}
	return p
}

// Graph is a built navigable-small-world graph: a directed adjacency
// over the view's universe whose edges carry the exact distances that
// were resolved when they were committed. It is immutable after Build
// and safe for concurrent Search calls.
type Graph struct {
	params   Params
	n        int
	entry    int
	inserted int
	order    []int
	adj      [][]prox.Neighbor
	// present[u] reports whether u's insert has committed — the seeding
	// logic may only start a beam from landmarks already in the graph.
	present []bool
}

// BuildError reports a build aborted by an oracle failure. The graph
// returned alongside it holds the committed prefix: every node whose
// insert completed before the failure, fully linked; the failed node and
// everything after it in the insertion order are absent. Unwrap exposes
// the cause (which wraps core.ErrOracleUnavailable for resolution
// failures), so errors.Is works through it.
type BuildError struct {
	// Inserted is the number of fully committed nodes.
	Inserted int
	// Node is the object whose insert failed.
	Node int
	// Err is the underlying resolution failure.
	Err error
}

// Error formats the abort with its committed-prefix size.
func (e *BuildError) Error() string {
	return fmt.Sprintf("nsw: build aborted inserting node %d (%d nodes committed): %v", e.Node, e.Inserted, e.Err)
}

// Unwrap exposes the underlying resolution failure.
func (e *BuildError) Unwrap() error { return e.Err }

// Build constructs the graph over every object of v, inserting in the
// seeded order and linking each node to the M closest discoveries of an
// efConstruction-wide beam search. All distance comparisons go through
// v's re-authored IF surface (DistIfLess), so the view's bound scheme
// prunes them; the resulting graph is identical across schemes.
//
// On an oracle failure the returned graph is the committed prefix and
// the error is a *BuildError wrapping the cause (never nil graph): the
// caller can serve the partial structure, retry the build, or discard
// it, but it never observes a half-linked node.
func Build(v core.View, p Params) (*Graph, error) {
	p = p.WithDefaults()
	n := v.N()
	g := &Graph{
		params:  p,
		n:       n,
		entry:   -1,
		order:   rand.New(rand.NewSource(p.Seed)).Perm(n),
		adj:     make([][]prox.Neighbor, n),
		present: make([]bool, n),
	}
	for idx, u := range g.order {
		if idx == 0 {
			g.entry = u
			g.present[u] = true
			g.inserted = 1
			continue
		}
		// Search first, mutate after: the beam search pays all the oracle
		// calls of this insert, so an abort here leaves the graph exactly
		// as the previous insert committed it.
		found, err := g.searchLayer(v, u, p.EfConstruction, -1)
		if err != nil {
			return g, &BuildError{Inserted: g.inserted, Node: u, Err: err}
		}
		g.commit(u, found)
		g.present[u] = true
		g.inserted++
	}
	return g, nil
}

// commit links u to the min(M, len(found)) canonically closest
// discoveries and adds the reverse links, shrinking any adjacency that
// grows past 2·M back to its M closest entries. It performs no oracle
// calls: every distance it handles was resolved by the beam search that
// produced found (or by the search that committed the edge originally),
// which is what makes an insert atomic from the oracle's point of view.
func (g *Graph) commit(u int, found []prox.Neighbor) {
	m := g.params.M
	if m > len(found) {
		m = len(found)
	}
	links := found[:m]
	g.adj[u] = append(g.adj[u], links...)
	for _, nb := range links {
		g.adj[nb.ID] = append(g.adj[nb.ID], prox.Neighbor{ID: u, Dist: nb.Dist})
		if len(g.adj[nb.ID]) > maxDegreeFactor*g.params.M {
			prox.SortNeighbors(g.adj[nb.ID])
			g.adj[nb.ID] = g.adj[nb.ID][:g.params.M]
		}
	}
	// Adjacency is kept in canonical (distance, id) order so traversal —
	// and therefore the whole build — is deterministic.
	prox.SortNeighbors(g.adj[u])
	for _, nb := range links {
		prox.SortNeighbors(g.adj[nb.ID])
	}
}

// Params returns the parameters the graph was built with (defaults
// applied).
func (g *Graph) Params() Params { return g.params }

// N returns the universe size the graph was built over.
func (g *Graph) N() int { return g.n }

// Inserted returns the number of committed nodes — N() for a complete
// build, fewer for the committed prefix of an aborted one.
func (g *Graph) Inserted() int { return g.inserted }

// Entry returns the search entry point (the first inserted node), or -1
// for an empty graph.
func (g *Graph) Entry() int { return g.entry }

// Order returns the seeded insertion order; only the first Inserted()
// entries are in the graph. The slice is shared — callers must not
// mutate it.
func (g *Graph) Order() []int { return g.order }

// Neighbors returns u's adjacency in canonical (distance, id) order.
// The slice is shared — callers must not mutate it.
func (g *Graph) Neighbors(u int) []prox.Neighbor { return g.adj[u] }

// Edges returns the number of directed edges in the graph.
func (g *Graph) Edges() int {
	total := 0
	for _, row := range g.adj {
		total += len(row)
	}
	return total
}
