package nsw

import (
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/fcmp"
	"metricprox/internal/prox"
)

// Search answers an approximate k-nearest-neighbour query for object q
// with a beam search of width efSearch (clamped up to k) from the
// graph's entry point. Distances are resolved through v's IF surface, so
// the session's bounds prune query comparisons exactly as they prune
// construction ones; results arrive in canonical (distance, id) order
// with exact distances. q itself is traversed but never reported.
//
// The answer is approximate in the NSW sense — the beam can miss true
// neighbours — but deterministic: it depends only on the graph and the
// view's distances, never on which bound scheme (or which side of the
// service wire) resolves them. On an oracle failure the error wraps
// core.ErrOracleUnavailable and no partial results are returned.
func (g *Graph) Search(v core.View, q, k, efSearch int) ([]prox.Neighbor, error) {
	if q < 0 || q >= g.n {
		return nil, fmt.Errorf("nsw: query %d out of range [0,%d)", q, g.n)
	}
	if k < 1 {
		return nil, fmt.Errorf("nsw: k=%d, want >= 1", k)
	}
	if g.inserted == 0 {
		return []prox.Neighbor{}, nil
	}
	ef := efSearch
	if ef < k {
		ef = k
	}
	res, err := g.searchLayer(v, q, ef, q)
	if err != nil {
		return nil, err
	}
	if len(res) > k {
		res = res[:k]
	}
	return res, nil
}

// searchLayer is the greedy beam search shared by insertion and query:
// starting from the entry point (plus any already-inserted landmark
// seeds, see Params.Landmarks) it repeatedly expands the closest
// unexpanded discovery, admitting a neighbour into the ef-wide result
// beam only when the re-authored IF — DistIfLess(q, x, worst-of-beam) —
// says it improves on the current worst. Candidates the bounds prove
// uncompetitive are pruned without an oracle call; candidates that
// enter the beam always carry exact distances, so the traversal (and
// hence the result) is a pure function of the true distances.
//
// exclude names a node that may be traversed but never reported — the
// query object itself when it is part of the universe (its self-distance
// is 0 by definition, no oracle involved). Pass -1 during insertion,
// where q is not yet in the graph. Results come back sorted in canonical
// (distance, id) order, at most ef of them.
func (g *Graph) searchLayer(v core.View, q, ef, exclude int) ([]prox.Neighbor, error) {
	visited := make([]bool, g.n)
	var cands minHeap    // unexpanded discoveries, closest first
	var results beamList // current ef best, canonical order

	// Seed resolutions are unconditional: the beam has no threshold yet,
	// and on a session bootstrapped on the same landmarks they are cache
	// hits anyway. The closest seed pops first, so the traversal starts
	// next to q rather than navigating in from the global entry.
	start := func(e int) error {
		if visited[e] {
			return nil
		}
		visited[e] = true
		if e == exclude {
			cands.push(prox.Neighbor{ID: e, Dist: 0})
			return nil
		}
		d, err := resolveAlways(v, q, e)
		if err != nil {
			return err
		}
		en := prox.Neighbor{ID: e, Dist: d}
		cands.push(en)
		results.add(en, ef)
		return nil
	}
	if err := start(g.entry); err != nil {
		return nil, err
	}
	for _, l := range g.params.Landmarks {
		if l >= 0 && l < g.n && g.present[l] {
			if err := start(l); err != nil {
				return nil, err
			}
		}
	}

	for cands.len() > 0 {
		c := cands.pop()
		if results.full(ef) {
			// Every later pop is canonically ≥ c; once c cannot displace
			// the beam's worst, nothing on the frontier can.
			if w := results.worst(); fcmp.TieLess(w.Dist, w.ID, c.Dist, c.ID) {
				break
			}
		}
		row := g.adj[c.ID]
		prefetchFrontier(v, q, row, visited)
		for _, nb := range row {
			x := nb.ID
			if visited[x] {
				continue
			}
			visited[x] = true
			if !results.full(ef) {
				d, err := resolveAlways(v, q, x)
				if err != nil {
					return nil, err
				}
				if x != exclude {
					results.add(prox.Neighbor{ID: x, Dist: d}, ef)
				}
				cands.push(prox.Neighbor{ID: x, Dist: d})
				continue
			}
			// The canonical IF: is dist(q, x) smaller than the beam's
			// worst? Bounds that prove it is not save the oracle call.
			d, less, err := resolveIfLess(v, q, x, results.worst().Dist)
			if err != nil {
				return nil, err
			}
			if !less {
				continue
			}
			if x != exclude {
				results.add(prox.Neighbor{ID: x, Dist: d}, ef)
			}
			cands.push(prox.Neighbor{ID: x, Dist: d})
		}
	}
	return results.items, nil
}

// resolveAlways resolves dist(q, x) unconditionally through the IF
// surface (threshold above any possible distance), with error
// propagation when the view supports it.
func resolveAlways(v core.View, q, x int) (float64, error) {
	d, _, err := resolveIfLess(v, q, x, v.MaxDistance()*2)
	return d, err
}

// resolveIfLess routes the comparison through the error-propagating
// surface when the view is fallible (in-process sessions and the remote
// client both are), falling back to the infallible View method
// otherwise.
func resolveIfLess(v core.View, i, j int, c float64) (float64, bool, error) {
	if fv, ok := v.(core.FallibleView); ok {
		return fv.DistIfLessErr(i, j, c)
	}
	d, less := v.DistIfLess(i, j, c)
	return d, less, nil
}

// prefetchFrontier hints a remote view (core.BoundsPrefetcher) that the
// bounds of (q, x) for every unvisited neighbour x on the beam frontier
// are about to be consulted, collapsing the per-candidate bound reads
// into one batch round-trip. A no-op for in-process sessions; purely a
// performance hint, never an answer.
func prefetchFrontier(v core.View, q int, row []prox.Neighbor, visited []bool) {
	p, ok := v.(core.BoundsPrefetcher)
	if !ok {
		return
	}
	pairs := make([]core.Pair, 0, len(row))
	for _, nb := range row {
		if !visited[nb.ID] && nb.ID != q {
			pairs = append(pairs, core.Pair{A: q, B: nb.ID})
		}
	}
	if len(pairs) > 0 {
		p.PrefetchBounds(pairs)
	}
}

// minHeap is a binary min-heap of neighbours in canonical (distance, id)
// order — the frontier of the beam search.
type minHeap struct{ items []prox.Neighbor }

func (h *minHeap) len() int { return len(h.items) }

func (h *minHeap) push(e prox.Neighbor) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !fcmp.TieLess(h.items[i].Dist, h.items[i].ID, h.items[parent].Dist, h.items[parent].ID) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *minHeap) pop() prox.Neighbor {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && fcmp.TieLess(h.items[l].Dist, h.items[l].ID, h.items[smallest].Dist, h.items[smallest].ID) {
			smallest = l
		}
		if r < len(h.items) && fcmp.TieLess(h.items[r].Dist, h.items[r].ID, h.items[smallest].Dist, h.items[smallest].ID) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// beamList is the ef-wide result beam: a small sorted slice in canonical
// order (ef is tens, so insertion sort beats a heap and keeps the worst
// — the IF threshold — at the tail).
type beamList struct{ items []prox.Neighbor }

func (b *beamList) full(ef int) bool { return len(b.items) >= ef }

func (b *beamList) worst() prox.Neighbor { return b.items[len(b.items)-1] }

func (b *beamList) add(e prox.Neighbor, ef int) {
	i := len(b.items)
	b.items = append(b.items, e)
	for i > 0 && fcmp.TieLess(e.Dist, e.ID, b.items[i-1].Dist, b.items[i-1].ID) {
		b.items[i] = b.items[i-1]
		i--
	}
	b.items[i] = e
	if len(b.items) > ef {
		b.items = b.items[:ef]
	}
}
