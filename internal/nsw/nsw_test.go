package nsw

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
)

// newSession builds an in-process session over the planar SF surrogate —
// a pure function of (n, seed), so every test run and every process sees
// identical distances (the same reason the CI smoke jobs use it).
func newSession(t testing.TB, n int, scheme core.Scheme) *core.Session {
	t.Helper()
	space := datasets.SFPOIPlanar(n, 1)
	lms := core.PickLandmarks(n, 8, 1)
	s := core.NewSessionWithLandmarks(metric.NewOracle(space), scheme, lms)
	if scheme != core.SchemeNoop {
		s.Bootstrap(lms)
	}
	return s
}

func dumpString(t *testing.T, g *Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	return buf.String()
}

func TestBuildDeterministic(t *testing.T) {
	const n = 120
	p := Params{M: 6, EfConstruction: 24, Seed: 7}
	g1, err := Build(newSession(t, n, core.SchemeTri), p)
	if err != nil {
		t.Fatalf("build 1: %v", err)
	}
	g2, err := Build(newSession(t, n, core.SchemeTri), p)
	if err != nil {
		t.Fatalf("build 2: %v", err)
	}
	if d1, d2 := dumpString(t, g1), dumpString(t, g2); d1 != d2 {
		t.Fatalf("same seed produced different graphs:\n%s\nvs\n%s", d1, d2)
	}
	if g1.Inserted() != n || g1.N() != n {
		t.Fatalf("complete build: inserted %d of %d", g1.Inserted(), g1.N())
	}
}

// TestBuildSchemeIdentity is the package's output-preservation claim:
// bound schemes change which comparisons are paid for, never how they
// resolve, so Noop (exhaustive) and Tri (pruned) builds are identical —
// and Tri pays strictly fewer oracle calls doing it.
func TestBuildSchemeIdentity(t *testing.T) {
	const n = 120
	p := Params{M: 6, EfConstruction: 24, Seed: 3}

	noop := newSession(t, n, core.SchemeNoop)
	gNoop, err := Build(noop, p)
	if err != nil {
		t.Fatalf("noop build: %v", err)
	}
	tri := newSession(t, n, core.SchemeTri)
	gTri, err := Build(tri, p)
	if err != nil {
		t.Fatalf("tri build: %v", err)
	}
	if dn, dt := dumpString(t, gNoop), dumpString(t, gTri); dn != dt {
		t.Fatalf("noop and tri builds diverged:\n%s\nvs\n%s", dn, dt)
	}
	// Stats().OracleCalls already folds bootstrap calls in.
	nc, tc := noop.Stats().OracleCalls, tri.Stats().OracleCalls
	if tc >= nc {
		t.Fatalf("tri build saved nothing: %d calls (incl. bootstrap) vs noop %d", tc, nc)
	}
	t.Logf("build calls: noop %d, tri %d (%.2fx saved)", nc, tc, float64(nc)/float64(tc))
}

// TestBuildLandmarkSeeded pins the seeded builder's contracts: the
// landmark list is part of the build's identity (seeded ≠ unseeded,
// same seeds ⇒ byte-identical), scheme identity still holds, and the
// seeding is what unlocks the large savings — a bootstrapped Tri
// session answers every d(landmark, ·) resolution from cache, so the
// seeded IF build must beat the unseeded naive one by a wide margin
// (ext13 measures ~1.9× on this space at n=400).
func TestBuildLandmarkSeeded(t *testing.T) {
	// n must be large enough that the one-time bootstrap (8·n calls) is
	// amortised; at n=400 the seeded build clears the gate with margin.
	const n = 400
	lms := core.PickLandmarks(n, 8, 1)
	p := Params{M: 8, EfConstruction: 32, Seed: 3, Landmarks: lms}

	noop := newSession(t, n, core.SchemeNoop)
	gNoop, err := Build(noop, p)
	if err != nil {
		t.Fatalf("noop build: %v", err)
	}
	tri := newSession(t, n, core.SchemeTri)
	gTri, err := Build(tri, p)
	if err != nil {
		t.Fatalf("tri build: %v", err)
	}
	if dn, dt := dumpString(t, gNoop), dumpString(t, gTri); dn != dt {
		t.Fatalf("seeded noop and tri builds diverged:\n%s\nvs\n%s", dn, dt)
	}

	// Seeding changes the traversal, so the graph differs from the
	// unseeded one built from the same insertion order.
	plain, err := Build(newSession(t, n, core.SchemeTri), Params{M: 8, EfConstruction: 32, Seed: 3})
	if err != nil {
		t.Fatalf("plain build: %v", err)
	}
	if dumpString(t, plain) == dumpString(t, gTri) {
		t.Fatal("landmark seeding produced the identical graph to the unseeded build")
	}

	// The headline economics: seeded Tri (bootstrap included) beats the
	// naive unseeded build by well over the ext13 gate's 1.5×.
	naive := newSession(t, n, core.SchemeNoop)
	if _, err := Build(naive, Params{M: 8, EfConstruction: 32, Seed: 3}); err != nil {
		t.Fatalf("naive build: %v", err)
	}
	nc, tc := naive.Stats().OracleCalls, tri.Stats().OracleCalls
	if ratio := float64(nc) / float64(tc); ratio < 1.5 {
		t.Fatalf("seeded tri build ratio %.2f (naive %d vs %d incl. bootstrap) below 1.5", ratio, nc, tc)
	} else {
		t.Logf("build calls: naive %d, seeded tri %d (%.2fx saved)", nc, tc, ratio)
	}

	// Seeded graphs answer seeded queries; recall stays perfect at this
	// scale (the beam starts next to q).
	exact := newSession(t, n, core.SchemeNoop)
	for q := 0; q < n; q += 17 {
		got, err := gTri.Search(tri, q, 5, 24)
		if err != nil {
			t.Fatalf("seeded search %d: %v", q, err)
		}
		want := prox.KNNRow(exact, q, 5)
		for x := range want {
			if got[x].ID != want[x].ID {
				t.Fatalf("seeded search %d: got %v, want %v", q, got, want)
			}
		}
	}
}

// TestSearchRecallFloor pins the approximate-search quality on the
// planar surrogate: recall@10 over every in-universe query must clear
// 0.9 at the default parameters. The floor is deliberately below the
// measured value (1.0 at n=200) so dataset-neutral tweaks don't flake
// the suite, while a navigability regression still fails it.
func TestSearchRecallFloor(t *testing.T) {
	const (
		n        = 200
		k        = 10
		efSearch = 64
		floor    = 0.90
	)
	s := newSession(t, n, core.SchemeTri)
	g, err := Build(s, Params{Seed: 1})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	exact := newSession(t, n, core.SchemeNoop)
	hits, total := 0, 0
	for q := 0; q < n; q++ {
		got, err := g.Search(s, q, k, efSearch)
		if err != nil {
			t.Fatalf("search %d: %v", q, err)
		}
		if len(got) != k {
			t.Fatalf("search %d returned %d results, want %d", q, len(got), k)
		}
		truth := prox.KNNRow(exact, q, k)
		want := make(map[int]bool, k)
		for _, nb := range truth {
			want[nb.ID] = true
		}
		for _, nb := range got {
			if nb.ID == q {
				t.Fatalf("search %d returned the query itself", q)
			}
			if want[nb.ID] {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	t.Logf("recall@%d over %d queries: %.4f", k, n, recall)
	if recall < floor {
		t.Fatalf("recall@%d = %.4f below the %.2f floor", k, recall, floor)
	}
}

func TestSearchArgumentErrors(t *testing.T) {
	s := newSession(t, 40, core.SchemeTri)
	g, err := Build(s, Params{Seed: 1})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := g.Search(s, -1, 5, 16); err == nil {
		t.Error("negative query accepted")
	}
	if _, err := g.Search(s, 40, 5, 16); err == nil {
		t.Error("out-of-range query accepted")
	}
	if _, err := g.Search(s, 0, 0, 16); err == nil {
		t.Error("k=0 accepted")
	}
}

// budgetOracle fails every resolution after the first `budget` calls —
// the sharpest possible mid-build outage, placed exactly where the test
// wants it.
type budgetOracle struct {
	inner  metric.FallibleOracle
	budget int
	calls  int
}

// errBudget is the injected backend failure.
var errBudget = errors.New("budget oracle: out of calls")

func (b *budgetOracle) Len() int { return b.inner.Len() }

func (b *budgetOracle) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	b.calls++
	if b.calls > b.budget {
		return 0, errBudget
	}
	return b.inner.DistanceCtx(ctx, i, j)
}

// TestBuildAbortCommittedPrefix drives the oracle into a permanent
// outage mid-build and checks the degraded-path contract: a typed
// *BuildError wrapping core.ErrOracleUnavailable, a graph holding
// exactly the committed prefix (no half-linked node, no edge touching an
// uninserted node), deterministic across runs, and still searchable.
func TestBuildAbortCommittedPrefix(t *testing.T) {
	const n, budget = 120, 900
	p := Params{M: 6, EfConstruction: 24, Seed: 7}
	space := datasets.SFPOIPlanar(n, 1)
	build := func() (*Graph, *core.Session, error) {
		s := core.NewFallibleSession(&budgetOracle{inner: metric.NewOracle(space), budget: budget}, core.SchemeTri)
		g, err := Build(s, p)
		return g, s, err
	}
	g, _, err := build()
	if err == nil {
		t.Fatalf("budget %d survived a %d-node build; raise the test's pressure", budget, n)
	}
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BuildError: %v", err, err)
	}
	if !errors.Is(err, core.ErrOracleUnavailable) || !errors.Is(err, errBudget) {
		t.Fatalf("error chain lost the cause: %v", err)
	}
	if g == nil {
		t.Fatal("aborted build returned a nil graph")
	}
	if be.Inserted != g.Inserted() || g.Inserted() < 1 || g.Inserted() >= n {
		t.Fatalf("committed prefix %d (error says %d) out of (0, %d)", g.Inserted(), be.Inserted, n)
	}

	// Committed-prefix shape: every node at or past the abort point is
	// untouched — no adjacency of its own, no edge pointing at it.
	inGraph := make(map[int]bool, g.Inserted())
	for _, u := range g.Order()[:g.Inserted()] {
		inGraph[u] = true
	}
	for _, u := range g.Order()[g.Inserted():] {
		if len(g.Neighbors(u)) != 0 {
			t.Fatalf("uninserted node %d has %d neighbours", u, len(g.Neighbors(u)))
		}
	}
	for u := 0; u < n; u++ {
		for _, nb := range g.Neighbors(u) {
			if !inGraph[u] || !inGraph[nb.ID] {
				t.Fatalf("edge %d→%d touches an uninserted node", u, nb.ID)
			}
		}
	}

	// Determinism of the degraded path: the same budget aborts at the
	// same node with the same committed prefix.
	g2, _, err2 := build()
	if err2 == nil {
		t.Fatal("second run did not abort")
	}
	if d1, d2 := dumpString(t, g), dumpString(t, g2); d1 != d2 {
		t.Fatalf("aborted builds diverged:\n%s\nvs\n%s", d1, d2)
	}

	// The committed prefix stays a serviceable index: a healthy session
	// can search it, and only committed nodes are ever reported.
	healthy := newSession(t, n, core.SchemeTri)
	res, err := g.Search(healthy, g.Entry(), 5, 24)
	if err != nil {
		t.Fatalf("search over committed prefix: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("search over committed prefix returned nothing")
	}
	for _, nb := range res {
		if !inGraph[nb.ID] {
			t.Fatalf("search reported uninserted node %d", nb.ID)
		}
	}
}

// TestSearchAbortNoPartialResults pins Search's failure contract: an
// oracle failure yields a nil result, not a half-filled beam.
func TestSearchAbortNoPartialResults(t *testing.T) {
	const n = 120
	space := datasets.SFPOIPlanar(n, 1)
	s := core.NewFallibleSession(metric.NewOracle(space), core.SchemeTri)
	g, err := Build(s, Params{M: 6, EfConstruction: 24, Seed: 7})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// A fresh session with a one-call budget fails inside the beam.
	starved := core.NewFallibleSession(&budgetOracle{inner: metric.NewOracle(space), budget: 1}, core.SchemeNoop)
	res, err := g.Search(starved, 0, 5, 24)
	if err == nil {
		t.Fatal("starved search succeeded")
	}
	if !errors.Is(err, core.ErrOracleUnavailable) {
		t.Fatalf("starved search error %v does not wrap ErrOracleUnavailable", err)
	}
	if res != nil {
		t.Fatalf("starved search returned partial results: %v", res)
	}
}

// TestParamsWithDefaults pins the documented default knobs.
func TestParamsWithDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.M != DefaultM || p.EfConstruction != DefaultEfConstruction {
		t.Fatalf("defaults = %+v, want M=%d efc=%d", p, DefaultM, DefaultEfConstruction)
	}
	if q := (Params{M: 16, EfConstruction: 4}).WithDefaults(); q.EfConstruction != 16 {
		t.Fatalf("efConstruction not clamped up to M: %+v", q)
	}
}

// ExampleBuild demonstrates the build-then-query flow the service's
// /search endpoint wraps.
func ExampleBuild() {
	space := datasets.SFPOIPlanar(60, 1)
	s := core.NewSession(metric.NewOracle(space), core.SchemeTri)
	g, err := Build(s, Params{M: 4, EfConstruction: 16, Seed: 1})
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	res, err := g.Search(s, 0, 3, 16)
	if err != nil {
		fmt.Println("search:", err)
		return
	}
	fmt.Println(g.Inserted(), "nodes,", len(res), "answers")
	// Output: 60 nodes, 3 answers
}
