// Package nsw builds and queries a navigable-small-world proximity
// graph (Malkov et al., the single-layer ancestor of HNSW) whose every
// distance comparison flows through the paper's re-authored IF plug-in,
// so any core bound scheme (Tri, SPLUB, ADM, …) prunes construction and
// query comparisons without changing the structure that gets built.
//
// The builder inserts objects in a seeded deterministic order; each
// insert runs a greedy beam search (width Params.EfConstruction) over
// the graph built so far and links the new node to its Params.M closest
// discoveries. Queries reuse the same beam search at width efSearch.
// The per-candidate IF — "is dist(q, x) smaller than the current worst
// of the beam?" — is exactly the paper's canonical comparison,
// re-authored as core.View.DistIfLess: when the session's bounds prove
// the candidate cannot enter the beam, no oracle call is paid.
//
// Three contracts matter to callers (docs/SEARCH.md is the prose
// reference, DESIGN.md §13 the design rationale):
//
//   - Determinism. Build is a pure function of (view's distances,
//     Params). The same seed produces the byte-identical graph on every
//     run, every bound scheme, and both sides of the service wire —
//     remote builds through internal/proxclient dump byte-for-byte equal
//     to in-process builds (CI's server-smoke job diffs them).
//   - Output identity across schemes. Bound schemes change which
//     comparisons are paid for, never how they resolve, so the graph —
//     an approximate structure — is still identical between a raw
//     (Noop) build and a bound-pruned build. The ext13 experiment
//     measures the saved oracle calls at this pinned output.
//   - Committed prefix under failure. When the oracle becomes
//     unavailable mid-build, Build returns the graph holding exactly the
//     nodes whose inserts fully committed, plus a *BuildError wrapping
//     the cause; a partially linked node is never visible.
package nsw
