package nsw

import (
	"bufio"
	"io"
	"strconv"
)

// Dump writes the graph in its canonical diffable text form: a header
// line carrying the build parameters and committed size, then one line
// per object in id order — "u<tab>id:dist …" with distances in
// strconv's shortest exact round-trip form. Two graphs are equal iff
// their dumps are byte-identical, which is how the CI server-smoke job
// proves remote (proxclient-driven) builds equal in-process ones.
func (g *Graph) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("nsw m=" + strconv.Itoa(g.params.M) +
		" efc=" + strconv.Itoa(g.params.EfConstruction) +
		" seed=" + strconv.FormatInt(g.params.Seed, 10) +
		" lm=")
	if len(g.params.Landmarks) == 0 {
		bw.WriteByte('-')
	}
	for x, l := range g.params.Landmarks {
		if x > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(strconv.Itoa(l))
	}
	bw.WriteString(" n=" + strconv.Itoa(g.n) +
		" inserted=" + strconv.Itoa(g.inserted) +
		" entry=" + strconv.Itoa(g.entry) + "\n")
	for u, row := range g.adj {
		bw.WriteString(strconv.Itoa(u))
		bw.WriteByte('\t')
		for x, nb := range row {
			if x > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(strconv.Itoa(nb.ID))
			bw.WriteByte(':')
			bw.WriteString(strconv.FormatFloat(nb.Dist, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
