package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossConstruction(t *testing.T) {
	// The whole membership design rests on this: every participant
	// computes ownership locally, so the same (names, vnodes, seed) triple
	// must give identical owners regardless of input order or process.
	a, err := NewRing([]string{"n1", "n2", "n3"}, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("session-%d", k)
		ga, gb := a.Owners(key, 2), b.Owners(key, 2)
		if len(ga) != 2 || len(gb) != 2 || ga[0] != gb[0] || ga[1] != gb[1] {
			t.Fatalf("key %q: owners differ across construction order: %v vs %v", key, ga, gb)
		}
	}
}

func TestRingSeedChangesPlacement(t *testing.T) {
	a, _ := NewRing([]string{"n1", "n2", "n3"}, 64, 1)
	b, _ := NewRing([]string{"n1", "n2", "n3"}, 64, 2)
	moved := 0
	for k := 0; k < 300; k++ {
		key := fmt.Sprintf("s%d", k)
		if a.Primary(key) != b.Primary(key) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("different seeds produced identical placement for 300 keys")
	}
}

func TestRingOwnersDistinctAndPrimaryFirst(t *testing.T) {
	r, _ := NewRing([]string{"a", "b", "c", "d"}, 64, 7)
	for k := 0; k < 100; k++ {
		key := fmt.Sprintf("x%d", k)
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("key %q: got %d owners, want 3", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %q in %v", key, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Primary(key) {
			t.Fatalf("key %q: Owners[0]=%q != Primary=%q", key, owners[0], r.Primary(key))
		}
	}
	// Asking for more owners than nodes returns all nodes.
	if got := r.Owners("y", 10); len(got) != 4 {
		t.Fatalf("Owners(k>nodes) returned %d, want 4", len(got))
	}
}

func TestRingBalance(t *testing.T) {
	// With 64 vnodes per node, primary ownership over many keys should be
	// roughly uniform; a >3x skew would mean the hash mixes badly.
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r, _ := NewRing(nodes, 64, 99)
	counts := map[string]int{}
	const keys = 5000
	for k := 0; k < keys; k++ {
		counts[r.Primary(fmt.Sprintf("sess-%d", k))]++
	}
	want := keys / len(nodes)
	for _, n := range nodes {
		c := counts[n]
		if c < want/3 || c > want*3 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d): unacceptable skew %v", n, c, keys, want, counts)
		}
	}
}

func TestRingJoinMovesBoundedShare(t *testing.T) {
	// Consistent hashing's defining property: adding one node moves only
	// about 1/(n+1) of the keys, and never between two old nodes — a key's
	// primary either stays or becomes the newcomer. Rebalance relies on
	// this so a join costs one node's worth of state transfer, not a
	// reshuffle.
	before, _ := NewRing([]string{"a", "b", "c"}, 64, 5)
	after, _ := NewRing([]string{"a", "b", "c", "d"}, 64, 5)
	const keys = 4000
	moved, movedElsewhere := 0, 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("s%d", k)
		pb, pa := before.Primary(key), after.Primary(key)
		if pb != pa {
			moved++
			if pa != "d" {
				movedElsewhere++
			}
		}
	}
	if movedElsewhere != 0 {
		t.Fatalf("%d keys moved between pre-existing nodes on join; consistent hashing must only move keys to the newcomer", movedElsewhere)
	}
	// Expected share ~ keys/4 = 1000; allow generous slack for vnode noise.
	if moved < keys/8 || moved > keys/2 {
		t.Fatalf("join moved %d of %d keys, want roughly %d", moved, keys, keys/4)
	}
}

func TestParseNodes(t *testing.T) {
	nodes, err := ParseNodes("a=http://h1:7060, b=http://h2:7060 ,c=http://h3:7060")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[1].Name != "b" || nodes[1].URL != "http://h2:7060" {
		t.Fatalf("ParseNodes = %+v", nodes)
	}
	for _, bad := range []string{"", "nourl", "=http://x", ","} {
		if _, err := ParseNodes(bad); err == nil {
			t.Fatalf("ParseNodes(%q) accepted", bad)
		}
	}
}

func TestTopologyOwnersAndPeers(t *testing.T) {
	topo, err := NewTopology(Config{
		Self: "b",
		Nodes: []Node{
			{Name: "a", URL: "http://h1:1"},
			{Name: "b", URL: "http://h2:1"},
			{Name: "c", URL: "http://h3:1"},
		},
		Replicas: 1,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 50; k++ {
		key := fmt.Sprintf("sess%d", k)
		owners := topo.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("key %q: %d owners, want 2 (primary + 1 replica)", key, len(owners))
		}
		peers := topo.Peers(key)
		for _, p := range peers {
			if p.Name == "b" {
				t.Fatalf("key %q: Peers contains self", key)
			}
		}
		selfOwns := owners[0].Name == "b" || owners[1].Name == "b"
		if topo.IsOwner(key) != selfOwns {
			t.Fatalf("key %q: IsOwner=%v but owners=%v", key, topo.IsOwner(key), owners)
		}
		if selfOwns && len(peers) != 1 {
			t.Fatalf("key %q: self owns but %d peers (want 1)", key, len(peers))
		}
		if !selfOwns && len(peers) != 2 {
			t.Fatalf("key %q: self not owner but %d peers (want 2)", key, len(peers))
		}
	}
	// Replicas clamped to cluster size.
	small, err := NewTopology(Config{Nodes: []Node{{Name: "solo", URL: "http://x:1"}}, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := small.Owners("any"); len(got) != 1 {
		t.Fatalf("single-node topology returned %d owners", len(got))
	}
}

func TestTopologyValidation(t *testing.T) {
	cases := []Config{
		{},
		{Nodes: []Node{{Name: "", URL: "http://x:1"}}},
		{Nodes: []Node{{Name: "a", URL: "::bad::"}}},
		{Nodes: []Node{{Name: "a", URL: "http://x:1"}, {Name: "a", URL: "http://y:1"}}},
		{Self: "ghost", Nodes: []Node{{Name: "a", URL: "http://x:1"}}},
	}
	for i, cfg := range cases {
		if _, err := NewTopology(cfg); err == nil {
			t.Fatalf("case %d: NewTopology(%+v) accepted", i, cfg)
		}
	}
}
