package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"

	"metricprox/internal/obs"
)

// DefaultProbeInterval is the health-probe period when ProberConfig.
// Interval is 0.
const DefaultProbeInterval = 500 * time.Millisecond

// DefaultProbeTimeout bounds one probe request when ProberConfig.Timeout
// is 0.
const DefaultProbeTimeout = 2 * time.Second

// MetricNodeUp is the per-node liveness gauge (1 up, 0 down), labelled by
// node, exported by the Prober. Documented in docs/METRICS.md.
const MetricNodeUp = "cluster_node_up"

// ProberConfig parameterises a Prober.
type ProberConfig struct {
	// Topology supplies the members to probe.
	Topology *Topology
	// HTTPClient issues the probes; nil means a client with
	// DefaultProbeTimeout.
	HTTPClient *http.Client
	// Interval is the probe period; 0 means DefaultProbeInterval.
	Interval time.Duration
	// Timeout bounds one probe; 0 means DefaultProbeTimeout.
	Timeout time.Duration
	// Registry receives the cluster_node_up gauges when non-nil.
	Registry *obs.Registry
	// Logf receives up/down transition log lines when non-nil.
	Logf func(format string, args ...any)
}

// Prober polls every member's /healthz and maintains an up/down view the
// router consults to skip known-dead nodes without paying a connection
// timeout per request. The view is advisory: a node marked down is tried
// last, not never — probes and traffic can disagree for one interval, and
// correctness never depends on the prober (the router's per-request
// failover is the actual liveness mechanism).
type Prober struct {
	cfg  ProberConfig
	hc   *http.Client
	mu   sync.Mutex
	up   map[string]bool
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewProber builds a Prober over the topology's members. Every node
// starts presumed up; call Start to begin polling.
func NewProber(cfg ProberConfig) *Prober {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultProbeInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultProbeTimeout
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: cfg.Timeout}
	}
	p := &Prober{
		cfg:  cfg,
		hc:   hc,
		up:   make(map[string]bool),
		stop: make(chan struct{}),
	}
	for _, n := range cfg.Topology.Nodes() {
		p.up[n.Name] = true
		p.gauge(n.Name, true)
	}
	return p
}

// Start begins the background polling loop.
func (p *Prober) Start() {
	p.wg.Add(1)
	go p.loop()
}

// Stop ends the polling loop and waits for it to exit.
func (p *Prober) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.wg.Wait()
}

// Up reports the last probe's verdict for the named node; unknown names
// report up (fail open — the router's failover is the safety net).
func (p *Prober) Up(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	up, ok := p.up[name]
	return !ok || up
}

// Snapshot returns the current up/down view keyed by node name.
func (p *Prober) Snapshot() map[string]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]bool, len(p.up))
	for k, v := range p.up {
		out[k] = v
	}
	return out
}

// MarkDown records an observed failure for the named node without waiting
// for the next probe cycle — the router calls this when a request to the
// node fails at the transport, so the very next request skips it.
func (p *Prober) MarkDown(name string) { p.set(name, false) }

// loop polls every member each interval.
func (p *Prober) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		// Probe immediately on start, then on each tick.
		for _, n := range p.cfg.Topology.Nodes() {
			p.set(n.Name, p.probe(n))
		}
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
	}
}

// probe performs one /healthz round-trip. Any 2xx counts as up — a
// draining node still answers healthz (status "draining"), and the router
// learns about draining from the request path's 503 body, not from here.
func (p *Prober) probe(n Node) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// set records a verdict, logging transitions.
func (p *Prober) set(name string, up bool) {
	p.mu.Lock()
	prev, known := p.up[name]
	p.up[name] = up
	p.mu.Unlock()
	if known && prev != up && p.cfg.Logf != nil {
		state := "down"
		if up {
			state = "up"
		}
		p.cfg.Logf("cluster: node %s is %s", name, state)
	}
	if prev != up || !known {
		p.gauge(name, up)
	}
}

// gauge publishes the node's liveness gauge.
func (p *Prober) gauge(name string, up bool) {
	if p.cfg.Registry == nil {
		return
	}
	v := 0.0
	if up {
		v = 1.0
	}
	p.cfg.Registry.Gauge(MetricNodeUp, obs.Label{Key: "node", Value: name}).Set(v)
}
