// Package cluster shards metricproxd across nodes. It contributes the
// three pieces that turn a set of independent daemons into one service:
//
//   - a consistent-hash ring (virtual nodes, deterministic seed) mapping
//     each session name to a primary plus R replicas, shared byte-for-byte
//     by the router, the smart client, and every node;
//   - an asynchronous bound-state replicator that tails each hosted
//     session's cachestore log and streams committed exact-distance
//     records to the session's replica owners with sequence-numbered,
//     idempotent, resumable appends;
//   - a thin reverse-proxy router that places requests on the primary and
//     falls through the replica list when a node is dead or draining.
//
// The unit of replication is the cachestore record — an exact resolved
// distance. Distances are deterministic functions of their pair, so a
// replica's log can lag or lose a suffix but can never disagree with the
// primary on a value: promotion replays a strictly-sound prefix, and the
// only cost of lag is re-paying the oracle for the lost tail. That is the
// paper's economics applied to failover — bound state is an accelerant,
// never a correctness dependency, so replicating it asynchronously is
// safe by construction (docs/CLUSTER.md walks the argument).
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node when
// Config.VNodes is 0. 64 points per node keeps the ownership imbalance of
// small clusters within a few percent without making ring construction
// noticeable.
const DefaultVNodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int // index into the node-name slice the ring was built from
}

// Ring is a consistent-hash ring over a fixed set of node names. It is
// immutable after construction and safe for concurrent use. Every
// participant — router, smart client, node — builds the ring from the
// same (names, vnodes, seed) triple and therefore computes identical
// ownership; there is no coordination protocol, only shared arithmetic.
type Ring struct {
	names  []string
	points []ringPoint
}

// NewRing builds a ring with vnodes virtual nodes per name (0 means
// DefaultVNodes), hashed with the given seed. Names must be non-empty and
// unique; order does not matter — ownership depends only on the set.
func NewRing(names []string, vnodes int, seed int64) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(names))
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n)
		}
		seen[n] = true
	}
	r := &Ring{
		names:  sorted,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for ni, name := range sorted {
		for v := 0; v < vnodes; v++ {
			h := hashKey(fmt.Sprintf("%s#%d", name, v), seed)
			r.points = append(r.points, ringPoint{hash: h, node: ni})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on node index so hash collisions cannot make ownership
		// depend on sort stability.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Owners returns the k distinct nodes owning key, primary first, walking
// the ring clockwise from the key's hash. k greater than the node count
// returns every node. The result is freshly allocated.
func (r *Ring) Owners(key string, k int) []string {
	if k > len(r.names) {
		k = len(r.names)
	}
	if k <= 0 {
		return nil
	}
	h := hashKey(key, ringKeySeed)
	// First point at or after h, wrapping.
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, k)
	taken := make(map[int]bool, k)
	for step := 0; step < len(r.points) && len(owners) < k; step++ {
		p := r.points[(idx+step)%len(r.points)]
		if !taken[p.node] {
			taken[p.node] = true
			owners = append(owners, r.names[p.node])
		}
	}
	return owners
}

// Primary returns the first owner of key.
func (r *Ring) Primary(key string) string { return r.Owners(key, 1)[0] }

// Nodes returns the ring's node names, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.names...) }

// ringKeySeed salts session-name hashes so they live in a different part
// of the 64-bit space than vnode hashes built with the same seed. The
// node seed itself stays configurable (Config.Seed) because vnode
// placement is what operators may want to re-roll.
const ringKeySeed = int64(0x6d7078726b657973) // "mpxrkeys"

// hashKey is FNV-1a 64 over s with the seed folded into the offset basis.
// FNV is not a great avalanche hash, but over "name#vnode" strings with
// 64 vnodes per node the dispersion is comfortably sufficient, and it is
// dependency-free and trivially portable to any other client
// implementation that wants to compute ownership.
func hashKey(s string, seed int64) uint64 {
	const (
		offset64 = uint64(14695981039346656037)
		prime64  = uint64(1099511628211)
	)
	h := offset64 ^ uint64(seed)
	// Mix the seed's high bits back in so seeds differing only above bit
	// 31 still produce different rings.
	h = (h ^ (uint64(seed) >> 32)) * prime64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}
