package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"metricprox/internal/service/api"
)

// fakeNode is a scripted upstream: it records the paths it served and
// answers according to its mode.
type fakeNode struct {
	name  string
	mode  atomic.Value // string: "ok", "dead", "draining", "overloaded", "badgateway"
	hits  atomic.Int64
	paths chan string
	srv   *httptest.Server
}

func newFakeNode(t *testing.T, name string) *fakeNode {
	t.Helper()
	n := &fakeNode{name: name, paths: make(chan string, 64)}
	n.mode.Store("ok")
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.hits.Add(1)
		select {
		case n.paths <- r.Method + " " + r.URL.RequestURI():
		default:
		}
		switch n.mode.Load().(string) {
		case "dead":
			// Kill the connection without a response: a transport error.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("fake node cannot hijack")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
		case "draining":
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.ErrorBody{Code: api.CodeDraining, Message: "bye"})
		case "overloaded":
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.ErrorBody{Code: api.CodeOverloaded, Message: "busy"})
		case "badgateway":
			w.WriteHeader(http.StatusBadGateway)
			json.NewEncoder(w).Encode(api.ErrorBody{Code: api.CodeOracleUnavailable, Message: "oracle down"})
		default:
			if r.URL.Path == "/v1/sessions" && r.Method == http.MethodGet {
				json.NewEncoder(w).Encode(api.SessionList{Sessions: []string{"on-" + name}})
				return
			}
			body, _ := io.ReadAll(r.Body)
			json.NewEncoder(w).Encode(map[string]string{"node": name, "echo": string(body)})
		}
	}))
	t.Cleanup(n.srv.Close)
	return n
}

// routerUnderTest builds a router over the given fake nodes, returning
// the router's test server and the topology.
func routerUnderTest(t *testing.T, nodes ...*fakeNode) (*httptest.Server, *Topology) {
	t.Helper()
	cfg := Config{Replicas: len(nodes) - 1} // all nodes own every session: failover order = ring order
	for _, n := range nodes {
		cfg.Nodes = append(cfg.Nodes, Node{Name: n.name, URL: n.srv.URL})
	}
	topo, err := NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(RouterConfig{Topology: topo})
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	return srv, topo
}

// nodeByName maps the fake nodes for owner-order lookups.
func nodeByName(nodes ...*fakeNode) map[string]*fakeNode {
	m := make(map[string]*fakeNode, len(nodes))
	for _, n := range nodes {
		m[n.name] = n
	}
	return m
}

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestRouterRoutesToPrimary(t *testing.T) {
	a, b, c := newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")
	srv, topo := routerUnderTest(t, a, b, c)
	byName := nodeByName(a, b, c)

	resp, body := postJSON(t, srv.URL+"/v1/sessions/s1/dist", `{"i":1,"j":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	primary := topo.Owners("s1")[0].Name
	var got map[string]string
	json.Unmarshal([]byte(body), &got)
	if got["node"] != primary {
		t.Fatalf("request served by %q, ring primary is %q", got["node"], primary)
	}
	if byName[primary].hits.Load() != 1 {
		t.Fatalf("primary saw %d hits, want 1", byName[primary].hits.Load())
	}
}

func TestRouterFailsOverOnDeadPrimary(t *testing.T) {
	a, b, c := newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")
	srv, topo := routerUnderTest(t, a, b, c)
	byName := nodeByName(a, b, c)

	owners := topo.Owners("s2")
	byName[owners[0].Name].mode.Store("dead")

	resp, body := postJSON(t, srv.URL+"/v1/sessions/s2/dist", `{"i":1,"j":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover answered %d: %s", resp.StatusCode, body)
	}
	var got map[string]string
	json.Unmarshal([]byte(body), &got)
	if got["node"] != owners[1].Name {
		t.Fatalf("failover served by %q, want second owner %q", got["node"], owners[1].Name)
	}
}

func TestRouterFailsOverOnDraining(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	srv, topo := routerUnderTest(t, a, b)
	byName := nodeByName(a, b)
	owners := topo.Owners("s3")
	byName[owners[0].Name].mode.Store("draining")

	resp, body := postJSON(t, srv.URL+"/v1/sessions/s3/dist", `{"i":0,"j":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining failover answered %d: %s", resp.StatusCode, body)
	}
	var got map[string]string
	json.Unmarshal([]byte(body), &got)
	if got["node"] != owners[1].Name {
		t.Fatalf("served by %q, want %q", got["node"], owners[1].Name)
	}
}

func TestRouterRelaysOverloadedWithoutFailover(t *testing.T) {
	// 503/overloaded is per-session backpressure, not node death: the
	// router must relay it (with Retry-After) and NOT try the replica.
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	srv, topo := routerUnderTest(t, a, b)
	byName := nodeByName(a, b)
	owners := topo.Owners("s4")
	byName[owners[0].Name].mode.Store("overloaded")

	resp, body := postJSON(t, srv.URL+"/v1/sessions/s4/dist", `{"i":0,"j":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	var eb api.ErrorBody
	json.Unmarshal([]byte(body), &eb)
	if eb.Code != api.CodeOverloaded {
		t.Fatalf("code %q, want overloaded", eb.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("Retry-After header not relayed")
	}
	if byName[owners[1].Name].hits.Load() != 0 {
		t.Fatal("router tried the replica for a backpressure 503")
	}
}

func TestRouterRelaysOracleUnavailableWithoutFailover(t *testing.T) {
	// 502/oracle_unavailable means the shared oracle failed the node, not
	// that the node died; retrying elsewhere would just re-pay the outage.
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	srv, topo := routerUnderTest(t, a, b)
	byName := nodeByName(a, b)
	owners := topo.Owners("s5")
	byName[owners[0].Name].mode.Store("badgateway")

	resp, body := postJSON(t, srv.URL+"/v1/sessions/s5/dist", `{"i":0,"j":1}`)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502: %s", resp.StatusCode, body)
	}
	if byName[owners[1].Name].hits.Load() != 0 {
		t.Fatal("router failed over an oracle_unavailable answer")
	}
}

func TestRouterAllOwnersDead(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	srv, _ := routerUnderTest(t, a, b)
	a.mode.Store("dead")
	b.mode.Store("dead")
	resp, body := postJSON(t, srv.URL+"/v1/sessions/s6/dist", `{"i":0,"j":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	var eb api.ErrorBody
	json.Unmarshal([]byte(body), &eb)
	if eb.Code != api.CodeUnavailable {
		t.Fatalf("code %q, want unavailable", eb.Code)
	}
}

func TestRouterCreateRoutedByBodyName(t *testing.T) {
	a, b, c := newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")
	srv, topo := routerUnderTest(t, a, b, c)
	byName := nodeByName(a, b, c)

	resp, body := postJSON(t, srv.URL+"/v1/sessions", `{"name":"s7","scheme":"tri"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create answered %d: %s", resp.StatusCode, body)
	}
	primary := topo.Owners("s7")[0].Name
	var got map[string]string
	json.Unmarshal([]byte(body), &got)
	if got["node"] != primary {
		t.Fatalf("create served by %q, ring primary %q", got["node"], primary)
	}
	if !strings.Contains(got["echo"], `"s7"`) {
		t.Fatalf("create body not forwarded verbatim: %q", got["echo"])
	}
	_ = byName

	// A create without a name is refused at the router.
	resp, _ = postJSON(t, srv.URL+"/v1/sessions", `{"scheme":"tri"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless create answered %d, want 400", resp.StatusCode)
	}
}

func TestRouterListUnion(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	srv, _ := routerUnderTest(t, a, b)
	resp, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list api.SessionList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 2 || list.Sessions[0] != "on-a" || list.Sessions[1] != "on-b" {
		t.Fatalf("union list = %v, want [on-a on-b]", list.Sessions)
	}
}

func TestRouterHealthz(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	srv, _ := routerUnderTest(t, a, b)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.ClusterHealthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Nodes["a"] != "up" || h.Nodes["b"] != "up" {
		t.Fatalf("healthz = %+v", h)
	}
}
