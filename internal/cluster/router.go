package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"metricprox/internal/obs"
	"metricprox/internal/service/api"
)

// Router metric names. Documented in docs/METRICS.md.
const (
	// MetricRouterRequests counts proxied requests by the node that
	// ultimately answered (label node) and its HTTP status (label code).
	MetricRouterRequests = "cluster_requests_total"
	// MetricRouterFailovers counts requests that fell through at least one
	// owner before being answered — the headline number the kill-a-node
	// smoke test asserts is ≥ 1.
	MetricRouterFailovers = "cluster_failovers_total"
	// MetricRouterExhausted counts requests for which every owner failed
	// (answered 503 unavailable).
	MetricRouterExhausted = "cluster_exhausted_total"
)

// maxProxyBody caps a buffered request body (64 MiB — far above any
// legitimate API payload; a batch of 10k ops is ~1 MiB).
const maxProxyBody = 64 << 20

// RouterConfig parameterises a Router.
type RouterConfig struct {
	// Topology supplies the ring; Self may be empty (the router is not a
	// member).
	Topology *Topology
	// Prober supplies the node liveness view; nil disables reordering
	// (every request walks owners in ring order).
	Prober *Prober
	// HTTPClient issues upstream requests; nil means http.DefaultClient
	// semantics with no overall timeout (work endpoints can legitimately
	// run long — per-request deadlines belong to the caller's context,
	// which is propagated).
	HTTPClient *http.Client
	// Registry receives the cluster_* router instruments when non-nil.
	Registry *obs.Registry
	// Logf receives failover log lines when non-nil.
	Logf func(format string, args ...any)
}

// Router is the thin reverse proxy in front of a metricproxd cluster. It
// terminates nothing and caches nothing: each request is forwarded to the
// named session's primary, falling through the replica list when an owner
// is unreachable, answers 502/504 at the transport level, or reports
// draining. A 503/overloaded from a live node is relayed untouched — that
// is per-session backpressure, and the replicas do not host the session's
// work queue, so failing over would just build the session twice.
//
// The router is stateless: killing it loses nothing, running two behind a
// TCP balancer needs no coordination (they compute the same ring).
type Router struct {
	cfg RouterConfig
	hc  *http.Client

	failovers *obs.Counter
	exhausted *obs.Counter
	requests  func(node string, code int) *obs.Counter
}

// NewRouter builds a Router over the topology.
func NewRouter(cfg RouterConfig) *Router {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Router{
		cfg:       cfg,
		hc:        hc,
		failovers: reg.Counter(MetricRouterFailovers),
		exhausted: reg.Counter(MetricRouterExhausted),
		requests: func(node string, code int) *obs.Counter {
			return reg.Counter(MetricRouterRequests,
				obs.Label{Key: "node", Value: node},
				obs.Label{Key: "code", Value: fmt.Sprintf("%d", code)})
		},
	}
}

// Handler returns the router's HTTP handler: /healthz plus every /v1/
// route, forwarded by session ownership.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/sessions", rt.handleList)
	mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	mux.HandleFunc("/v1/sessions/{name}", rt.handleSession)
	mux.HandleFunc("/v1/sessions/{name}/{op}", rt.handleSession)
	mux.HandleFunc("/v1/repl/{name}", rt.handleSession)
	return mux
}

// handleHealthz answers with the router's own liveness and its probe view
// of the members.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	nodes := make(map[string]string, len(rt.cfg.Topology.Nodes()))
	for _, n := range rt.cfg.Topology.Nodes() {
		state := "up"
		if rt.cfg.Prober != nil && !rt.cfg.Prober.Up(n.Name) {
			state = "down"
		}
		nodes[n.Name] = state
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(api.ClusterHealthz{Status: "ok", Nodes: nodes})
}

// handleList fans GET /v1/sessions out to every member and answers the
// sorted union — a session lives on one primary, so no single node knows
// the full list.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	nodes := rt.cfg.Topology.Nodes()
	var mu sync.Mutex
	set := make(map[string]bool)
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n Node) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, n.URL+"/v1/sessions", nil)
			if err != nil {
				return
			}
			resp, err := rt.hc.Do(req)
			if err != nil {
				return // a dead node simply contributes nothing to the union
			}
			defer resp.Body.Close()
			var list api.SessionList
			if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&list) != nil {
				return
			}
			mu.Lock()
			for _, s := range list.Sessions {
				set[s] = true
			}
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	names := make([]string, 0, len(set))
	for s := range set {
		names = append(names, s)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(api.SessionList{Sessions: names})
}

// handleCreate routes POST /v1/sessions by the name inside the body.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "reading body: "+err.Error())
		return
	}
	var peek struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &peek); err != nil || peek.Name == "" {
		rt.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "create body must carry a session name")
		return
	}
	rt.proxy(w, r, peek.Name, body)
}

// handleSession routes every per-session path by the {name} segment.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "reading body: "+err.Error())
		return
	}
	rt.proxy(w, r, r.PathValue("name"), body)
}

// proxy forwards the request to the session's owners in failover order,
// relaying the first answer that is not a node-death symptom.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, session string, body []byte) {
	owners := rt.candidates(session)
	var lastErr string
	for i, node := range owners {
		resp, err := rt.forward(r, node, body)
		if err != nil {
			// Transport-level failure: the node is gone or unreachable.
			if rt.cfg.Prober != nil {
				rt.cfg.Prober.MarkDown(node.Name)
			}
			lastErr = fmt.Sprintf("%s: %v", node.Name, err)
			rt.logf("cluster: router: %s %s via %s failed: %v", r.Method, r.URL.Path, node.Name, err)
			if i+1 < len(owners) {
				rt.failovers.Inc()
			}
			continue
		}
		relay, respBody := rt.classify(resp)
		if relay {
			rt.requests(node.Name, resp.StatusCode).Inc()
			rt.relay(w, resp, respBody)
			return
		}
		lastErr = fmt.Sprintf("%s: status %d", node.Name, resp.StatusCode)
		rt.logf("cluster: router: %s %s via %s answered %d, trying next owner", r.Method, r.URL.Path, node.Name, resp.StatusCode)
		if i+1 < len(owners) {
			rt.failovers.Inc()
		}
	}
	rt.exhausted.Inc()
	rt.writeError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
		fmt.Sprintf("no owner of session %q reachable (last: %s)", session, lastErr))
}

// candidates returns the session's owners with known-down nodes demoted
// to the back — they are still tried (the prober can be stale in both
// directions) but no longer cost every request a connect timeout.
func (rt *Router) candidates(session string) []Node {
	owners := rt.cfg.Topology.Owners(session)
	if rt.cfg.Prober == nil {
		return owners
	}
	up := make([]Node, 0, len(owners))
	var down []Node
	for _, n := range owners {
		if rt.cfg.Prober.Up(n.Name) {
			up = append(up, n)
		} else {
			down = append(down, n)
		}
	}
	return append(up, down...)
}

// forward issues the upstream copy of r to node, propagating the caller's
// context so client-side cancellation crosses the proxy.
func (rt *Router) forward(r *http.Request, node Node, body []byte) (*http.Response, error) {
	url := node.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return rt.hc.Do(req)
}

// classify decides whether an upstream response is relayed to the client
// or treated as a node-death symptom worth failing over. It reads the
// body either way (the relay needs it, the draining check inspects it).
func (rt *Router) classify(resp *http.Response) (relay bool, body []byte) {
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	resp.Body.Close()
	if err != nil {
		return false, nil // truncated upstream answer: try the next owner
	}
	switch resp.StatusCode {
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		// The node's own upstream (the oracle) failed it, or an
		// intermediary did; 502 oracle_unavailable is NOT retried on a
		// replica — it would re-pay the oracle outage elsewhere — but a
		// bare 502/504 with no API code is an infrastructure symptom.
		var eb api.ErrorBody
		if json.Unmarshal(body, &eb) == nil && eb.Code == api.CodeOracleUnavailable {
			return true, body
		}
		return false, body
	case http.StatusServiceUnavailable:
		// Draining means the node is going away: fail over. Overloaded is
		// per-session backpressure: relay, the client must back off.
		var eb api.ErrorBody
		if json.Unmarshal(body, &eb) == nil && eb.Code == api.CodeDraining {
			return false, body
		}
		return true, body
	default:
		return true, body
	}
}

// relay copies an upstream response to the client.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// writeError emits the standard JSON error envelope.
func (rt *Router) writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(api.ErrorBody{Code: code, Message: msg})
}

// logf forwards to the configured logger.
func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}
