package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"metricprox/internal/cachestore"
	"metricprox/internal/service/api"
)

// MetaPath returns the meta-sidecar path for a session's cache store:
// <dir>/<name>.meta.json. The sidecar carries the api.ReplMeta needed to
// rebuild the session from the store alone — written by the service next
// to every store it creates or replicates in cluster mode, read by
// promotion and rebalance.
func MetaPath(dir, name string) string {
	return filepath.Join(dir, name+".meta.json")
}

// SaveMeta atomically writes the session's meta sidecar (write to a temp
// file in dir, then rename).
func SaveMeta(dir, name string, meta api.ReplMeta) error {
	buf, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	tmp := MetaPath(dir, name) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, MetaPath(dir, name))
}

// LoadMeta reads the session's meta sidecar; ok is false when the sidecar
// does not exist (a pre-cluster store — replicable only once the session
// is re-created and its parameters are known again).
func LoadMeta(dir, name string) (meta api.ReplMeta, ok bool, err error) {
	buf, err := os.ReadFile(MetaPath(dir, name))
	if os.IsNotExist(err) {
		return api.ReplMeta{}, false, nil
	}
	if err != nil {
		return api.ReplMeta{}, false, err
	}
	if err := json.Unmarshal(buf, &meta); err != nil {
		return api.ReplMeta{}, false, fmt.Errorf("cluster: meta sidecar for %q: %w", name, err)
	}
	return meta, true, nil
}

// Rebalance pushes every session store under dir to the session's
// current owner set — the join/leave story for static membership: after a
// config change, each restarted node offers what it holds to whoever the
// new ring says should hold it. Push-only and idempotent (appends are
// sequence-checked and overlap-skipped), so any subset of nodes
// rebalancing in any order converges. Sessions without a meta sidecar are
// skipped with a log line; peers that refuse or are down are skipped too
// (the background replicator catches them up once the session goes live).
// Returns the number of sessions offered to at least one peer.
func Rebalance(ctx context.Context, dir string, topo *Topology, hc *http.Client, batch int, logf func(string, ...any)) (int, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if hc == nil {
		hc = &http.Client{}
	}
	if batch <= 0 {
		batch = DefaultReplBatch
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	pushed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".cache") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".cache")
		meta, ok, err := LoadMeta(dir, name)
		if err != nil {
			logf("cluster: rebalance %q: %v", name, err)
			continue
		}
		if !ok {
			logf("cluster: rebalance %q: no meta sidecar, skipping (pre-cluster store)", name)
			continue
		}
		store, err := cachestore.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			logf("cluster: rebalance %q: opening store: %v", name, err)
			continue
		}
		any := false
		for _, peer := range topo.Peers(name) {
			if err := pushStore(ctx, store, name, meta, peer, topo.SelfName(), hc, batch); err != nil {
				logf("cluster: rebalance %q -> %s: %v", name, peer.Name, err)
				continue
			}
			any = true
		}
		store.Close()
		if any {
			pushed++
		}
		if ctx.Err() != nil {
			return pushed, ctx.Err()
		}
	}
	return pushed, nil
}

// pushStore streams one full store to one peer, honouring the peer's
// cursor (an empty first batch probes it, so a peer already caught up
// costs one round-trip).
func pushStore(ctx context.Context, store *cachestore.Store, name string, meta api.ReplMeta, peer Node, self string, hc *http.Client, batch int) error {
	cursor, err := probeCursor(ctx, name, meta, peer, self, hc)
	if err != nil {
		return err
	}
	if cursor < 0 {
		return nil // peer hosts the session live; it needs nothing from us
	}
	head, err := store.LastSeq()
	if err != nil {
		return err
	}
	for cursor < head {
		recs, err := store.ReadFrom(cursor, batch)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return nil // damaged tail: the prefix is all there is
		}
		ack, err := appendBatch(ctx, name, meta, peer, self, cursor, recs, hc)
		if err != nil {
			return err
		}
		if ack < 0 {
			return nil // promoted mid-push: stop, it is the live host now
		}
		if ack <= cursor {
			return fmt.Errorf("no progress at cursor %d (peer acked %d)", cursor, ack)
		}
		cursor = ack
	}
	return nil
}

// probeCursor asks the peer where its replica log stands via an empty
// append; -1 means the peer hosts the session live.
func probeCursor(ctx context.Context, name string, meta api.ReplMeta, peer Node, self string, hc *http.Client) (int64, error) {
	return appendBatch(ctx, name, meta, peer, self, 0, nil, hc)
}

// appendBatch is the rebalance-side twin of the Replicator's sendBatch,
// kept separate because rebalance runs before any Replicator exists.
func appendBatch(ctx context.Context, name string, meta api.ReplMeta, peer Node, self string, from int64, recs []cachestore.Record, hc *http.Client) (int64, error) {
	body := api.ReplAppendRequest{Node: self, Meta: meta, From: from}
	for _, r := range recs {
		body.Records = append(body.Records, api.ReplRecord{I: r.I, J: r.J, D: api.WireFloat(r.Dist)})
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer.URL+"/v1/repl/"+name, strings.NewReader(string(buf)))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		return -1, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	var ack api.ReplAppendResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return 0, err
	}
	return ack.Seq, nil
}
