package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Node is one cluster member: a name (the ring identity) and the base URL
// its metricproxd listens on.
type Node struct {
	// Name is the node's cluster-wide identity; [A-Za-z0-9._-]+. Ownership
	// hashes the name, not the URL, so a node can move hosts without
	// resharding.
	Name string
	// URL is the node's base URL, e.g. "http://10.0.0.7:7060".
	URL string
}

// Config describes a static cluster: the full member list, how many
// replicas each session gets beyond its primary, and the ring geometry.
// Every participant must be started with an identical member list and
// ring parameters — membership is configuration, not gossip (ISSUE: the
// cluster trades dynamic membership for determinism; a join or leave is a
// config change plus restart, with rebalance pushing state to the new
// owners).
type Config struct {
	// Self is the local node's name; empty for participants that are not
	// members (the router, the smart client).
	Self string
	// Nodes is the full member list.
	Nodes []Node
	// Replicas is the number of replica owners per session beyond the
	// primary; 0 means DefaultReplicas. Clamped to len(Nodes)-1.
	Replicas int
	// VNodes is the virtual-node count per member; 0 means DefaultVNodes.
	VNodes int
	// Seed salts the ring hashes; all participants must agree.
	Seed int64
}

// DefaultReplicas is the replica count per session when Config.Replicas
// is 0: one replica, tolerating a single node failure per session.
const DefaultReplicas = 1

// Topology is a validated Config plus its ring: the single object every
// cluster participant consults for "who owns session X". Immutable and
// safe for concurrent use.
type Topology struct {
	self     Node
	isMember bool
	nodes    map[string]Node
	ring     *Ring
	replicas int
}

// NewTopology validates cfg and builds its ring.
func NewTopology(cfg Config) (*Topology, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	nodes := make(map[string]Node, len(cfg.Nodes))
	names := make([]string, 0, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n.Name == "" || n.URL == "" {
			return nil, fmt.Errorf("cluster: node needs both name and URL, got %+v", n)
		}
		u, err := url.Parse(n.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: node %q has invalid URL %q", n.Name, n.URL)
		}
		if _, dup := nodes[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		n.URL = strings.TrimRight(n.URL, "/")
		nodes[n.Name] = n
		names = append(names, n.Name)
	}
	t := &Topology{nodes: nodes}
	if cfg.Self != "" {
		self, ok := nodes[cfg.Self]
		if !ok {
			return nil, fmt.Errorf("cluster: self node %q not in member list", cfg.Self)
		}
		t.self = self
		t.isMember = true
	}
	t.replicas = cfg.Replicas
	if t.replicas <= 0 {
		t.replicas = DefaultReplicas
	}
	if t.replicas > len(names)-1 {
		t.replicas = len(names) - 1
	}
	ring, err := NewRing(names, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t.ring = ring
	return t, nil
}

// ParseNodes parses the -cluster flag syntax: a comma-separated list of
// name=url pairs, e.g. "a=http://h1:7060,b=http://h2:7060".
func ParseNodes(spec string) ([]Node, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty node spec")
	}
	parts := strings.Split(spec, ",")
	nodes := make([]Node, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		name, u, ok := strings.Cut(p, "=")
		name, u = strings.TrimSpace(name), strings.TrimSpace(u)
		if !ok || name == "" || u == "" {
			return nil, fmt.Errorf("cluster: bad node %q, want name=url", p)
		}
		nodes = append(nodes, Node{Name: name, URL: u})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty node spec")
	}
	return nodes, nil
}

// Owners returns the session's owner nodes, primary first: 1 primary plus
// up to Replicas replicas.
func (t *Topology) Owners(session string) []Node {
	names := t.ring.Owners(session, t.replicas+1)
	out := make([]Node, len(names))
	for i, n := range names {
		out[i] = t.nodes[n]
	}
	return out
}

// Peers returns the session's owners excluding the local node — the
// replication targets when the session is hosted here. For non-members it
// equals Owners.
func (t *Topology) Peers(session string) []Node {
	owners := t.Owners(session)
	out := owners[:0]
	for _, n := range owners {
		if !t.isMember || n.Name != t.self.Name {
			out = append(out, n)
		}
	}
	return out
}

// IsOwner reports whether the local node is among the session's owners.
// Always false for non-members.
func (t *Topology) IsOwner(session string) bool {
	if !t.isMember {
		return false
	}
	for _, n := range t.ring.Owners(session, t.replicas+1) {
		if n == t.self.Name {
			return true
		}
	}
	return false
}

// Self returns the local node; the zero Node for non-members.
func (t *Topology) Self() Node { return t.self }

// SelfName returns the local node's name, or "" for non-members.
func (t *Topology) SelfName() string { return t.self.Name }

// Nodes returns every member sorted by name.
func (t *Topology) Nodes() []Node {
	out := make([]Node, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Replicas returns the effective replica count per session.
func (t *Topology) Replicas() int { return t.replicas }

// Node returns the member with the given name.
func (t *Topology) Node(name string) (Node, bool) {
	n, ok := t.nodes[name]
	return n, ok
}
