package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"metricprox/internal/cachestore"
	"metricprox/internal/obs"
	"metricprox/internal/service/api"
)

// Replication metric names exported by the Replicator. Documented in
// docs/METRICS.md.
const (
	// MetricReplSentRecords counts records acknowledged by replicas,
	// labelled by peer node.
	MetricReplSentRecords = "cluster_repl_sent_records_total"
	// MetricReplErrors counts failed append round-trips (transport errors
	// and non-2xx responses other than conflicts), labelled by peer node.
	MetricReplErrors = "cluster_repl_errors_total"
	// MetricReplConflicts counts streams halted by a 409 repl_conflict —
	// the peer hosts the session itself, so replicating to it would fork
	// the log.
	MetricReplConflicts = "cluster_repl_conflicts_total"
	// MetricReplLag gauges the worst per-peer replication lag in records
	// across all tracked sessions, sampled each pump cycle.
	MetricReplLag = "cluster_repl_lag_records"
)

// DefaultReplInterval is the store-tailing period when ReplicatorConfig.
// Interval is 0. Replication is an accelerant, not a durability
// mechanism, so a sub-second pump is plenty: a failover loses at most one
// interval of bound state and re-pays the oracle for exactly that tail.
const DefaultReplInterval = 100 * time.Millisecond

// DefaultReplBatch is the per-round-trip record cap when ReplicatorConfig.
// Batch is 0 (512 records ≈ 20 KiB of JSON — small enough to never stall
// a node's HTTP handler, large enough to drain a burst in a few trips).
const DefaultReplBatch = 512

// ReplicatorConfig parameterises a Replicator.
type ReplicatorConfig struct {
	// Topology decides each session's replica targets and names the
	// sending node.
	Topology *Topology
	// HTTPClient issues the append requests; nil means a 5-second-timeout
	// client.
	HTTPClient *http.Client
	// Interval is the tailing period; 0 means DefaultReplInterval.
	Interval time.Duration
	// Batch caps records per append request; 0 means DefaultReplBatch.
	Batch int
	// Registry receives the cluster_repl_* instruments when non-nil.
	Registry *obs.Registry
	// Logf receives operational log lines when non-nil.
	Logf func(format string, args ...any)
}

// peerCursor is one replication stream: this node's progress pushing a
// session's log to one peer.
type peerCursor struct {
	node   Node
	seq    int64 // next record to send
	halted bool  // peer answered 409 repl_conflict; stream is dead
}

// replStream is the replication state of one locally-hosted session.
type replStream struct {
	name  string
	store *cachestore.Store
	meta  api.ReplMeta
	peers []*peerCursor
}

// Replicator streams every locally-hosted session's committed resolutions
// to the session's replica owners. It tails the session's own cachestore
// with pread (cachestore.ReadFrom is safe against the session's
// concurrent appends) — the store is both the durability log and the
// replication log, so sequence numbers are simply record indices and
// resume-after-crash falls out of the file format.
//
// One background goroutine pumps all tracked sessions; an append error
// leaves the peer's cursor in place and the next cycle retries, so a
// briefly-unreachable replica just catches up. A 409 repl_conflict halts
// that peer's stream permanently (the peer hosts the session itself —
// after a failover and recovery, the old primary must not overwrite the
// promoted replica's live log).
type Replicator struct {
	cfg      ReplicatorConfig
	hc       *http.Client
	interval time.Duration
	batch    int

	mu       sync.Mutex
	sessions map[string]*replStream

	// pumpMu serialises pump cycles: the background loop, Flush, and
	// Untrack all take it, so peer cursors are single-writer and a store
	// removed by Untrack is never read by a cycle that starts afterwards.
	pumpMu sync.Mutex

	stop chan struct{}
	wg   sync.WaitGroup

	sent      func(peer string) *obs.Counter
	errs      func(peer string) *obs.Counter
	conflicts *obs.Counter
	lag       *obs.Gauge
}

// NewReplicator builds a Replicator; call Start to begin pumping.
func NewReplicator(cfg ReplicatorConfig) *Replicator {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultReplInterval
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultReplBatch
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Replicator{
		cfg:      cfg,
		hc:       hc,
		interval: cfg.Interval,
		batch:    cfg.Batch,
		sessions: make(map[string]*replStream),
		stop:     make(chan struct{}),
		sent: func(peer string) *obs.Counter {
			return reg.Counter(MetricReplSentRecords, obs.Label{Key: "peer", Value: peer})
		},
		errs: func(peer string) *obs.Counter {
			return reg.Counter(MetricReplErrors, obs.Label{Key: "peer", Value: peer})
		},
		conflicts: reg.Counter(MetricReplConflicts),
		lag:       reg.Gauge(MetricReplLag),
	}
}

// Start launches the background pump.
func (r *Replicator) Start() {
	r.wg.Add(1)
	go r.loop()
}

// Close stops the pump and waits for it. Tracked stores are NOT closed —
// they belong to their sessions.
func (r *Replicator) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
}

// Track begins replicating the named session's store to its peer owners.
// The store must outlive the tracking (call Untrack before closing it —
// the service does so from its eviction hook). Tracking a session with no
// peers (single-node cluster) is a no-op.
func (r *Replicator) Track(name string, store *cachestore.Store, meta api.ReplMeta) {
	peers := r.cfg.Topology.Peers(name)
	if len(peers) == 0 {
		return
	}
	st := &replStream{name: name, store: store, meta: meta}
	for _, p := range peers {
		st.peers = append(st.peers, &peerCursor{node: p})
	}
	r.mu.Lock()
	r.sessions[name] = st
	r.mu.Unlock()
}

// Untrack stops replicating the named session and waits out any pump
// cycle in flight, so the caller may close the store the moment Untrack
// returns. Safe to call for names never tracked.
func (r *Replicator) Untrack(name string) {
	r.mu.Lock()
	delete(r.sessions, name)
	r.mu.Unlock()
	// Barrier: a cycle that snapshotted the stream before the delete may
	// still hold the store; taking pumpMu waits it out.
	r.pumpMu.Lock()
	defer r.pumpMu.Unlock()
}

// Flush pushes every tracked session's remaining records to every
// healthy peer, synchronously, until caught up or ctx expires — the
// drain-and-handoff step: a node shutting down cleanly hands its bound
// state to the replicas before closing stores.
func (r *Replicator) Flush(ctx context.Context) error {
	for {
		behind, err := r.pump(ctx)
		if err != nil {
			return err
		}
		if behind == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// loop pumps until Close.
func (r *Replicator) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), r.interval*10)
			_, _ = r.pump(ctx)
			cancel()
		}
	}
}

// pump runs one replication cycle over every tracked session and peer,
// returning the total records still unacknowledged (lag) afterwards.
// Errors from individual peers are counted and logged, not returned; the
// returned error is reserved for ctx expiry.
func (r *Replicator) pump(ctx context.Context) (behind int64, err error) {
	r.pumpMu.Lock()
	defer r.pumpMu.Unlock()
	r.mu.Lock()
	streams := make([]*replStream, 0, len(r.sessions))
	for _, st := range r.sessions {
		streams = append(streams, st)
	}
	r.mu.Unlock()

	var worst int64
	for _, st := range streams {
		if err := ctx.Err(); err != nil {
			return worst, err
		}
		// Re-check liveness: an Untrack between the snapshot and now means
		// the store may be about to close — skip it.
		r.mu.Lock()
		live := r.sessions[st.name] == st
		r.mu.Unlock()
		if !live {
			continue
		}
		head, err := st.store.LastSeq()
		if err != nil {
			r.logf("cluster: repl %q: reading log head: %v", st.name, err)
			continue
		}
		for _, pc := range st.peers {
			if pc.halted {
				continue
			}
			lag := r.pushPeer(ctx, st, pc, head)
			worst += lag
		}
	}
	r.lag.Set(float64(worst))
	return worst, nil
}

// pushPeer drains one stream toward one peer as far as one cycle allows,
// returning the residual lag in records.
func (r *Replicator) pushPeer(ctx context.Context, st *replStream, pc *peerCursor, head int64) int64 {
	for pc.seq < head {
		recs, err := st.store.ReadFrom(pc.seq, r.batch)
		if err != nil {
			r.logf("cluster: repl %q -> %s: reading log: %v", st.name, pc.node.Name, err)
			return head - pc.seq
		}
		if len(recs) == 0 {
			return 0 // torn tail in flight; next cycle
		}
		ack, err := r.sendBatch(ctx, st, pc, recs)
		if err != nil {
			r.errs(pc.node.Name).Inc()
			r.logf("cluster: repl %q -> %s: %v", st.name, pc.node.Name, err)
			return head - pc.seq
		}
		if ack < 0 { // conflict: peer hosts the session
			pc.halted = true
			r.conflicts.Inc()
			r.logf("cluster: repl %q -> %s: peer hosts session, stream halted", st.name, pc.node.Name)
			return 0
		}
		if ack > pc.seq {
			r.sent(pc.node.Name).Add(ack - pc.seq)
		}
		if ack == pc.seq && ack < pc.seq+int64(len(recs)) {
			// No progress without an error means the peer rewound us to a
			// cursor we already sent from — only possible transiently; bail
			// out of this cycle rather than spin.
			return head - pc.seq
		}
		pc.seq = ack
	}
	return 0
}

// sendBatch performs one append round-trip, returning the peer's new
// cursor; -1 signals a permanent conflict (409 repl_conflict).
func (r *Replicator) sendBatch(ctx context.Context, st *replStream, pc *peerCursor, recs []cachestore.Record) (int64, error) {
	reqBody := api.ReplAppendRequest{
		Node:    r.cfg.Topology.SelfName(),
		Meta:    st.meta,
		From:    pc.seq,
		Records: make([]api.ReplRecord, len(recs)),
	}
	for i, rec := range recs {
		reqBody.Records[i] = api.ReplRecord{I: rec.I, J: rec.J, D: api.WireFloat(rec.Dist)}
	}
	buf, err := json.Marshal(reqBody)
	if err != nil {
		return 0, err
	}
	url := pc.node.URL + "/v1/repl/" + st.name
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode == http.StatusConflict {
		return -1, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("peer answered %d: %s", resp.StatusCode, truncate(body, 200))
	}
	var ack api.ReplAppendResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		return 0, fmt.Errorf("bad ack: %w", err)
	}
	if ack.Seq < 0 || ack.Seq > pc.seq+int64(len(recs)) {
		return 0, fmt.Errorf("peer acked impossible cursor %d (sent [%d,%d))", ack.Seq, pc.seq, pc.seq+int64(len(recs)))
	}
	return ack.Seq, nil
}

// logf forwards to the configured logger.
func (r *Replicator) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// truncate clips b for error messages.
func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}
