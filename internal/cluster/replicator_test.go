package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"metricprox/internal/cachestore"
	"metricprox/internal/service/api"
)

// fakePeer is a minimal /v1/repl receiver: it applies batches to its own
// store with AppendFrom exactly as the service does, and can be switched
// into failure modes to exercise the sender's retry and conflict paths.
type fakePeer struct {
	t     *testing.T
	store *cachestore.Store
	mu    sync.Mutex
	mode  string // "", "down", "conflict"
	metas []api.ReplMeta
	srv   *httptest.Server
}

func newFakePeer(t *testing.T, n int) *fakePeer {
	t.Helper()
	store, err := cachestore.Create(filepath.Join(t.TempDir(), "peer.cache"), n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	p := &fakePeer{t: t, store: store}
	p.srv = httptest.NewServer(http.HandlerFunc(p.handle))
	t.Cleanup(p.srv.Close)
	return p
}

func (p *fakePeer) setMode(mode string) {
	p.mu.Lock()
	p.mode = mode
	p.mu.Unlock()
}

func (p *fakePeer) handle(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.mode {
	case "down":
		w.WriteHeader(http.StatusInternalServerError)
		return
	case "conflict":
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(api.ErrorBody{Code: api.CodeReplConflict, Message: "hosted here"})
		return
	}
	var req api.ReplAppendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		p.t.Errorf("peer: bad body: %v", err)
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	p.metas = append(p.metas, req.Meta)
	recs := make([]cachestore.Record, len(req.Records))
	for i, rr := range req.Records {
		recs[i] = cachestore.Record{I: rr.I, J: rr.J, Dist: float64(rr.D)}
	}
	seq, err := p.store.AppendFrom(req.From, recs)
	if err != nil && seq == 0 {
		p.t.Errorf("peer: AppendFrom: %v", err)
	}
	json.NewEncoder(w).Encode(api.ReplAppendResponse{Seq: seq})
}

func (p *fakePeer) seq() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, _ := p.store.LastSeq()
	return s
}

// replTopo builds a two-node topology: self plus the fake peer.
func replTopo(t *testing.T, peerURL string) *Topology {
	t.Helper()
	topo, err := NewTopology(Config{
		Self: "self",
		Nodes: []Node{
			{Name: "self", URL: "http://invalid.localhost:1"},
			{Name: "peer", URL: peerURL},
		},
		Replicas: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func testMeta(n int) api.ReplMeta {
	return api.ReplMeta{Scheme: "tri", Landmarks: 3, Seed: 7, N: n}
}

func TestReplicatorStreamsAndResumes(t *testing.T) {
	const n = 64
	peer := newFakePeer(t, n)
	topo := replTopo(t, peer.srv.URL)

	src, err := cachestore.Create(filepath.Join(t.TempDir(), "src.cache"), n)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for k := 0; k < 10; k++ {
		if err := src.Append(k, k+1, float64(k+1)/8); err != nil {
			t.Fatal(err)
		}
	}

	r := NewReplicator(ReplicatorConfig{Topology: topo, Interval: 5 * time.Millisecond, Batch: 4})
	defer r.Close()
	r.Track("sess", src, testMeta(n))

	// Flush synchronously rather than racing the ticker.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := peer.seq(); got != 10 {
		t.Fatalf("peer has %d records after flush, want 10", got)
	}

	// More appends, peer briefly down: the cursor must hold and resume.
	peer.setMode("down")
	for k := 10; k < 16; k++ {
		src.Append(k, k+1, float64(k)/8)
	}
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	_ = r.Flush(shortCtx) // expected to time out: peer refuses everything
	shortCancel()
	if got := peer.seq(); got != 10 {
		t.Fatalf("peer advanced to %d while down, want 10", got)
	}
	peer.setMode("")
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := peer.seq(); got != 16 {
		t.Fatalf("peer has %d records after recovery, want 16", got)
	}

	// Every batch carried the session meta.
	peer.mu.Lock()
	defer peer.mu.Unlock()
	for _, m := range peer.metas {
		if m != testMeta(n) {
			t.Fatalf("batch carried meta %+v, want %+v", m, testMeta(n))
		}
	}
}

func TestReplicatorRewindsAfterPeerTruncation(t *testing.T) {
	const n = 32
	peer := newFakePeer(t, n)
	topo := replTopo(t, peer.srv.URL)
	src, err := cachestore.Create(filepath.Join(t.TempDir(), "src.cache"), n)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for k := 0; k < 8; k++ {
		src.Append(k, k+1, float64(k+1)/4)
	}
	r := NewReplicator(ReplicatorConfig{Topology: topo, Interval: time.Hour})
	defer r.Close()
	r.Track("sess", src, testMeta(n))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Simulate the replica losing its tail: swap in a fresh shorter store.
	peer.mu.Lock()
	peer.store.Close()
	st, err := cachestore.Create(filepath.Join(t.TempDir(), "peer2.cache"), n)
	if err != nil {
		peer.mu.Unlock()
		t.Fatal(err)
	}
	recs, _ := src.ReadFrom(0, 3)
	st.AppendFrom(0, recs)
	peer.store = st
	peer.mu.Unlock()
	t.Cleanup(func() { st.Close() })

	// New records: the sender believes the peer is at 8, sends from 8, the
	// peer acks 3 (gap), the sender rewinds and re-converges.
	for k := 8; k < 12; k++ {
		src.Append(k, k+1, float64(k)/4)
	}
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := peer.seq(); got != 12 {
		t.Fatalf("peer has %d records after rewind, want 12", got)
	}
}

func TestReplicatorHaltsOnConflict(t *testing.T) {
	const n = 32
	peer := newFakePeer(t, n)
	topo := replTopo(t, peer.srv.URL)
	src, err := cachestore.Create(filepath.Join(t.TempDir(), "src.cache"), n)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.Append(0, 1, 0.5)
	peer.setMode("conflict")
	r := NewReplicator(ReplicatorConfig{Topology: topo, Interval: time.Hour})
	defer r.Close()
	r.Track("sess", src, testMeta(n))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// A conflicted stream is dead, not lagging: Flush converges instantly.
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := peer.seq(); got != 0 {
		t.Fatalf("conflicted peer applied %d records, want 0", got)
	}
	// Later appends never reach it either.
	src.Append(1, 2, 0.25)
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := peer.seq(); got != 0 {
		t.Fatalf("halted stream pushed records after conflict: peer at %d", got)
	}
}

func TestReplicatorUntrackStopsStream(t *testing.T) {
	const n = 32
	peer := newFakePeer(t, n)
	topo := replTopo(t, peer.srv.URL)
	src, err := cachestore.Create(filepath.Join(t.TempDir(), "src.cache"), n)
	if err != nil {
		t.Fatal(err)
	}
	src.Append(0, 1, 0.5)
	r := NewReplicator(ReplicatorConfig{Topology: topo, Interval: time.Hour})
	defer r.Close()
	r.Track("sess", src, testMeta(n))
	r.Untrack("sess")
	// After Untrack the store may be closed; a flush must not touch it.
	src.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := peer.seq(); got != 0 {
		t.Fatalf("untracked session replicated %d records", got)
	}
}

func TestReplicatorNoPeersIsNoop(t *testing.T) {
	topo, err := NewTopology(Config{
		Self:  "solo",
		Nodes: []Node{{Name: "solo", URL: "http://x:1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := cachestore.Create(filepath.Join(t.TempDir(), "src.cache"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	r := NewReplicator(ReplicatorConfig{Topology: topo})
	defer r.Close()
	r.Track("sess", src, testMeta(8))
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}
