package gnat

import (
	"math/rand"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

func TestRangeMatchesBruteForce(t *testing.T) {
	m := datasets.RandomMetric(160, 61)
	tree := Build(m, 62)
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 25; trial++ {
		q := rng.Intn(160)
		r := 0.05 + rng.Float64()*0.35
		got, _ := tree.Range(q, r, func(x int) float64 { return m.Distance(q, x) })
		want := map[int]float64{}
		for x := 0; x < 160; x++ {
			if d := m.Distance(q, x); d <= r {
				want[x] = d
			}
		}
		if len(got) != len(want) {
			t.Fatalf("q=%d r=%v: %d results, want %d", q, r, len(got), len(want))
		}
		for _, res := range got {
			if wd, ok := want[res.ID]; !ok || wd != res.Dist {
				t.Fatalf("q=%d r=%v: wrong result %+v", q, r, res)
			}
		}
	}
}

func TestNNMatchesBruteForce(t *testing.T) {
	m := datasets.RandomMetric(120, 64)
	tree := Build(m, 65)
	for q := 0; q < 120; q += 17 {
		got, _ := tree.NN(q, 4, func(x int) float64 { return m.Distance(q, x) })
		if len(got) != 4 {
			t.Fatalf("q=%d: %d results", q, len(got))
		}
		// Reference.
		type rd struct {
			id int
			d  float64
		}
		var all []rd
		for x := 0; x < 120; x++ {
			if x != q {
				all = append(all, rd{x, m.Distance(q, x)})
			}
		}
		for i := 0; i < 4; i++ {
			bi := i
			for j := i + 1; j < len(all); j++ {
				if all[j].d < all[bi].d {
					bi = j
				}
			}
			all[i], all[bi] = all[bi], all[i]
			if got[i].ID != all[i].id {
				t.Fatalf("q=%d: NN[%d] = %d, want %d", q, i, got[i].ID, all[i].id)
			}
		}
	}
}

func TestRangePrunes(t *testing.T) {
	m := datasets.SFPOI(500, 66)
	tree := Build(m, 67)
	_, calls := tree.Range(3, 0.05, func(x int) float64 { return m.Distance(3, x) })
	if calls >= 500 {
		t.Fatalf("GNAT range made %d calls — no pruning over a linear scan", calls)
	}
	if tree.ConstructionCalls() == 0 {
		t.Fatal("construction free?")
	}
}

func TestSmallUniverse(t *testing.T) {
	m := datasets.RandomMetric(5, 68)
	tree := Build(m, 69)
	got, _ := tree.NN(0, 10, func(x int) float64 { return m.Distance(0, x) })
	if len(got) != 4 {
		t.Fatalf("k>n returned %d", len(got))
	}
	res, _ := tree.Range(0, 1, func(x int) float64 { return m.Distance(0, x) })
	if len(res) != 5 {
		t.Fatalf("full-radius range returned %d", len(res))
	}
}

var _ metric.Space = (*metric.Matrix)(nil) // compile-time interface check used by tests
