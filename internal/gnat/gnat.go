// Package gnat implements a Geometric Near-neighbor Access Tree (Brin,
// VLDB 1995) — the Voronoi-inspired metric index the paper's related-work
// section cites alongside the M-tree (Section 6.1). Each node selects a
// set of split points, partitions its objects by nearest split point, and
// records for every (split point, sibling group) pair the min/max distance
// range; queries discard a group when the query ball cannot intersect its
// range from some split point's viewpoint.
package gnat

import (
	"math"
	"math/rand"
	"sort"

	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
)

const (
	splitPoints = 6  // split points per internal node
	leafSize    = 12 // objects kept flat in a leaf
)

// Tree is a GNAT over the objects of a metric.Space.
type Tree struct {
	space metric.Space
	root  *node
	calls int64
}

type node struct {
	bucket []int // leaf objects; nil for internal nodes
	splits []split
}

type split struct {
	point    int
	child    *node
	loRanges []float64 // loRanges[s]: min distance from split s's point to this group
	hiRanges []float64 // hiRanges[s]: max distance, likewise
}

// Build constructs a GNAT over all objects, with split points chosen
// pseudo-randomly from seed.
func Build(space metric.Space, seed int64) *Tree {
	t := &Tree{space: space}
	ids := make([]int, space.Len())
	for i := range ids {
		ids[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(ids, rng)
	return t
}

// ConstructionCalls returns the distance evaluations spent building.
func (t *Tree) ConstructionCalls() int64 { return t.calls }

func (t *Tree) d(i, j int) float64 {
	t.calls++
	//proxlint:allow oracleescape -- related-work baseline: GNAT pays raw construction-time distance calls to build its range tables by design; t.calls keeps its own accounting for the experiments
	return t.space.Distance(i, j)
}

func (t *Tree) build(ids []int, rng *rand.Rand) *node {
	if len(ids) <= leafSize {
		return &node{bucket: append([]int(nil), ids...)}
	}
	k := splitPoints
	if k > len(ids) {
		k = len(ids)
	}
	rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
	points := ids[:k]
	rest := ids[k:]

	groups := make([][]int, k)
	// Assign each object to its nearest split point.
	for _, x := range rest {
		best, bestD := 0, math.Inf(1)
		for s, p := range points {
			if dd := t.d(x, p); dd < bestD {
				best, bestD = s, dd
			}
		}
		groups[best] = append(groups[best], x)
	}
	n := &node{splits: make([]split, k)}
	for g := range groups {
		n.splits[g] = split{
			point:    points[g],
			loRanges: make([]float64, k),
			hiRanges: make([]float64, k),
		}
		for s := range n.splits[g].loRanges {
			n.splits[g].loRanges[s] = math.Inf(1)
		}
	}
	// Record range tables: for each split point s and group g, the min and
	// max of d(point_s, x) over x in group g ∪ {point_g}.
	for s := 0; s < k; s++ {
		for g := 0; g < k; g++ {
			lo, hi := math.Inf(1), 0.0
			observe := func(dd float64) {
				if dd < lo {
					lo = dd
				}
				if dd > hi {
					hi = dd
				}
			}
			if s == g {
				observe(0)
			} else {
				observe(t.d(points[s], points[g]))
			}
			for _, x := range groups[g] {
				observe(t.d(points[s], x))
			}
			n.splits[g].loRanges[s] = lo
			n.splits[g].hiRanges[s] = hi
		}
	}
	for g := range groups {
		n.splits[g].child = t.build(groups[g], rng)
	}
	return n
}

// Result is one query answer.
type Result struct {
	ID   int
	Dist float64
}

// Range returns every indexed object within radius r of the query object
// (the query itself included if indexed), plus the distance calls spent
// answering (construction excluded). dist supplies query-to-object
// distances so callers control accounting.
func (t *Tree) Range(query int, r float64, dist func(x int) float64) ([]Result, int64) {
	var out []Result
	var calls int64
	d := func(x int) float64 {
		calls++
		return dist(x)
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.bucket != nil {
			for _, id := range n.bucket {
				if dd := d(id); dd <= r {
					out = append(out, Result{ID: id, Dist: dd})
				}
			}
			return
		}
		k := len(n.splits)
		alive := make([]bool, k)
		for i := range alive {
			alive[i] = true
		}
		dp := make([]float64, k)
		for s := 0; s < k; s++ {
			dp[s] = d(n.splits[s].point)
			if dp[s] <= r {
				out = append(out, Result{ID: n.splits[s].point, Dist: dp[s]})
			}
			// GNAT pruning: group g survives s's viewpoint only if
			// [dp[s]−r, dp[s]+r] intersects [lo, hi].
			for g := 0; g < k; g++ {
				if !alive[g] {
					continue
				}
				if dp[s]+r < n.splits[g].loRanges[s] || dp[s]-r > n.splits[g].hiRanges[s] {
					alive[g] = false
				}
			}
		}
		for g := 0; g < k; g++ {
			if alive[g] {
				walk(n.splits[g].child)
			}
		}
	}
	walk(t.root)
	sort.Slice(out, func(a, b int) bool {
		return fcmp.TieLess(out[a].Dist, out[a].ID, out[b].Dist, out[b].ID)
	})
	return out, calls
}

// NN returns the k nearest indexed objects to the query (excluding the
// query itself) by shrinking-radius search over Range's pruning: a cheap
// first pass estimates a radius from a leaf walk, then widens until k
// answers are inside. Calls are reported net of construction.
func (t *Tree) NN(query, k int, dist func(x int) float64) ([]Result, int64) {
	if k >= t.space.Len() {
		k = t.space.Len() - 1
	}
	var total int64
	// Initial radius guess: distances to the root split points.
	guess := math.Inf(1)
	if t.root.bucket == nil {
		seen := 0
		for _, sp := range t.root.splits {
			dd := dist(sp.point)
			total++
			if sp.point != query && dd < guess {
				guess = dd
			}
			seen++
			if seen >= 3 {
				break
			}
		}
	} else {
		guess = 1
	}
	r := guess
	for {
		res, calls := t.Range(query, r, dist)
		total += calls
		// Drop the query itself.
		filtered := res[:0]
		for _, x := range res {
			if x.ID != query {
				filtered = append(filtered, x)
			}
		}
		if len(filtered) >= k {
			return append([]Result(nil), filtered[:k]...), total
		}
		r *= 2
		if math.IsInf(r, 1) || r > 1e9 {
			return append([]Result(nil), filtered...), total
		}
	}
}
