package query

import (
	"math/rand"
	"sort"
	"testing"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

func refKNN(m metric.Space, q, k int) []Result {
	var all []Result
	for x := 0; x < m.Len(); x++ {
		if x != q {
			all = append(all, Result{ID: x, Dist: m.Distance(q, x)})
		}
	}
	sortResults(all)
	return all[:k]
}

func newSession(m metric.Space, sc core.Scheme, landmarks []int) (*core.Session, *metric.Oracle) {
	o := metric.NewOracle(m)
	s := core.NewSessionWithLandmarks(o, sc, landmarks)
	return s, o
}

func TestKNNMatchesBruteForce(t *testing.T) {
	m := datasets.RandomMetric(80, 1)
	landmarks := core.PickLandmarks(80, 6, 2)
	for _, sc := range []core.Scheme{core.SchemeNoop, core.SchemeTri, core.SchemeSPLUB, core.SchemeLAESA} {
		s, _ := newSession(m, sc, landmarks)
		s.Bootstrap(landmarks)
		for q := 0; q < 80; q += 11 {
			want := refKNN(m, q, 5)
			got := KNN(s, q, 5)
			if len(got) != 5 {
				t.Fatalf("scheme %v q=%d: %d results", sc, q, len(got))
			}
			for i := range want {
				if got[i].ID != want[i].ID {
					t.Fatalf("scheme %v q=%d: result %d = %d, want %d", sc, q, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

func TestKNNSavesCalls(t *testing.T) {
	m := datasets.SFPOI(200, 3)
	landmarks := core.PickLandmarks(200, 8, 4)
	noop, oN := newSession(m, core.SchemeNoop, nil)
	tri, oT := newSession(m, core.SchemeTri, landmarks)
	tri.Bootstrap(landmarks)
	for q := 0; q < 200; q += 10 {
		KNN(noop, q, 5)
		KNN(tri, q, 5)
	}
	if oT.Calls() >= oN.Calls() {
		t.Fatalf("Tri KNN made %d calls, Noop %d", oT.Calls(), oN.Calls())
	}
}

func TestKNNDegenerate(t *testing.T) {
	m := datasets.RandomMetric(5, 5)
	s, _ := newSession(m, core.SchemeTri, nil)
	if got := KNN(s, 0, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := KNN(s, 0, 99); len(got) != 4 {
		t.Fatalf("k>n returned %d results, want 4", len(got))
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	m := datasets.RandomMetric(70, 6)
	rng := rand.New(rand.NewSource(7))
	for _, sc := range []core.Scheme{core.SchemeNoop, core.SchemeTri} {
		s, _ := newSession(m, sc, nil)
		for trial := 0; trial < 15; trial++ {
			q := rng.Intn(70)
			r := 0.1 + rng.Float64()*0.3
			got := Range(s, q, r)
			want := map[int]float64{}
			for x := 0; x < 70; x++ {
				if x != q && m.Distance(q, x) <= r {
					want[x] = m.Distance(q, x)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("scheme %v q=%d r=%v: %d results, want %d", sc, q, r, len(got), len(want))
			}
			for _, res := range got {
				if wd, ok := want[res.ID]; !ok || wd != res.Dist {
					t.Fatalf("scheme %v: wrong result %+v", sc, res)
				}
			}
		}
	}
}

func TestRangeIDsMatchesRange(t *testing.T) {
	m := datasets.RandomMetric(70, 8)
	landmarks := core.PickLandmarks(70, 6, 9)
	s, _ := newSession(m, core.SchemeTri, landmarks)
	s.Bootstrap(landmarks)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 15; trial++ {
		q := rng.Intn(70)
		r := 0.1 + rng.Float64()*0.3
		full := Range(s, q, r)
		ids := RangeIDs(s, q, r)
		sort.Ints(ids)
		wantIDs := make([]int, len(full))
		for i, res := range full {
			wantIDs[i] = res.ID
		}
		sort.Ints(wantIDs)
		if len(ids) != len(wantIDs) {
			t.Fatalf("q=%d r=%v: RangeIDs %d, Range %d", q, r, len(ids), len(wantIDs))
		}
		for i := range ids {
			if ids[i] != wantIDs[i] {
				t.Fatalf("q=%d r=%v: id sets differ", q, r)
			}
		}
	}
}

func TestRangeIDsSavesMoreThanRange(t *testing.T) {
	m := datasets.UrbanGB(150, 11)
	landmarks := core.PickLandmarks(150, 7, 12)
	mk := func() *core.Session {
		s, _ := newSession(m, core.SchemeTri, landmarks)
		s.Bootstrap(landmarks)
		return s
	}
	s1, s2 := mk(), mk()
	for q := 0; q < 150; q += 7 {
		Range(s1, q, 0.25)
		RangeIDs(s2, q, 0.25)
	}
	if s2.Stats().OracleCalls > s1.Stats().OracleCalls {
		t.Fatalf("RangeIDs made %d calls, Range %d — upper-bound inclusion saved nothing",
			s2.Stats().OracleCalls, s1.Stats().OracleCalls)
	}
}

func TestAESAMatchesBruteForce(t *testing.T) {
	m := datasets.RandomMetric(60, 13)
	a := BuildAESA(m)
	if a.ConstructionCalls() != 60*59/2 {
		t.Fatalf("construction calls = %d, want %d", a.ConstructionCalls(), 60*59/2)
	}
	for q := 0; q < 60; q += 9 {
		want := refKNN(m, q, 4)
		got, _ := a.NN(4, q, func(x int) float64 { return m.Distance(q, x) })
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("q=%d: AESA result %d = %d, want %d", q, i, got[i].ID, want[i].ID)
			}
		}
	}
}

func TestAESAQueryCallsSublinear(t *testing.T) {
	// AESA's selling point: per-query calls far below n after quadratic
	// preprocessing.
	m := datasets.SFPOI(300, 14)
	a := BuildAESA(m)
	total := int64(0)
	queries := 0
	for q := 0; q < 300; q += 5 {
		_, calls := a.NN(3, q, func(x int) float64 { return m.Distance(q, x) })
		total += calls
		queries++
	}
	if avg := float64(total) / float64(queries); avg > 100 {
		t.Fatalf("AESA averaged %.1f calls/query on n=300 — elimination broken", avg)
	}
}
