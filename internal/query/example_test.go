package query_test

import (
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/metric"
	"metricprox/internal/query"
)

// ExampleKNN answers a nearest-neighbour query over points on a line.
func ExampleKNN() {
	pts := [][]float64{{0.0}, {0.1}, {0.2}, {0.6}, {0.7}}
	oracle := metric.NewOracle(metric.NewVectors(pts, 1, 1))
	s := core.NewSession(oracle, core.SchemeTri)

	for _, r := range query.KNN(s, 0, 2) {
		fmt.Printf("#%d at %.1f\n", r.ID, r.Dist)
	}
	// Output:
	// #1 at 0.1
	// #2 at 0.2
}

// ExampleRange answers a radius query.
func ExampleRange() {
	pts := [][]float64{{0.0}, {0.1}, {0.2}, {0.6}, {0.7}}
	oracle := metric.NewOracle(metric.NewVectors(pts, 1, 1))
	s := core.NewSession(oracle, core.SchemeTri)

	for _, r := range query.Range(s, 3, 0.15) {
		fmt.Printf("#%d at %.1f\n", r.ID, r.Dist)
	}
	// Output:
	// #4 at 0.1
}
