// Package query answers single-object similarity queries — k-nearest-
// neighbour and range (radius) queries — through the core.Session
// framework, plus the classic AESA baseline (Vidal Ruiz 1986) the paper
// cites as the ancestor of the landmark methods.
//
// These are the workloads the related-work index structures (LAESA,
// TLAESA, VP-trees, M-trees) were designed for; expressing them through
// the Session shows the paper's claim that the framework "easily applies"
// beyond the batch algorithms of its evaluation.
package query

import (
	"sort"

	"metricprox/internal/core"
	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
)

// Result is one query answer.
type Result struct {
	ID   int
	Dist float64
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(a, b int) bool {
		return fcmp.TieLess(rs[a].Dist, rs[a].ID, rs[b].Dist, rs[b].ID)
	})
}

// KNN returns the k nearest neighbours of object q, resolving distances
// through the session. Candidates are visited in ascending order of their
// current lower bound; once k answers are held and the next candidate's
// lower bound reaches the k-th distance, the rest are pruned wholesale
// (bounds only tighten, so the snapshot order stays sound).
func KNN(s *core.Session, q, k int) []Result {
	n := s.N()
	if k >= n {
		k = n - 1
	}
	if k <= 0 {
		return nil
	}
	type cand struct {
		id int
		lb float64
	}
	cands := make([]cand, 0, n-1)
	for x := 0; x < n; x++ {
		if x == q {
			continue
		}
		lb, _ := s.Bounds(q, x)
		cands = append(cands, cand{id: x, lb: lb})
	}
	sort.Slice(cands, func(a, b int) bool {
		return fcmp.TieLess(cands[a].lb, cands[a].id, cands[b].lb, cands[b].id)
	})

	best := make([]Result, 0, k+1)
	kth := s.MaxDistance() * 2
	for _, c := range cands {
		if len(best) == k && c.lb >= kth {
			break
		}
		threshold := kth
		if len(best) < k {
			threshold = s.MaxDistance() * 2
		}
		d, less := s.DistIfLess(q, c.id, threshold)
		if !less {
			continue
		}
		best = append(best, Result{ID: c.id, Dist: d})
		sortResults(best)
		if len(best) > k {
			best = best[:k]
		}
		if len(best) == k {
			kth = best[k-1].Dist
		}
	}
	return best
}

// Range returns every object within (closed) radius r of q with its exact
// distance. Candidates whose lower bound exceeds r are pruned without a
// call; everything else resolves.
func Range(s *core.Session, q int, r float64) []Result {
	n := s.N()
	var out []Result
	for x := 0; x < n; x++ {
		if x == q {
			continue
		}
		if d, ok := s.Known(q, x); ok {
			if d <= r {
				out = append(out, Result{ID: x, Dist: d})
			}
			continue
		}
		lb, _ := s.Bounds(q, x)
		if lb > r {
			continue // pruned, no call
		}
		if d := s.Dist(q, x); d <= r {
			out = append(out, Result{ID: x, Dist: d})
		}
	}
	sortResults(out)
	return out
}

// RangeIDs answers a radius query with ids only, which unlocks the second
// pruning direction: a candidate whose *upper* bound is already within r
// is included without ever resolving its distance. This is the maximal
// call-saving form of the range query.
func RangeIDs(s *core.Session, q int, r float64) []int {
	n := s.N()
	var out []int
	for x := 0; x < n; x++ {
		if x == q {
			continue
		}
		if d, ok := s.Known(q, x); ok {
			if d <= r {
				out = append(out, x)
			}
			continue
		}
		lb, ub := s.Bounds(q, x)
		switch {
		case lb > r: // certainly outside
		case ub <= r: // certainly inside, no call
			out = append(out, x)
		default:
			if s.Dist(q, x) <= r {
				out = append(out, x)
			}
		}
	}
	return out
}

// AESA is the Approximating and Eliminating Search Algorithm baseline:
// all C(n,2) inter-object distances are precomputed (the famous quadratic
// preprocessing that LAESA was invented to avoid), after which a query
// needs very few distance evaluations — each resolved candidate becomes a
// pivot that tightens |d(q,p) − d(p,x)| lower bounds on everyone else.
type AESA struct {
	n     int
	d     []float64 // n×n row-major inter-object distances
	calls int64
}

// BuildAESA precomputes the full distance matrix (n(n−1)/2 calls).
func BuildAESA(space metric.Space) *AESA {
	n := space.Len()
	a := &AESA{n: n, d: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			//proxlint:allow oracleescape -- AESA baseline: the full O(n²) preprocessing matrix is the point of the algorithm; a.calls keeps its own accounting for the experiments
			v := space.Distance(i, j)
			a.calls++
			a.d[i*n+j] = v
			a.d[j*n+i] = v
		}
	}
	return a
}

// ConstructionCalls returns the preprocessing call count.
func (a *AESA) ConstructionCalls() int64 { return a.calls }

// NN answers a k-nearest-neighbour query for an object treated as
// *external*: dist is the only way to learn a query-to-object distance
// (each invocation is one billable call), while the precomputed matrix
// supplies every object-to-object distance for free. Returns the answers
// and the number of dist invocations.
func (a *AESA) NN(k int, exclude int, dist func(x int) float64) ([]Result, int64) {
	if k >= a.n {
		k = a.n - 1
	}
	lb := make([]float64, a.n)
	alive := make([]bool, a.n)
	for x := range alive {
		alive[x] = x != exclude
	}
	var best []Result
	var calls int64
	kth := func() float64 {
		if len(best) < k {
			return 1e18
		}
		return best[len(best)-1].Dist
	}
	for {
		// Approximate: pick the live candidate with the smallest lower bound.
		pick, pickLB := -1, 1e18
		for x := 0; x < a.n; x++ {
			if alive[x] && lb[x] < pickLB {
				pick, pickLB = x, lb[x]
			}
		}
		if pick == -1 || (len(best) == k && pickLB >= kth()) {
			break
		}
		dq := dist(pick)
		calls++
		alive[pick] = false
		best = append(best, Result{ID: pick, Dist: dq})
		sortResults(best)
		if len(best) > k {
			best = best[:k]
		}
		// Eliminate: pick is now a pivot for everyone still alive.
		row := a.d[pick*a.n : pick*a.n+a.n]
		for x := 0; x < a.n; x++ {
			if !alive[x] {
				continue
			}
			if v := dq - row[x]; v > lb[x] {
				lb[x] = v
			} else if v := row[x] - dq; v > lb[x] {
				lb[x] = v
			}
			if len(best) == k && lb[x] >= kth() {
				alive[x] = false
			}
		}
	}
	return best, calls
}
