package metric

import (
	"math"
	"sort"
)

// PointSets is a Space over finite point sets under the Hausdorff
// distance — the image-comparison metric of Huttenlocher et al. that the
// paper lists among its computer-vision applications. Each distance call
// costs O(|A|·|B|) base-metric evaluations, which is precisely the kind of
// expensive oracle the framework exists to avoid.
//
// The base metric is Euclidean; Scale normalises into [0,1] (callers pass
// 1/diameterBound of the coordinate domain).
type PointSets struct {
	Sets  [][][]float64
	Scale float64
}

// NewPointSets wraps point sets under scaled Hausdorff distance. scale 0
// means 1. Sets must be non-empty (the Hausdorff distance to an empty set
// is undefined); Distance panics otherwise.
func NewPointSets(sets [][][]float64, scale float64) *PointSets {
	if scale == 0 {
		scale = 1
	}
	return &PointSets{Sets: sets, Scale: scale}
}

// Len returns the number of sets.
func (p *PointSets) Len() int { return len(p.Sets) }

// Distance returns the scaled Hausdorff distance between sets i and j.
func (p *PointSets) Distance(i, j int) float64 {
	return p.Scale * Hausdorff(p.Sets[i], p.Sets[j])
}

// Hausdorff returns the symmetric Hausdorff distance between two
// non-empty point sets under the Euclidean base metric.
func Hausdorff(a, b [][]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("metric: Hausdorff distance of an empty set")
	}
	return math.Max(directedHausdorff(a, b), directedHausdorff(b, a))
}

func directedHausdorff(a, b [][]float64) float64 {
	worst := 0.0
	for _, pa := range a {
		best := math.Inf(1)
		for _, pb := range b {
			if d := euclid(pa, pb); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

func euclid(a, b []float64) float64 {
	sum := 0.0
	for k := range a {
		d := a[k] - b[k]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// IntSets is a Space over finite integer sets under the Jaccard distance
// 1 − |A∩B| / |A∪B|, a classic metric on sets (via the Steinhaus
// transform), useful for shingled documents, tag sets, and genomic k-mer
// profiles.
type IntSets struct {
	sets [][]int // each sorted ascending, deduplicated
}

// NewIntSets wraps the given sets, normalising each to sorted unique form.
// Empty sets are allowed: d(∅, ∅) = 0 and d(∅, A≠∅) = 1.
func NewIntSets(sets [][]int) *IntSets {
	norm := make([][]int, len(sets))
	for i, s := range sets {
		c := append([]int(nil), s...)
		sort.Ints(c)
		out := c[:0]
		for k, v := range c {
			if k == 0 || v != c[k-1] {
				out = append(out, v)
			}
		}
		norm[i] = out
	}
	return &IntSets{sets: norm}
}

// Len returns the number of sets.
func (s *IntSets) Len() int { return len(s.sets) }

// Distance returns the Jaccard distance between sets i and j.
func (s *IntSets) Distance(i, j int) float64 {
	return Jaccard(s.sets[i], s.sets[j])
}

// Jaccard returns the Jaccard distance between two sorted unique int
// slices.
func Jaccard(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return 1 - float64(inter)/float64(union)
}
