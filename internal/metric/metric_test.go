package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestOracleCounts(t *testing.T) {
	m, err := NewMatrix([][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(m)
	if o.Len() != 2 {
		t.Fatalf("Len = %d, want 2", o.Len())
	}
	if d := o.Distance(0, 1); d != 1 {
		t.Fatalf("Distance = %v, want 1", d)
	}
	o.Distance(1, 0)
	if o.Calls() != 2 {
		t.Fatalf("Calls = %d, want 2", o.Calls())
	}
	o.ResetCalls()
	if o.Calls() != 0 {
		t.Fatalf("Calls after reset = %d", o.Calls())
	}
}

func TestCostModel(t *testing.T) {
	cm := CostModel{PerCall: time.Second}
	got := cm.Completion(10, 5*time.Second)
	if got != 15*time.Second {
		t.Fatalf("Completion = %v, want 15s", got)
	}
}

func TestVectorsNorms(t *testing.T) {
	pts := [][]float64{{0, 0}, {3, 4}}
	cases := []struct {
		p    float64
		want float64
	}{
		{1, 7},
		{2, 5},
		{math.Inf(1), 4},
		{3, math.Pow(27+64, 1.0/3)},
	}
	for _, c := range cases {
		v := NewVectors(pts, c.p, 0)
		if got := v.Distance(0, 1); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("p=%v: Distance = %v, want %v", c.p, got, c.want)
		}
	}
	// Scale is applied.
	v := NewVectors(pts, 2, 0.5)
	if got := v.Distance(0, 1); got != 2.5 {
		t.Fatalf("scaled Distance = %v, want 2.5", got)
	}
}

func TestVectorsMetricAxioms(t *testing.T) {
	// Property: Minkowski distances satisfy the metric axioms.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([][]float64, 6)
		for i := range pts {
			pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		for _, p := range []float64{1, 2, math.Inf(1)} {
			v := NewVectors(pts, p, 0)
			for i := 0; i < 6; i++ {
				if v.Distance(i, i) != 0 {
					return false
				}
				for j := 0; j < 6; j++ {
					if v.Distance(i, j) != v.Distance(j, i) {
						return false
					}
					for k := 0; k < 6; k++ {
						if v.Distance(i, j) > v.Distance(i, k)+v.Distance(k, j)+1e-12 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixValidation(t *testing.T) {
	if _, err := NewMatrix([][]float64{{0, 1}, {1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := NewMatrix([][]float64{{1, 1}, {1, 0}}); err == nil {
		t.Fatal("nonzero diagonal accepted")
	}
	if _, err := NewMatrix([][]float64{{0, 1}, {2, 0}}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	if _, err := NewMatrix([][]float64{{0, -1}, {-1, 0}}); err == nil {
		t.Fatal("negative distance accepted")
	}
	m, err := NewMatrix([][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("uniform metric failed validation: %v", err)
	}
	bad, _ := NewMatrix([][]float64{{0, 10, 1}, {10, 0, 1}, {1, 1, 0}})
	if err := bad.Validate(); err == nil {
		t.Fatal("triangle violation not detected")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"ACGT", "ACGT", 0},
		{"ACGT", "AGT", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	alphabet := "ACGT"
	randSeq := func(rng *rand.Rand) string {
		n := rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(4)]
		}
		return string(b)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randSeq(rng), randSeq(rng), randSeq(rng)
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba {
			return false
		}
		if (dab == 0) != (a == b) {
			return false
		}
		return dab <= Levenshtein(a, c)+Levenshtein(c, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringsSpace(t *testing.T) {
	s := NewStrings([]string{"AAAA", "AATA", "CCCC"}, 0.25)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.Distance(0, 1); got != 0.25 {
		t.Fatalf("Distance = %v, want 0.25", got)
	}
	if got := s.Distance(0, 2); got != 1.0 {
		t.Fatalf("Distance = %v, want 1", got)
	}
}
