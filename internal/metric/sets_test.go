package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHausdorffBasics(t *testing.T) {
	a := [][]float64{{0, 0}, {1, 0}}
	b := [][]float64{{0, 0}, {1, 0}}
	if d := Hausdorff(a, b); d != 0 {
		t.Fatalf("identical sets: %v", d)
	}
	c := [][]float64{{0, 3}}
	// directed a→c: every point of a is 3..sqrt(10) from (0,3); max = sqrt(10).
	// directed c→a: nearest of a to (0,3) is (0,0) at 3.
	want := math.Sqrt(10)
	if d := Hausdorff(a, c); math.Abs(d-want) > 1e-12 {
		t.Fatalf("Hausdorff = %v, want %v", d, want)
	}
}

func TestHausdorffEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty set did not panic")
		}
	}()
	Hausdorff(nil, [][]float64{{0}})
}

func randSets(rng *rand.Rand, n int) [][][]float64 {
	sets := make([][][]float64, n)
	for i := range sets {
		m := 1 + rng.Intn(6)
		sets[i] = make([][]float64, m)
		for k := range sets[i] {
			sets[i][k] = []float64{rng.Float64(), rng.Float64()}
		}
	}
	return sets
}

func TestHausdorffMetricAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sets := randSets(rng, 5)
		p := NewPointSets(sets, 0)
		for i := 0; i < 5; i++ {
			if p.Distance(i, i) != 0 {
				return false
			}
			for j := 0; j < 5; j++ {
				if math.Abs(p.Distance(i, j)-p.Distance(j, i)) > 1e-12 {
					return false
				}
				for k := 0; k < 5; k++ {
					if p.Distance(i, j) > p.Distance(i, k)+p.Distance(k, j)+1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardBasics(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{nil, nil, 0},
		{[]int{1}, nil, 1},
		{[]int{1, 2, 3}, []int{1, 2, 3}, 0},
		{[]int{1, 2}, []int{2, 3}, 1 - 1.0/3},
		{[]int{1, 2, 3, 4}, []int{3, 4, 5, 6}, 1 - 2.0/6},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntSetsNormalises(t *testing.T) {
	s := NewIntSets([][]int{{3, 1, 2, 2, 1}, {1, 2, 3}})
	if d := s.Distance(0, 1); d != 0 {
		t.Fatalf("duplicated/unsorted input not normalised: d = %v", d)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestJaccardMetricAxioms(t *testing.T) {
	randSet := func(rng *rand.Rand) []int {
		m := rng.Intn(8)
		s := make([]int, m)
		for i := range s {
			s[i] = rng.Intn(12)
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sets := [][]int{randSet(rng), randSet(rng), randSet(rng)}
		s := NewIntSets(sets)
		for i := 0; i < 3; i++ {
			if s.Distance(i, i) != 0 {
				return false
			}
			for j := 0; j < 3; j++ {
				if s.Distance(i, j) != s.Distance(j, i) {
					return false
				}
				for k := 0; k < 3; k++ {
					if s.Distance(i, j) > s.Distance(i, k)+s.Distance(k, j)+1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
