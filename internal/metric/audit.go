package metric

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"metricprox/internal/obs"
)

// ErrNonMetric is the sentinel wrapped by every triangle-inequality
// violation this package reports. Callers use errors.Is(err, ErrNonMetric)
// to distinguish "the oracle is not a metric" from transport failures
// (ErrOracleUnavailable and friends), because the two demand different
// remedies: a violation calls for ε-slack or offline calibration, not a
// retry.
var ErrNonMetric = errors.New("metric: triangle inequality violated")

// ViolationError describes one concrete triangle-inequality violation:
// the triple of objects, the three observed distances, and the additive
// margin by which the long side exceeds the sum of the other two. It
// wraps ErrNonMetric.
type ViolationError struct {
	// I, J, K are the three objects of the violated triangle. The
	// violated orientation is d(I,J) > d(I,K) + d(K,J).
	I, J, K int
	// DIJ, DIK, DKJ are the observed distances for the pairs (I,J),
	// (I,K) and (K,J).
	DIJ, DIK, DKJ float64
	// Margin is DIJ − (DIK + DKJ), the additive amount ε by which the
	// triangle inequality fails for this triple.
	Margin float64
}

// Error formats the violation naming the offending pair and witnesses.
func (e *ViolationError) Error() string {
	return fmt.Sprintf(
		"metric: triangle violation on pair (%d,%d): d(%d,%d)=%v > d(%d,%d)+d(%d,%d) = %v+%v (margin %v)",
		e.I, e.J, e.I, e.J, e.DIJ, e.I, e.K, e.K, e.J, e.DIK, e.DKJ, e.Margin)
}

// Unwrap lets errors.Is(err, ErrNonMetric) match.
func (e *ViolationError) Unwrap() error { return ErrNonMetric }

// Metric names recorded by the Auditor once Observe attaches a registry.
// Full semantics live in docs/METRICS.md.
const (
	// MetricViolationChecks counts triangles audited.
	MetricViolationChecks = "metric_violation_checks_total"
	// MetricViolations counts triangles that violated the inequality.
	MetricViolations = "metric_violation_total"
	// MetricViolationMargin is a gauge holding the running worst additive
	// margin ε̂ (0 while no violation has been seen).
	MetricViolationMargin = "metric_violation_margin"
	// MetricViolationRatio is a gauge holding the running worst
	// multiplicative ratio ρ̂ = longest/(sum of the other two sides)
	// over audited triangles (0 until the first triangle is audited; ≤ 1
	// for a true metric).
	MetricViolationRatio = "metric_violation_ratio"
)

// auditInstruments is the Auditor's set of obs handles.
type auditInstruments struct {
	checks     *obs.Counter
	violations *obs.Counter
	margin     *obs.Gauge
	ratio      *obs.Gauge
}

// Auditor accumulates triangle-inequality evidence from triangles some
// other component already enumerates — the Tri bound scheme walks exactly
// the (i,k,j) triples with both legs known, so auditing there costs zero
// extra oracle calls. The Auditor itself never calls an oracle and never
// blocks: counters are atomics and the worst margin/ratio are CAS-max
// float cells, so it is safe to drive from under core.SharedSession's
// bookkeeping lock.
//
// The worst additive margin ε̂ (Margin) is the quantity ε-slack mode
// consumes: if every violated triangle has margin ≤ ε, relaxing derived
// intervals to [lb−ε, ub+ε] restores soundness (DESIGN.md §12).
type Auditor struct {
	tol float64

	triangles  atomic.Int64
	violations atomic.Int64
	marginBits atomic.Uint64 // float64 bits of the worst additive margin
	ratioBits  atomic.Uint64 // float64 bits of the worst long/(sum legs)

	mu  sync.Mutex
	err *ViolationError

	ins atomic.Pointer[auditInstruments]
}

// NewAuditor returns an Auditor that treats margins above tol as
// violations; tol ≤ 0 selects the default 1e-9, absorbing float
// round-off in honest metrics.
func NewAuditor(tol float64) *Auditor {
	if tol <= 0 {
		tol = 1e-9
	}
	return &Auditor{tol: tol}
}

// CheckTriangle audits one triangle given its three pairwise distances:
// dij = d(i,j), dik = d(i,k), dkj = d(k,j). All three orientations are
// checked. It reports true when the triangle satisfies the inequality
// within tolerance, false when it is a violation; in the latter case the
// worst margin/ratio and the first-violation latch are updated.
func (a *Auditor) CheckTriangle(i, j, k int, dij, dik, dkj float64) bool {
	b := a.Batch()
	ok := b.Check(i, j, k, dij, dik, dkj)
	b.Flush()
	return ok
}

// Batch returns an empty TriangleBatch bound to the auditor.
func (a *Auditor) Batch() TriangleBatch { return TriangleBatch{a: a} }

// TriangleBatch accumulates triangle checks locally — pure float
// arithmetic, no atomics — and publishes the lot with Flush in O(1)
// synchronised operations. Use it when one event (a resolution) closes
// many triangles at once: the CI bench-smoke job holds the auditor to
// ≤5% overhead on a kNN build, and per-triangle atomic traffic is what
// that budget cannot afford. Semantics match per-triangle CheckTriangle
// calls except that the latched first violation is the worst of the
// batch rather than the first in enumeration order (within one
// resolution that order is an adjacency-layout artifact anyway).
//
// A TriangleBatch is single-goroutine state; concurrent resolutions each
// take their own batch and Flush serialises through the auditor's
// lock-free cells.
type TriangleBatch struct {
	a          *Auditor
	triangles  int64
	violations int64
	ratio      float64 // worst long/(sum legs) in the batch
	margin     float64 // worst violating margin in the batch
	ve         ViolationError
}

// Check audits one triangle into the batch; it reports true when the
// triangle satisfies the inequality within the auditor's tolerance.
func (b *TriangleBatch) Check(i, j, k int, dij, dik, dkj float64) bool {
	b.triangles++

	// Ratio of the longest side to the sum of the other two; ≤ 1 for a
	// true metric, = ρ for an oracle obeying d ≤ ρ·(sum of legs).
	long, rest := dij, dik+dkj
	if dik > long {
		long, rest = dik, dij+dkj
	}
	if dkj > long {
		long, rest = dkj, dij+dik
	}
	switch {
	case rest > 0:
		if r := long / rest; r > b.ratio {
			b.ratio = r
		}
	case long > 0:
		b.ratio = math.Inf(1)
	}

	// Worst additive margin over the three orientations, and the
	// orientation achieving it (for the latched error).
	vi, vj, vk := i, j, k
	margin := dij - (dik + dkj)
	if m := dik - (dij + dkj); m > margin {
		margin, vi, vj, vk = m, i, k, j
	}
	if m := dkj - (dij + dik); m > margin {
		margin, vi, vj, vk = m, k, j, i
	}
	if !(margin > b.a.tol) { // NaN margins are not violations we can act on
		return true
	}

	b.violations++
	if margin > b.margin {
		b.margin = margin
		ve := ViolationError{I: vi, J: vj, K: vk, Margin: margin}
		// Re-derive the distances in the violated orientation.
		switch {
		case vi == i && vj == j:
			ve.DIJ, ve.DIK, ve.DKJ = dij, dik, dkj
		case vi == i && vj == k:
			ve.DIJ, ve.DIK, ve.DKJ = dik, dij, dkj
		default: // (k, j) long side
			ve.DIJ, ve.DIK, ve.DKJ = dkj, dik, dij
		}
		b.ve = ve
	}
	return false
}

// Flush publishes the batch into the auditor and resets it for reuse.
func (b *TriangleBatch) Flush() {
	if b.triangles == 0 {
		return
	}
	a := b.a
	a.triangles.Add(b.triangles)
	a.maxInto(&a.ratioBits, b.ratio)
	ins := a.ins.Load()
	if ins != nil {
		ins.checks.Add(b.triangles)
		ins.ratio.Set(a.Ratio())
	}
	if b.violations > 0 {
		a.violations.Add(b.violations)
		a.maxInto(&a.marginBits, b.margin)
		if ins != nil {
			ins.violations.Add(b.violations)
			ins.margin.Set(a.Margin())
		}
		a.mu.Lock()
		if a.err == nil {
			ve := b.ve
			a.err = &ve
		}
		a.mu.Unlock()
	}
	*b = TriangleBatch{a: a}
}

// maxInto CAS-raises the float64 stored in cell to v if v is larger.
func (a *Auditor) maxInto(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		if !(v > math.Float64frombits(old)) {
			return
		}
		if cell.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Triangles returns the number of triangles audited so far.
func (a *Auditor) Triangles() int64 { return a.triangles.Load() }

// Violations returns the number of violated triangles observed so far.
func (a *Auditor) Violations() int64 { return a.violations.Load() }

// Margin returns the running worst additive margin ε̂ (0 while no
// violation has been observed).
func (a *Auditor) Margin() float64 {
	return math.Float64frombits(a.marginBits.Load())
}

// Ratio returns the running worst longest-side/(sum of legs) ratio over
// audited triangles; ≤ 1 means every audited triangle was metric.
func (a *Auditor) Ratio() float64 {
	return math.Float64frombits(a.ratioBits.Load())
}

// Err returns the first violation observed, or nil. The result is always
// a *ViolationError wrapping ErrNonMetric.
func (a *Auditor) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err == nil {
		return nil
	}
	return a.err
}

// Observe registers the auditor's instruments in r and mirrors every
// future check into them, seeding counters and gauges with the evidence
// already accumulated so registry values match the accessors no matter
// when observation is attached. Call at most once per Auditor.
// Observation never influences auditing decisions.
func (a *Auditor) Observe(r *obs.Registry) {
	ins := &auditInstruments{
		checks:     r.Counter(MetricViolationChecks),
		violations: r.Counter(MetricViolations),
		margin:     r.Gauge(MetricViolationMargin),
		ratio:      r.Gauge(MetricViolationRatio),
	}
	ins.checks.Add(a.triangles.Load())
	ins.violations.Add(a.violations.Load())
	ins.margin.Set(a.Margin())
	ins.ratio.Set(a.Ratio())
	a.ins.Store(ins)
}
