package metric

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// corruptSpace returns a fixed (possibly non-metric) value for every pair.
type corruptSpace struct {
	n int
	d float64
}

func (c corruptSpace) Len() int                  { return c.n }
func (c corruptSpace) Distance(i, j int) float64 { return c.d }

func TestValidateDistance(t *testing.T) {
	if err := ValidateDistance(0.5, 0, 1); err != nil {
		t.Fatalf("valid distance rejected: %v", err)
	}
	if err := ValidateDistance(0, 0, 1); err != nil {
		t.Fatalf("zero distance rejected: %v", err)
	}
	for _, bad := range []float64{math.NaN(), -0.25, math.Inf(-1)} {
		err := ValidateDistance(bad, 2, 3)
		if err == nil {
			t.Fatalf("ValidateDistance(%v) = nil, want error", bad)
		}
		if !errors.Is(err, ErrInvalidDistance) {
			t.Fatalf("ValidateDistance(%v) = %v, want ErrInvalidDistance", bad, err)
		}
	}
}

func TestOracleDistancePanicsOnCorruptBackend(t *testing.T) {
	for _, bad := range []float64{math.NaN(), -1} {
		o := NewOracle(corruptSpace{n: 4, d: bad})
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Distance with backend value %v did not panic", bad)
				}
				err, ok := r.(error)
				if !ok || !errors.Is(err, ErrInvalidDistance) {
					t.Fatalf("panic value %v, want error wrapping ErrInvalidDistance", r)
				}
			}()
			o.Distance(0, 1)
		}()
	}
}

func TestOracleDistanceCtxRejectsCorruptBackend(t *testing.T) {
	o := NewOracle(corruptSpace{n: 4, d: math.NaN()})
	if _, err := o.DistanceCtx(context.Background(), 0, 1); !errors.Is(err, ErrInvalidDistance) {
		t.Fatalf("DistanceCtx over NaN backend: err = %v, want ErrInvalidDistance", err)
	}
}

func TestOracleDistanceCtx(t *testing.T) {
	o := NewOracle(corruptSpace{n: 4, d: 0.75})
	d, err := o.DistanceCtx(context.Background(), 0, 1)
	if err != nil || d != 0.75 {
		t.Fatalf("DistanceCtx = (%v, %v), want (0.75, nil)", d, err)
	}
	if o.Calls() != 1 {
		t.Fatalf("Calls = %d, want 1", o.Calls())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.DistanceCtx(ctx, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("DistanceCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if o.Calls() != 1 {
		t.Fatalf("cancelled call still counted: Calls = %d, want 1", o.Calls())
	}
}

func TestOracleDistanceCtxLatencyHonoursDeadline(t *testing.T) {
	o := NewLatencyOracle(corruptSpace{n: 4, d: 0.5}, time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := o.DistanceCtx(ctx, 0, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("latency sleep ignored the deadline (%v)", elapsed)
	}
}

func TestSleepCtx(t *testing.T) {
	if err := SleepCtx(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
	if err := SleepCtx(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("short sleep: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepCtx(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sleep: err = %v, want context.Canceled", err)
	}
}
