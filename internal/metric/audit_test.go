package metric

import (
	"errors"
	"math"
	"sync"
	"testing"

	"metricprox/internal/obs"
)

func TestAuditorValidTriangles(t *testing.T) {
	a := NewAuditor(0)
	if !a.CheckTriangle(0, 1, 2, 3, 4, 5) {
		t.Fatal("valid triangle flagged as violation")
	}
	if !a.CheckTriangle(0, 1, 2, 2, 1, 1) { // exact equality: margin 0
		t.Fatal("boundary triangle (equality within tol) flagged")
	}
	if got := a.Triangles(); got != 2 {
		t.Fatalf("Triangles() = %d, want 2", got)
	}
	if got := a.Violations(); got != 0 {
		t.Fatalf("Violations() = %d, want 0", got)
	}
	if got := a.Margin(); got != 0 {
		t.Fatalf("Margin() = %v, want 0", got)
	}
	if r := a.Ratio(); !(r > 0 && r <= 1) {
		t.Fatalf("Ratio() = %v, want in (0, 1] for metric triangles", r)
	}
	if a.Err() != nil {
		t.Fatalf("Err() = %v, want nil", a.Err())
	}
}

func TestAuditorDetectsEveryOrientation(t *testing.T) {
	// One inflated side at a time; the other two are 1 each.
	cases := []struct {
		name          string
		dij, dik, dkj float64
		wantI, wantJ  int
	}{
		{"long-ij", 3, 1, 1, 0, 1},
		{"long-ik", 1, 3, 1, 0, 2},
		{"long-kj", 1, 1, 3, 2, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAuditor(0)
			if a.CheckTriangle(0, 1, 2, tc.dij, tc.dik, tc.dkj) {
				t.Fatal("violation not detected")
			}
			if got := a.Margin(); got != 1 {
				t.Fatalf("Margin() = %v, want 1", got)
			}
			if got := a.Ratio(); got != 1.5 {
				t.Fatalf("Ratio() = %v, want 1.5", got)
			}
			var ve *ViolationError
			if !errors.As(a.Err(), &ve) {
				t.Fatalf("Err() = %v, want *ViolationError", a.Err())
			}
			if !errors.Is(a.Err(), ErrNonMetric) {
				t.Fatal("violation does not wrap ErrNonMetric")
			}
			if ve.I != tc.wantI || ve.J != tc.wantJ {
				t.Fatalf("violated pair = (%d,%d), want (%d,%d): %v",
					ve.I, ve.J, tc.wantI, tc.wantJ, ve)
			}
			if ve.Margin != 1 {
				t.Fatalf("ve.Margin = %v, want 1", ve.Margin)
			}
			if ve.DIJ != 3 || ve.DIK != 1 || ve.DKJ != 1 {
				t.Fatalf("distances not in violated orientation: %+v", ve)
			}
		})
	}
}

func TestAuditorLatchesFirstViolation(t *testing.T) {
	a := NewAuditor(0)
	a.CheckTriangle(0, 1, 2, 3, 1, 1)  // margin 1
	a.CheckTriangle(4, 5, 6, 10, 1, 1) // margin 8, bigger but later
	var ve *ViolationError
	if !errors.As(a.Err(), &ve) || ve.I != 0 || ve.J != 1 {
		t.Fatalf("Err() should latch the first violation, got %v", a.Err())
	}
	if got := a.Margin(); got != 8 {
		t.Fatalf("Margin() should track the worst, got %v want 8", got)
	}
	if got := a.Violations(); got != 2 {
		t.Fatalf("Violations() = %d, want 2", got)
	}
}

func TestAuditorTolerance(t *testing.T) {
	a := NewAuditor(0.5)
	if !a.CheckTriangle(0, 1, 2, 2.4, 1, 1) { // margin 0.4 ≤ tol
		t.Fatal("sub-tolerance margin flagged as violation")
	}
	if a.CheckTriangle(0, 1, 2, 2.6, 1, 1) { // margin 0.6 > tol
		t.Fatal("above-tolerance margin not flagged")
	}
}

func TestAuditorDegenerateTriangle(t *testing.T) {
	a := NewAuditor(0)
	// Zero legs with a positive long side: infinite ratio, margin = long.
	if a.CheckTriangle(0, 1, 2, 1, 0, 0) {
		t.Fatal("violation with zero legs not flagged")
	}
	if !math.IsInf(a.Ratio(), 1) {
		t.Fatalf("Ratio() = %v, want +Inf", a.Ratio())
	}
	// All-zero triangle is fine (identical points).
	if !a.CheckTriangle(3, 4, 5, 0, 0, 0) {
		t.Fatal("all-zero triangle flagged")
	}
}

func TestAuditorObserve(t *testing.T) {
	a := NewAuditor(0)
	a.CheckTriangle(0, 1, 2, 3, 1, 1) // pre-Observe violation
	reg := obs.NewRegistry()
	a.Observe(reg)
	a.CheckTriangle(0, 1, 3, 2, 1, 1)  // valid
	a.CheckTriangle(4, 5, 6, 10, 1, 1) // violation, margin 8

	if got := reg.Counter(MetricViolationChecks).Value(); got != a.Triangles() {
		t.Fatalf("checks counter = %d, want %d", got, a.Triangles())
	}
	if got := reg.Counter(MetricViolations).Value(); got != a.Violations() {
		t.Fatalf("violations counter = %d, want %d", got, a.Violations())
	}
	if got := reg.Gauge(MetricViolationMargin).Value(); got != a.Margin() {
		t.Fatalf("margin gauge = %v, want %v", got, a.Margin())
	}
	if got := reg.Gauge(MetricViolationRatio).Value(); got != a.Ratio() {
		t.Fatalf("ratio gauge = %v, want %v", got, a.Ratio())
	}
}

func TestAuditorConcurrent(t *testing.T) {
	a := NewAuditor(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				if n%10 == 0 {
					a.CheckTriangle(g, n, n+1, float64(n+3), 1, 1)
				} else {
					a.CheckTriangle(g, n, n+1, 1, 1, 1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := a.Triangles(); got != 8*200 {
		t.Fatalf("Triangles() = %d, want %d", got, 8*200)
	}
	if got := a.Violations(); got != 8*20 {
		t.Fatalf("Violations() = %d, want %d", got, 8*20)
	}
	if got := a.Margin(); got != 191 { // n=190: d=193, legs sum 2
		t.Fatalf("Margin() = %v, want 191", got)
	}
	if a.Err() == nil {
		t.Fatal("no violation latched")
	}
}
