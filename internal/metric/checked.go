package metric

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"metricprox/internal/fcmp"
	"metricprox/internal/obs"
)

// MetricCheckedViolations counts every metric-axiom violation Checked
// observes (not just the first latched one), recorded once Observe
// attaches a registry. Full semantics live in docs/METRICS.md.
const MetricCheckedViolations = "metric_checked_violations_total"

// Checked wraps a Space with on-line metric-axiom validation. Every bound
// scheme in this library is only sound if the oracle really is a metric;
// when it silently isn't (a "distance" API returning asymmetric travel
// times, a buggy similarity score), the framework can return wrong answers
// with no crash. Checked turns that silent corruption into a loud error:
//
//   - every returned distance is checked for NaN / negativity;
//   - symmetry is spot-checked by replaying a sample of pairs reversed;
//   - the triangle inequality is spot-checked against randomly retained
//     witness points.
//
// Checks beyond the cheap per-call ones are sampled (Rate) so the wrapper
// stays affordable even for expensive oracles. The first violation is
// recorded and returned by Err, and every violation — including those
// after the first — is counted (Violations, and the
// MetricCheckedViolations series once Observe attaches a registry), so a
// pervasively broken oracle is distinguishable from a single glitch.
// Triangle violations are typed *ViolationError values wrapping
// ErrNonMetric, naming the offending pair and the witness legs. Callers
// embed Checked during development and drop it in production.
type Checked struct {
	space Space
	rate  float64
	rng   *rand.Rand

	mu      sync.Mutex
	sample  []sampled // retained (i, j, d) witnesses
	maxKeep int
	err     error

	violations atomic.Int64
	ins        atomic.Pointer[obs.Counter]
}

type sampled struct {
	i, j int
	d    float64
}

// NewChecked wraps space, spot-checking roughly rate of calls (0 < rate ≤
// 1; rate 0 means 0.05). seed makes the sampling deterministic.
func NewChecked(space Space, rate float64, seed int64) *Checked {
	if rate <= 0 {
		rate = 0.05
	}
	if rate > 1 {
		rate = 1
	}
	return &Checked{
		space:   space,
		rate:    rate,
		rng:     rand.New(rand.NewSource(seed)),
		maxKeep: 64,
	}
}

// Len returns the underlying universe size.
func (c *Checked) Len() int { return c.space.Len() }

// Err returns the first metric-axiom violation observed, or nil.
func (c *Checked) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Violations returns the total number of metric-axiom violations observed,
// including those after the first error latched.
func (c *Checked) Violations() int64 { return c.violations.Load() }

// Observe registers the violation counter in r and mirrors every future
// violation into it, seeded with the violations already counted. Call at
// most once per Checked. Observation never influences checking decisions.
func (c *Checked) Observe(r *obs.Registry) {
	ctr := r.Counter(MetricCheckedViolations)
	ctr.Add(c.violations.Load())
	c.ins.Store(ctr)
}

// note counts one violation and latches it as Err if it is the first.
// Callers hold c.mu.
func (c *Checked) note(err error) {
	c.violations.Add(1)
	if ctr := c.ins.Load(); ctr != nil {
		ctr.Inc()
	}
	if c.err == nil {
		c.err = err
	}
}

// Distance returns the underlying distance after validation.
func (c *Checked) Distance(i, j int) float64 {
	d := c.space.Distance(i, j)
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case math.IsNaN(d):
		c.note(fmt.Errorf("metric: Distance(%d,%d) returned NaN", i, j))
		return d
	case d < 0:
		c.note(fmt.Errorf("metric: Distance(%d,%d) = %v is negative for pair (%d,%d)", i, j, d, i, j))
		return d
	case i == j && d != 0:
		c.note(fmt.Errorf("metric: Distance(%d,%d) = %v on identical objects", i, j, d))
		return d
	}
	if i == j || c.rng.Float64() > c.rate {
		return d
	}
	// Symmetry spot check.
	//proxlint:allow lockheldoracle -- verification probe: Checked deliberately replays the wrapped space under its own mutex to keep err/sample state consistent; this is below the session layer, so no session lock can deadlock against it
	if back := c.space.Distance(j, i); !fcmp.ExactEq(back, d) {
		c.note(fmt.Errorf("metric: asymmetry on pair (%d,%d): d(%d,%d)=%v but d(%d,%d)=%v", i, j, i, j, d, j, i, back))
		return d
	}
	// Triangle spot checks against retained witnesses.
	for _, w := range c.sample {
		for _, tri := range [][3]int{{i, j, w.i}, {i, j, w.j}} {
			k := tri[2]
			if k == i || k == j {
				continue
			}
			dik := c.space.Distance(i, k) //proxlint:allow lockheldoracle -- triangle spot check under Checked's own mutex, below the session layer
			dkj := c.space.Distance(k, j) //proxlint:allow lockheldoracle -- triangle spot check under Checked's own mutex, below the session layer
			if d > dik+dkj+1e-9 {
				c.note(&ViolationError{
					I: i, J: j, K: k,
					DIJ: d, DIK: dik, DKJ: dkj,
					Margin: d - (dik + dkj),
				})
				return d
			}
		}
		break // one witness per sampled call keeps the overhead bounded
	}
	c.sample = append(c.sample, sampled{i: i, j: j, d: d})
	if len(c.sample) > c.maxKeep {
		c.sample = c.sample[1:]
	}
	return d
}
