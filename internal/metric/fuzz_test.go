package metric

import "testing"

// FuzzLevenshtein checks structural properties of the edit distance on
// arbitrary byte strings: symmetry, identity, the length-difference lower
// bound and max-length upper bound, and unit sensitivity to single-rune
// appends.
func FuzzLevenshtein(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("ACGT", "TGCA")
	f.Fuzz(func(t *testing.T, a, b string) {
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			t.Fatalf("asymmetric: %d vs %d", d, Levenshtein(b, a))
		}
		if (d == 0) != (a == b) {
			t.Fatalf("identity violated: d=%d for %q vs %q", d, a, b)
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		if d < diff || d > max {
			t.Fatalf("d=%d outside [%d,%d] for %q vs %q", d, diff, max, a, b)
		}
		// Appending one byte changes the distance by at most 1.
		d2 := Levenshtein(a+"x", b)
		if d2 < d-1 || d2 > d+1 {
			t.Fatalf("append changed distance %d -> %d", d, d2)
		}
	})
}

// FuzzJaccard checks the Jaccard distance axioms on arbitrary int sets.
func FuzzJaccard(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		toSet := func(raw []byte) []int {
			s := make([]int, len(raw))
			for i, b := range raw {
				s[i] = int(b)
			}
			return s
		}
		sets := NewIntSets([][]int{toSet(rawA), toSet(rawB), toSet(append(rawA, rawB...))})
		d01 := sets.Distance(0, 1)
		if d01 < 0 || d01 > 1 {
			t.Fatalf("distance %v outside [0,1]", d01)
		}
		if d01 != sets.Distance(1, 0) {
			t.Fatal("asymmetric")
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				for k := 0; k < 3; k++ {
					if sets.Distance(i, j) > sets.Distance(i, k)+sets.Distance(k, j)+1e-12 {
						t.Fatalf("triangle violation (%d,%d,%d)", i, j, k)
					}
				}
			}
		}
	})
}
