package metric

import (
	"errors"
	"strings"
	"testing"

	"metricprox/internal/obs"
)

// evilSpace wraps a valid space and injects a specific violation.
type evilSpace struct {
	Space
	mode string
}

func (e evilSpace) Distance(i, j int) float64 {
	d := e.Space.Distance(i, j)
	switch e.mode {
	case "nan":
		if i == 2 && j == 5 {
			return nan()
		}
	case "negative":
		if i == 2 && j == 5 {
			return -0.1
		}
	case "asymmetric":
		if i > j {
			return d * 1.5
		}
	case "triangle":
		// A wildly inflated single pair breaks the triangle inequality.
		if (i == 2 && j == 5) || (i == 5 && j == 2) {
			return 1e6
		}
	}
	return d
}

func nan() float64 {
	var z float64
	return z / z
}

func validBase() Space {
	pts := make([][]float64, 10)
	for i := range pts {
		pts[i] = []float64{float64(i) / 10, float64(i*i%7) / 10}
	}
	return NewVectors(pts, 2, 0.5)
}

func drive(c *Checked) {
	for i := 0; i < c.Len(); i++ {
		for j := 0; j < c.Len(); j++ {
			c.Distance(i, j)
			if c.Err() != nil {
				return
			}
		}
	}
}

func TestCheckedPassesValidMetric(t *testing.T) {
	c := NewChecked(validBase(), 1, 1)
	drive(c)
	drive(c)
	if err := c.Err(); err != nil {
		t.Fatalf("valid metric flagged: %v", err)
	}
}

func TestCheckedCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"nan":        "NaN",
		"negative":   "negative",
		"asymmetric": "asymmetry",
		"triangle":   "triangle",
	}
	for mode, wantSubstr := range cases {
		c := NewChecked(evilSpace{Space: validBase(), mode: mode}, 1, 2)
		drive(c)
		err := c.Err()
		if err == nil {
			t.Errorf("mode %q: violation not caught", mode)
			continue
		}
		if !strings.Contains(err.Error(), wantSubstr) {
			t.Errorf("mode %q: error %q does not mention %q", mode, err, wantSubstr)
		}
	}
}

func TestCheckedSelfDistance(t *testing.T) {
	c := NewChecked(evilSpace{Space: validBase(), mode: ""}, 1, 3)
	if d := c.Distance(3, 3); d != 0 {
		t.Fatalf("self distance %v", d)
	}
	if c.Err() != nil {
		t.Fatalf("unexpected error: %v", c.Err())
	}
}

func TestCheckedCountsAllViolations(t *testing.T) {
	c := NewChecked(evilSpace{Space: validBase(), mode: "asymmetric"}, 1, 2)
	reg := obs.NewRegistry()
	c.Observe(reg)
	drive(c)
	first := c.Err()
	if first == nil {
		t.Fatal("violation not caught")
	}
	// Keep driving past the first error: violations keep counting, the
	// latched error stays the first one.
	for i := 0; i < c.Len(); i++ {
		for j := 0; j < c.Len(); j++ {
			c.Distance(i, j)
		}
	}
	if c.Err() != first {
		t.Fatalf("Err() changed after more violations: %v vs %v", c.Err(), first)
	}
	if got := c.Violations(); got < 2 {
		t.Fatalf("Violations() = %d, want ≥ 2 after full sweep", got)
	}
	if got := reg.Counter(MetricCheckedViolations).Value(); got != c.Violations() {
		t.Fatalf("counter = %d, want %d", got, c.Violations())
	}
}

func TestCheckedObserveSeedsExistingViolations(t *testing.T) {
	c := NewChecked(evilSpace{Space: validBase(), mode: "negative"}, 1, 2)
	drive(c)
	if c.Violations() == 0 {
		t.Fatal("no violations before Observe")
	}
	reg := obs.NewRegistry()
	c.Observe(reg)
	if got := reg.Counter(MetricCheckedViolations).Value(); got != c.Violations() {
		t.Fatalf("seeded counter = %d, want %d", got, c.Violations())
	}
}

func TestCheckedTriangleErrorIsTyped(t *testing.T) {
	c := NewChecked(evilSpace{Space: validBase(), mode: "triangle"}, 1, 2)
	drive(c)
	// The inflated pair (2,5) must eventually surface as a typed
	// triangle violation naming it; drive until the latch fires.
	err := c.Err()
	if err == nil {
		t.Fatal("triangle violation not caught")
	}
	var ve *ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("triangle error is %T, want *ViolationError: %v", err, err)
	}
	if !errors.Is(err, ErrNonMetric) {
		t.Fatal("triangle error does not wrap ErrNonMetric")
	}
	if !strings.Contains(err.Error(), "pair (2,5)") && !strings.Contains(err.Error(), "pair (5,2)") {
		t.Fatalf("error does not name the offending pair: %v", err)
	}
}
