package metric

import (
	"sync"
	"time"
)

// Instrumented wraps a Space for concurrency tests and experiments: it
// injects a fixed per-call latency (simulating the expensive third-party
// oracle the cost model abstracts) and counts resolutions per unordered
// pair, so tests can assert the Session layer's single-flight guarantee —
// no pair is ever paid for twice, no matter how many goroutines race on
// it. Instrumented is safe for concurrent use.
type Instrumented struct {
	base    Space
	latency time.Duration

	mu    sync.Mutex
	pairs map[[2]int]int
}

// NewInstrumented wraps base; latency 0 disables sleeping.
func NewInstrumented(base Space, latency time.Duration) *Instrumented {
	return &Instrumented{base: base, latency: latency, pairs: make(map[[2]int]int)}
}

// Len returns the base universe size.
func (t *Instrumented) Len() int { return t.base.Len() }

// Distance counts the call against the unordered pair, sleeps for the
// injected latency, and delegates to the base space.
func (t *Instrumented) Distance(i, j int) float64 {
	t.mu.Lock()
	t.pairs[pairKey(i, j)]++
	t.mu.Unlock()
	if t.latency > 0 {
		time.Sleep(t.latency)
	}
	return t.base.Distance(i, j)
}

// PairCalls returns how many times the unordered pair (i, j) has been
// resolved through this space.
func (t *Instrumented) PairCalls(i, j int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pairs[pairKey(i, j)]
}

// MaxPairCalls returns the largest per-pair call count — 1 everywhere
// means perfect deduplication.
func (t *Instrumented) MaxPairCalls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	max := 0
	for _, c := range t.pairs {
		if c > max {
			max = c
		}
	}
	return max
}

// DistinctPairs returns the number of distinct pairs resolved.
func (t *Instrumented) DistinctPairs() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pairs)
}

func pairKey(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}
