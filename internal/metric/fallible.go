package metric

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// FallibleOracle is the context-aware, error-propagating face of the
// distance oracle. It models what the paper's "expensive oracle" really is
// in production — a maps API, an edit-distance engine, an image comparator
// reached over a network — which can time out, rate-limit, suffer outages,
// or return garbage. The session layer (internal/core) consumes this
// interface; internal/faultmetric injects faults behind it and
// internal/resilient wraps any implementation with retry, backoff, and
// circuit-breaking.
//
// DistanceCtx must honour ctx cancellation and return every failure as an
// error; it must never return NaN or a negative distance with a nil error
// (wrap untrusted backends in a validator, or let the resilient layer's
// corrupt-value rejection catch them).
type FallibleOracle interface {
	Len() int
	DistanceCtx(ctx context.Context, i, j int) (float64, error)
}

// ErrInvalidDistance marks a distance that violates the metric contract at
// the oracle boundary: NaN or negative. A corrupt value from a backend
// must never reach the bound structures — a single NaN silently poisons
// every interval it touches — so both oracle paths reject it here: the
// fallible path by returning an error wrapping ErrInvalidDistance, the
// legacy infallible path by panicking (documented on Oracle.Distance).
var ErrInvalidDistance = errors.New("metric: invalid distance")

// ValidateDistance checks a raw backend response for NaN and negativity,
// returning an error wrapping ErrInvalidDistance on violation.
func ValidateDistance(d float64, i, j int) error {
	if math.IsNaN(d) {
		return fmt.Errorf("%w: Distance(%d,%d) returned NaN", ErrInvalidDistance, i, j)
	}
	if d < 0 {
		return fmt.Errorf("%w: Distance(%d,%d) = %v is negative", ErrInvalidDistance, i, j, d)
	}
	return nil
}

// DistanceCtx implements FallibleOracle over the in-process Oracle: it
// honours ctx cancellation (including during simulated latency), counts
// the call, and rejects corrupt backend values with a typed error instead
// of the legacy path's panic. An in-process oracle over a valid metric
// space never fails, so sessions built on top of it are effectively
// infallible — which is exactly why the legacy Session methods can stay
// error-free adapters.
func (o *Oracle) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	o.calls.Add(1)
	if o.latency > 0 {
		if err := SleepCtx(ctx, o.latency); err != nil {
			return 0, err
		}
	}
	d := o.space.Distance(i, j)
	if err := ValidateDistance(d, i, j); err != nil {
		return 0, err
	}
	return d, nil
}

// SleepCtx sleeps for d or until ctx is done, returning ctx.Err() if the
// context fired first. It is the shared primitive for every simulated
// latency and backoff wait in the failure-model stack.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

var _ FallibleOracle = (*Oracle)(nil)
