// Package metric defines the distance-oracle abstraction at the heart of
// the paper's cost model, together with a set of concrete metric spaces.
//
// The paper's setting (Section 1.1) is a finite universe of atomic objects
// in a general metric space whose pairwise distance is served by an
// *expensive oracle* — a maps API, an edit-distance engine, an image
// comparator. The library never assumes coordinates: everything upstream of
// this package sees only Space.Distance(i, j).
//
// Oracle wraps a Space with call counting and an optional cost model so
// that experiments can report both the number of oracle calls (the paper's
// primary metric) and the modelled completion time under a given per-call
// latency (Figures 7d, 8a, 8b) without actually sleeping.
package metric

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"metricprox/internal/fcmp"
)

// Space is a finite universe of objects 0..Len()-1 with a metric distance.
// Implementations must satisfy the metric axioms: identity, symmetry, and
// the triangle inequality; every bound scheme in this library relies on
// them for correctness.
type Space interface {
	Len() int
	Distance(i, j int) float64
}

// Oracle wraps a Space, counting distance resolutions. It is safe for
// concurrent use. An Oracle deliberately does not cache: deduplication of
// repeated pairs is the Session's job, and keeping the Oracle dumb makes
// the call counts in experiments exact.
type Oracle struct {
	space   Space
	calls   atomic.Int64
	latency time.Duration // if nonzero, each call really sleeps
}

// NewOracle returns an oracle over the given space.
func NewOracle(space Space) *Oracle {
	return &Oracle{space: space}
}

// NewLatencyOracle returns an oracle that sleeps for latency on every call,
// physically simulating an expensive third-party API. Use only in demos;
// experiments use the analytical cost model instead.
func NewLatencyOracle(space Space, latency time.Duration) *Oracle {
	return &Oracle{space: space, latency: latency}
}

// Len returns the number of objects in the underlying space.
func (o *Oracle) Len() int { return o.space.Len() }

// Distance resolves the exact distance between objects i and j,
// incrementing the call counter.
//
// Distance panics if the underlying space returns NaN or a negative value:
// the legacy infallible path has no error channel, and letting a corrupt
// backend response through would silently poison every triangle-inequality
// bound derived from it. Backends that can misbehave should be reached
// through DistanceCtx (which returns a typed error wrapping
// ErrInvalidDistance instead) or wrapped in the resilient policy layer.
func (o *Oracle) Distance(i, j int) float64 {
	o.calls.Add(1)
	if o.latency > 0 {
		time.Sleep(o.latency)
	}
	d := o.space.Distance(i, j)
	if err := ValidateDistance(d, i, j); err != nil {
		panic(err)
	}
	return d
}

// Calls returns the number of oracle calls made so far.
func (o *Oracle) Calls() int64 { return o.calls.Load() }

// ResetCalls zeroes the call counter.
func (o *Oracle) ResetCalls() { o.calls.Store(0) }

// CostModel converts a call count and a measured CPU duration into the
// completion time the run would have had if every oracle call cost PerCall.
// This is how the paper's "varying the cost of distance oracle" figures are
// regenerated without sleeping for hours.
type CostModel struct {
	PerCall time.Duration
}

// Completion returns cpu + calls × PerCall.
func (c CostModel) Completion(calls int64, cpu time.Duration) time.Duration {
	return cpu + time.Duration(calls)*c.PerCall
}

// --- concrete spaces ---

// Vectors is a Space over points in R^dim under a Minkowski p-norm, with an
// optional scale factor applied to every distance (used to normalise into
// [0,1], the paper's setting).
type Vectors struct {
	Points [][]float64
	P      float64 // 1 = Manhattan, 2 = Euclidean, +Inf = Chebyshev
	Scale  float64 // multiplied into every distance; 0 means 1
}

// NewVectors returns a Minkowski-p space over the given points.
func NewVectors(points [][]float64, p, scale float64) *Vectors {
	if scale == 0 {
		scale = 1
	}
	return &Vectors{Points: points, P: p, Scale: scale}
}

// Len returns the number of points.
func (v *Vectors) Len() int { return len(v.Points) }

// Distance returns the scaled Minkowski-p distance between points i and j.
func (v *Vectors) Distance(i, j int) float64 {
	a, b := v.Points[i], v.Points[j]
	switch {
	case math.IsInf(v.P, 1):
		max := 0.0
		for k := range a {
			if d := math.Abs(a[k] - b[k]); d > max {
				max = d
			}
		}
		return v.Scale * max
	case v.P == 1:
		sum := 0.0
		for k := range a {
			sum += math.Abs(a[k] - b[k])
		}
		return v.Scale * sum
	case v.P == 2:
		sum := 0.0
		for k := range a {
			d := a[k] - b[k]
			sum += d * d
		}
		return v.Scale * math.Sqrt(sum)
	default:
		sum := 0.0
		for k := range a {
			sum += math.Pow(math.Abs(a[k]-b[k]), v.P)
		}
		return v.Scale * math.Pow(sum, 1/v.P)
	}
}

// Matrix is a Space backed by a precomputed symmetric distance matrix.
// It is the ground-truth vehicle for tests and for replaying real datasets.
type Matrix struct {
	D [][]float64
}

// NewMatrix validates and wraps a symmetric matrix with zero diagonal.
// It returns an error if the matrix is ragged, asymmetric, or has a
// nonzero diagonal; triangle-inequality validation is a separate, O(n³)
// opt-in via Validate.
func NewMatrix(d [][]float64) (*Matrix, error) {
	n := len(d)
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("metric: row %d has length %d, want %d", i, len(d[i]), n)
		}
		if d[i][i] != 0 {
			return nil, fmt.Errorf("metric: nonzero diagonal at %d", i)
		}
		for j := range d[i] {
			if !fcmp.ExactEq(d[i][j], d[j][i]) {
				return nil, fmt.Errorf("metric: asymmetry at (%d,%d)", i, j)
			}
			if d[i][j] < 0 || math.IsNaN(d[i][j]) {
				return nil, fmt.Errorf("metric: invalid distance %v at (%d,%d)", d[i][j], i, j)
			}
		}
	}
	return &Matrix{D: d}, nil
}

// Len returns the matrix dimension.
func (m *Matrix) Len() int { return len(m.D) }

// Distance returns D[i][j].
func (m *Matrix) Distance(i, j int) float64 { return m.D[i][j] }

// Validate checks the triangle inequality over all triples, returning the
// first violation found, or nil.
func (m *Matrix) Validate() error {
	n := len(m.D)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := 0; k < n; k++ {
				if m.D[i][j] > m.D[i][k]+m.D[k][j]+1e-12 {
					return fmt.Errorf("metric: triangle violation d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
						i, j, m.D[i][j], i, k, k, j, m.D[i][k]+m.D[k][j])
				}
			}
		}
	}
	return nil
}

// Strings is a Space over strings under (scaled) Levenshtein edit distance.
// Scaling by a constant preserves the metric axioms; callers typically use
// 1/maxLen to land in [0,1].
type Strings struct {
	Items []string
	Scale float64
}

// NewStrings returns a Levenshtein space. scale 0 means 1.
func NewStrings(items []string, scale float64) *Strings {
	if scale == 0 {
		scale = 1
	}
	return &Strings{Items: items, Scale: scale}
}

// Len returns the number of strings.
func (s *Strings) Len() int { return len(s.Items) }

// Distance returns the scaled Levenshtein distance, computed with the
// classic two-row dynamic program — deliberately the expensive part.
func (s *Strings) Distance(i, j int) float64 {
	return s.Scale * float64(Levenshtein(s.Items[i], s.Items[j]))
}

// Levenshtein returns the edit distance between a and b.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func minInt(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Power wraps a Space with the transformed distance d(i,j)^Q.
//
//   - 0 < Q ≤ 1 (the "snowflake" transform): the result is still a true
//     metric — concave transforms preserve the triangle inequality.
//   - Q > 1: the result is only a ρ-relaxed metric with ρ = 2^(Q−1)
//     (d^Q ≤ 2^(Q−1)·(a^Q + b^Q) whenever d ≤ a+b). Squared Euclidean
//     (Q = 2, ρ = 2) is the classic case; pair it with
//     bounds.NewTriRelaxed / core.WithRelaxation, the generalised setting
//     the paper's Characteristic 1 admits.
type Power struct {
	Base Space
	Q    float64
}

// NewPower wraps base with exponent q > 0.
func NewPower(base Space, q float64) *Power {
	if q <= 0 {
		panic("metric: Power exponent must be positive")
	}
	return &Power{Base: base, Q: q}
}

// Rho returns the relaxation factor of the transformed space: 1 for
// Q ≤ 1, 2^(Q−1) otherwise.
func (p *Power) Rho() float64 {
	if p.Q <= 1 {
		return 1
	}
	return math.Pow(2, p.Q-1)
}

// Len returns the base universe size.
func (p *Power) Len() int { return p.Base.Len() }

// Distance returns base distance raised to Q.
func (p *Power) Distance(i, j int) float64 {
	return math.Pow(p.Base.Distance(i, j), p.Q)
}
