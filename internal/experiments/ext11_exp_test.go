package experiments

import "testing"

// TestExt11BatchReductionAtLeast5x is the service-layer acceptance gate:
// the batched client (bounds prefetch + local mirror) must cut HTTP
// round-trips by at least 5x against the naive per-primitive client on
// the quickstart kNN workload, while both produce bit-identical graphs.
func TestExt11BatchReductionAtLeast5x(t *testing.T) {
	naive, batched, err := ext11Measure(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if naive.requests == 0 || batched.requests == 0 {
		t.Fatalf("round-trip counters empty: naive=%d batched=%d", naive.requests, batched.requests)
	}
	ratio := float64(naive.requests) / float64(batched.requests)
	t.Logf("naive=%d batched=%d ratio=%.1fx (server oracle calls: naive=%d batched=%d)",
		naive.requests, batched.requests, ratio, naive.oracleCalls, batched.oracleCalls)
	if ratio < 5 {
		t.Fatalf("batched client saved only %.1fx round-trips (naive=%d, batched=%d); acceptance floor is 5x",
			ratio, naive.requests, batched.requests)
	}
	if !ext11SameGraph(naive.graph, batched.graph) {
		t.Fatal("naive and batched clients disagree on the kNN graph")
	}
	n, k := ext11Sizes(quickCfg)
	if !ext11SameGraph(batched.graph, ext11Local(n, k, quickCfg.Seed)) {
		t.Fatal("remote batched graph differs from the in-process session's graph")
	}
}
