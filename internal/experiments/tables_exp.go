package experiments

import (
	"fmt"
	"math"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/stats"
)

func init() {
	register("table2", "Prim oracle calls on UrbanGB (clustered) — TS-NB, Tri, LAESA, TLAESA", func(cfg Config) *stats.Table {
		return primTable(cfg, "table2", "UrbanGB (clustered objects on a synthetic road network)", func(n int, seed int64) metric.Space {
			return datasets.UrbanGB(n, seed)
		})
	})
	register("table3", "Prim oracle calls on SF (uniform) — TS-NB, Tri, LAESA, TLAESA", func(cfg Config) *stats.Table {
		return primTable(cfg, "table3", "SF POI (uniform objects on a synthetic road network)", func(n int, seed int64) metric.Space {
			return datasets.SFPOI(n, seed)
		})
	})
}

// primTable regenerates the layout of Tables 2 and 3: the number of
// expensive oracle calls Prim's algorithm makes under each scheme, with
// the paper's columns (Without Plug, TS-NB, Bootstrap, Tri Scheme with
// bootstrap, LAESA, Save%, TLAESA, Save%). k = log₂(n) landmarks.
func primTable(cfg Config, id, dataset string, gen func(int, int64) metric.Space) *stats.Table {
	t := &stats.Table{
		ID:    id,
		Title: "Prim's algorithm oracle-call counts — " + dataset,
		Columns: []string{
			"#Edges", "WithoutPlug", "TS-NB", "Bootstrap",
			"TriScheme(k)", "LAESA(k)", "Save%", "TLAESA(k)", "Save%",
		},
	}
	for _, n := range sizes(cfg) {
		space := gen(n, cfg.Seed)
		k := logLandmarks(n)

		tsnb := runScheme(space, core.SchemeTri, 0, false, cfg, primAlgo)
		tri := runScheme(space, core.SchemeTri, k, true, cfg, primAlgo)
		laesa := runScheme(space, core.SchemeLAESA, k, true, cfg, primAlgo)
		tlaesa := runScheme(space, core.SchemeTLAESA, k, true, cfg, primAlgo)

		// Output identity is part of the experiment contract: all schemes
		// must agree on the MST weight.
		for _, r := range []runOutcome{tri, laesa, tlaesa} {
			if math.Abs(r.Checksum-tsnb.Checksum) > 1e-6 {
				panic(fmt.Sprintf("%s n=%d: MST weight diverged across schemes (%v vs %v)",
					id, n, r.Checksum, tsnb.Checksum))
			}
		}

		t.AddRow(
			stats.Int(edgesOf(n)),
			stats.Int(edgesOf(n)), // Without Plug resolves every pair
			stats.Int(tsnb.Calls),
			stats.Int(tri.Bootstrap),
			fmt.Sprintf("%s (%d)", stats.Int(tri.Calls), k),
			fmt.Sprintf("%s (%d)", stats.Int(laesa.Calls), k),
			stats.Pct(stats.SavePct(tri.Calls, laesa.Calls)),
			fmt.Sprintf("%s (%d)", stats.Int(tlaesa.Calls), k),
			stats.Pct(stats.SavePct(tri.Calls, tlaesa.Calls)),
		)
	}
	t.Note("Google Maps API distances are substituted by shortest-path distances over a synthetic road network (DESIGN.md §2).")
	if !cfg.Full {
		t.Note("Default scale stops at n=512 (130,816 edges); -full extends to n=2000 (1,999,000 edges). The paper's largest row (7,998,000 edges) is trimmed for laptop runtime.")
	}
	return t
}
