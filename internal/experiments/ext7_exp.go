package experiments

import (
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/fcmp"
	"metricprox/internal/stats"
)

func init() {
	register("ext7", "Ablation: Tri vs Hybrid(Tri→SPLUB) vs SPLUB inside Prim", ext7)
}

// ext7 measures the middle ground between the paper's two graph schemes:
// the Hybrid bounder answers from triangles and escalates to the Dijkstra
// machinery only on loose intervals. The interesting question is where the
// extra CPU starts buying real calls.
func ext7(cfg Config) *stats.Table {
	ns := []int{64, 128}
	if cfg.Quick {
		ns = []int{48}
	}
	if cfg.Full {
		ns = []int{64, 128, 256}
	}
	t := &stats.Table{
		ID:      "ext7",
		Title:   "Prim's algorithm (UrbanGB): calls and CPU across Tri / Hybrid / SPLUB",
		Columns: []string{"n", "Tri calls", "Tri CPU", "Hybrid calls", "Hybrid CPU", "SPLUB calls", "SPLUB CPU"},
	}
	for _, n := range ns {
		space := datasets.UrbanGB(n, cfg.Seed)
		tri := runScheme(space, core.SchemeTri, 0, false, cfg, primAlgo)
		hybrid := runScheme(space, core.SchemeHybrid, 0, false, cfg, primAlgo)
		splub := runScheme(space, core.SchemeSPLUB, 0, false, cfg, primAlgo)
		if !fcmp.ExactEq(tri.Checksum, hybrid.Checksum) || !fcmp.ExactEq(tri.Checksum, splub.Checksum) {
			panic(fmt.Sprintf("ext7 n=%d: MST weight diverged", n))
		}
		t.AddRow(
			stats.Int(int64(n)),
			stats.Int(tri.Calls), stats.Dur(tri.CPU),
			stats.Int(hybrid.Calls), stats.Dur(hybrid.CPU),
			stats.Int(splub.Calls), stats.Dur(splub.CPU),
		)
	}
	t.Note("Soundness gives SPLUB ≤ Hybrid ≤ Tri in calls and the reverse in CPU; Hybrid's escalation threshold is maxDist/10.")
	return t
}
