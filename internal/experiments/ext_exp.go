package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"metricprox/internal/bounds"
	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
	"metricprox/internal/pgraph"
	"metricprox/internal/prox"
	"metricprox/internal/query"
	"metricprox/internal/stats"
	"metricprox/internal/vptree"
)

// The ext* experiments go beyond the paper's evaluation: the future-work
// algorithms its conclusion proposes (facility allocation, TSP), the
// query workloads its related-work section surveys (AESA, VP-trees), and
// an empirical check of Theorem 4.2.
func init() {
	register("ext1", "kNN queries: Session framework vs AESA and VP-tree indexes", ext1)
	register("ext2", "Future work: k-center facility allocation call savings", ext2)
	register("ext3", "Future work: TSP (nearest-neighbour + 2-opt) call savings", ext3)
	register("ext4", "Range queries: exact-distance vs ids-only pruning", ext4)
	register("ext5", "Theorem 4.2: Tri Scheme lookup cost grows like m/n", ext5)
}

func ext1(cfg Config) *stats.Table {
	n := 300
	if cfg.Quick {
		n = 120
	}
	if cfg.Full {
		n = 800
	}
	space := datasets.SFPOI(n, cfg.Seed)
	const k = 5
	queries := make([]int, 0, 40)
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	for len(queries) < 40 {
		queries = append(queries, rng.Intn(n))
	}

	t := &stats.Table{
		ID:      "ext1",
		Title:   fmt.Sprintf("%d-NN queries over n=%d (40 queries): construction vs per-query calls", k, n),
		Columns: []string{"Method", "Construction calls", "Avg calls/query", "Total calls"},
	}

	// Linear scan: every query resolves n−1 distances.
	{
		o := metric.NewOracle(space)
		s := core.NewSession(o, core.SchemeNoop)
		for _, q := range queries {
			query.KNN(s, q, k)
		}
		t.AddRow("linear scan", "0", stats.F(float64(o.Calls())/40), stats.Int(o.Calls()))
	}
	// Session + Tri with landmark bootstrap: knowledge accumulates across
	// queries, so later queries get cheaper.
	{
		o := metric.NewOracle(space)
		s := core.NewSession(o, core.SchemeTri)
		boot := s.Bootstrap(core.PickLandmarks(n, logLandmarks(n), cfg.Seed))
		for _, q := range queries {
			query.KNN(s, q, k)
		}
		t.AddRow("session+tri", stats.Int(boot), stats.F(float64(o.Calls()-boot)/40), stats.Int(o.Calls()))
	}
	// AESA: quadratic preprocessing, near-minimal per-query calls.
	{
		a := query.BuildAESA(space)
		var qcalls int64
		for _, q := range queries {
			_, c := a.NN(k, q, func(x int) float64 { return space.Distance(q, x) }) //proxlint:allow oracleescape -- baseline query hook: AESA does its own call accounting (c), outside the session framework by design
			qcalls += c
		}
		t.AddRow("aesa", stats.Int(a.ConstructionCalls()), stats.F(float64(qcalls)/40), stats.Int(a.ConstructionCalls()+qcalls))
	}
	// VP-tree: Θ(n log n) construction, pruned traversal per query.
	{
		tree := vptree.Build(space, cfg.Seed)
		var qcalls int64
		for _, q := range queries {
			_, c := tree.NN(q, k, func(x int) float64 { return space.Distance(q, x) }) //proxlint:allow oracleescape -- baseline query hook: the VP-tree does its own call accounting (c), outside the session framework by design
			qcalls += c
		}
		t.AddRow("vp-tree", stats.Int(tree.ConstructionCalls()), stats.F(float64(qcalls)/40), stats.Int(tree.ConstructionCalls()+qcalls))
	}
	t.Note("The framework needs no index: its 'construction' is the optional landmark bootstrap, and unlike the static indexes its per-query cost keeps falling as resolved distances accumulate.")
	return t
}

func ext2(cfg Config) *stats.Table {
	t := &stats.Table{
		ID:      "ext2",
		Title:   "Gonzalez k-center (k=8) oracle calls — the conclusion's facility-allocation extension",
		Columns: []string{"n", "WithoutPlug", "Tri", "Save%", "Radius"},
	}
	ns := []int{64, 128, 256}
	if cfg.Quick {
		ns = []int{32, 64}
	}
	if cfg.Full {
		ns = []int{64, 128, 256, 512, 1000}
	}
	for _, n := range ns {
		space := datasets.UrbanGB(n, cfg.Seed)
		noop := runScheme(space, core.SchemeNoop, 0, false, cfg, func(s *core.Session) float64 {
			return prox.KCenter(s, 8).Radius
		})
		tri := runScheme(space, core.SchemeTri, 0, false, cfg, func(s *core.Session) float64 {
			return prox.KCenter(s, 8).Radius
		})
		if !fcmp.ExactEq(noop.Checksum, tri.Checksum) {
			panic("ext2: k-center radius diverged across schemes")
		}
		t.AddRow(stats.Int(int64(n)), stats.Int(noop.Calls), stats.Int(tri.Calls),
			stats.Pct(stats.SavePct(tri.Calls, noop.Calls)), stats.F(tri.Checksum))
	}
	return t
}

func ext3(cfg Config) *stats.Table {
	n := 120
	if cfg.Quick {
		n = 60
	}
	if cfg.Full {
		n = 300
	}
	space := datasets.SFPOI(n, cfg.Seed)
	t := &stats.Table{
		ID:      "ext3",
		Title:   fmt.Sprintf("TSP over n=%d: nearest-neighbour tour + 2-opt — the conclusion's TSP extension", n),
		Columns: []string{"Stage", "WithoutPlug calls", "Tri calls", "Save%", "Tour length"},
	}
	type stage struct {
		name string
		run  func(s *core.Session) float64
	}
	stages := []stage{
		{"mst 2-approx", func(s *core.Session) float64 { return prox.TSPApprox(s).Length }},
		{"nn tour", func(s *core.Session) float64 { return prox.TSPNearestNeighbour(s).Length }},
		{"nn + 2-opt", func(s *core.Session) float64 {
			return prox.TwoOpt(s, prox.TSPNearestNeighbour(s), 5).Length
		}},
	}
	for _, st := range stages {
		noop := runScheme(space, core.SchemeNoop, 0, false, cfg, st.run)
		tri := runScheme(space, core.SchemeTri, 0, false, cfg, st.run)
		if !fcmp.ExactEq(noop.Checksum, tri.Checksum) {
			panic("ext3: tour diverged across schemes")
		}
		t.AddRow(st.name, stats.Int(noop.Calls), stats.Int(tri.Calls),
			stats.Pct(stats.SavePct(tri.Calls, noop.Calls)), stats.F(tri.Checksum))
	}
	t.Note("The 2-opt move test compares *sums* of distances — the 'distance aggregates' of the paper's Contribution 1 — pruned by comparing bound sums against the resolved tour edges.")
	return t
}

func ext4(cfg Config) *stats.Table {
	n := 200
	if cfg.Quick {
		n = 80
	}
	if cfg.Full {
		n = 500
	}
	space := datasets.UrbanGB(n, cfg.Seed)
	landmarks := core.PickLandmarks(n, logLandmarks(n), cfg.Seed)
	t := &stats.Table{
		ID:      "ext4",
		Title:   fmt.Sprintf("Radius queries over n=%d (every 5th object queried)", n),
		Columns: []string{"Radius", "Linear calls", "Range calls", "RangeIDs calls", "IDs save%"},
	}
	for _, r := range []float64{0.05, 0.1, 0.2, 0.4} {
		linear := int64(0)
		{
			o := metric.NewOracle(space)
			s := core.NewSession(o, core.SchemeNoop)
			for q := 0; q < n; q += 5 {
				query.Range(s, q, r)
			}
			linear = o.Calls()
		}
		mk := func() (*core.Session, *metric.Oracle) {
			o := metric.NewOracle(space)
			s := core.NewSession(o, core.SchemeTri)
			s.Bootstrap(landmarks)
			return s, o
		}
		s1, o1 := mk()
		for q := 0; q < n; q += 5 {
			query.Range(s1, q, r)
		}
		s2, o2 := mk()
		for q := 0; q < n; q += 5 {
			query.RangeIDs(s2, q, r)
		}
		_ = s2
		_ = s1
		t.AddRow(stats.F(r), stats.Int(linear), stats.Int(o1.Calls()), stats.Int(o2.Calls()),
			stats.Pct(stats.SavePct(o2.Calls(), o1.Calls())))
	}
	t.Note("RangeIDs exploits the second pruning direction (certain-inside via upper bounds), which exact-distance results cannot use.")
	return t
}

func ext5(cfg Config) *stats.Table {
	n := 400
	if cfg.Quick {
		n = 150
	}
	if cfg.Full {
		n = 800
	}
	space := datasets.SFPOI(n, cfg.Seed)
	t := &stats.Table{
		ID:      "ext5",
		Title:   fmt.Sprintf("Tri Scheme lookup cost vs m/n over n=%d (Theorem 4.2: expected O(m/n))", n),
		Columns: []string{"m (edges)", "m/n", "ns/lookup", "ns per (m/n)"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 21))
	g := pgraph.New(n)
	tri := bounds.NewTri(g, 1)
	for _, mult := range []int{2, 4, 8, 16, 32} {
		m := mult * n
		for g.M() < m {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j && !g.Known(i, j) {
				g.AddEdge(i, j, space.Distance(i, j)) //proxlint:allow oracleescape -- microbenchmark: populates a partial graph with ground-truth edges directly; measures lookup cost, not oracle discipline
			}
		}
		// Sample unknown pairs and time the lookups.
		pairs := make([][2]int, 0, 2000)
		for len(pairs) < 2000 {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j && !g.Known(i, j) {
				pairs = append(pairs, [2]int{i, j})
			}
		}
		start := time.Now()
		for _, p := range pairs {
			tri.Bounds(p[0], p[1])
		}
		perLookup := float64(time.Since(start).Nanoseconds()) / float64(len(pairs))
		ratio := perLookup / (float64(m) / float64(n))
		t.AddRow(stats.Int(int64(m)), stats.F(float64(m)/float64(n)),
			fmt.Sprintf("%.0f", perLookup), fmt.Sprintf("%.1f", ratio))
	}
	t.Note("If Theorem 4.2 holds, the last column (time normalised by m/n) stays roughly flat while m grows 16×.")
	return t
}
