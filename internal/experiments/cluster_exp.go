package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"metricprox/internal/cluster"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/proxclient"
	"metricprox/internal/service"
)

// This file measures the cluster failover call economy — the number the
// replication design exists to improve. ClusterWarmReplayCalls runs the
// full two-node story in-process (primary resolves a workload, the
// replicator streams it, the primary dies, the replica promotes) and
// counts the oracle calls the promoted replica pays to finish a kNN
// build; ClusterColdSessionCalls counts the same build from nothing.
// CI's bench-smoke job gates cold/warm through cmd/benchgate
// (BENCH_cluster.json): a promoted replica must pay strictly fewer calls
// than a cold rebuild, or replication is dead weight.

// clusterBenchPairs is the deterministic dist workload the primary
// resolves before dying: the part of the session's life that replication
// preserves.
func clusterBenchPairs(n int) [][2]int {
	pairs := make([][2]int, 0, 3*n)
	for k := 0; k < 3*n; k++ {
		i := (k*7 + 3) % n
		j := (k*13 + 11) % n
		if i == j {
			j = (j + 1) % n
		}
		pairs = append(pairs, [2]int{i, j})
	}
	return pairs
}

// serveOn serves h on a pre-bound listener, so topologies can carry the
// URL before the server handling it exists.
func serveOn(l net.Listener, h http.Handler) *http.Server {
	hs := &http.Server{Handler: h}
	go hs.Serve(l)
	return hs
}

// ClusterWarmReplayCalls returns the oracle calls a promoted replica pays
// to serve a k=5 kNN build after the primary — which had resolved the
// bench workload and replicated it — dies.
func ClusterWarmReplayCalls(n int, seed int64) int64 {
	calls, err := clusterWarmReplay(n, seed)
	if err != nil {
		panic(fmt.Sprintf("cluster warm-replay bench: %v", err))
	}
	return calls
}

func clusterWarmReplay(n int, seed int64) (int64, error) {
	space := datasets.SFPOIPlanar(n, seed)
	oracleB := metric.NewOracle(space)

	lA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer lA.Close()
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer lB.Close()
	nodes := []cluster.Node{
		{Name: "a", URL: "http://" + lA.Addr().String()},
		{Name: "b", URL: "http://" + lB.Addr().String()},
	}
	topoA, err := cluster.NewTopology(cluster.Config{Self: "a", Nodes: nodes, Replicas: 1})
	if err != nil {
		return 0, err
	}
	topoB, err := cluster.NewTopology(cluster.Config{Self: "b", Nodes: nodes, Replicas: 1})
	if err != nil {
		return 0, err
	}
	dirA, err := os.MkdirTemp("", "cluster-bench-a")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "cluster-bench-b")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dirB)

	repl := cluster.NewReplicator(cluster.ReplicatorConfig{Topology: topoA, Interval: time.Millisecond})
	defer repl.Close()
	srvA, err := service.New(service.Config{
		Oracle: metric.NewOracle(space), CacheDir: dirA, Cluster: topoA, Replicator: repl,
	})
	if err != nil {
		return 0, err
	}
	defer srvA.Close()
	srvB, err := service.New(service.Config{
		Oracle: oracleB, CacheDir: dirB, Cluster: topoB,
	})
	if err != nil {
		return 0, err
	}
	defer srvB.Close()
	hsA := serveOn(lA, srvA.Handler())
	defer hsA.Close()
	hsB := serveOn(lB, srvB.Handler())
	defer hsB.Close()

	// The primary's life: create, resolve the workload, replicate it.
	ctx := context.Background()
	cA := proxclient.New(nodes[0].URL, proxclient.Options{})
	sess, err := proxclient.CreateSession(ctx, cA, "clusterbench", "tri",
		proxclient.SessionOptions{Seed: seed, Bootstrap: true})
	if err != nil {
		return 0, err
	}
	for _, p := range clusterBenchPairs(n) {
		if _, err := sess.DistErr(p[0], p[1]); err != nil {
			return 0, err
		}
	}
	fctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := repl.Flush(fctx); err != nil {
		return 0, err
	}
	hsA.Close() // the primary dies

	// The replica's life: the same create adopts the replicated store
	// (promotion), and the kNN build pays only for what replication missed.
	cB := proxclient.New(nodes[1].URL, proxclient.Options{})
	sessB, err := proxclient.CreateSession(ctx, cB, "clusterbench", "tri",
		proxclient.SessionOptions{Seed: seed, Bootstrap: true})
	if err != nil {
		return 0, err
	}
	if _, err := sessB.RemoteKNN(ctx, 5); err != nil {
		return 0, err
	}
	return oracleB.Calls(), nil
}

// ClusterColdSessionCalls returns the oracle calls the identical kNN
// build costs on a node with no replicated state: full bootstrap plus
// every resolution.
func ClusterColdSessionCalls(n int, seed int64) int64 {
	oracle := metric.NewOracle(datasets.SFPOIPlanar(n, seed))
	srv, err := service.New(service.Config{Oracle: oracle})
	if err != nil {
		panic(fmt.Sprintf("cluster cold bench: %v", err))
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("cluster cold bench: %v", err))
	}
	defer l.Close()
	hs := serveOn(l, srv.Handler())
	defer hs.Close()

	ctx := context.Background()
	c := proxclient.New("http://"+l.Addr().String(), proxclient.Options{})
	sess, err := proxclient.CreateSession(ctx, c, "clusterbench", "tri",
		proxclient.SessionOptions{Seed: seed, Bootstrap: true})
	if err != nil {
		panic(fmt.Sprintf("cluster cold bench: %v", err))
	}
	if _, err := sess.RemoteKNN(ctx, 5); err != nil {
		panic(fmt.Sprintf("cluster cold bench: %v", err))
	}
	return oracle.Calls()
}
