package experiments

import (
	"fmt"
	"math"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
	"metricprox/internal/stats"
)

func init() {
	register("fig6a", "Kruskal oracle calls vs dataset size (UrbanGB)", func(cfg Config) *stats.Table {
		return callSweep(cfg, "fig6a", "Kruskal MST, UrbanGB", urbanGen, func(n int) algoFunc { return kruskalAlgo }, sizes(cfg))
	})
	register("fig6b", "KNNrp (k=5) oracle calls vs dataset size (UrbanGB)", func(cfg Config) *stats.Table {
		return callSweep(cfg, "fig6b", "KNNrp k=5, UrbanGB", urbanGen, func(n int) algoFunc { return knnAlgo(5) }, knnSizes(cfg))
	})
	register("fig6c", "PAM (l=10) oracle calls vs dataset size (UrbanGB)", func(cfg Config) *stats.Table {
		return callSweep(cfg, "fig6c", "PAM l=10, UrbanGB", urbanGen, pamGen(10), clusterSizes(cfg))
	})
	register("fig6d", "PAM (l=10) oracle calls vs dataset size (SF)", func(cfg Config) *stats.Table {
		return callSweep(cfg, "fig6d", "PAM l=10, SF", sfGen, pamGen(10), clusterSizes(cfg))
	})
	register("fig7a", "CLARANS (l=10) oracle calls vs dataset size (SF)", func(cfg Config) *stats.Table {
		return callSweep(cfg, "fig7a", "CLARANS l=10, SF", sfGen, claransGen(10), clusterSizes(cfg))
	})
	register("fig7b", "PAM (l=10) oracle calls vs dataset size (Flickr, high-dim Euclidean)", func(cfg Config) *stats.Table {
		dim := 64
		if cfg.Full {
			dim = 256
		}
		gen := func(n int, seed int64) metric.Space { return datasets.Flickr(n, dim, seed) }
		t := callSweep(cfg, "fig7b", fmt.Sprintf("PAM l=10, Flickr surrogate (%d-dim)", dim), gen, pamGen(10), clusterSizes(cfg))
		t.Note("High-dimensional concentration makes all triangle bounds looser; save-ups are expected to be smaller than on the planar datasets, as in the paper (~20%% in its largest setting).")
		return t
	})
	register("fig7c", "CLARANS (l=10) oracle calls vs dataset size (UrbanGB)", func(cfg Config) *stats.Table {
		return callSweep(cfg, "fig7c", "CLARANS l=10, UrbanGB", urbanGen, claransGen(10), clusterSizes(cfg))
	})
}

func urbanGen(n int, seed int64) metric.Space { return datasets.UrbanGB(n, seed) }
func sfGen(n int, seed int64) metric.Space    { return datasets.SFPOI(n, seed) }

func pamGen(l int) func(int) algoFunc {
	return func(n int) algoFunc {
		ll := l
		if ll >= n {
			ll = n / 2
		}
		return pamAlgo(ll, 1)
	}
}

func claransGen(l int) func(int) algoFunc {
	return func(n int) algoFunc {
		ll := l
		if ll >= n {
			ll = n / 2
		}
		// Ng & Han's neighbour budget, 1.25% of l·(n−l), without the
		// paper-era floor of 250 (which would swamp the laptop-scale n and
		// hide the growth-with-l trend of Figure 8d).
		mn := int(math.Ceil(0.0125 * float64(ll) * float64(n-ll)))
		if mn < 30 {
			mn = 30
		}
		return claransAlgo(ll, prox.CLARANSConfig{NumLocal: 2, MaxNeighbor: mn, Seed: 1})
	}
}

func clusterSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{32, 64}
	}
	if cfg.Full {
		return []int{64, 128, 256, 512, 1000}
	}
	return []int{64, 128, 256}
}

func knnSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{32, 64}
	}
	if cfg.Full {
		return []int{64, 128, 256, 512, 1000}
	}
	return []int{64, 128, 256, 512}
}

// callSweep is the shared engine of Figures 6–7: oracle calls of one
// proximity algorithm across dataset sizes, comparing the bootstrapped Tri
// Scheme against LAESA and TLAESA (all with k = log₂ n landmarks), plus
// the no-bootstrap Tri and the unmodified algorithm.
func callSweep(cfg Config, id, title string, gen func(int, int64) metric.Space, algoOf func(int) algoFunc, ns []int) *stats.Table {
	t := &stats.Table{
		ID:    id,
		Title: title + " — oracle calls by scheme",
		Columns: []string{
			"n", "WithoutPlug", "TS-NB", "Tri", "LAESA", "Save%", "TLAESA", "Save%",
		},
	}
	for _, n := range ns {
		space := gen(n, cfg.Seed)
		algo := algoOf(n)
		k := logLandmarks(n)

		noop := runScheme(space, core.SchemeNoop, 0, false, cfg, algo)
		tsnb := runScheme(space, core.SchemeTri, 0, false, cfg, algo)
		tri := runScheme(space, core.SchemeTri, k, true, cfg, algo)
		laesa := runScheme(space, core.SchemeLAESA, k, true, cfg, algo)
		tlaesa := runScheme(space, core.SchemeTLAESA, k, true, cfg, algo)

		for _, r := range []runOutcome{tsnb, tri, laesa, tlaesa} {
			if math.Abs(r.Checksum-noop.Checksum) > 1e-6 {
				panic(fmt.Sprintf("%s n=%d: output diverged across schemes (%v vs %v)",
					id, n, r.Checksum, noop.Checksum))
			}
		}

		t.AddRow(
			stats.Int(int64(n)),
			stats.Int(noop.Calls),
			stats.Int(tsnb.Calls),
			stats.Int(tri.Calls),
			stats.Int(laesa.Calls),
			stats.Pct(stats.SavePct(tri.Calls, laesa.Calls)),
			stats.Int(tlaesa.Calls),
			stats.Pct(stats.SavePct(tri.Calls, tlaesa.Calls)),
		)
	}
	t.Note("TS-NB is the Tri Scheme without landmark bootstrap; as the paper observes it beats LAESA/TLAESA always and often beats bootstrapped Tri (the bootstrap rows are not all useful to every workload). Save%% columns compare bootstrapped Tri against each baseline and grow with n.")
	return t
}
