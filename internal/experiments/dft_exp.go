package experiments

import (
	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/fcmp"
	"metricprox/internal/stats"
)

func init() {
	register("fig4a", "DFT vs ADM: Prim distance calls on tiny graphs", fig4a)
	register("fig4b", "DFT vs ADM: Prim running time on tiny graphs (DFT explodes)", fig4b)
}

// dftSizes returns the tiny object counts the LP formulation can handle.
// The paper ran DFT up to 496 edges (n = 32) and reported multi-hour
// runtimes on CPLEX; our from-scratch simplex is slower per solve, so the
// default sweep stops earlier and -full extends it.
func dftSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{6, 8}
	}
	if cfg.Full {
		return []int{6, 8, 10, 12}
	}
	return []int{6, 8, 10}
}

func fig4a(cfg Config) *stats.Table {
	t := &stats.Table{
		ID:      "fig4a",
		Title:   "Lazy Prim oracle calls: DFT vs ADM vs Without Plug",
		Columns: []string{"#Edges", "WithoutPlug", "ADM", "DFT", "DFT save vs ADM"},
	}
	for _, n := range dftSizes(cfg) {
		space := datasets.SFPOI(n, cfg.Seed)
		adm := runScheme(space, core.SchemeADM, 0, false, cfg, primLazyAlgo)
		dft := runScheme(space, core.SchemeDFT, 0, false, cfg, primLazyAlgo)
		if !fcmp.ExactEq(adm.Checksum, dft.Checksum) {
			// MST weights are float-identical across schemes by design.
			panic("fig4a: MST weight diverged between ADM and DFT")
		}
		t.AddRow(
			stats.Int(edgesOf(n)),
			stats.Int(edgesOf(n)),
			stats.Int(adm.Calls),
			stats.Int(dft.Calls),
			stats.Pct(stats.SavePct(dft.Calls, adm.Calls)),
		)
	}
	t.Note("The paper reports DFT saving 27-58%% of calls over its ADM baseline. In this reproduction DFT ties ADM: our ADM serves fresh tightest bounds at every IF, and cmd/dftprobe shows the LP adds no decisions over those (see EXPERIMENTS.md). Sizes are trimmed (paper: 45-496 edges with CPLEX, hours of runtime).")
	return t
}

func fig4b(cfg Config) *stats.Table {
	t := &stats.Table{
		ID:      "fig4b",
		Title:   "Prim's algorithm running time: DFT vs ADM (log-scale blow-up)",
		Columns: []string{"#Edges", "ADM time", "DFT time", "DFT/ADM"},
	}
	for _, n := range dftSizes(cfg) {
		space := datasets.SFPOI(n, cfg.Seed)
		adm := runScheme(space, core.SchemeADM, 0, false, cfg, primLazyAlgo)
		dft := runScheme(space, core.SchemeDFT, 0, false, cfg, primLazyAlgo)
		ratio := float64(dft.CPU) / float64(adm.CPU)
		t.AddRow(stats.Int(edgesOf(n)), stats.Dur(adm.CPU), stats.Dur(dft.CPU),
			stats.F(ratio))
	}
	t.Note("Each DFT IF statement solves a phase-1 simplex over C(n,2) variables and 3·C(n,3) triangle rows; the ratio column grows by orders of magnitude with n, reproducing the paper's 'not practical' verdict.")
	return t
}
