package experiments

import (
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/stats"
)

func init() {
	register("ext9", "Landmark selection strategy: random vs greedy max-min (Prim, SF)", ext9)
}

// ext9 compares base-prototype selection strategies for the bootstrapped
// schemes. The paper sweeps the landmark *count* (Figure 5b) and cites the
// selection literature (Hernández-Rodríguez et al.) without evaluating it;
// this experiment fills that gap. Greedy max-min selection (the classic
// LAESA rule) spends oracle calls to scan candidates, so the fair
// comparison is total calls including selection — though the scans turn
// out to be exactly the landmark rows the bootstrap needs anyway.
func ext9(cfg Config) *stats.Table {
	n := 256
	if cfg.Quick {
		n = 96
	}
	if cfg.Full {
		n = 512
	}
	space := datasets.SFPOI(n, cfg.Seed)
	k := logLandmarks(n)

	t := &stats.Table{
		ID:      "ext9",
		Title:   fmt.Sprintf("Prim total oracle calls by landmark selection (n=%d, k=%d)", n, k),
		Columns: []string{"Strategy", "Scheme", "Selection+bootstrap", "Total calls"},
	}

	runRandom := func(scheme core.Scheme) {
		o := metric.NewOracle(space)
		lms := core.PickLandmarks(n, k, cfg.Seed)
		s := core.NewSessionWithLandmarks(o, scheme, lms)
		boot := s.Bootstrap(lms)
		if w := primAlgo(s); w <= 0 {
			panic("ext9: degenerate MST")
		}
		t.AddRow("random", scheme.String(), stats.Int(boot), stats.Int(o.Calls()))
	}
	runGreedy := func(scheme core.Scheme) {
		// Greedy selection needs distances; run it through a scratch
		// session so its calls are counted, then reuse the chosen set.
		scratch := core.NewSession(metric.NewOracle(space), core.SchemeNoop)
		lms := scratch.GreedyLandmarks(k)

		o := metric.NewOracle(space)
		s := core.NewSessionWithLandmarks(o, scheme, lms)
		boot := s.Bootstrap(lms)
		if w := primAlgo(s); w <= 0 {
			panic("ext9: degenerate MST")
		}
		// Selection resolved (k−1)·n-ish pairs that overlap the bootstrap;
		// report the union cost: greedy rows are a superset of bootstrap
		// rows, so the selection cost *is* the bootstrap plus the scan.
		sel := scratch.Stats().OracleCalls
		if boot > 0 {
			// Rows not shared between the scratch run and this session are
			// double-billed; report the honest total: selection calls plus
			// the algorithm calls this session made beyond its bootstrap.
			t.AddRow("greedy max-min", scheme.String(), stats.Int(sel), stats.Int(sel+o.Calls()-boot))
			return
		}
		t.AddRow("greedy max-min", scheme.String(), stats.Int(sel), stats.Int(sel+o.Calls()))
	}

	for _, sc := range []core.Scheme{core.SchemeLAESA, core.SchemeTLAESA, core.SchemeTri} {
		runRandom(sc)
		runGreedy(sc)
	}
	t.Note("Greedy max-min selection is effectively free: the distance scans it performs are exactly the landmark rows the bootstrap must resolve anyway, and the better-separated pivots save a further 4-10%% of calls for every scheme on this workload. The effect is data-dependent — the selection literature the paper cites exists for a reason — but it never exceeds the gap between schemes.")
	return t
}
