package experiments

import (
	"context"
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
	"metricprox/internal/obs/obshttp"
	"metricprox/internal/prox"
	"metricprox/internal/proxclient"
	"metricprox/internal/service"
	"metricprox/internal/stats"
)

func init() {
	register("ext11", "HTTP round-trips: naive per-primitive client vs batched mirror client (remote kNN, planar SF)", ext11)
}

// ext11Run captures one remote kNN build through the proxclient Session.
type ext11Run struct {
	requests    int64 // HTTP round-trips the client paid
	oracleCalls int64 // distance resolutions the server paid
	graph       [][]prox.Neighbor
}

// ext11Sizes picks the workload: the quickstart shape (remoteknn's
// defaults, n=200 k=5) at normal scale.
func ext11Sizes(cfg Config) (n, k int) {
	n, k = 200, 5
	if cfg.Quick {
		n, k = 48, 4
	}
	if cfg.Full {
		n, k = 320, 5
	}
	return n, k
}

// ext11Remote spins up a private metricproxd-equivalent server (real TCP
// listener, fresh oracle) and runs prox.KNNGraph over a client Session
// created with the given options. The server side is identical across
// modes; only the client's mirror/prefetch behaviour differs.
func ext11Remote(n, k int, seed int64, opts proxclient.SessionOptions) (ext11Run, error) {
	oracle := metric.NewOracle(datasets.SFPOIPlanar(n, seed))
	srv, err := service.New(service.Config{Oracle: oracle})
	if err != nil {
		return ext11Run{}, err
	}
	defer srv.Close()
	hs, err := obshttp.ServeHandler("127.0.0.1:0", srv.Handler())
	if err != nil {
		return ext11Run{}, err
	}
	defer hs.Close()

	c := proxclient.New("http://"+hs.Addr(), proxclient.Options{})
	opts.Seed = seed
	opts.Bootstrap = true
	sess, err := proxclient.CreateSession(context.Background(), c, "ext11", "tri", opts)
	if err != nil {
		return ext11Run{}, err
	}
	g := prox.KNNGraph(sess, k)
	if oerr := sess.OracleErr(); oerr != nil {
		return ext11Run{}, oerr
	}
	return ext11Run{requests: c.Requests(), oracleCalls: oracle.Calls(), graph: g}, nil
}

// ext11Local builds the same kNN graph in-process, with the session
// constructed exactly as the service constructs hosted sessions (Tri
// scheme, halving-loop landmark count, same seed), for the identity check.
func ext11Local(n, k int, seed int64) [][]prox.Neighbor {
	lmCount := 0
	for v := n; v > 1; v /= 2 {
		lmCount++
	}
	lms := core.PickLandmarks(n, lmCount, seed)
	s := core.NewFallibleSessionWithLandmarks(
		metric.NewOracle(datasets.SFPOIPlanar(n, seed)), core.SchemeTri, lms)
	s.Bootstrap(lms)
	return prox.KNNGraph(s, k)
}

// ext11SameGraph reports whether two kNN graphs agree bitwise.
func ext11SameGraph(a, b [][]prox.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for u := range a {
		if len(a[u]) != len(b[u]) {
			return false
		}
		for x := range a[u] {
			if a[u][x].ID != b[u][x].ID || !fcmp.ExactEq(a[u][x].Dist, b[u][x].Dist) {
				return false
			}
		}
	}
	return true
}

// ext11Measure runs the quickstart kNN workload against the service twice:
// once as the naive client (mirror and prefetch disabled, so every
// primitive the builder issues round-trips individually) and once as the
// default batched client (bounds prefetched in one batch request per row,
// resolved distances mirrored, stale-bound decisions taken locally). The
// returned ratio naive/batched is the acceptance number: the service
// design requires >= 5x.
func ext11Measure(cfg Config) (naive, batched ext11Run, err error) {
	n, k := ext11Sizes(cfg)
	naive, err = ext11Remote(n, k, cfg.Seed, proxclient.SessionOptions{NoCache: true, NoPrefetch: true})
	if err != nil {
		return naive, batched, fmt.Errorf("naive client run: %w", err)
	}
	batched, err = ext11Remote(n, k, cfg.Seed, proxclient.SessionOptions{})
	if err != nil {
		return naive, batched, fmt.Errorf("batched client run: %w", err)
	}
	return naive, batched, nil
}

// ext11 regenerates the service-layer acceptance table: what the batch
// endpoint plus the client's sound local mirror buy over a client that
// pays one HTTP round-trip per primitive. Both clients drive the same
// unmodified prox.KNNGraph builder and produce bit-identical graphs — the
// mirror only short-circuits decisions the server's monotone bound rules
// would also take — so the round-trip column is pure transport savings.
func ext11(cfg Config) *stats.Table {
	n, k := ext11Sizes(cfg)
	t := &stats.Table{
		ID:      "ext11",
		Title:   fmt.Sprintf("Client round-trips: naive vs batched (remote kNN, planar SF, n=%d, k=%d, Tri)", n, k),
		Columns: []string{"Client", "HTTP round-trips", "Server oracle calls", "Round-trips vs naive"},
	}
	naive, batched, err := ext11Measure(cfg)
	if err != nil {
		t.Note("experiment failed to run: %v", err)
		return t
	}
	ratio := float64(naive.requests) / float64(batched.requests)
	t.AddRow("naive (per-primitive)", stats.Int(naive.requests), stats.Int(naive.oracleCalls), "1.0x")
	t.AddRow("batched (mirror + prefetch)", stats.Int(batched.requests), stats.Int(batched.oracleCalls),
		fmt.Sprintf("%.1fx fewer", ratio))
	identical := ext11SameGraph(naive.graph, batched.graph) &&
		ext11SameGraph(batched.graph, ext11Local(n, k, cfg.Seed))
	t.Note("Both clients run the unmodified prox.KNNGraph builder; graphs bit-identical to each other and to an in-process session: %v. Batch reduction %.1fx (acceptance floor: 5x).", identical, ratio)
	return t
}
