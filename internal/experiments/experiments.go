// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each runner is registered under the paper's
// artifact id (table2, fig3a, …), produces a stats.Table with the same
// rows/series the paper reports, and is exposed both through the
// cmd/proxbench CLI and through the repository-root benchmarks.
//
// Default sizes are laptop-scale; Config.Full raises them toward paper
// scale (the largest paper configurations — 8M-edge Prim runs and
// CPLEX-hours DFT instances — are trimmed, with a footnote on each table
// recording the trim). Shapes, not absolute numbers, are the reproduction
// target; see EXPERIMENTS.md for the paper-vs-measured record.
package experiments

import (
	"math"
	"time"

	"metricprox/internal/core"
	"metricprox/internal/faultmetric"
	"metricprox/internal/metric"
	"metricprox/internal/obs"
	"metricprox/internal/prox"
	"metricprox/internal/resilient"
	"metricprox/internal/stats"
)

// Config controls experiment scale.
type Config struct {
	// Full raises sizes toward paper scale (minutes of runtime).
	Full bool
	// Quick shrinks sizes for CI and unit tests; overrides Full.
	Quick bool
	// Seed makes every dataset and randomised algorithm deterministic.
	Seed int64
	// FaultRate > 0 wraps every oracle in a deterministic fault injector
	// (transient errors at this per-attempt probability) behind the
	// resilient retry policy, so the suite measures the call-count and
	// wall-time overhead of surviving failures. The injector's per-pair
	// failure cap stays below the retry budget, so outputs — and the
	// cross-scheme checksums — are preserved exactly.
	FaultRate float64
	// FaultSeed seeds the fault schedule (independent of Seed so the same
	// dataset can be benchmarked under different schedules).
	FaultSeed int64
	// Observer, when non-nil, is attached to every session the suite
	// builds (core.WithObserver) and to the fault-injection and policy
	// layers when FaultRate > 0: metrics aggregate into its registry and,
	// if its Tracer is set, every comparison is traced. Observation never
	// changes results — see DESIGN.md §8.
	Observer *obs.Observer
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) *stats.Table
}

var registry []Runner

func register(id, title string, run func(Config) *stats.Table) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// paperOrder fixes the presentation order of the suite: the paper's tables
// first, then its figures, then the beyond-paper extensions.
var paperOrder = []string{
	"table2", "table3",
	"fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig5a", "fig5b",
	"fig6a", "fig6b", "fig6c", "fig6d",
	"fig7a", "fig7b", "fig7c", "fig7d",
	"fig8a", "fig8b", "fig8c", "fig8d",
	"fig9a", "fig9b", "fig9c", "fig9d",
	"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext9",
	"ext10", "ext11", "ext12", "ext13",
}

// All returns every registered experiment in paper order; experiments
// missing from paperOrder (none today) are appended in registration order.
func All() []Runner {
	out := make([]Runner, 0, len(registry))
	seen := map[string]bool{}
	for _, id := range paperOrder {
		if r, ok := ByID(id); ok {
			out = append(out, r)
			seen[id] = true
		}
	}
	for _, r := range registry {
		if !seen[r.ID] {
			out = append(out, r)
		}
	}
	return out
}

// ByID looks up a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// logLandmarks is the paper's default landmark count, k = log₂(n).
func logLandmarks(n int) int {
	k := int(math.Round(math.Log2(float64(n))))
	if k < 2 {
		k = 2
	}
	return k
}

// runOutcome captures one algorithm execution over one scheme.
type runOutcome struct {
	Calls     int64         // successful oracle calls, bootstrap included
	Bootstrap int64         // calls spent on landmark bootstrap
	CPU       time.Duration // wall time of the run (oracle is in-memory)
	Checksum  float64       // output fingerprint for cross-scheme validation
	Landmarks int
	Retries   int64 // extra attempts under fault injection (0 fault-free)
}

// algoFunc runs a proximity algorithm over a session and returns an output
// fingerprint (MST weight, clustering cost, kNN distance sum).
type algoFunc func(*core.Session) float64

// runScheme executes algo over space with the given scheme. nLandmarks > 0
// selects that many landmarks; bootstrap resolves their rows up front.
// cfg.FaultRate > 0 routes every oracle call through the fault-injection
// and retry chain (see Config.FaultRate); Calls then counts successful
// resolutions, identical to the fault-free count because outputs are
// preserved, while Retries records the extra attempts the schedule cost.
func runScheme(space metric.Space, scheme core.Scheme, nLandmarks int, bootstrap bool, cfg Config, algo algoFunc) runOutcome {
	var lms []int
	if nLandmarks > 0 {
		lms = core.PickLandmarks(space.Len(), nLandmarks, cfg.Seed)
	}
	var fo metric.FallibleOracle = metric.NewOracle(space)
	if cfg.FaultRate > 0 {
		inj := faultmetric.New(space, faultmetric.Config{
			Seed:               cfg.FaultSeed,
			TransientRate:      cfg.FaultRate,
			MaxFailuresPerPair: faultmetric.SpecMaxFailuresPerPair,
		})
		ro := resilient.New(inj, resilient.RetryOnlyPolicy(cfg.FaultSeed))
		if cfg.Observer != nil {
			inj.Observe(cfg.Observer.Registry)
			ro.Observe(cfg.Observer.Registry)
		}
		fo = ro
	}
	var opts []core.Option
	if cfg.Observer != nil {
		opts = append(opts, core.WithObserver(cfg.Observer))
	}
	s := core.NewFallibleSessionWithLandmarks(fo, scheme, lms, opts...)
	start := time.Now()
	var boot int64
	if bootstrap && len(lms) > 0 {
		boot = s.Bootstrap(lms)
	}
	sum := algo(s)
	st := s.Stats()
	return runOutcome{
		Calls:     st.OracleCalls,
		Bootstrap: boot,
		CPU:       time.Since(start),
		Checksum:  sum,
		Landmarks: len(lms),
		Retries:   st.Retries,
	}
}

// Canonical algorithm fingerprints.

func primAlgo(s *core.Session) float64 { return prox.PrimMST(s).Weight }

// primLazyAlgo is the edge-versus-edge Prim used by the DFT experiments;
// see prox.PrimMSTLazy.
func primLazyAlgo(s *core.Session) float64 { return prox.PrimMSTLazy(s).Weight }

func kruskalAlgo(s *core.Session) float64 { return prox.KruskalMST(s).Weight }

func boruvkaAlgo(s *core.Session) float64 { return prox.BoruvkaMST(s).Weight }

func knnAlgo(k int) algoFunc {
	return func(s *core.Session) float64 {
		g := prox.KNNGraph(s, k)
		sum := 0.0
		for _, ns := range g {
			for _, nb := range ns {
				sum += nb.Dist
			}
		}
		return sum
	}
}

func pamAlgo(l int, seed int64) algoFunc {
	return func(s *core.Session) float64 { return prox.PAM(s, l, seed).Cost }
}

func claransAlgo(l int, cfg prox.CLARANSConfig) algoFunc {
	return func(s *core.Session) float64 { return prox.CLARANS(s, l, cfg).Cost }
}

// sizes returns the default or full-size object counts for the big sweeps.
// The paper's Prim tables use n = 64…4000 (2016…7,998,000 edges).
func sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{32, 64}
	}
	if cfg.Full {
		return []int{64, 128, 256, 512, 1000, 2000}
	}
	return []int{64, 128, 256, 512}
}

// edgesOf returns C(n,2).
func edgesOf(n int) int64 { return int64(n) * int64(n-1) / 2 }
