package experiments

import (
	"fmt"
	"math"

	"metricprox/internal/bktree"
	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/gnat"
	"metricprox/internal/metric"
	"metricprox/internal/mtree"
	"metricprox/internal/nsw"
	"metricprox/internal/prox"
	"metricprox/internal/stats"
	"metricprox/internal/vptree"
)

func init() {
	register("ext13", "Navigable search graph: IF-driven NSW vs naive NSW and classic metric indexes (build + all-queries kNN, recall@10)", ext13)
}

// ext13Workload fixes the navigable-graph workload shared by the table
// and the root BenchmarkSearchGraphBuild{IF,Naive} pair that cmd/benchgate
// gates: build a search graph over the planar SF surrogate and answer a
// k-NN query for every object. One definition, one source of truth for
// the gated ratio.
const (
	ext13K        = 10
	ext13EfSearch = 64
)

// ext13Params is the NSW build configuration of the gated workload.
func ext13Params(seed int64) nsw.Params {
	return nsw.Params{M: 8, EfConstruction: 32, Seed: seed}
}

// SearchGraphNaiveBuildCalls runs the naive (raw-oracle, unseeded) NSW
// build of the ext13 workload over the planar SF surrogate and returns
// its oracle-call count. Exported for the root
// BenchmarkSearchGraphBuildNaive, which reports this deterministic count
// as the quantity cmd/benchgate ratios against the IF build.
func SearchGraphNaiveBuildCalls(n int, seed int64) int64 {
	_, calls := ext13NaiveBuild(datasets.SFPOIPlanar(n, seed), seed)
	return calls
}

// SearchGraphIFBuildCalls runs the IF-driven (Tri, landmark-seeded) NSW
// build of the ext13 workload and returns its oracle-call count,
// bootstrap included — the subject side of the benchgate ratio.
func SearchGraphIFBuildCalls(n int, seed int64) int64 {
	_, _, calls := ext13IFBuild(datasets.SFPOIPlanar(n, seed), seed)
	return calls
}

// ext13NaiveBuild runs the unseeded NSW build against a bare noop
// session — the textbook algorithm paying the raw oracle for every
// comparison — and returns the graph with its call count.
func ext13NaiveBuild(space metric.Space, seed int64) (*nsw.Graph, int64) {
	s := core.NewSession(metric.NewOracle(space), core.SchemeNoop)
	g, err := nsw.Build(s, ext13Params(seed))
	if err != nil {
		panic(fmt.Sprintf("ext13: naive build over in-memory oracle failed: %v", err))
	}
	return g, s.Stats().OracleCalls
}

// ext13IFBuild runs the landmark-seeded NSW build against a bootstrapped
// Tri session — every comparison through DistIfLess, every beam seeded
// from the cached landmark rows — and returns the graph, the session
// (reused for queries: accumulated knowledge is the framework's point),
// and the build call count including bootstrap.
func ext13IFBuild(space metric.Space, seed int64) (*nsw.Graph, *core.Session, int64) {
	n := space.Len()
	lms := core.PickLandmarks(n, logLandmarks(n), seed)
	s := core.NewSessionWithLandmarks(metric.NewOracle(space), core.SchemeTri, lms)
	s.Bootstrap(lms)
	p := ext13Params(seed)
	p.Landmarks = lms
	g, err := nsw.Build(s, p)
	if err != nil {
		panic(fmt.Sprintf("ext13: IF build over in-memory oracle failed: %v", err))
	}
	return g, s, s.Stats().OracleCalls
}

// ext13 pits the IF-driven navigable-small-world searcher against the
// naive NSW build and four classic metric indexes on the approximate-kNN
// workload: construct an index over the space, then answer recall@10
// queries for every object. Cost is total oracle calls (construction
// plus queries, bootstrap included for the session). The IF build routes
// every beam comparison through DistIfLess — bounds prune uncompetitive
// candidates — and seeds every beam from the session's bootstrapped
// landmark rows, which the IF answers from cache; naive NSW runs the
// same algorithm shape against the raw oracle, where seeding would cost
// a full landmark scan per insert and is therefore left out (the
// textbook single-entry form).
func ext13(cfg Config) *stats.Table {
	n := 400
	if cfg.Quick {
		n = 150
	}
	if cfg.Full {
		n = 800
	}
	const k = ext13K
	space := datasets.SFPOIPlanar(n, cfg.Seed)

	// Ground truth for recall, over a session that is charged to nobody.
	exact := core.NewSession(metric.NewOracle(space), core.SchemeNoop)
	truth := make([]map[int]bool, n)
	for q := 0; q < n; q++ {
		truth[q] = make(map[int]bool, k)
		for _, nb := range prox.KNNRow(exact, q, k) {
			truth[q][nb.ID] = true
		}
	}
	recall := func(hits int) string { return fmt.Sprintf("%.3f", float64(hits)/float64(n*k)) }

	t := &stats.Table{
		ID:      "ext13",
		Title:   fmt.Sprintf("Approximate %d-NN for all %d objects, planar SF surrogate: build + query oracle calls", k, n),
		Columns: []string{"Method", "Build calls", "Query calls", "Total", "Recall@10", "Naive NSW / method"},
	}

	var naiveTotal int64
	addRow := func(name string, build, query int64, hits int) {
		total := build + query
		ratio := "1.00"
		if naiveTotal == 0 {
			naiveTotal = total // first row is the naive baseline
		} else {
			ratio = fmt.Sprintf("%.2f", float64(naiveTotal)/float64(total))
		}
		t.AddRow(name, stats.Int(build), stats.Int(query), stats.Int(total), recall(hits), ratio)
	}

	{ // Naive NSW: raw oracle for build and queries alike.
		g, build := ext13NaiveBuild(space, cfg.Seed)
		qs := core.NewSession(metric.NewOracle(space), core.SchemeNoop)
		hits := 0
		for q := 0; q < n; q++ {
			res, err := g.Search(qs, q, k, ext13EfSearch)
			if err != nil {
				panic(fmt.Sprintf("ext13: naive search: %v", err))
			}
			for _, nb := range res {
				if truth[q][nb.ID] {
					hits++
				}
			}
		}
		addRow("naive nsw", build, qs.Stats().OracleCalls, hits)
	}
	{ // IF-driven NSW: one Tri session across bootstrap, build and queries.
		g, s, build := ext13IFBuild(space, cfg.Seed)
		hits := 0
		for q := 0; q < n; q++ {
			res, err := g.Search(s, q, k, ext13EfSearch)
			if err != nil {
				panic(fmt.Sprintf("ext13: IF search: %v", err))
			}
			for _, nb := range res {
				if truth[q][nb.ID] {
					hits++
				}
			}
		}
		addRow("if nsw (tri, seeded)", build, s.Stats().OracleCalls-build, hits)
	}
	{ // VP-tree: exact index, caller-controlled query accounting.
		tree := vptree.Build(space, cfg.Seed)
		var qcalls int64
		hits := 0
		for q := 0; q < n; q++ {
			res, c := tree.NN(q, k, func(x int) float64 { return space.Distance(q, x) }) //proxlint:allow oracleescape -- baseline query hook: the index does its own call accounting (c), outside the session framework by design
			qcalls += c
			for _, r := range res {
				if truth[q][r.ID] {
					hits++
				}
			}
		}
		addRow("vp-tree", tree.ConstructionCalls(), qcalls, hits)
	}
	{ // GNAT: same contract as the VP-tree.
		tree := gnat.Build(space, cfg.Seed)
		var qcalls int64
		hits := 0
		for q := 0; q < n; q++ {
			res, c := tree.NN(q, k, func(x int) float64 { return space.Distance(q, x) }) //proxlint:allow oracleescape -- baseline query hook: the index does its own call accounting (c), outside the session framework by design
			qcalls += c
			for _, r := range res {
				if truth[q][r.ID] {
					hits++
				}
			}
		}
		addRow("gnat", tree.ConstructionCalls(), qcalls, hits)
	}
	{ // M-tree: internal accounting covers build and queries.
		tree := mtree.Build(space)
		build := tree.Calls()
		hits := 0
		for q := 0; q < n; q++ {
			for _, r := range tree.NN(q, k) {
				if truth[q][r.ID] {
					hits++
				}
			}
		}
		addRow("m-tree", build, tree.Calls()-build, hits)
	}
	{ // BK-tree needs integer distances: quantise to 1e-4 of a unit.
		var calls int64
		intDist := func(i, j int) int {
			calls++
			return int(math.Round(space.Distance(i, j) * 1e4)) //proxlint:allow oracleescape -- baseline distance hook: the BK-tree counts its own calls, outside the session framework by design
		}
		tree := bktree.Build(n, intDist)
		build := calls
		hits := 0
		for q := 0; q < n; q++ {
			for _, r := range tree.NN(q, k) {
				if truth[q][r.ID] {
					hits++
				}
			}
		}
		addRow("bk-tree (d·1e4)", build, calls-build, hits)
	}

	t.Note("All methods answer the same all-objects kNN workload; the exact indexes have recall 1 by construction (the BK-tree up to 1e-4 quantisation ties). The IF row's build column includes the landmark bootstrap — the seeding's entire price — and still undercuts the naive build because every beam starts next to its query on cached landmark rows and the Tri bounds prune the frontier. The last column is the headline the root BenchmarkSearchGraphBuild{IF,Naive} pair gates at ≥1.5× via cmd/benchgate.")
	return t
}
