package experiments

import (
	"math/rand"
	"time"

	"metricprox/internal/bounds"
	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/pgraph"
	"metricprox/internal/stats"
)

func init() {
	register("fig3a", "Bound relative error vs ADM (SPLUB exact; Tri ≪ LAESA/TLAESA)", fig3a)
	register("fig3b", "Tri Scheme bound gap shrinks as known edges grow", fig3b)
	register("fig3c", "Bound maintenance+query time: ADM vs SPLUB vs Tri", fig3c)
	register("fig5a", "LAESA/TLAESA: fast but loose bounds", fig5a)
	register("fig5b", "Landmark-count sensitivity of LAESA/TLAESA (Prim, SF)", fig5b)
}

// boundLab is a laboratory: a ground-truth space, a revealed edge stream
// (landmark bootstrap first, then random edges), and one of each bounder
// fed identically.
type boundLab struct {
	space    metric.Space
	g        *pgraph.Graph
	splub    *bounds.SPLUB
	tri      *bounds.Tri
	adm      *bounds.ADM
	laesa    *bounds.LAESA
	tlaesa   *bounds.TLAESA
	revealed map[int64]bool
}

func newBoundLab(space metric.Space, nLandmarks int, seed int64) *boundLab {
	n := space.Len()
	lab := &boundLab{
		space:    space,
		g:        pgraph.New(n),
		revealed: make(map[int64]bool),
	}
	lab.splub = bounds.NewSPLUB(lab.g, 1)
	lab.tri = bounds.NewTri(lab.g, 1)
	lab.adm = bounds.NewADM(n, 1)
	lms := core.PickLandmarks(n, nLandmarks, seed)
	lab.laesa = bounds.NewLAESA(n, lms, 1)
	lab.tlaesa = bounds.NewTLAESA(n, lms, 1)
	// TLAESA drives its own bootstrap (landmark rows + pivot tree); the
	// resolve hook reveals each edge to every bounder so all schemes see
	// the same known-edge set.
	lab.tlaesa.Bootstrap(func(i, j int) float64 {
		lab.reveal(i, j)
		return lab.space.Distance(i, j) //proxlint:allow oracleescape -- bound-quality lab: feeds ground-truth distances to every bounder directly; no session is under test here
	}, lms)
	return lab
}

func (lab *boundLab) reveal(i, j int) {
	k := pgraph.Key(i, j)
	if lab.revealed[k] {
		return
	}
	lab.revealed[k] = true
	d := lab.space.Distance(i, j) //proxlint:allow oracleescape -- bound-quality lab: reveals ground-truth edges to all bounders in lockstep; no session is under test here
	lab.g.AddEdge(i, j, d)
	lab.adm.Update(i, j, d)
	lab.laesa.Update(i, j, d)
	lab.tlaesa.Update(i, j, d)
}

// revealRandom reveals up to m additional random edges.
func (lab *boundLab) revealRandom(m int, rng *rand.Rand) {
	n := lab.space.Len()
	for added := 0; added < m; {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || lab.revealed[pgraph.Key(i, j)] {
			continue
		}
		lab.reveal(i, j)
		added++
	}
}

// samplePairs returns up to q unknown pairs.
func (lab *boundLab) samplePairs(q int, rng *rand.Rand) [][2]int {
	n := lab.space.Len()
	var out [][2]int
	for len(out) < q {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || lab.revealed[pgraph.Key(i, j)] {
			continue
		}
		out = append(out, [2]int{i, j})
	}
	return out
}

// relErr measures the mean relative error of a bounder's LB and UB against
// the exact (ADM) bounds over the sampled pairs.
func relErr(b bounds.Bounder, exact bounds.Bounder, pairs [][2]int) (lbErr, ubErr float64) {
	for _, p := range pairs {
		lb, ub := b.Bounds(p[0], p[1])
		elb, eub := exact.Bounds(p[0], p[1])
		if elb > 1e-12 {
			lbErr += (elb - lb) / elb
		}
		if eub > 1e-12 {
			ubErr += (ub - eub) / eub // ub ≥ eub: looseness, nonnegative
		}
	}
	q := float64(len(pairs))
	return lbErr / q, ubErr / q
}

func fig3a(cfg Config) *stats.Table {
	n := 260
	if cfg.Quick {
		n = 100
	}
	if cfg.Full {
		n = 520 // ~135k pairwise distances, the paper's SF 135K setting
	}
	space := datasets.SFPOI(n, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	lab := newBoundLab(space, logLandmarks(n), cfg.Seed)
	lab.revealRandom(4*n, rng)
	pairs := lab.samplePairs(400, rng)

	t := &stats.Table{
		ID:      "fig3a",
		Title:   "Mean relative error of bounds vs ADM (SF, m = bootstrap + 4n edges)",
		Columns: []string{"Scheme", "LB rel.err", "UB rel.err"},
	}
	for _, b := range []bounds.Bounder{lab.splub, lab.tri, lab.laesa, lab.tlaesa} {
		lbE, ubE := relErr(b, lab.adm, pairs)
		t.AddRow(b.Name(), stats.F(lbE), stats.F(ubE))
	}
	t.Note("SPLUB must read 0.0000 for both columns (exactness, Lemma 4.1); Tri sits well below LAESA/TLAESA.")
	return t
}

func fig3b(cfg Config) *stats.Table {
	n := 260
	if cfg.Quick {
		n = 100
	}
	if cfg.Full {
		n = 520
	}
	space := datasets.SFPOI(n, cfg.Seed)
	t := &stats.Table{
		ID:      "fig3b",
		Title:   "Tri Scheme mean (UB − LB) gap, varying known edges (SF)",
		Columns: []string{"#Known edges", "Mean gap", "Mean LB", "Mean UB"},
	}
	fractions := []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.8}
	total := int(edgesOf(n))
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	lab := newBoundLab(space, logLandmarks(n), cfg.Seed)
	prev := len(lab.revealed)
	for _, f := range fractions {
		target := int(f * float64(total))
		if target > prev {
			lab.revealRandom(target-prev, rng)
			prev = target
		}
		pairs := lab.samplePairs(400, rng)
		gap, lbs, ubs := 0.0, 0.0, 0.0
		for _, p := range pairs {
			lb, ub := lab.tri.Bounds(p[0], p[1])
			gap += ub - lb
			lbs += lb
			ubs += ub
		}
		q := float64(len(pairs))
		t.AddRow(stats.Int(int64(len(lab.revealed))), stats.F(gap/q), stats.F(lbs/q), stats.F(ubs/q))
	}
	t.Note("The paper reports the gap shrinking ~3.3× from 2k to 134k known edges; the gap here must shrink monotonically with the same order of contraction.")
	return t
}

func fig3c(cfg Config) *stats.Table {
	n := 200
	if cfg.Quick {
		n = 80
	}
	if cfg.Full {
		n = 400
	}
	space := datasets.SFPOI(n, cfg.Seed)
	t := &stats.Table{
		ID:      "fig3c",
		Title:   "Time to ingest m edges and answer 200 bound queries",
		Columns: []string{"#Edges", "ADM", "SPLUB", "Tri"},
	}
	for _, mult := range []int{2, 4, 8, 16} {
		m := mult * n
		timeFor := func(build func() (bounds.Bounder, func(i, j int, d float64))) time.Duration {
			rng := rand.New(rand.NewSource(cfg.Seed + 3))
			b, update := build()
			start := time.Now()
			added := 0
			seen := map[int64]bool{}
			for added < m {
				i, j := rng.Intn(n), rng.Intn(n)
				if i == j || seen[pgraph.Key(i, j)] {
					continue
				}
				seen[pgraph.Key(i, j)] = true
				update(i, j, space.Distance(i, j)) //proxlint:allow oracleescape -- bound-maintenance benchmark: measures bounder update cost on ground-truth edges, not oracle discipline
				added++
			}
			for q := 0; q < 200; {
				i, j := rng.Intn(n), rng.Intn(n)
				if i == j || seen[pgraph.Key(i, j)] {
					continue
				}
				b.Bounds(i, j)
				q++
			}
			return time.Since(start)
		}
		admT := timeFor(func() (bounds.Bounder, func(int, int, float64)) {
			a := bounds.NewADM(n, 1)
			return a, a.Update
		})
		splubT := timeFor(func() (bounds.Bounder, func(int, int, float64)) {
			g := pgraph.New(n)
			s := bounds.NewSPLUB(g, 1)
			return s, func(i, j int, d float64) { g.AddEdge(i, j, d) }
		})
		triT := timeFor(func() (bounds.Bounder, func(int, int, float64)) {
			g := pgraph.New(n)
			tr := bounds.NewTri(g, 1)
			return tr, func(i, j int, d float64) { g.AddEdge(i, j, d) }
		})
		t.AddRow(stats.Int(int64(m)), stats.Dur(admT), stats.Dur(splubT), stats.Dur(triT))
	}
	t.Note("Expected ordering per the paper: ADM slowest (O(n²) per update), SPLUB ~2× faster with identical bounds, Tri orders of magnitude faster.")
	return t
}

func fig5a(cfg Config) *stats.Table {
	n := 260
	if cfg.Quick {
		n = 100
	}
	if cfg.Full {
		n = 520
	}
	space := datasets.SFPOI(n, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	lab := newBoundLab(space, logLandmarks(n), cfg.Seed)
	lab.revealRandom(4*n, rng)
	pairs := lab.samplePairs(400, rng)

	t := &stats.Table{
		ID:      "fig5a",
		Title:   "Per-query bound time vs looseness (SF): LAESA/TLAESA fast but loose",
		Columns: []string{"Scheme", "Query time/pair", "LB rel.err", "UB rel.err"},
	}
	for _, b := range []bounds.Bounder{lab.laesa, lab.tlaesa, lab.tri, lab.splub} {
		start := time.Now()
		for _, p := range pairs {
			b.Bounds(p[0], p[1])
		}
		per := time.Since(start) / time.Duration(len(pairs))
		lbE, ubE := relErr(b, lab.adm, pairs)
		t.AddRow(b.Name(), stats.Dur(per), stats.F(lbE), stats.F(ubE))
	}
	t.Note("LAESA is the fastest per query but the loosest; TLAESA buys tighter static bounds with extra bootstrap calls; Tri reaches comparable tightness from the resolved edges alone — and unlike the landmark schemes it keeps improving as the proximity algorithm resolves more pairs.")
	return t
}

func fig5b(cfg Config) *stats.Table {
	n := 256
	if cfg.Quick {
		n = 80
	}
	if cfg.Full {
		n = 512
	}
	space := datasets.SFPOI(n, cfg.Seed)
	logN := logLandmarks(n)
	t := &stats.Table{
		ID:      "fig5b",
		Title:   "Prim total oracle calls vs landmark count (SF) — the #landmarks selection problem",
		Columns: []string{"k (landmarks)", "LAESA", "TLAESA", "Tri (bootstrapped)"},
	}
	for _, mult := range []float64{0.5, 1, 2, 3, 4} {
		k := int(mult * float64(logN))
		if k < 2 {
			k = 2
		}
		laesa := runScheme(space, core.SchemeLAESA, k, true, cfg, primAlgo)
		tlaesa := runScheme(space, core.SchemeTLAESA, k, true, cfg, primAlgo)
		tri := runScheme(space, core.SchemeTri, k, true, cfg, primAlgo)
		t.AddRow(stats.Int(int64(k)), stats.Int(laesa.Calls), stats.Int(tlaesa.Calls), stats.Int(tri.Calls))
	}
	t.Note("LAESA/TLAESA have a dataset-dependent sweet spot (≈3·log n in the paper) with no principled way to find it; Tri dominates at every k and prefers the smallest bootstrap, because resolved edges keep improving its bounds regardless of the landmark count.")
	return t
}
