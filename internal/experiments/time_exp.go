package experiments

import (
	"time"

	"metricprox/internal/core"
	"metricprox/internal/metric"
	"metricprox/internal/stats"
)

func init() {
	register("fig7d", "Prim completion time vs oracle cost (UrbanGB)", func(cfg Config) *stats.Table {
		return timeSweep(cfg, "fig7d", "Prim's algorithm, UrbanGB", urbanGen,
			func(n int) algoFunc { return primAlgo },
			[]time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond, 400 * time.Millisecond, 1200 * time.Millisecond})
	})
	register("fig8a", "PAM completion time vs oracle cost (UrbanGB)", func(cfg Config) *stats.Table {
		return timeSweep(cfg, "fig8a", "PAM l=10, UrbanGB", urbanGen, pamGen(10),
			[]time.Duration{0, 100 * time.Millisecond, 500 * time.Millisecond, 1200 * time.Millisecond, 2500 * time.Millisecond})
	})
	register("fig8b", "CLARANS completion time vs oracle cost (UrbanGB)", func(cfg Config) *stats.Table {
		return timeSweep(cfg, "fig8b", "CLARANS l=10, UrbanGB", urbanGen, claransGen(10),
			[]time.Duration{0, 100 * time.Millisecond, 500 * time.Millisecond, 1200 * time.Millisecond, 2500 * time.Millisecond})
	})
}

// timeSweep regenerates the completion-time figures (7d, 8a, 8b): each
// scheme runs once against the in-memory oracle, and the completion time
// under an expensive oracle is reconstructed analytically as
// cpu + calls × cost (metric.CostModel) — exactly the quantity the paper
// measures by actually delaying each call.
func timeSweep(cfg Config, id, title string, gen func(int, int64) metric.Space, algoOf func(int) algoFunc, costs []time.Duration) *stats.Table {
	n := 128
	if cfg.Quick {
		n = 64
	}
	if cfg.Full {
		n = 512
	}
	space := gen(n, cfg.Seed)
	algo := algoOf(n)
	k := logLandmarks(n)

	noop := runScheme(space, core.SchemeNoop, 0, false, cfg, algo)
	tri := runScheme(space, core.SchemeTri, k, true, cfg, algo)
	laesa := runScheme(space, core.SchemeLAESA, k, true, cfg, algo)
	tlaesa := runScheme(space, core.SchemeTLAESA, k, true, cfg, algo)

	t := &stats.Table{
		ID:      id,
		Title:   title + " — completion time varying the oracle's per-call cost",
		Columns: []string{"Oracle cost", "WithoutPlug", "Tri", "LAESA", "TLAESA"},
	}
	for _, c := range costs {
		cm := metric.CostModel{PerCall: c}
		t.AddRow(
			stats.Dur(c),
			stats.Dur(cm.Completion(noop.Calls, noop.CPU)),
			stats.Dur(cm.Completion(tri.Calls, tri.CPU)),
			stats.Dur(cm.Completion(laesa.Calls, laesa.CPU)),
			stats.Dur(cm.Completion(tlaesa.Calls, tlaesa.CPU)),
		)
	}
	t.Note("n = %d, k = %d landmarks. CPU overhead (cost row 0) is highest for Tri, but every nonzero oracle cost is dominated by call counts, where Tri wins.", n, k)
	return t
}
