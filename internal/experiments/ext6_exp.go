package experiments

import (
	"fmt"
	"math/rand"

	"metricprox/internal/bktree"
	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/gnat"
	"metricprox/internal/metric"
	"metricprox/internal/mtree"
	"metricprox/internal/query"
	"metricprox/internal/stats"
	"metricprox/internal/vptree"
)

func init() {
	register("ext6", "Edit-distance kNN: Session vs BK-tree, M-tree, VP-tree, GNAT", ext6)
}

// ext6 pits the framework against four classic metric indexes on the
// workload they were designed for — repeated kNN queries — under a
// genuinely expensive oracle (Levenshtein over DNA sequences). Every
// method's cost is its total distance computations: construction plus all
// queries.
func ext6(cfg Config) *stats.Table {
	n := 250
	if cfg.Quick {
		n = 100
	}
	if cfg.Full {
		n = 600
	}
	const seqLen = 40
	const k = 5
	_, space := datasets.DNA(n, seqLen, cfg.Seed)
	intDist := func(i, j int) int {
		return metric.Levenshtein(space.Items[i], space.Items[j])
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	queries := make([]int, 40)
	for i := range queries {
		queries[i] = rng.Intn(n)
	}

	t := &stats.Table{
		ID:      "ext6",
		Title:   fmt.Sprintf("%d-NN over %d DNA sequences (Levenshtein), 40 queries", k, n),
		Columns: []string{"Method", "Construction calls", "Query calls", "Total"},
	}

	{
		o := metric.NewOracle(space)
		s := core.NewSession(o, core.SchemeNoop)
		for _, q := range queries {
			query.KNN(s, q, k)
		}
		t.AddRow("linear scan", "0", stats.Int(o.Calls()), stats.Int(o.Calls()))
	}
	{
		o := metric.NewOracle(space)
		s := core.NewSession(o, core.SchemeTri)
		boot := s.Bootstrap(core.PickLandmarks(n, logLandmarks(n), cfg.Seed))
		for _, q := range queries {
			query.KNN(s, q, k)
		}
		t.AddRow("session+tri", stats.Int(boot), stats.Int(o.Calls()-boot), stats.Int(o.Calls()))
	}
	{
		var calls int64
		tree := bktree.Build(n, func(i, j int) int { calls++; return intDist(i, j) })
		build := calls
		for _, q := range queries {
			tree.NN(q, k)
		}
		t.AddRow("bk-tree", stats.Int(build), stats.Int(calls-build), stats.Int(calls))
	}
	{
		tree := mtree.Build(space)
		build := tree.Calls()
		for _, q := range queries {
			tree.NN(q, k)
		}
		t.AddRow("m-tree", stats.Int(build), stats.Int(tree.Calls()-build), stats.Int(tree.Calls()))
	}
	{
		tree := gnat.Build(space, cfg.Seed)
		build := tree.ConstructionCalls()
		var qcalls int64
		for _, q := range queries {
			_, c := tree.NN(q, k, func(x int) float64 { return space.Distance(q, x) }) //proxlint:allow oracleescape -- baseline query hook: the index does its own call accounting (c), outside the session framework by design
			qcalls += c
		}
		t.AddRow("gnat", stats.Int(build), stats.Int(qcalls), stats.Int(build+qcalls))
	}
	{
		tree := vptree.Build(space, cfg.Seed)
		build := tree.ConstructionCalls()
		var qcalls int64
		for _, q := range queries {
			_, c := tree.NN(q, k, func(x int) float64 { return space.Distance(q, x) }) //proxlint:allow oracleescape -- baseline query hook: the index does its own call accounting (c), outside the session framework by design
			qcalls += c
		}
		t.AddRow("vp-tree", stats.Int(build), stats.Int(qcalls), stats.Int(build+qcalls))
	}
	t.Note("The indexes amortise construction over many queries but cannot reuse knowledge across queries; the session accumulates every resolved distance, so its marginal query cost keeps falling.")
	return t
}
