package experiments

import (
	"fmt"
	"math"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/stats"
)

func init() {
	register("ext8", "MST algorithm choice under the framework: Prim vs lazy Kruskal vs Borůvka", ext8)
}

// ext8 compares the three MST algorithms when all of them run through the
// bootstrapped Tri Scheme. The paper evaluates Prim and Kruskal
// separately; run side by side, a structural asymmetry appears: Borůvka's
// per-component tournaments are pure comparisons (prunable in both
// directions), lazy Kruskal discards connectivity-dead edges before
// resolving them, and Prim pays for a resolved value on every key update.
func ext8(cfg Config) *stats.Table {
	ns := []int{64, 128, 256}
	if cfg.Quick {
		ns = []int{32, 64}
	}
	if cfg.Full {
		ns = []int{64, 128, 256, 512, 1000}
	}
	t := &stats.Table{
		ID:      "ext8",
		Title:   "MST oracle calls by algorithm (all with Tri Scheme, UrbanGB)",
		Columns: []string{"n", "Edges", "Prim", "Lazy Kruskal", "Borůvka", "Kruskal/Prim"},
	}
	for _, n := range ns {
		space := datasets.UrbanGB(n, cfg.Seed)
		k := logLandmarks(n)
		prim := runScheme(space, core.SchemeTri, k, true, cfg, primAlgo)
		kruskal := runScheme(space, core.SchemeTri, k, true, cfg, kruskalAlgo)
		boruvka := runScheme(space, core.SchemeTri, k, true, cfg, boruvkaAlgo)
		if math.Abs(prim.Checksum-kruskal.Checksum) > 1e-6 || math.Abs(prim.Checksum-boruvka.Checksum) > 1e-6 {
			panic(fmt.Sprintf("ext8 n=%d: MST weight diverged across algorithms", n))
		}
		t.AddRow(
			stats.Int(int64(n)),
			stats.Int(edgesOf(n)),
			stats.Int(prim.Calls),
			stats.Int(kruskal.Calls),
			stats.Int(boruvka.Calls),
			fmt.Sprintf("%.2f", float64(kruskal.Calls)/float64(prim.Calls)),
		)
	}
	t.Note("All three return the identical MST (all bootstrapped with k = log2 n landmarks). The bootstrapped lazy Kruskal wins — connectivity discards plus a seeded lower-bound queue; Borůvka's pure edge-vs-edge tournaments come second (and win when no bootstrap is available); Prim, which must resolve a value for every key update, pays the most. The paper's separate Prim/Kruskal panels never surface this ordering.")
	return t
}
