package experiments

import (
	"fmt"
	"time"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
	"metricprox/internal/stats"
)

func init() {
	register("ext10", "Wall clock vs workers under injected oracle latency (parallel kNN + Borůvka, SF)", ext10)
}

// ext10 measures what the concurrency layer buys: the same parallel
// builds over a physically latency-injected oracle (the paper's Figure
// 7d/8a cost regime, really slept rather than modelled) at increasing
// worker counts. Because the SharedSession releases its lock around every
// oracle round-trip and deduplicates in-flight pairs, workers overlap
// their oracle waits and wall clock shrinks near-linearly while the call
// count stays in the same band — the speedup column is the whole point.
// A lock held across the oracle call would pin every row to ~1×.
func ext10(cfg Config) *stats.Table {
	n, k := 64, 4
	latency := 1 * time.Millisecond
	if cfg.Quick {
		n, latency = 32, 300*time.Microsecond
	}
	if cfg.Full {
		n, latency = 96, 2*time.Millisecond
	}
	workerCounts := []int{1, 2, 4, 8}
	space := datasets.SFPOI(n, cfg.Seed)

	t := &stats.Table{
		ID:      "ext10",
		Title:   fmt.Sprintf("Parallel wall clock vs workers (SF, n=%d, oracle latency %v, Tri)", n, latency),
		Columns: []string{"Algorithm", "Workers", "Oracle calls", "Wall clock", "Speedup"},
	}

	type build struct {
		name string
		run  func(s *core.SharedSession, workers int)
	}
	builds := []build{
		{"kNN graph", func(s *core.SharedSession, workers int) { prox.KNNGraphParallel(s, k, workers) }},
		{"Boruvka MST", func(s *core.SharedSession, workers int) { prox.BoruvkaMSTParallel(s, workers) }},
	}
	for _, b := range builds {
		var base time.Duration
		for _, workers := range workerCounts {
			o := metric.NewLatencyOracle(space, latency)
			s := core.Share(core.NewSession(o, core.SchemeTri))
			start := time.Now()
			b.run(s, workers)
			elapsed := time.Since(start)
			if workers == 1 {
				base = elapsed
			}
			t.AddRow(b.name, fmt.Sprintf("%d", workers), stats.Int(o.Calls()),
				stats.Dur(elapsed), fmt.Sprintf("%.1fx", float64(base)/float64(elapsed)))
		}
	}
	t.Note("Latency is physically slept per oracle call (not the analytical cost model), so the wall-clock column measures the SharedSession's unlocked-oracle resolve path directly. Outputs are identical at every worker count; only the resolution interleaving — and hence the exact call count — varies.")
	return t
}
