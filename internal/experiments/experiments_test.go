package experiments

import (
	"strings"
	"testing"

	"metricprox/internal/stats"
)

var quickCfg = Config{Quick: true, Seed: 42}

func TestRegistryComplete(t *testing.T) {
	// Every artifact of the paper's evaluation must be registered.
	want := []string{
		"table2", "table3",
		"fig3a", "fig3b", "fig3c",
		"fig4a", "fig4b",
		"fig5a", "fig5b",
		"fig6a", "fig6b", "fig6c", "fig6d",
		"fig7a", "fig7b", "fig7c", "fig7d",
		"fig8a", "fig8b", "fig8c", "fig8d",
		"fig9a", "fig9b", "fig9c", "fig9d",
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext9",
		"ext10", "ext11", "ext12", "ext13",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		ids := make([]string, 0, len(All()))
		for _, r := range All() {
			ids = append(ids, r.ID)
		}
		t.Errorf("registry has %d entries, want %d: %s", len(All()), len(want), strings.Join(ids, ","))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("fig99"); ok {
		t.Fatal("unknown id resolved")
	}
}

// runAndCheck executes a runner at quick scale and sanity-checks the table.
func runAndCheck(t *testing.T, id string) *stats.Table {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	tb := r.Run(quickCfg)
	if tb.ID != id {
		t.Fatalf("table id %q, want %q", tb.ID, id)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("%s: row width %d != %d columns", id, len(row), len(tb.Columns))
		}
	}
	return tb
}

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			runAndCheck(t, r.ID)
		})
	}
}

// TestSearchGraphGateRatio pins the quantity CI's bench-smoke job gates
// through BenchmarkSearchGraphBuild{IF,Naive}: at the gated workload's
// own scale and seed, the IF-driven NSW build must cost at most 1/1.5 of
// the naive one's oracle calls. Failing here means the benchgate step
// would fail too — fix the regression, don't lower the floor.
func TestSearchGraphGateRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("gated-workload ratio check skipped in -short mode")
	}
	const n, seed = 400, 1 // keep in lockstep with bench_test.go's searchGraphN/searchGraphSeed
	naive := SearchGraphNaiveBuildCalls(n, seed)
	ifd := SearchGraphIFBuildCalls(n, seed)
	ratio := float64(naive) / float64(ifd)
	t.Logf("gated build ratio: naive %d / if %d = %.2f", naive, ifd, ratio)
	if ratio < 1.5 {
		t.Fatalf("gated build ratio %.2f below the 1.5 floor (naive %d, if %d)", ratio, naive, ifd)
	}
}

func TestLogLandmarks(t *testing.T) {
	cases := map[int]int{2: 2, 64: 6, 128: 7, 1000: 10, 4096: 12}
	for n, want := range cases {
		if got := logLandmarks(n); got != want {
			t.Errorf("logLandmarks(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEdgesOf(t *testing.T) {
	if edgesOf(64) != 2016 || edgesOf(4000) != 7998000 {
		t.Fatal("edgesOf does not match the paper's edge counts")
	}
}
