package experiments

import (
	"metricprox/internal/core"
	"metricprox/internal/metric"
	"metricprox/internal/stats"
)

func init() {
	register("fig8c", "PAM oracle calls varying number of clusters l (SF)", func(cfg Config) *stats.Table {
		return paramCallSweep(cfg, "fig8c", "PAM, SF", sfGen, lValues(cfg), func(l int) func(int) algoFunc { return pamGen(l) }, "l")
	})
	register("fig8d", "CLARANS oracle calls varying number of clusters l (UrbanGB)", func(cfg Config) *stats.Table {
		return paramCallSweep(cfg, "fig8d", "CLARANS, UrbanGB", urbanGen, lValues(cfg), func(l int) func(int) algoFunc { return claransGen(l) }, "l")
	})
	register("fig9a", "KNNrp oracle calls varying k (SF) — Tri stability", func(cfg Config) *stats.Table {
		return paramCallSweep(cfg, "fig9a", "KNNrp, SF", sfGen, kValues(cfg), func(k int) func(int) algoFunc {
			return func(n int) algoFunc { return knnAlgo(k) }
		}, "k")
	})
	register("fig9b", "PAM local CPU overhead varying l (SF)", func(cfg Config) *stats.Table {
		return paramCPUSweep(cfg, "fig9b", "PAM, SF", sfGen, lValues(cfg), func(l int) func(int) algoFunc { return pamGen(l) }, "l")
	})
	register("fig9c", "CLARANS local CPU overhead varying l (SF)", func(cfg Config) *stats.Table {
		return paramCPUSweep(cfg, "fig9c", "CLARANS, SF", sfGen, lValues(cfg), func(l int) func(int) algoFunc { return claransGen(l) }, "l")
	})
	register("fig9d", "KNNrp local CPU overhead varying k (SF)", func(cfg Config) *stats.Table {
		return paramCPUSweep(cfg, "fig9d", "KNNrp, SF", sfGen, kValues(cfg), func(k int) func(int) algoFunc {
			return func(n int) algoFunc { return knnAlgo(k) }
		}, "k")
	})
}

func lValues(cfg Config) []int {
	if cfg.Full {
		return []int{2, 5, 10, 20, 40}
	}
	return []int{2, 5, 10, 20}
}

func kValues(cfg Config) []int {
	if cfg.Full {
		return []int{1, 3, 5, 10, 20}
	}
	return []int{1, 3, 5, 10}
}

// paramCallSweep regenerates the "vary l / vary k → distance calls" panels
// (Figures 8c, 8d, 9a): fixed dataset size, parameter on the rows.
func paramCallSweep(cfg Config, id, title string, gen func(int, int64) metric.Space, params []int, algoOf func(p int) func(int) algoFunc, pname string) *stats.Table {
	n := 180
	if cfg.Quick {
		n = 60
	}
	if cfg.Full {
		n = 360
	}
	space := gen(n, cfg.Seed)
	k := logLandmarks(n)
	t := &stats.Table{
		ID:      id,
		Title:   title + " — oracle calls varying " + pname,
		Columns: []string{pname, "WithoutPlug", "Tri", "LAESA", "Save%", "TLAESA", "Save%"},
	}
	for _, p := range params {
		algo := algoOf(p)(n)
		noop := runScheme(space, core.SchemeNoop, 0, false, cfg, algo)
		tri := runScheme(space, core.SchemeTri, k, true, cfg, algo)
		laesa := runScheme(space, core.SchemeLAESA, k, true, cfg, algo)
		tlaesa := runScheme(space, core.SchemeTLAESA, k, true, cfg, algo)
		t.AddRow(
			stats.Int(int64(p)),
			stats.Int(noop.Calls),
			stats.Int(tri.Calls),
			stats.Int(laesa.Calls),
			stats.Pct(stats.SavePct(tri.Calls, laesa.Calls)),
			stats.Int(tlaesa.Calls),
			stats.Pct(stats.SavePct(tri.Calls, tlaesa.Calls)),
		)
	}
	t.Note("n = %d objects, k = %d landmarks.", n, k)
	return t
}

// paramCPUSweep regenerates the "vary l / vary k → local CPU overhead"
// panels (Figures 9b–9d): the wall time minus the (in-memory) oracle's
// share, i.e. the price paid in local computation for the saved calls.
func paramCPUSweep(cfg Config, id, title string, gen func(int, int64) metric.Space, params []int, algoOf func(p int) func(int) algoFunc, pname string) *stats.Table {
	n := 180
	if cfg.Quick {
		n = 60
	}
	if cfg.Full {
		n = 360
	}
	space := gen(n, cfg.Seed)
	k := logLandmarks(n)
	t := &stats.Table{
		ID:      id,
		Title:   title + " — local CPU overhead varying " + pname,
		Columns: []string{pname, "WithoutPlug CPU", "Tri CPU", "LAESA CPU", "TLAESA CPU"},
	}
	for _, p := range params {
		algo := algoOf(p)(n)
		noop := runScheme(space, core.SchemeNoop, 0, false, cfg, algo)
		tri := runScheme(space, core.SchemeTri, k, true, cfg, algo)
		laesa := runScheme(space, core.SchemeLAESA, k, true, cfg, algo)
		tlaesa := runScheme(space, core.SchemeTLAESA, k, true, cfg, algo)
		t.AddRow(
			stats.Int(int64(p)),
			stats.Dur(noop.CPU),
			stats.Dur(tri.CPU),
			stats.Dur(laesa.CPU),
			stats.Dur(tlaesa.CPU),
		)
	}
	t.Note("n = %d objects, k = %d landmarks. The paper's reading: distance compute (↓) is bought with CPU compute (↑); overhead grows with %s.", n, k, pname)
	return t
}
