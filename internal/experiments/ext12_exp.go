package experiments

import (
	"fmt"
	"reflect"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/faultmetric"
	"metricprox/internal/prox"
	"metricprox/internal/stats"
)

func init() {
	register("ext12", "Oracle-call savings vs declared slack ε under a near-metric oracle (kNN, Tri)", ext12)
}

// ext12 charts the price of near-metric robustness: a kNN-graph build
// over a deterministically perturbed near-metric oracle, at increasing
// declared slack ε. Every relaxed interval is wider by 2ε, so pruning
// power — the paper's whole savings story — decays as ε grows; that is
// the robustness/savings trade-off this table quantifies. The other axis
// is soundness: below the injector's violation margin the Tri bounds may
// silently cut off true distances and the build can diverge from the
// reference; at ε ≥ margin preservation is guaranteed (the chaos suite
// proves it bit-exactly), and this table shows what that guarantee
// costs in resolved pairs.
func ext12(cfg Config) *stats.Table {
	n, k := 64, 4
	if cfg.Quick {
		n = 32
	}
	if cfg.Full {
		n = 96
	}
	base := datasets.RandomMetric(n, cfg.Seed)
	fcfg := faultmetric.Config{Seed: cfg.Seed + 1, NearMetricEps: 0.1}
	margin := fcfg.MarginBound()

	// Reference: every comparison paid for exactly, over the same
	// perturbed space (the injector is a pure function of seed and pair,
	// so a fresh injector per run serves identical distances).
	refSession := core.NewFallibleSession(faultmetric.New(base, fcfg), core.SchemeNoop)
	ref := prox.KNNGraph(refSession, k)
	exhaustive := refSession.Stats().OracleCalls

	t := &stats.Table{
		ID:    "ext12",
		Title: fmt.Sprintf("Savings vs declared slack ε (random metric, n=%d, k=%d, injected margin %.2g, Tri)", n, k, margin),
		Columns: []string{"ε / margin", "Oracle calls", "Calls vs exhaustive", "Slack-resolved", "Output preserved"},
	}

	for _, frac := range []float64{0, 0.25, 0.5, 1, 2} {
		eps := frac * margin
		var opts []core.Option
		if eps > 0 {
			opts = append(opts, core.WithSlack(core.SlackPolicy{Additive: eps}))
		}
		s := core.NewFallibleSession(faultmetric.New(base, fcfg), core.SchemeTri, opts...)
		got := prox.KNNGraph(s, k)
		st := s.Stats()
		preserved := "yes"
		if !reflect.DeepEqual(ref, got) {
			preserved = "NO"
		}
		t.AddRow(fmt.Sprintf("%.2f", frac), stats.Int(st.OracleCalls),
			fmt.Sprintf("%.1f%%", 100*float64(st.OracleCalls)/float64(exhaustive)),
			stats.Int(st.SlackResolved), preserved)
	}
	t.Note("ε is declared as a fraction of the injector's guaranteed violation margin. Rows below 1.00 run with less slack than the oracle's actual violations and are unsound — preservation there is luck, not guarantee; from 1.00 up, every relaxed interval provably contains the served distance and the output matches the exhaustive reference by construction. The calls column is the cost of that guarantee: each step widens every derived interval by 2ε and surrenders pruning power.")
	return t
}
