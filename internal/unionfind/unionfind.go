// Package unionfind implements a disjoint-set forest with union by rank
// and path halving. It is the substrate for the Kruskal MST algorithm: an
// edge whose endpoints are already connected can be discarded without ever
// resolving its distance, which is one of the call-saving levers in the
// paper's Kruskal evaluation (Figure 6a).
package unionfind

// DSU is a disjoint-set union structure over elements 0..n-1.
type DSU struct {
	parent []int
	rank   []byte
	sets   int
}

// New returns a DSU with every element in its own singleton set.
func New(n int) *DSU {
	d := &DSU{parent: make([]int, n), rank: make([]byte, n), sets: n}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Find returns the canonical representative of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already connected).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (d *DSU) Connected(x, y int) bool { return d.Find(x) == d.Find(y) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }
