package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	d := New(5)
	if d.Sets() != 5 {
		t.Fatalf("Sets = %d, want 5", d.Sets())
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Fatalf("Find(%d) = %d, want %d", i, d.Find(i), i)
		}
	}
	if d.Connected(0, 1) {
		t.Fatal("singletons reported connected")
	}
}

func TestUnionConnect(t *testing.T) {
	d := New(6)
	if !d.Union(0, 1) {
		t.Fatal("first union failed")
	}
	if d.Union(1, 0) {
		t.Fatal("repeated union reported a merge")
	}
	d.Union(2, 3)
	d.Union(1, 3)
	if !d.Connected(0, 2) {
		t.Fatal("transitive connectivity broken")
	}
	if d.Connected(0, 5) {
		t.Fatal("unrelated elements connected")
	}
	if d.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", d.Sets())
	}
}

func TestSpanningTreeUnions(t *testing.T) {
	// n-1 successful unions must always produce a single set.
	n := 100
	d := New(n)
	rng := rand.New(rand.NewSource(5))
	merges := 0
	for merges < n-1 {
		if d.Union(rng.Intn(n), rng.Intn(n)) {
			merges++
		}
	}
	if d.Sets() != 1 {
		t.Fatalf("Sets = %d after %d merges, want 1", d.Sets(), n-1)
	}
}

func TestQuickMatchesNaive(t *testing.T) {
	// Property: DSU connectivity matches a naive label-propagation model.
	type op struct{ X, Y uint8 }
	f := func(ops []op) bool {
		n := 32
		d := New(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for _, o := range ops {
			x, y := int(o.X)%n, int(o.Y)%n
			d.Union(x, y)
			if label[x] != label[y] {
				relabel(label[y], label[x])
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d.Connected(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
