package stats

import (
	"strings"
	"testing"
	"time"
)

func TestInt(t *testing.T) {
	cases := map[int64]string{
		0:        "0",
		7:        "7",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		-9876543: "-9,876,543",
	}
	for v, want := range cases {
		if got := Int(v); got != want {
			t.Errorf("Int(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestSavePct(t *testing.T) {
	if got := SavePct(60, 100); got != 40 {
		t.Fatalf("SavePct = %v, want 40", got)
	}
	if got := SavePct(10, 0); got != 0 {
		t.Fatalf("SavePct with zero base = %v, want 0", got)
	}
}

func TestDur(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond: "0.500ms",
		250 * time.Millisecond: "250.0ms",
		3 * time.Second:        "3.00s",
		90 * time.Second:       "1.5m",
	}
	for d, want := range cases {
		if got := Dur(d); got != want {
			t.Errorf("Dur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:      "fig0",
		Title:   "demo",
		Columns: []string{"a", "longer"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333333", "4")
	tb.Note("footnote %d", 1)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"## fig0 — demo", "| a      | longer |", "| 333333 | 4      |", "> footnote 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestPctF(t *testing.T) {
	if Pct(12.345) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(12.345))
	}
	if F(0.123456) != "0.1235" {
		t.Fatalf("F = %q", F(0.123456))
	}
}

func TestRenderCSV(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tb.AddRow("1", "with,comma")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"with,comma\"\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestFNegativeZero(t *testing.T) {
	if got := F(-1e-17); got != "0.0000" {
		t.Fatalf("F(-1e-17) = %q", got)
	}
}
