// Package stats provides the small reporting toolkit used by the
// experiment harness: aligned text tables (one per paper table/figure) and
// duration/number formatting helpers.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a titled grid of cells. Rows are rendered with columns aligned.
type Table struct {
	ID      string // experiment id, e.g. "table2" or "fig3a"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string // free-form footnotes (substitutions, scaling)
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for c, col := range t.Columns {
		widths[c] = len(col)
	}
	for _, row := range t.Rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for c, cell := range cells {
			if c < len(widths) {
				parts[c] = pad(cell, widths[c])
			} else {
				parts[c] = cell
			}
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for c := range seps {
		seps[c] = strings.Repeat("-", widths[c])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Int formats an integer with thousands separators.
func Int(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
		if len(s) > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// F formats a float with 4 decimals, normalising values that would render
// as negative zero.
func F(v float64) string {
	if v > -5e-5 && v < 5e-5 {
		v = 0
	}
	return fmt.Sprintf("%.4f", v)
}

// Dur formats a duration compactly with millisecond precision for small
// values and second precision beyond.
func Dur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fm", d.Minutes())
	}
}

// SavePct returns the percentage of calls saved by ours relative to theirs.
func SavePct(ours, theirs int64) float64 {
	if theirs == 0 {
		return 0
	}
	return 100 * float64(theirs-ours) / float64(theirs)
}

// RenderCSV writes the table as CSV (header row first, notes omitted) for
// downstream plotting.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
