// Package e2e holds multi-process integration tests: real binaries, real
// sockets, real SIGKILL. The in-process suites prove the pieces; this one
// proves the assembled cluster story of docs/CLUSTER.md — a client
// working through proxrouter keeps getting bit-identical answers when a
// node is killed mid-workload, and the promoted replica pays strictly
// fewer oracle calls than a cold rebuild.
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"metricprox/internal/cluster"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/service"
	"metricprox/internal/service/api"
)

const (
	e2eN    = 60
	e2eSeed = int64(1)
)

// repoRoot walks up from the package directory to the module root, where
// go build resolves package paths.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// buildBinary go-builds a command into dir with the race detector on —
// the cluster test is above all a concurrency test.
func buildBinary(t *testing.T, root, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-race", "-o", bin, pkg)
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// freePorts reserves n distinct loopback ports by binding and releasing
// them; the window between release and the daemon's bind is the usual
// accepted race.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		ports[i] = l.Addr().(*net.TCPAddr).Port
	}
	for _, l := range listeners {
		l.Close()
	}
	return ports
}

// daemon is one spawned process plus its captured stderr.
type daemon struct {
	cmd    *exec.Cmd
	errLog string
}

func spawn(t *testing.T, logPath, bin string, args ...string) *daemon {
	t.Helper()
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, errLog: logPath}
	t.Cleanup(func() {
		f.Close()
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return d
}

// dump prints a daemon's log into the test output on failure.
func (d *daemon) dump(t *testing.T) {
	t.Helper()
	b, err := os.ReadFile(d.errLog)
	if err == nil && len(b) > 0 {
		t.Logf("--- %s ---\n%s", filepath.Base(d.errLog), b)
	}
}

// waitHealthy polls url until it answers 2xx.
func waitHealthy(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode/100 == 2 {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy within %s", url, timeout)
}

// postRaw POSTs a JSON body and returns status plus raw response bytes —
// raw, because the cluster's contract is byte-identity with a
// single-node run.
func postRaw(t *testing.T, url string, req any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// workloadPairs is the deterministic dist workload both the cluster and
// the single-node reference run; fixed literals, not a seeded RNG, so the
// failure report names the exact pair.
func workloadPairs() [][2]int {
	pairs := make([][2]int, 0, 40)
	for k := 0; k < 40; k++ {
		i := (k*7 + 3) % e2eN
		j := (k*13 + 11) % e2eN
		if i == j {
			j = (j + 1) % e2eN
		}
		pairs = append(pairs, [2]int{i, j})
	}
	return pairs
}

func TestClusterKillPrimaryMidWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: skipped in -short mode")
	}
	root := repoRoot(t)
	binDir := t.TempDir()
	proxd := buildBinary(t, root, binDir, "./cmd/metricproxd", "metricproxd")
	router := buildBinary(t, root, binDir, "./cmd/proxrouter", "proxrouter")

	ports := freePorts(t, 4)
	names := []string{"a", "b", "c"}
	spec := ""
	urls := map[string]string{}
	for i, n := range names {
		u := fmt.Sprintf("http://127.0.0.1:%d", ports[i])
		urls[n] = u
		if i > 0 {
			spec += ","
		}
		spec += n + "=" + u
	}
	routerURL := fmt.Sprintf("http://127.0.0.1:%d", ports[3])

	logDir := t.TempDir()
	daemons := map[string]*daemon{}
	for i, n := range names {
		daemons[n] = spawn(t, filepath.Join(logDir, n+".log"), proxd,
			"-demo", fmt.Sprint(e2eN), "-planar", "-seed", fmt.Sprint(e2eSeed),
			"-listen", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-cluster", spec, "-node", n, "-replicas", "1",
			"-cache-dir", t.TempDir())
	}
	rt := spawn(t, filepath.Join(logDir, "router.log"), router,
		"-cluster", spec, "-replicas", "1",
		"-listen", fmt.Sprintf("127.0.0.1:%d", ports[3]),
		"-probe-interval", "100ms")
	dumpAll := func() {
		for _, d := range daemons {
			d.dump(t)
		}
		rt.dump(t)
	}
	defer func() {
		if t.Failed() {
			dumpAll()
		}
	}()
	for _, n := range names {
		waitHealthy(t, urls[n]+"/healthz", 30*time.Second)
	}
	waitHealthy(t, routerURL+"/healthz", 30*time.Second)

	// The test computes ownership with the same ring the processes built
	// from the same flags, so it knows whom to kill.
	nodes, err := cluster.ParseNodes(spec)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cluster.NewTopology(cluster.Config{Nodes: nodes, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	const sessName = "e2e-kill"
	owners := topo.Owners(sessName)
	primary, replica := owners[0].Name, owners[1].Name
	t.Logf("session %q: primary=%s replica=%s", sessName, primary, replica)

	create := api.CreateSessionRequest{Name: sessName, Scheme: "tri", Landmarks: 4, Seed: 2, Bootstrap: true}
	if code, body := postRaw(t, routerURL+"/v1/sessions", create); code != 200 {
		t.Fatalf("create via router: %d %s", code, body)
	}

	// Phase one of the workload through the router, onto the primary.
	pairs := workloadPairs()
	distBodies := make([][]byte, len(pairs))
	for x, p := range pairs {
		code, body := postRaw(t, routerURL+"/v1/sessions/"+sessName+"/dist", api.PairRequest{I: p[0], J: p[1]})
		if code != 200 {
			t.Fatalf("dist %v via router: %d %s", p, code, body)
		}
		distBodies[x] = body
	}

	// Wait for replication to catch the primary's cursor, then SIGKILL the
	// primary — no drain, no flush, the real failure.
	var primarySeq int64
	deadline := time.Now().Add(20 * time.Second)
	for {
		var pst, rst api.ReplStatusResponse
		if getJSON(t, urls[primary]+"/v1/repl/"+sessName, &pst) == 200 {
			primarySeq = pst.Seq
		}
		if getJSON(t, urls[replica]+"/v1/repl/"+sessName, &rst) == 200 &&
			primarySeq > 0 && rst.Seq == primarySeq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up (primary %d, replica %d)", primarySeq, rst.Seq)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := daemons[primary].cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemons[primary].cmd.Wait()
	t.Logf("primary %s killed at replicated seq %d", primary, primarySeq)

	// Phase two: the same client, the same router URL. Every dist answer
	// must be byte-identical to phase one, and the kNN build completes on
	// the promoted replica.
	for x, p := range pairs {
		code, body := postRaw(t, routerURL+"/v1/sessions/"+sessName+"/dist", api.PairRequest{I: p[0], J: p[1]})
		if code != 200 {
			t.Fatalf("post-kill dist %v: %d %s", p, code, body)
		}
		if !bytes.Equal(body, distBodies[x]) {
			t.Fatalf("post-kill dist %v: %s, pre-kill %s", p, body, distBodies[x])
		}
	}
	code, knnCluster := postRaw(t, routerURL+"/v1/sessions/"+sessName+"/knn", api.KNNRequest{K: 5})
	if code != 200 {
		t.Fatalf("post-kill knn: %d %s", code, knnCluster)
	}

	// Single-node reference: the same space, session, and workload against
	// an in-process server. Byte-identity here is the whole point of the
	// replication design — a kill costs latency and oracle calls, never a
	// different answer.
	refSrv, err := service.New(service.Config{Oracle: metric.NewOracle(datasets.SFPOIPlanar(e2eN, e2eSeed))})
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	ref := httptest.NewServer(refSrv.Handler())
	defer ref.Close()
	if code, body := postRaw(t, ref.URL+"/v1/sessions", create); code != 200 {
		t.Fatalf("reference create: %d %s", code, body)
	}
	for x, p := range pairs {
		code, body := postRaw(t, ref.URL+"/v1/sessions/"+sessName+"/dist", api.PairRequest{I: p[0], J: p[1]})
		if code != 200 {
			t.Fatalf("reference dist %v: %d %s", p, code, body)
		}
		if !bytes.Equal(body, distBodies[x]) {
			t.Fatalf("cluster dist %v diverges from single-node: %s vs %s", p, distBodies[x], body)
		}
	}
	code, knnRef := postRaw(t, ref.URL+"/v1/sessions/"+sessName+"/knn", api.KNNRequest{K: 5})
	if code != 200 {
		t.Fatalf("reference knn: %d %s", code, knnRef)
	}
	if !bytes.Equal(knnCluster, knnRef) {
		t.Fatalf("post-failover kNN diverges from single-node run:\ncluster: %s\nsingle:  %s", knnCluster, knnRef)
	}

	// Call economy: the promoted replica inherited the replicated prefix,
	// so its oracle spend must be strictly below the cold single-node run.
	var clusterStats, refStats api.StatsResponse
	if got := getJSON(t, urls[replica]+"/v1/sessions/"+sessName, &clusterStats); got != 200 {
		t.Fatalf("replica stats: %d", got)
	}
	if got := getJSON(t, ref.URL+"/v1/sessions/"+sessName, &refStats); got != 200 {
		t.Fatalf("reference stats: %d", got)
	}
	promoted := clusterStats.OracleCalls + clusterStats.BootstrapCalls
	cold := refStats.OracleCalls + refStats.BootstrapCalls
	if promoted >= cold {
		t.Fatalf("promoted replica paid %d oracle calls, cold run paid %d — replication saved nothing", promoted, cold)
	}
	t.Logf("oracle calls: promoted replica %d, cold single-node %d", promoted, cold)

	// The router observed the failover.
	var metrics map[string]any
	if got := getJSON(t, routerURL+"/metrics", &metrics); got != 200 {
		t.Fatalf("router metrics: %d", got)
	}
	fo, _ := metrics["cluster_failovers_total"].(float64)
	if fo < 1 {
		t.Fatalf("cluster_failovers_total = %v, want >= 1", metrics["cluster_failovers_total"])
	}

	// Orderly exit for the survivors: SIGTERM must drain cleanly even with
	// a dead peer still in the member list.
	for _, n := range names {
		if n == primary {
			continue
		}
		daemons[n].cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, n := range names {
		if n == primary {
			continue
		}
		done := make(chan error, 1)
		go func(d *daemon) { done <- d.cmd.Wait() }(daemons[n])
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("node %s did not drain within 30s of SIGTERM", n)
		}
	}
}
