// Package analysis is a dependency-free reimplementation of the slice of
// golang.org/x/tools/go/analysis that proxlint needs: named analyzers that
// inspect one type-checked package at a time and report position-anchored
// diagnostics.
//
// The build environment for this repository is intentionally hermetic (no
// module downloads), so the x/tools framework cannot be vendored. The API
// here mirrors the upstream shape closely enough that the analyzers in
// internal/proxlint could be ported to a real multichecker by swapping
// import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. Run inspects a single package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //proxlint:allow directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check. It must use Pass.Reportf for findings and
	// return an error only for internal failures (which abort the run).
	Run func(*Pass) error
}

// Pass carries the inputs of one analyzer applied to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	facts *FactTable
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Several
// invariants (oracle discipline, float equality) deliberately do not apply
// to tests, which verify algorithms against ground-truth distances.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form used
// by go vet.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// Package bundles one type-checked package: the unit of analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map analyzers rely on allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run applies the analyzers to the package with a fresh, private fact
// table. Drivers that thread facts across packages use RunFacts instead.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunFacts(pkg, analyzers, NewFactTable())
}

// RunFacts applies the analyzers to the package, resolving cross-package
// facts through (and exporting new facts into) the shared table, filters
// findings through the //proxlint:allow directives present in the source,
// and returns the surviving diagnostics sorted by position. Malformed
// directives, and directives that suppressed nothing although every
// analyzer they name ran, are themselves reported as diagnostics.
func RunFacts(pkg *Package, analyzers []*Analyzer, facts *FactTable) ([]Diagnostic, error) {
	raw, err := runAnalyzers(pkg, analyzers, facts)
	if err != nil {
		return nil, err
	}
	dirs, bad := parseDirectives(pkg.Fset, pkg.Files)
	var out []Diagnostic
	out = append(out, bad...)
	for _, d := range raw {
		if !dirs.allows(d) {
			out = append(out, d)
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	out = append(out, dirs.stale(ran)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// GatherFacts runs the analyzers over the package purely for their fact
// exports, discarding diagnostics. Drivers call it on dependency packages
// (the VetxOnly units of the unitchecker protocol, or testdata imports)
// so that fact-powered analyzers see the whole import graph.
func GatherFacts(pkg *Package, analyzers []*Analyzer, facts *FactTable) error {
	_, err := runAnalyzers(pkg, analyzers, facts)
	return err
}

func runAnalyzers(pkg *Package, analyzers []*Analyzer, facts *FactTable) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			diags:     &raw,
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return raw, nil
}
