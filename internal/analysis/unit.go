package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
)

// vetConfig mirrors the JSON configuration file the go command hands a
// -vettool for each package unit (the unitchecker protocol). Field names
// must match cmd/go's encoding exactly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoreFiles               []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// UnitResult is the outcome of one vettool invocation.
type UnitResult struct {
	// ImportPath of the analyzed unit (for JSON output grouping).
	ImportPath  string
	Diagnostics []Diagnostic
}

// RunUnit executes the analyzers on the package described by the vet
// config file at cfgPath, implementing the contract `go vet -vettool`
// expects, with fact flow: facts imported from the dependency vetx files
// (PackageVetx) are visible to the analyzers, and the unit's own vetx
// output re-exports everything it saw plus what its analyzers exported —
// so fact flow stays transitive no matter which subset of vetx files a
// driver hands each unit. Dependency-only (VetxOnly) units within the
// module are parsed, type-checked, and analyzed purely for their facts;
// standard-library units are skipped (no proxlint invariant lives there)
// and type errors respect SucceedOnTypecheckFailure.
func RunUnit(cfgPath string, analyzers []*Analyzer) (*UnitResult, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}
	facts := NewFactTable()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // missing dependency facts are an accepted degradation
		}
		// Tolerate undecodable files the same way: they contribute no
		// facts. The tool version string keys the go command's cache, so
		// stale-format files only appear when hand-edited.
		_ = facts.DecodeMerge(data)
	}
	// The go command requires the facts file to exist after every run;
	// writeFacts is re-invoked with the enriched table on success paths.
	writeFacts := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		data, err := facts.Encode()
		if err != nil {
			return err
		}
		return os.WriteFile(cfg.VetxOutput, data, 0o666)
	}
	if err := writeFacts(); err != nil {
		return nil, err
	}
	res := &UnitResult{ImportPath: cfg.ImportPath}
	if cfg.Standard[cfg.ImportPath] {
		return res, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
				return res, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	imp := ExportDataImporter(fset, func(path string) (string, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no package file for %q", path)
		}
		return file, nil
	})
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", envOr("GOARCH", "amd64")),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			return res, nil
		}
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}
	unit := &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}
	if cfg.VetxOnly {
		if err := GatherFacts(unit, analyzers, facts); err != nil {
			return nil, err
		}
		return res, writeFacts()
	}
	diags, err := RunFacts(unit, analyzers, facts)
	if err != nil {
		return nil, err
	}
	res.Diagnostics = diags
	return res, writeFacts()
}
