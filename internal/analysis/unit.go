package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
)

// vetConfig mirrors the JSON configuration file the go command hands a
// -vettool for each package unit (the unitchecker protocol). Field names
// must match cmd/go's encoding exactly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoreFiles               []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// UnitResult is the outcome of one vettool invocation.
type UnitResult struct {
	// ImportPath of the analyzed unit (for JSON output grouping).
	ImportPath  string
	Diagnostics []Diagnostic
}

// RunUnit executes the analyzers on the package described by the vet
// config file at cfgPath, implementing the contract `go vet -vettool`
// expects: facts output is always written (ours is empty — no analyzer
// here exports facts), dependency-only units are not analyzed, and type
// errors respect SucceedOnTypecheckFailure.
func RunUnit(cfgPath string, analyzers []*Analyzer) (*UnitResult, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}
	// The go command requires the facts file to exist after every run,
	// including VetxOnly (dependency) runs.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("proxlint: no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	res := &UnitResult{ImportPath: cfg.ImportPath}
	if cfg.VetxOnly {
		return res, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return res, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	imp := ExportDataImporter(fset, func(path string) (string, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no package file for %q", path)
		}
		return file, nil
	})
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", envOr("GOARCH", "amd64")),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return res, nil
		}
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}
	diags, err := Run(&Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers)
	if err != nil {
		return nil, err
	}
	res.Diagnostics = diags
	return res, nil
}
