package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses src (a complete file body after "package p") and
// returns the body of the first function declaration.
func parseFunc(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

func TestBuildCFG(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "if_else",
			src: `func f(c bool) {
				if c {
					a()
				} else {
					b()
				}
				d()
			}`,
			want: "0->[2 3] 1->[] 2->[1] 3->[1]",
		},
		{
			name: "if_no_else",
			src: `func f(c bool) {
				if c {
					a()
				}
				d()
			}`,
			want: "0->[2 1] 1->[] 2->[1]",
		},
		{
			name: "for_loop_back_edge",
			src: `func f(n int) {
				for i := 0; i < n; i++ {
					g()
				}
				h()
			}`,
			// 1 is the head (cond), 3 the post (i++), 4 the body: the
			// back edge is 3->1.
			want: "0->[1] 1->[2 4] 2->[] 3->[1] 4->[3]",
		},
		{
			name: "for_break_continue",
			src: `func f(n int) {
				for i := 0; i < n; i++ {
					if i == 2 {
						continue
					}
					if i == 4 {
						break
					}
					g()
				}
				h()
			}`,
			// continue (6) jumps to the post block 3; break (8) to the
			// after block 2.
			want: "0->[1] 1->[2 4] 2->[] 3->[1] 4->[6 5] 5->[8 7] 6->[3] 7->[3] 8->[2]",
		},
		{
			name: "range_loop",
			src: `func f(xs []int) {
				for _, x := range xs {
					g(x)
				}
				h()
			}`,
			want: "0->[1] 1->[2 3] 2->[] 3->[1]",
		},
		{
			name: "labeled_break_from_nested_loop",
			src: `func f() {
			outer:
				for {
					for {
						break outer
					}
				}
				h()
			}`,
			// break outer (7) jumps straight to the outer loop's after
			// block 3; no cond on either loop, so neither head reaches
			// its after block directly.
			want: "0->[1] 1->[2] 2->[4] 3->[] 4->[5] 5->[7] 6->[2] 7->[3]",
		},
		{
			name: "switch_fallthrough_and_default",
			src: `func f(x int) {
				switch x {
				case 1:
					a()
					fallthrough
				case 2:
					b()
				default:
					c()
				}
				d()
			}`,
			// case 1 (block 2) falls through into case 2 (block 3); the
			// default means no direct head->after edge.
			want: "0->[2 3 4] 1->[] 2->[3] 3->[1] 4->[1]",
		},
		{
			name: "switch_no_default",
			src: `func f(x int) {
				switch x {
				case 1:
					a()
				}
				d()
			}`,
			want: "0->[2 1] 1->[] 2->[1]",
		},
		{
			name: "type_switch",
			src: `func f(x any) {
				switch v := x.(type) {
				case int:
					a(v)
				default:
					_ = v
				}
			}`,
			want: "0->[2 3] 1->[] 2->[1] 3->[1]",
		},
		{
			name: "select",
			src: `func f(ch chan int) {
				select {
				case v := <-ch:
					a(v)
				default:
					b()
				}
			}`,
			want: "0->[2 3] 1->[] 2->[1] 3->[1]",
		},
		{
			name: "backward_goto",
			src: `func f() {
				i := 0
			L:
				i++
				if i < 3 {
					goto L
				}
			}`,
			want: "0->[1] 1->[3 2] 2->[] 3->[1]",
		},
		{
			name: "forward_goto",
			src: `func f(c bool) {
				if c {
					goto L
				}
				a()
			L:
				b()
			}`,
			want: "0->[2 1] 1->[3] 2->[3] 3->[]",
		},
		{
			name: "return_makes_rest_unreachable",
			src: `func f() {
				return
				g()
			}`,
			// g() still gets a block so diagnostics can anchor in it,
			// but nothing leads there.
			want: "0->[] 1->[]",
		},
		{
			name: "panic_terminates_block",
			src: `func f(c bool) {
				if !c {
					panic("bad")
				}
				g()
			}`,
			want: "0->[2 1] 1->[] 2->[]",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := BuildCFG(parseFunc(t, tt.src))
			if got := cfg.String(); got != tt.want {
				t.Errorf("CFG mismatch:\n got %s\nwant %s", got, tt.want)
			}
		})
	}
}

func TestBuildCFGEntryIsFirstBlock(t *testing.T) {
	cfg := BuildCFG(parseFunc(t, `func f() { g() }`))
	if len(cfg.Blocks) == 0 || cfg.Blocks[0].Index != 0 {
		t.Fatalf("entry block missing: %s", cfg)
	}
	if len(cfg.Blocks[0].Nodes) != 1 {
		t.Fatalf("entry block should hold the single statement, got %d nodes", len(cfg.Blocks[0].Nodes))
	}
}
