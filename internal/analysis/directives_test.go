package analysis

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"
)

// reportAtMarker is a test analyzer that reports on every call to a
// function named "bad".
func reportAtMarker(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
						pass.Reportf(call.Pos(), "bad call")
					}
					return true
				})
			}
			return nil
		},
	}
}

func runDirectiveTest(t *testing.T, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg := checkPkg(t, token.NewFileSet(), "p", src, nil)
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

const directiveDecls = `func bad()  {}
func fine() {}
`

func TestDirectiveSuppressesAndIsNotStale(t *testing.T) {
	diags := runDirectiveTest(t, `package p

`+directiveDecls+`
func f() {
	bad() //proxlint:allow testcheck -- sanctioned here
}
`, reportAtMarker("testcheck"))
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none (suppressed, directive used)", diags)
	}
}

func TestStaleDirectiveReported(t *testing.T) {
	diags := runDirectiveTest(t, `package p

`+directiveDecls+`
func f() {
	fine() //proxlint:allow testcheck -- nothing to suppress
}
`, reportAtMarker("testcheck"))
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the stale-directive report", diags)
	}
	if !strings.Contains(diags[0].Message, "stale //proxlint:allow") || diags[0].Analyzer != "proxlint" {
		t.Fatalf("unexpected diagnostic: %v", diags[0])
	}
}

func TestStaleNotJudgedOnPartialRun(t *testing.T) {
	// The directive names an analyzer that did not run: its staleness
	// cannot be judged, so nothing is reported.
	diags := runDirectiveTest(t, `package p

`+directiveDecls+`
func f() {
	fine() //proxlint:allow othercheck -- judged only when othercheck runs
}
`, reportAtMarker("testcheck"))
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none (othercheck did not run)", diags)
	}
}

func TestStaleExemptsAllDirectives(t *testing.T) {
	diags := runDirectiveTest(t, `package p

`+directiveDecls+`
func f() {
	fine() //proxlint:allow all -- blanket waiver, never judged stale
}
`, reportAtMarker("testcheck"))
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none (all is exempt)", diags)
	}
}

func TestOwnLineDirectiveCoversNextLine(t *testing.T) {
	diags := runDirectiveTest(t, `package p

`+directiveDecls+`
func f() {
	//proxlint:allow testcheck -- covers the line below
	bad()
}
`, reportAtMarker("testcheck"))
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none", diags)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	diags := runDirectiveTest(t, `package p

`+directiveDecls+`
func f() {
	bad() //proxlint:allow testcheck
}
`, reportAtMarker("testcheck"))
	// The malformed directive (no rationale) suppresses nothing, so both
	// the malformed report and the underlying finding surface.
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want malformed-directive report plus the finding", diags)
	}
	var sawMalformed bool
	for _, d := range diags {
		if strings.Contains(d.Message, "malformed") {
			sawMalformed = true
		}
	}
	if !sawMalformed {
		t.Fatalf("no malformed-directive report in %v", diags)
	}
}
