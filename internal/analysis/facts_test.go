package analysis

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkPkg type-checks one file of source as the package at path, using
// imp to resolve its imports.
func checkPkg(t *testing.T, fset *token.FileSet, path, src string, imp types.Importer) *Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

func TestObjectKey(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkPkg(t, fset, "example.com/p", `package p

type T struct{}

func (t *T) Grow()  {}
func Top()          {}

var V int
`, nil)

	named := pkg.Pkg.Scope().Lookup("T").Type().(*types.Named)
	var grow types.Object
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Grow" {
			grow = named.Method(i)
		}
	}
	tests := []struct {
		obj  types.Object
		want string
	}{
		{grow, "example.com/p.T.Grow"}, // pointer receiver stripped
		{pkg.Pkg.Scope().Lookup("Top"), "example.com/p.Top"},
		{pkg.Pkg.Scope().Lookup("V"), "example.com/p.V"},
		{nil, ""},
	}
	for _, tt := range tests {
		if got := ObjectKey(tt.obj); got != tt.want {
			t.Errorf("ObjectKey(%v) = %q, want %q", tt.obj, got, tt.want)
		}
	}
}

func TestFactTableDedupAndRoundTrip(t *testing.T) {
	ft := NewFactTable()
	f := Fact{Object: "p.T.Grow", Kind: "grows"}
	ft.Add("rowescape", f)
	ft.Add("rowescape", f) // exact duplicate: dropped
	ft.Add("rowescape", Fact{Object: "p.Borrow", Kind: "borrows", Detail: "0"})
	ft.Add("wireinf", Fact{Object: "p.Resp", Kind: "rawfloat", Detail: "Value"})
	if ft.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicate must be dropped)", ft.Len())
	}

	enc1, err := ft.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc2, _ := ft.Encode()
	if !bytes.Equal(enc1, enc2) {
		t.Error("Encode is not deterministic")
	}

	back := NewFactTable()
	if err := back.DecodeMerge(enc1); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("decoded Len = %d, want 3", back.Len())
	}
	got := back.Lookup("rowescape", "p.T.Grow")
	if len(got) != 1 || got[0].Kind != "grows" {
		t.Fatalf("Lookup after round trip = %v", got)
	}
	if err := back.DecodeMerge([]byte("not json")); err == nil {
		t.Error("DecodeMerge accepted garbage")
	}
	// Re-merging the same data is idempotent (the vetx re-export path
	// hands every unit its dependencies' facts repeatedly).
	if err := back.DecodeMerge(enc1); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("re-merged Len = %d, want 3", back.Len())
	}
}

// TestCrossPackageFactImport drives the full fact pipeline: an analyzer
// exports a fact while analyzing package a, the table crosses a
// serialization boundary (as the vetx files do), and the same analyzer
// sees the fact attached to the imported object while analyzing package b.
func TestCrossPackageFactImport(t *testing.T) {
	fset := token.NewFileSet()
	aPkg := checkPkg(t, fset, "example.com/a", `package a

func Grow() {}
func Safe() {}
`, nil)
	bPkg := checkPkg(t, fset, "example.com/b", `package b

import "example.com/a"

func Use() {
	a.Grow()
	a.Safe()
}
`, importerFunc(func(path string) (*types.Package, error) {
		return aPkg.Pkg, nil
	}))

	// One analyzer, as in real use: it exports "grows" facts for
	// functions named Grow and reports every call to a grows-function.
	analyzer := &Analyzer{
		Name: "growcheck",
		Doc:  "test analyzer",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Grow" {
						pass.ExportFact(pass.TypesInfo.Defs[fd.Name], "grows", "")
					}
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					var obj types.Object
					switch fun := ast.Unparen(call.Fun).(type) {
					case *ast.Ident:
						obj = pass.TypesInfo.Uses[fun]
					case *ast.SelectorExpr:
						obj = pass.TypesInfo.Uses[fun.Sel]
					}
					if obj != nil && pass.HasFact(obj, "grows") {
						pass.Reportf(call.Pos(), "call to growing function %s", obj.Name())
					}
					return true
				})
			}
			return nil
		},
	}

	facts := NewFactTable()
	if err := GatherFacts(aPkg, []*Analyzer{analyzer}, facts); err != nil {
		t.Fatal(err)
	}
	if len(facts.Lookup("growcheck", "example.com/a.Grow")) != 1 {
		t.Fatalf("fact not exported for a.Grow; table has %d facts", facts.Len())
	}

	// Serialize and decode into a fresh table, as the unitchecker does
	// between the a unit and the b unit.
	data, err := facts.Encode()
	if err != nil {
		t.Fatal(err)
	}
	imported := NewFactTable()
	if err := imported.DecodeMerge(data); err != nil {
		t.Fatal(err)
	}

	diags, err := RunFacts(bPkg, []*Analyzer{analyzer}, imported)
	if err != nil {
		t.Fatal(err)
	}
	var hits []string
	for _, d := range diags {
		hits = append(hits, d.Message)
	}
	if len(hits) != 1 || !strings.Contains(hits[0], "Grow") {
		t.Fatalf("diagnostics in b = %v, want exactly one call-to-Grow report", hits)
	}
}
