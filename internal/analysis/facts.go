package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"sync"
)

// Fact is one piece of analyzer-produced knowledge about a package-level
// object (a function, method, type, or variable), keyed so it survives
// crossing a package boundary: when internal/pgraph is analyzed, rowescape
// records "Graph.AddEdge grows the slab"; when internal/bounds is analyzed
// later, the engine re-resolves that fact from the imported (gc export
// data) object without ever re-reading pgraph's source. This is the
// dependency-free analogue of golang.org/x/tools/go/analysis facts.
type Fact struct {
	// Object is the canonical key of the object the fact describes; see
	// ObjectKey.
	Object string `json:"object"`
	// Kind is the analyzer-specific label ("grows", "borrows",
	// "degraded", "rawfloat", ...).
	Kind string `json:"kind"`
	// Detail optionally refines the kind (a field path, result indices).
	Detail string `json:"detail,omitempty"`
}

// ObjectKey canonicalises an object reference so that the key computed
// while analyzing the defining package (from source) equals the key
// computed in a downstream package (from gc export data). Methods encode
// their receiver's named type with pointers stripped:
//
//	metricprox/internal/pgraph.Graph.AddEdge
//	metricprox/internal/core.Session.estimate
//	metricprox/internal/service/api.WireFloat
//
// Objects without a package (builtins, universe errors) key to "".
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	prefix := obj.Pkg().Path() + "."
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if name := recvTypeName(sig.Recv().Type()); name != "" {
				return prefix + name + "." + f.Name()
			}
		}
	}
	return prefix + obj.Name()
}

// recvTypeName returns the bare name of a method receiver's named type,
// stripping one level of pointer. Interface receivers resolve the same
// way: the interface's type name.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return ""
}

// FactTable accumulates facts across a whole analysis run: facts imported
// from dependency units (the vetx files of the unitchecker protocol, or
// previously analyzed packages in a standalone run) plus facts exported
// while analyzing the current package. It is safe for concurrent readers
// with a single writer per package, which is how the drivers use it; the
// mutex exists for the analyzertest harness, whose recursive loader may
// interleave.
type FactTable struct {
	mu sync.Mutex
	m  map[string]map[string][]Fact // analyzer -> object key -> facts
}

// NewFactTable returns an empty table.
func NewFactTable() *FactTable {
	return &FactTable{m: make(map[string]map[string][]Fact)}
}

// Add records a fact under the analyzer's name. Exact duplicates are
// dropped, so re-analyzing a package (the analyzertest harness does this
// for packages that are both dependencies and named targets) is
// idempotent.
func (t *FactTable) Add(analyzer string, f Fact) {
	if f.Object == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	byObj := t.m[analyzer]
	if byObj == nil {
		byObj = make(map[string][]Fact)
		t.m[analyzer] = byObj
	}
	for _, have := range byObj[f.Object] {
		if have == f {
			return
		}
	}
	byObj[f.Object] = append(byObj[f.Object], f)
}

// Lookup returns the facts the named analyzer recorded for the object key.
func (t *FactTable) Lookup(analyzer, objKey string) []Fact {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[analyzer][objKey]
}

// Len reports the total number of facts, for tests and diagnostics.
func (t *FactTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, byObj := range t.m {
		for _, fs := range byObj {
			n += len(fs)
		}
	}
	return n
}

// Encode serialises the whole table (imported facts included: each unit's
// vetx file re-exports its dependencies' facts, which keeps fact flow
// transitive even when a driver only hands us direct-dependency files).
// The encoding is deterministic so vetx files are byte-stable inputs to
// the go command's content-based caching.
func (t *FactTable) Encode() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string][]Fact, len(t.m))
	for analyzer, byObj := range t.m {
		keys := make([]string, 0, len(byObj))
		for k := range byObj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var fs []Fact
		for _, k := range keys {
			fs = append(fs, byObj[k]...)
		}
		out[analyzer] = fs
	}
	return json.MarshalIndent(out, "", "\t")
}

// DecodeMerge merges a previously encoded table into t. Unreadable data
// returns an error; the drivers tolerate it for dependency files (a stale
// vetx produced by an older proxlint simply contributes no facts — the
// tool version string keys the go command's cache, so this only happens
// for hand-edited files).
func (t *FactTable) DecodeMerge(data []byte) error {
	var in map[string][]Fact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decoding fact table: %w", err)
	}
	for analyzer, fs := range in {
		for _, f := range fs {
			t.Add(analyzer, f)
		}
	}
	return nil
}

// ExportFact records a fact about obj under the running analyzer's name.
// The fact is visible immediately to later Fact lookups in this package
// and, through the driver, to every package analyzed afterwards that
// imports this one.
func (p *Pass) ExportFact(obj types.Object, kind, detail string) {
	p.facts.Add(p.Analyzer.Name, Fact{Object: ObjectKey(obj), Kind: kind, Detail: detail})
}

// HasFact reports whether the running analyzer (in this or an upstream
// package) recorded a fact of the given kind about obj.
func (p *Pass) HasFact(obj types.Object, kind string) bool {
	_, ok := p.FactDetail(obj, kind)
	return ok
}

// FactDetail returns the detail string of the first fact of the given
// kind recorded about obj by the running analyzer.
func (p *Pass) FactDetail(obj types.Object, kind string) (string, bool) {
	key := ObjectKey(obj)
	if key == "" {
		return "", false
	}
	for _, f := range p.facts.Lookup(p.Analyzer.Name, key) {
		if f.Kind == kind {
			return f.Detail, true
		}
	}
	return "", false
}
