package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the forward dataflow half of the engine: def-use chains
// over one function body, and a taint-propagation fixed point across the
// CFG of cfg.go. The proxlint analyzers that need to reason about where a
// value *came from* (a borrowed pgraph row, a degraded bounds-midpoint
// estimate) configure a TaintAnalysis with their source/sink/clobber
// shapes and let the engine carry labels through assignments, branches,
// and loops. Cross-function and cross-package flow rides on the fact
// table (facts.go): an analyzer exports "this function returns a tainted
// value" and treats calls to fact-carrying functions as sources.

// DefUse records, for every object assigned or read in a function body,
// its definition sites and use sites in source order. The taint engine
// consults it for diagnostics ("borrowed at line N"); analyzers can use
// it directly for cheap liveness-style questions.
type DefUse struct {
	// Defs maps an object to the nodes that assign it: the AssignStmt,
	// ValueSpec, RangeStmt, or TypeSwitchStmt/Field that defines or
	// overwrites it.
	Defs map[types.Object][]ast.Node
	// Uses maps an object to every identifier that reads it (identifiers
	// in pure store position are excluded).
	Uses map[types.Object][]*ast.Ident
}

// ComputeDefUse walks one function body (or any subtree) and returns its
// def-use chains.
func ComputeDefUse(info *types.Info, root ast.Node) *DefUse {
	du := &DefUse{
		Defs: make(map[types.Object][]ast.Node),
		Uses: make(map[types.Object][]*ast.Ident),
	}
	stores := make(map[*ast.Ident]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := idObject(info, id); obj != nil {
						du.Defs[obj] = append(du.Defs[obj], n)
						stores[id] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if obj := idObject(info, id); obj != nil {
					du.Defs[obj] = append(du.Defs[obj], n)
					stores[id] = true
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := idObject(info, id); obj != nil {
						du.Defs[obj] = append(du.Defs[obj], n)
						stores[id] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj := idObject(info, id); obj != nil {
					du.Defs[obj] = append(du.Defs[obj], n)
				}
			}
		}
		return true
	})
	ast.Inspect(root, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || stores[id] {
			return true
		}
		if obj := idObject(info, id); obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				du.Uses[obj] = append(du.Uses[obj], id)
			}
		}
		return true
	})
	return du
}

func idObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// TaintAnalysis configures one run of the forward taint engine over a
// single function body. Labels are short strings; the empty label means
// untainted. All hooks except Info are optional.
type TaintAnalysis struct {
	Info *types.Info

	// Source returns the label an expression introduces by itself —
	// typically a call to a taint-producing function — or "".
	Source func(e ast.Expr) string

	// Clobber rewrites each live label when call executes; returning the
	// label unchanged means the call does not affect it. rowescape maps
	// "row" -> "stale" at every slab-growing call.
	Clobber func(call *ast.CallExpr, label string) string

	// Element maps a container's label to the label of a value read out
	// of it (index, range value, field). The default keeps the label.
	Element func(container string) string

	// Join merges labels at CFG merge points and weak updates. The
	// default keeps a over b (labels are then effectively a may-set of
	// size one, which suits single-label analyses).
	Join func(a, b string) string

	// Visit, if set, is called during the reporting pass for every CFG
	// node in source order with the state reaching it. Sink checks
	// happen here.
	Visit func(n ast.Node, st *TaintState)
}

// TaintState is the engine's view of one program point: a label per
// tracked object plus the def-use chains of the function under analysis.
type TaintState struct {
	ta     *TaintAnalysis
	labels map[types.Object]string
	// DefUse holds the def-use chains of the analyzed body.
	DefUse *DefUse
}

// Of returns the label currently attached to obj.
func (st *TaintState) Of(obj types.Object) string { return st.labels[obj] }

// Label computes the taint label of an expression under the current
// state.
func (st *TaintState) Label(e ast.Expr) string {
	ta := st.ta
	switch e := e.(type) {
	case *ast.Ident:
		if obj := idObject(ta.Info, e); obj != nil {
			if l := st.labels[obj]; l != "" {
				return l
			}
		}
	case *ast.ParenExpr:
		return st.Label(e.X)
	case *ast.CallExpr:
		if tv, ok := ta.Info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: the label passes through unchanged.
			if len(e.Args) == 1 {
				return st.Label(e.Args[0])
			}
			return ""
		}
		if ta.Source != nil {
			return ta.Source(e)
		}
	case *ast.UnaryExpr:
		return st.Label(e.X)
	case *ast.StarExpr:
		return st.element(st.Label(e.X))
	case *ast.BinaryExpr:
		return st.join(st.Label(e.X), st.Label(e.Y))
	case *ast.IndexExpr:
		return st.element(st.Label(e.X))
	case *ast.SliceExpr:
		return st.Label(e.X)
	case *ast.SelectorExpr:
		// A field read from a tainted composite; a package-qualified
		// reference has no interesting X label.
		return st.element(st.Label(e.X))
	case *ast.TypeAssertExpr:
		return st.Label(e.X)
	case *ast.CompositeLit:
		out := ""
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = st.join(out, st.Label(el))
		}
		return out
	}
	if ta.Source != nil {
		if l := ta.Source(e); l != "" {
			return l
		}
	}
	return ""
}

func (st *TaintState) join(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" || a == b {
		return a
	}
	if st.ta.Join != nil {
		return st.ta.Join(a, b)
	}
	return a
}

func (st *TaintState) element(container string) string {
	if container == "" {
		return ""
	}
	if st.ta.Element != nil {
		return st.ta.Element(container)
	}
	return container
}

func (st *TaintState) clone() map[types.Object]string {
	out := make(map[types.Object]string, len(st.labels))
	for k, v := range st.labels {
		out[k] = v
	}
	return out
}

// set strongly updates obj's label; the empty label deletes the entry so
// states stay small and comparable.
func (st *TaintState) set(obj types.Object, label string) {
	if obj == nil {
		return
	}
	if label == "" {
		delete(st.labels, obj)
	} else {
		st.labels[obj] = label
	}
}

// weaken joins label into obj's current label (weak update: stores
// through an index or field may or may not overwrite).
func (st *TaintState) weaken(obj types.Object, label string) {
	if obj == nil || label == "" {
		return
	}
	st.labels[obj] = st.join(st.labels[obj], label)
}

// Run performs the fixed-point taint computation over body and then, if
// Visit is set, a reporting pass in source order. It returns the def-use
// chains so callers can reuse them.
func (ta *TaintAnalysis) Run(body *ast.BlockStmt) *DefUse {
	cfg := BuildCFG(body)
	du := ComputeDefUse(ta.Info, body)

	in := make([]map[types.Object]string, len(cfg.Blocks))
	preds := make([][]int, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b.Index)
		}
	}

	// Worklist fixed point: propagate out-states along edges until
	// stable. Labels form a finite set per client, and join is monotone
	// (the default keeps existing labels), so this terminates.
	work := []int{0}
	in[0] = map[types.Object]string{}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		st := &TaintState{ta: ta, labels: cloneLabels(in[bi]), DefUse: du}
		for _, n := range cfg.Blocks[bi].Nodes {
			ta.transfer(st, n, nil)
		}
		out := st.labels
		for _, s := range cfg.Blocks[bi].Succs {
			merged, changed := mergeInto(st, in[s.Index], out)
			if changed {
				in[s.Index] = merged
				if !contains(work, s.Index) {
					work = append(work, s.Index)
				}
			}
		}
	}

	if ta.Visit != nil {
		for _, b := range cfg.Blocks {
			labels := in[b.Index]
			if labels == nil {
				labels = map[types.Object]string{} // unreachable block
			}
			st := &TaintState{ta: ta, labels: cloneLabels(labels), DefUse: du}
			for _, n := range b.Nodes {
				ta.transfer(st, n, ta.Visit)
			}
		}
	}
	return du
}

func cloneLabels(m map[types.Object]string) map[types.Object]string {
	out := make(map[types.Object]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeInto joins src into dst (nil dst means "not yet reached"),
// reporting whether dst changed.
func mergeInto(st *TaintState, dst, src map[types.Object]string) (map[types.Object]string, bool) {
	if dst == nil {
		return cloneLabels(src), true
	}
	changed := false
	for obj, l := range src {
		if merged := st.join(dst[obj], l); merged != dst[obj] {
			if !changed {
				dst = cloneLabels(dst)
				changed = true
			}
			dst[obj] = merged
		}
	}
	return dst, changed
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// transfer interprets one CFG node: visit hook first (sink checks see
// the state *before* the node's own effects), then assignments, then
// clobbers from any call the node contains.
func (ta *TaintAnalysis) transfer(st *TaintState, n ast.Node, visit func(ast.Node, *TaintState)) {
	if visit != nil {
		visit(n, st)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		ta.assign(st, n.Lhs, n.Rhs)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					ta.assign(st, lhs, vs.Values)
				}
			}
		}
	case *ast.RangeStmt:
		el := st.element(st.Label(n.X))
		if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
			st.set(idObject(ta.Info, id), el)
		}
		if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
			// Slice/array keys are indices (clean); map keys could carry
			// taint, but no in-repo invariant tracks map keys.
			st.set(idObject(ta.Info, id), "")
		}
	case ast.Stmt, ast.Expr:
		// Conditions and expression statements change no bindings.
	}
	if ta.Clobber != nil {
		ast.Inspect(n, func(sub ast.Node) bool {
			if _, ok := sub.(*ast.FuncLit); ok {
				return false // separate function; analyzed on its own
			}
			call, ok := sub.(*ast.CallExpr)
			if !ok {
				return true
			}
			for obj, l := range st.labels {
				if nl := ta.Clobber(call, l); nl != l {
					st.set(obj, nl)
				}
			}
			return true
		})
	}
}

// assign applies one (possibly multi-value) assignment to the state.
func (ta *TaintAnalysis) assign(st *TaintState, lhs, rhs []ast.Expr) {
	labels := make([]string, len(lhs))
	if len(rhs) == len(lhs) {
		for i, r := range rhs {
			labels[i] = st.Label(r)
		}
	} else if len(rhs) == 1 {
		// Tuple assignment: a call, type assertion, or map read feeds
		// every binding the same provenance.
		l := st.Label(rhs[0])
		for i := range labels {
			labels[i] = l
		}
	}
	for i, l := range lhs {
		switch l := ast.Unparen(l).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			st.set(idObject(ta.Info, l), labels[i])
		case *ast.IndexExpr:
			// xs[i] = tainted: the container may now hold the taint.
			if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
				st.weaken(idObject(ta.Info, id), labels[i])
			}
		case *ast.SelectorExpr:
			// p.f = tainted: a local composite may now hold the taint.
			if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
				st.weaken(idObject(ta.Info, id), labels[i])
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
				st.weaken(idObject(ta.Info, id), labels[i])
			}
		}
	}
}
