package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// typecheckFunc type-checks a snippet (declarations after "package p") and
// returns the body of func f with the supporting machinery.
func typecheckFunc(t *testing.T, src string) (*token.FileSet, *types.Info, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "df.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fset, info, fd.Body
		}
	}
	t.Fatal("no func f in source")
	return nil, nil, nil
}

// taintDecls supplies the source, clobber, and sink functions the taint
// tests wire their hooks to.
const taintDecls = `
func src() int      { return 0 }
func clob()         {}
func sink(...int)   {}
`

// runTaint runs the engine over func f in src with: src() as the source
// of label "t", clob() rewriting "t" to "stale", and sink(...) as the
// observation point. It returns "line:label" for every tainted sink
// argument, sorted.
func runTaint(t *testing.T, src string) []string {
	t.Helper()
	fset, info, body := typecheckFunc(t, taintDecls+src)
	base := fset.Position(body.Pos()).Line // the "func f" line, reported as 1
	var hits []string
	calleeName := func(call *ast.CallExpr) string {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			return id.Name
		}
		return ""
	}
	ta := &TaintAnalysis{
		Info: info,
		Source: func(e ast.Expr) string {
			if call, ok := e.(*ast.CallExpr); ok && calleeName(call) == "src" {
				return "t"
			}
			return ""
		},
		Clobber: func(call *ast.CallExpr, label string) string {
			if calleeName(call) == "clob" && label == "t" {
				return "stale"
			}
			return label
		},
		Visit: func(n ast.Node, st *TaintState) {
			ast.Inspect(n, func(sub ast.Node) bool {
				call, ok := sub.(*ast.CallExpr)
				if !ok || calleeName(call) != "sink" {
					return true
				}
				for _, a := range call.Args {
					if l := st.Label(a); l != "" {
						hits = append(hits, fmt.Sprintf("%d:%s", fset.Position(call.Pos()).Line-base+1, l))
					}
				}
				return true
			})
		},
	}
	ta.Run(body)
	sort.Strings(hits)
	return hits
}

func TestTaint(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []string // "line:label" with line 1 = the func f line
	}{
		{
			name: "straight_line_propagation",
			src: `func f() {
				x := src()
				sink(x)
				y := x
				sink(y)
			}`,
			want: []string{"3:t", "5:t"},
		},
		{
			name: "overwrite_kills_taint",
			src: `func f() {
				x := src()
				sink(x)
				x = 0
				sink(x)
			}`,
			want: []string{"3:t"},
		},
		{
			name: "branch_merge_is_may_taint",
			src: `func f(c bool) {
				x := 0
				if c {
					x = src()
				}
				sink(x)
			}`,
			want: []string{"6:t"},
		},
		{
			name: "both_branches_clean",
			src: `func f(c bool) {
				x := src()
				if c {
					x = 0
				} else {
					x = 1
				}
				sink(x)
			}`,
			want: nil,
		},
		{
			name: "loop_carried_taint",
			src: `func f(n int) {
				x := 0
				for i := 0; i < n; i++ {
					sink(x)
					x = src()
				}
			}`,
			// Tainted on the second iteration: only the back edge
			// carries the label here, so this exercises the fixed point.
			want: []string{"4:t"},
		},
		{
			name: "clobber_relabels_live_values",
			src: `func f() {
				x := src()
				clob()
				sink(x)
			}`,
			want: []string{"4:stale"},
		},
		{
			name: "sink_before_clobber_sees_original_label",
			src: `func f() {
				x := src()
				sink(x)
				clob()
				sink(x)
			}`,
			want: []string{"3:t", "5:stale"},
		},
		{
			name: "range_element_inherits_container_taint",
			src: `func f() {
				xs := []int{src()}
				for i, v := range xs {
					sink(v)
					sink(i)
				}
			}`,
			// The value is tainted; the index never is.
			want: []string{"4:t"},
		},
		{
			name: "tuple_assignment_is_positional",
			src: `func f() {
				x, y := src(), 0
				sink(y)
				sink(x)
			}`,
			want: []string{"4:t"},
		},
		{
			name: "conversions_pass_taint_through",
			src: `func f() {
				y := int(int64(src()))
				sink(y)
			}`,
			want: []string{"3:t"},
		},
		{
			name: "binary_expr_joins_operands",
			src: `func f() {
				x := src() + 1
				sink(x)
			}`,
			want: []string{"3:t"},
		},
		{
			name: "container_store_weakens",
			src: `func f() {
				xs := []int{0}
				xs[0] = src()
				sink(xs[0])
			}`,
			want: []string{"4:t"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := runTaint(t, tt.src)
			if len(got) != len(tt.want) {
				t.Fatalf("hits = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("hits = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestComputeDefUse(t *testing.T) {
	fset, info, body := typecheckFunc(t, `func f(n int) {
		x := 0
		x = n
		x++
		var y = x
		_ = y
	}`)
	_ = fset
	du := ComputeDefUse(info, body)

	find := func(name string) types.Object {
		for obj := range du.Defs {
			if obj.Name() == name {
				return obj
			}
		}
		t.Fatalf("no defs recorded for %q", name)
		return nil
	}
	x := find("x")
	if got := len(du.Defs[x]); got != 3 {
		t.Errorf("x has %d defs, want 3 (:=, =, ++)", got)
	}
	// x is read by x++ and by the var y initializer.
	if got := len(du.Uses[x]); got != 2 {
		t.Errorf("x has %d uses, want 2", got)
	}
	y := find("y")
	if got := len(du.Defs[y]); got != 1 {
		t.Errorf("y has %d defs, want 1", got)
	}
	if got := len(du.Uses[y]); got != 1 {
		t.Errorf("y has %d uses, want 1", got)
	}
}
