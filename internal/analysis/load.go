package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves the patterns with `go list -deps -export -json`, parses
// and type-checks every matched (non-dependency) package from source, and
// returns them ready for analysis. Dependencies are imported from the
// compiler export data that `go list -export` materialises in the build
// cache, so the loader works offline and never type-checks the standard
// library from source.
//
// The returned packages preserve go list's -deps ordering — dependencies
// before dependents — so a driver that analyzes them in order with one
// shared FactTable sees every in-set dependency's facts before analyzing
// the dependent. (Facts from packages outside the requested patterns are
// unavailable in standalone mode; the vet -vettool path covers the full
// import graph.)
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	index := make(map[string]*listedPackage)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		lp := p
		index[lp.ImportPath] = &lp
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, &lp)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		pkg, err := typecheckListed(t, index)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheckListed(t *listedPackage, index map[string]*listedPackage) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := ExportDataImporter(fset, func(path string) (string, error) {
		if mapped, ok := t.ImportMap[path]; ok {
			path = mapped
		}
		dep, ok := index[path]
		if !ok || dep.Export == "" {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return dep.Export, nil
	})
	info := NewInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", envOr("GOARCH", "amd64"))}
	pkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

// ExportDataImporter returns a types importer that reads gc export data,
// resolving each import path to an export file via resolve. The "unsafe"
// pseudo-package is handled specially, as the gc importer requires.
func ExportDataImporter(fset *token.FileSet, resolve func(path string) (string, error)) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
