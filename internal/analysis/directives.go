package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive syntax:
//
//	//proxlint:allow analyzer1,analyzer2 -- rationale
//
// A directive suppresses matching diagnostics reported on the same line,
// or — when the directive occupies a line of its own — on the line
// directly below it. The rationale after " -- " is mandatory: the whole
// point of the allowlist is that every sanctioned bypass of the oracle
// discipline is greppable (`grep -rn proxlint:allow`) together with its
// justification.
//
// A directive that suppresses nothing is itself an error: allow-lists rot
// in exactly one direction (the violation is refactored away, the
// directive stays and silently licenses the next real violation on that
// line). Staleness is judged only when every analyzer the directive
// names actually ran — a partial run (-floatcmp, or a single-analyzer
// test harness) says nothing about the directives aimed at the others.
const directivePrefix = "proxlint:allow"

// directive is one parsed, well-formed //proxlint:allow comment.
type directive struct {
	pos      token.Pos
	position token.Position
	names    []string // analyzer names, "all" allowed
	line     int      // the line the directive covers
	used     bool     // suppressed at least one diagnostic this run
}

type directiveIndex struct {
	directives []*directive
	// byLine maps filename:line to the directives covering that line.
	byLine map[string][]*directive
}

func (ix *directiveIndex) allows(d Diagnostic) bool {
	key := d.Position.Filename + ":" + itoa(d.Position.Line)
	allowed := false
	for _, dir := range ix.byLine[key] {
		for _, n := range dir.names {
			if n == d.Analyzer || n == "all" {
				dir.used = true
				allowed = true
			}
		}
	}
	return allowed
}

// stale returns a diagnostic for every directive that provably suppressed
// nothing: all its named analyzers were in this run's set (so the absence
// of a suppression is meaningful), and no diagnostic on its line matched.
// "all" directives are exempt — their scope can never be fully judged by
// one run.
func (ix *directiveIndex) stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range ix.directives {
		if dir.used {
			continue
		}
		judged := true
		for _, n := range dir.names {
			if n == "all" || !ran[n] {
				judged = false
				break
			}
		}
		if !judged {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Position: dir.position,
			Analyzer: "proxlint",
			Message: "stale //proxlint:allow " + strings.Join(dir.names, ",") +
				" directive: it suppresses no diagnostic; delete it so it cannot license a future violation",
		})
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// parseDirectives scans every comment in the files, building the
// suppression index and reporting malformed directives (missing analyzer
// list or missing rationale) as diagnostics.
func parseDirectives(fset *token.FileSet, files []*ast.File) (*directiveIndex, []Diagnostic) {
	ix := &directiveIndex{byLine: make(map[string][]*directive)}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				names, rationale, found := strings.Cut(text, "--")
				names = strings.TrimSpace(names)
				if !found || strings.TrimSpace(rationale) == "" || names == "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Position: pos,
						Analyzer: "proxlint",
						Message:  "malformed //proxlint:allow directive: want \"//proxlint:allow <analyzers> -- <rationale>\"",
					})
					continue
				}
				// A directive on its own line covers the next line; a
				// trailing directive covers its own line.
				line := pos.Line
				if isOwnLine(fset, f, c) {
					line++
				}
				dir := &directive{pos: c.Pos(), position: pos, line: line}
				for _, n := range strings.Split(names, ",") {
					dir.names = append(dir.names, strings.TrimSpace(n))
				}
				sort.Strings(dir.names)
				ix.directives = append(ix.directives, dir)
				key := pos.Filename + ":" + itoa(line)
				ix.byLine[key] = append(ix.byLine[key], dir)
			}
		}
	}
	return ix, bad
}

// isOwnLine reports whether the comment is the first token on its line.
func isOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// If any declaration or statement starts on the same line before the
	// comment, the comment is trailing. Checking the column is enough for
	// gofmt-ed code: a trailing comment never starts at the line's first
	// non-blank column unless nothing precedes it. We approximate by
	// scanning the file's tokens via positions of all nodes would be
	// costly; instead, treat comments starting at column 1..8 that are
	// not preceded by code as own-line. A simpler exact rule: a trailing
	// comment always follows some node that ends on the same line.
	var trailing bool
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || trailing {
			return false
		}
		if n.End() <= c.Pos() && fset.Position(n.End()).Line == pos.Line {
			// Some code ends on the comment's line before it.
			if _, isFile := n.(*ast.File); !isFile {
				trailing = true
			}
		}
		return n.Pos() < c.Pos()
	})
	return !trailing
}
