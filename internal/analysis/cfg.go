package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// CFG is a per-function control-flow graph over go/ast, the substrate of
// the dataflow engine in dataflow.go. Each basic block holds the
// statements and condition expressions that execute straight-line, in
// order; edges follow every branch, loop back-edge, switch dispatch, and
// goto. The granularity is deliberately statement-level (not SSA): the
// taint engine re-walks each node's sub-expressions itself, and
// statement-level blocks keep positions exact for diagnostics.
//
// Modeling choices, all conservative for forward may-analyses:
//
//   - panic(...) and return end a block with no successor.
//   - defer bodies are treated as executing at the defer statement (the
//     latest point at which the deferred values are known to be live).
//   - A function literal is a single opaque node; the dataflow engine
//     analyzes literal bodies as separate functions.
//   - select/switch dispatch edges ignore case-order side conditions: every
//     case is a successor of the head.
type CFG struct {
	// Blocks in allocation order; Blocks[0] is the entry block.
	Blocks []*Block
}

// Block is one basic block.
type Block struct {
	Index int
	// Nodes are the straight-line statements and branch-condition
	// expressions of the block, in execution order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// String renders the graph compactly for tests and debugging:
// "0->[1 2] 1->[3] ...".
func (c *CFG) String() string {
	var b strings.Builder
	for _, blk := range c.Blocks {
		if blk.Index > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d->[", blk.Index)
		for i, s := range blk.Succs {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", s.Index)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*labelInfo{}}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	return b.cfg
}

// labelInfo tracks one label: the block a goto jumps to, plus the break
// and continue targets while the labeled statement is being built.
type labelInfo struct {
	target          *Block // jump target of `goto L` (start of the labeled stmt)
	breakTo, contTo *Block // non-nil only while inside the labeled loop/switch
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil while the builder is in
	// unreachable code (after return/panic/branch).
	cur *Block
	// breakTo / contTo are the innermost unlabeled break/continue targets.
	breakTo, contTo *Block
	labels          map[string]*labelInfo
	// pendingLabel is the label naming the next loop/switch statement.
	pendingLabel *labelInfo
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge records a control transfer from -> to (no-op when from is nil,
// i.e. unreachable).
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startFrom begins a new block reached from the current one.
func (b *cfgBuilder) startFrom(from *Block) *Block {
	blk := b.newBlock()
	b.edge(from, blk)
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil && !isLabeled(s) {
		// Unreachable code still gets a block of its own so every node
		// appears in the graph (diagnostics can anchor there), but no
		// edge leads in.
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur = nil
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assign, Decl, IncDec, Send, Defer, Go, ... — straight-line.
		b.add(s)
	}
}

func isLabeled(s ast.Stmt) bool {
	_, ok := s.(*ast.LabeledStmt)
	return ok
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	li := b.labels[s.Label.Name]
	if li == nil {
		li = &labelInfo{}
		b.labels[s.Label.Name] = li
	}
	if li.target == nil {
		li.target = b.newBlock()
	}
	b.edge(b.cur, li.target)
	b.cur = li.target
	b.pendingLabel = li
	b.stmt(s.Stmt)
	b.pendingLabel = nil
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	var to *Block
	switch s.Tok.String() {
	case "break":
		to = b.breakTo
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				to = li.breakTo
			}
		}
	case "continue":
		to = b.contTo
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				to = li.contTo
			}
		}
	case "goto":
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{}
			b.labels[s.Label.Name] = li
		}
		if li.target == nil {
			li.target = b.newBlock() // forward goto: block filled later
		}
		to = li.target
	case "fallthrough":
		// Handled by switchStmt; as a lone statement it is a syntax
		// error anyway, so just terminate the block.
	}
	if to != nil {
		b.edge(b.cur, to)
	}
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	after := b.newBlock()

	b.cur = b.startFrom(head)
	b.stmt(s.Body)
	b.edge(b.cur, after)

	if s.Else != nil {
		b.cur = b.startFrom(head)
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(head, after)
	}
	b.cur = after
}

// loopTargets installs break/continue targets (including for the label
// naming this loop, if any) and returns a restore function.
func (b *cfgBuilder) loopTargets(breakTo, contTo *Block) func() {
	savedB, savedC := b.breakTo, b.contTo
	b.breakTo, b.contTo = breakTo, contTo
	li := b.pendingLabel
	b.pendingLabel = nil
	if li != nil {
		li.breakTo, li.contTo = breakTo, contTo
	}
	return func() {
		b.breakTo, b.contTo = savedB, savedC
		if li != nil {
			li.breakTo, li.contTo = nil, nil
		}
	}
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.startFrom(b.cur)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	after := b.newBlock()
	if s.Cond != nil {
		b.edge(head, after)
	}
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
	} else {
		post = head
	}
	restore := b.loopTargets(after, post)

	b.cur = b.startFrom(head)
	b.stmt(s.Body)
	b.edge(b.cur, post)
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	}
	restore()
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	// The ranged expression is evaluated once, before the loop.
	b.add(s.X)
	head := b.startFrom(b.cur)
	// The RangeStmt node stands for the per-iteration key/value
	// assignment; the dataflow engine interprets it as such. A shallow
	// copy with an emptied body goes into the graph so that walking the
	// head node never re-traverses the loop body, whose statements live
	// in their own blocks.
	iter := *s
	iter.Body = &ast.BlockStmt{Lbrace: s.Body.Lbrace, Rbrace: s.Body.Lbrace}
	head.Nodes = append(head.Nodes, &iter)
	after := b.newBlock()
	b.edge(head, after)
	restore := b.loopTargets(after, head)

	b.cur = b.startFrom(head)
	b.stmt(s.Body)
	b.edge(b.cur, head)
	restore()
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	after := b.newBlock()
	restore := b.loopTargets(after, b.contTo)
	b.switchBody(head, after, s.Body, func(cc *ast.CaseClause, blk *Block) {
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
	})
	restore()
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.cur
	after := b.newBlock()
	restore := b.loopTargets(after, b.contTo)
	b.switchBody(head, after, s.Body, func(cc *ast.CaseClause, blk *Block) {
		// Each case re-binds the type-switch variable; the Assign
		// statement node carries that def into the case block.
		blk.Nodes = append(blk.Nodes, s.Assign)
	})
	restore()
	b.cur = after
}

// switchBody wires the shared case-dispatch shape of value and type
// switches: every case block is a successor of the head, fallthrough
// chains case bodies, and a missing default adds a head->after edge.
func (b *cfgBuilder) switchBody(head, after *Block, body *ast.BlockStmt, seed func(*ast.CaseClause, *Block)) {
	hasDefault := false
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, raw := range body.List {
		cc, ok := raw.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.startFrom(head)
		seed(cc, blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cc)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		// Peel a trailing fallthrough: the body flows into the next
		// case's block instead of after.
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = i+1 < len(caseBlocks)
				stmts = stmts[:n-1]
			}
		}
		b.stmtList(stmts)
		if fallsThrough {
			b.edge(b.cur, caseBlocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock()
	restore := b.loopTargets(after, b.contTo)
	for _, raw := range s.Body.List {
		cc, ok := raw.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.startFrom(head)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	restore()
	b.cur = after
}
