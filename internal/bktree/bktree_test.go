package bktree

import (
	"sort"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

// dnaDist builds an integer edit-distance function over a DNA dataset.
func dnaDist(n int, t *testing.T) (DistFunc, []string) {
	t.Helper()
	seqs, _ := datasets.DNA(n, 24, 71)
	return func(i, j int) int { return metric.Levenshtein(seqs[i], seqs[j]) }, seqs
}

func TestRangeMatchesBruteForce(t *testing.T) {
	n := 60
	dist, _ := dnaDist(n, t)
	tree := Build(n, dist)
	if tree.Len() != n {
		t.Fatalf("Len = %d", tree.Len())
	}
	for _, q := range []int{0, 7, 33, 59} {
		for _, r := range []int{0, 2, 5, 10} {
			got := tree.Range(q, r)
			want := map[int]int{}
			for x := 0; x < n; x++ {
				if d := dist(q, x); d <= r {
					want[x] = d
				}
			}
			if len(got) != len(want) {
				t.Fatalf("q=%d r=%d: %d results, want %d", q, r, len(got), len(want))
			}
			for _, res := range got {
				if wd, ok := want[res.ID]; !ok || wd != res.Dist {
					t.Fatalf("q=%d r=%d: wrong result %+v", q, r, res)
				}
			}
			if !sort.SliceIsSorted(got, func(a, b int) bool {
				if got[a].Dist != got[b].Dist {
					return got[a].Dist < got[b].Dist
				}
				return got[a].ID < got[b].ID
			}) {
				t.Fatal("results unsorted")
			}
		}
	}
}

func TestNNMatchesBruteForce(t *testing.T) {
	n := 50
	dist, _ := dnaDist(n, t)
	tree := Build(n, dist)
	for _, q := range []int{0, 13, 49} {
		got := tree.NN(q, 4)
		if len(got) != 4 {
			t.Fatalf("q=%d: %d results", q, len(got))
		}
		// Verify by distance multiset: ties in integer edit distance are
		// common, so compare the distance values, not the ids.
		var all []int
		for x := 0; x < n; x++ {
			if x != q {
				all = append(all, dist(q, x))
			}
		}
		sort.Ints(all)
		for i, res := range got {
			if res.Dist != all[i] {
				t.Fatalf("q=%d: NN[%d].Dist = %d, want %d", q, i, res.Dist, all[i])
			}
		}
	}
}

func TestNNPrunes(t *testing.T) {
	n := 200
	dist, _ := dnaDist(n, t)
	tree := Build(n, dist)
	before := tree.Calls()
	tree.NN(5, 3)
	queryCalls := tree.Calls() - before
	if queryCalls >= int64(n) {
		t.Fatalf("NN query made %d calls — no pruning over a linear scan", queryCalls)
	}
}

func TestDuplicateDistanceChaining(t *testing.T) {
	// A degenerate metric where many pairs collide at distance 0 and 1.
	vals := []int{0, 0, 1, 1, 1}
	dist := func(i, j int) int { return abs(vals[i] - vals[j]) }
	tree := Build(5, dist)
	got := tree.Range(0, 0)
	if len(got) != 2 { // objects 0 and 1 both at distance 0
		t.Fatalf("Range(0,0) = %v, want the two colliding objects", got)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	tree := New(func(i, j int) int { return 0 })
	if got := tree.Range(0, 5); got != nil {
		t.Fatalf("empty tree returned %v", got)
	}
	tree.Add(0)
	if got := tree.Range(0, 0); len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("single-node range = %v", got)
	}
}
