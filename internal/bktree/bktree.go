// Package bktree implements a Burkhard–Keller tree (Burkhard & Keller,
// CACM 1973) — the discrete-metric index the paper's related-work section
// lists among the pivot-based structures (Section 6.1). A BK-tree indexes
// objects under an *integer-valued* metric (classically edit distance):
// each node's children are bucketed by their exact distance to the node,
// and a range query recurses only into buckets within the triangle-
// inequality window [d−r, d+r].
//
// Like the other index baselines, the BK-tree pays construction distance
// calls up front and cannot exploit distances resolved during the workload
// — the contrast the ext6 experiment measures against the Session.
package bktree

import "sort"

// DistFunc returns the integer distance between two objects of the
// universe. It must satisfy the metric axioms.
type DistFunc func(i, j int) int

// Tree is a BK-tree over objects 0..n-1.
type Tree struct {
	dist  DistFunc
	root  *node
	size  int
	calls int64
}

type node struct {
	id       int
	children map[int]*node // distance-to-id -> subtree
}

// New returns an empty BK-tree using dist.
func New(dist DistFunc) *Tree {
	return &Tree{dist: dist}
}

// Build constructs a tree over all n objects in id order.
func Build(n int, dist DistFunc) *Tree {
	t := New(dist)
	for i := 0; i < n; i++ {
		t.Add(i)
	}
	return t
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// Calls returns the number of distance evaluations spent so far
// (construction and queries combined).
func (t *Tree) Calls() int64 { return t.calls }

func (t *Tree) d(i, j int) int {
	t.calls++
	return t.dist(i, j)
}

// Add inserts an object. Duplicates (distance 0 to an existing node) are
// chained into the 0-bucket, preserving them for queries.
func (t *Tree) Add(id int) {
	t.size++
	if t.root == nil {
		t.root = &node{id: id}
		return
	}
	cur := t.root
	for {
		dd := t.d(id, cur.id)
		if cur.children == nil {
			cur.children = make(map[int]*node)
		}
		next, ok := cur.children[dd]
		if !ok {
			cur.children[dd] = &node{id: id}
			return
		}
		cur = next
	}
}

// Result is one query answer.
type Result struct {
	ID   int
	Dist int
}

// Range returns every indexed object within distance r of the query
// object (the query itself included if indexed), sorted by (dist, id).
func (t *Tree) Range(query, r int) []Result {
	var out []Result
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		dd := t.d(query, n.id)
		if dd <= r {
			out = append(out, Result{ID: n.id, Dist: dd})
		}
		for key, child := range n.children {
			if key >= dd-r && key <= dd+r {
				walk(child)
			}
		}
	}
	walk(t.root)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// NN returns the k nearest indexed objects to the query object (excluding
// the query itself), using best-first pruning with the current k-th
// distance as the shrinking radius.
func (t *Tree) NN(query, k int) []Result {
	var best []Result
	worst := func() int {
		if len(best) < k {
			return 1 << 30
		}
		return best[len(best)-1].Dist
	}
	insert := func(r Result) {
		best = append(best, r)
		sort.Slice(best, func(a, b int) bool {
			if best[a].Dist != best[b].Dist {
				return best[a].Dist < best[b].Dist
			}
			return best[a].ID < best[b].ID
		})
		if len(best) > k {
			best = best[:k]
		}
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		dd := t.d(query, n.id)
		if n.id != query {
			insert(Result{ID: n.id, Dist: dd})
		}
		// Visit children nearest-bucket-first so the radius shrinks early.
		keys := make([]int, 0, len(n.children))
		for key := range n.children {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool {
			da, db := abs(keys[a]-dd), abs(keys[b]-dd)
			if da != db {
				return da < db
			}
			return keys[a] < keys[b]
		})
		for _, key := range keys {
			if abs(key-dd) <= worst() {
				walk(n.children[key])
			}
		}
	}
	walk(t.root)
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
