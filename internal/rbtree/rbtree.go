// Package rbtree implements a left-leaning red–black binary search tree
// keyed by int with float64 values.
//
// It was the Tri Scheme's original adjacency substrate (Section 4.2 of
// the paper stores each node's adjacency in a balanced BST); the partial
// graph has since moved to a flat CSR layout (internal/pgraph/csr.go) and
// this package now serves as the independently implemented reference the
// differential fuzz tests check the flat store against, and as a sorted
// int→float64 dictionary wherever one is needed.
package rbtree

import (
	"math/bits"
	"sync"
)

const (
	red   = true
	black = false
)

type node struct {
	key         int
	value       float64
	left, right *node
	color       bool // color of the link from the parent
}

// Tree is a sorted map from int keys to float64 values.
// The zero value is an empty tree ready for use.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree. Equivalent to &Tree{}; provided for symmetry
// with the other substrate packages.
func New() *Tree { return &Tree{} }

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under key and whether it is present.
func (t *Tree) Get(key int) (float64, bool) {
	x := t.root
	for x != nil {
		switch {
		case key < x.key:
			x = x.left
		case key > x.key:
			x = x.right
		default:
			return x.value, true
		}
	}
	return 0, false
}

// Contains reports whether key is present.
func (t *Tree) Contains(key int) bool {
	_, ok := t.Get(key)
	return ok
}

// Put inserts key with value, replacing any existing value.
func (t *Tree) Put(key int, value float64) {
	t.root = t.put(t.root, key, value)
	t.root.color = black
}

func (t *Tree) put(h *node, key int, value float64) *node {
	if h == nil {
		t.size++
		return &node{key: key, value: value, color: red}
	}
	switch {
	case key < h.key:
		h.left = t.put(h.left, key, value)
	case key > h.key:
		h.right = t.put(h.right, key, value)
	default:
		h.value = value
	}
	return fixUp(h)
}

// Delete removes key if present and reports whether it was removed.
func (t *Tree) Delete(key int) bool {
	if !t.Contains(key) {
		return false
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.color = red
	}
	t.root = t.del(t.root, key)
	if t.root != nil {
		t.root.color = black
	}
	t.size--
	return true
}

func (t *Tree) del(h *node, key int) *node {
	if key < h.key {
		if !isRed(h.left) && h.left != nil && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.del(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if key == h.key && h.right == nil {
			return nil
		}
		if !isRed(h.right) && h.right != nil && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if key == h.key {
			m := min(h.right)
			h.key, h.value = m.key, m.value
			h.right = deleteMin(h.right)
		} else {
			h.right = t.del(h.right, key)
		}
	}
	return fixUp(h)
}

func min(x *node) *node {
	for x.left != nil {
		x = x.left
	}
	return x
}

func deleteMin(h *node) *node {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

// Min returns the smallest key. ok is false when the tree is empty.
func (t *Tree) Min() (key int, ok bool) {
	if t.root == nil {
		return 0, false
	}
	return min(t.root).key, true
}

// Max returns the largest key. ok is false when the tree is empty.
func (t *Tree) Max() (key int, ok bool) {
	if t.root == nil {
		return 0, false
	}
	x := t.root
	for x.right != nil {
		x = x.right
	}
	return x.key, true
}

// Ascend calls fn for every key/value pair in increasing key order until fn
// returns false.
func (t *Tree) Ascend(fn func(key int, value float64) bool) {
	ascend(t.root, fn)
}

func ascend(x *node, fn func(int, float64) bool) bool {
	if x == nil {
		return true
	}
	if !ascend(x.left, fn) {
		return false
	}
	if !fn(x.key, x.value) {
		return false
	}
	return ascend(x.right, fn)
}

// Keys returns all keys in increasing order.
func (t *Tree) Keys() []int {
	out := make([]int, 0, t.size)
	t.Ascend(func(k int, _ float64) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Iterator walks the tree in increasing key order without recursion, using
// an explicit stack. Two iterators advanced in lockstep perform a
// sorted-list merge — the Tri Scheme's original intersection walk.
type Iterator struct {
	stack []*node
}

// iterPool recycles iterators so a hot loop of Iter/Next/Release walks
// allocation-free. Iter used to allocate the Iterator and grow its stack
// on every call, which dominated the profile of merge-heavy callers.
var iterPool = sync.Pool{New: func() any { return new(Iterator) }}

// Iter returns an iterator positioned before the smallest key. Call
// Release when done walking to recycle it; an unreleased iterator is
// merely garbage, never wrong.
func (t *Tree) Iter() *Iterator {
	it := iterPool.Get().(*Iterator)
	// Pre-size to the LLRB height bound, 2·lg(size+1), so pushLeft never
	// grows the stack mid-walk.
	if bound := 2*bits.Len(uint(t.size)) + 1; cap(it.stack) < bound {
		it.stack = make([]*node, 0, bound)
	}
	it.pushLeft(t.root)
	return it
}

// Release recycles the iterator. The caller must not use it afterwards.
func (it *Iterator) Release() {
	for i := range it.stack {
		it.stack[i] = nil // drop node references; the pool outlives trees
	}
	it.stack = it.stack[:0]
	iterPool.Put(it)
}

func (it *Iterator) pushLeft(x *node) {
	for x != nil {
		it.stack = append(it.stack, x)
		x = x.left
	}
}

// Next returns the next key/value pair. ok is false when exhausted.
func (it *Iterator) Next() (key int, value float64, ok bool) {
	if len(it.stack) == 0 {
		return 0, 0, false
	}
	x := it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
	it.pushLeft(x.right)
	return x.key, x.value, true
}

// --- red–black helpers ---

func isRed(x *node) bool { return x != nil && x.color == red }

func rotateLeft(h *node) *node {
	x := h.right
	h.right = x.left
	x.left = h
	x.color = h.color
	h.color = red
	return x
}

func rotateRight(h *node) *node {
	x := h.left
	h.left = x.right
	x.right = h
	x.color = h.color
	h.color = red
	return x
}

func colorFlip(h *node) {
	h.color = !h.color
	if h.left != nil {
		h.left.color = !h.left.color
	}
	if h.right != nil {
		h.right.color = !h.right.color
	}
}

func fixUp(h *node) *node {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		colorFlip(h)
	}
	return h
}

func moveRedLeft(h *node) *node {
	colorFlip(h)
	if h.right != nil && isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		colorFlip(h)
	}
	return h
}

func moveRedRight(h *node) *node {
	colorFlip(h)
	if h.left != nil && isRed(h.left.left) {
		h = rotateRight(h)
		colorFlip(h)
	}
	return h
}
