package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree reported presence")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported presence")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree reported presence")
	}
	if tr.Delete(7) {
		t.Fatal("Delete on empty tree reported removal")
	}
}

func TestPutGet(t *testing.T) {
	tr := New()
	tr.Put(5, 0.5)
	tr.Put(3, 0.3)
	tr.Put(9, 0.9)
	if got, _ := tr.Get(3); got != 0.3 {
		t.Fatalf("Get(3) = %v, want 0.3", got)
	}
	tr.Put(3, 0.33) // replace
	if got, _ := tr.Get(3); got != 0.33 {
		t.Fatalf("after replace Get(3) = %v, want 0.33", got)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", tr.Len())
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, k := range []int{8, 2, 14, 6, 1} {
		tr.Put(k, float64(k))
	}
	if k, _ := tr.Min(); k != 1 {
		t.Fatalf("Min = %d, want 1", k)
	}
	if k, _ := tr.Max(); k != 14 {
		t.Fatalf("Max = %d, want 14", k)
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	want := map[int]float64{}
	for i := 0; i < 500; i++ {
		k := rng.Intn(200)
		v := rng.Float64()
		tr.Put(k, v)
		want[k] = v
	}
	var keys []int
	tr.Ascend(func(k int, v float64) bool {
		keys = append(keys, k)
		if want[k] != v {
			t.Fatalf("key %d value = %v, want %v", k, v, want[k])
		}
		return true
	})
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Ascend produced unsorted keys")
	}
	if len(keys) != len(want) {
		t.Fatalf("Ascend yielded %d keys, want %d", len(keys), len(want))
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Put(i, 0)
	}
	n := 0
	tr.Ascend(func(k int, _ float64) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("early-stop visited %d keys, want 4", n)
	}
}

func TestIterator(t *testing.T) {
	tr := New()
	for _, k := range []int{5, 1, 9, 3, 7} {
		tr.Put(k, float64(k)*2)
	}
	it := tr.Iter()
	want := []int{1, 3, 5, 7, 9}
	for _, wk := range want {
		k, v, ok := it.Next()
		if !ok {
			t.Fatalf("iterator exhausted early, wanted key %d", wk)
		}
		if k != wk || v != float64(wk)*2 {
			t.Fatalf("iterator yielded (%d,%v), want (%d,%v)", k, v, wk, float64(wk)*2)
		}
	}
	if _, _, ok := it.Next(); ok {
		t.Fatal("iterator yielded past the end")
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	keys := []int{50, 20, 80, 10, 30, 70, 90, 25, 35}
	for _, k := range keys {
		tr.Put(k, float64(k))
	}
	for _, k := range []int{20, 90, 50} {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if tr.Contains(k) {
			t.Fatalf("key %d still present after delete", k)
		}
	}
	if tr.Len() != len(keys)-3 {
		t.Fatalf("Len() = %d, want %d", tr.Len(), len(keys)-3)
	}
	checkInvariants(t, tr)
}

func TestDeleteAllRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New()
	perm := rng.Perm(300)
	for _, k := range perm {
		tr.Put(k, float64(k))
	}
	checkInvariants(t, tr)
	for _, k := range rng.Perm(300) {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		checkInvariants(t, tr)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d after deleting all, want 0", tr.Len())
	}
}

// checkInvariants verifies BST ordering, no right-leaning red links, no
// consecutive red links, and uniform black height.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	var verify func(x *node, lo, hi int) int // returns black height
	verify = func(x *node, lo, hi int) int {
		if x == nil {
			return 1
		}
		if x.key <= lo || x.key >= hi {
			t.Fatalf("BST order violated at key %d (bounds %d..%d)", x.key, lo, hi)
		}
		if isRed(x.right) {
			t.Fatalf("right-leaning red link at key %d", x.key)
		}
		if isRed(x) && isRed(x.left) {
			t.Fatalf("consecutive red links at key %d", x.key)
		}
		lh := verify(x.left, lo, x.key)
		rh := verify(x.right, x.key, hi)
		if lh != rh {
			t.Fatalf("black height mismatch at key %d: %d vs %d", x.key, lh, rh)
		}
		if !isRed(x) {
			lh++
		}
		return lh
	}
	if tr.root != nil && isRed(tr.root) {
		t.Fatal("root is red")
	}
	verify(tr.root, -1<<62, 1<<62)
}

func TestQuickMatchesMap(t *testing.T) {
	// Property: after any sequence of puts and deletes the tree agrees with
	// a reference map and Keys() is sorted.
	f := func(ops []int16) bool {
		tr := New()
		ref := map[int]float64{}
		for _, op := range ops {
			k := int(op) % 64
			if k < 0 {
				k = -k
			}
			if op%3 == 0 {
				tr.Delete(k)
				delete(ref, k)
			} else {
				v := float64(op)
				tr.Put(k, v)
				ref[k] = v
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return sort.IntsAreSorted(tr.Keys())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]int, b.N)
	for i := range keys {
		keys[i] = rng.Int()
	}
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i], 1)
	}
}

func BenchmarkIterate(b *testing.B) {
	tr := New()
	for i := 0; i < 4096; i++ {
		tr.Put(i*7%4096, float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tr.Iter()
		for {
			if _, _, ok := it.Next(); !ok {
				break
			}
		}
	}
}

// TestIterReleaseRecycles pins the Iter allocation fix: a warm
// Iter/drain/Release cycle must not allocate, and a released-then-reused
// iterator must still walk in exact key order.
func TestIterReleaseRecycles(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Put((i*37)%211, float64(i))
	}
	walk := func() []int {
		it := tr.Iter()
		defer it.Release()
		var keys []int
		for k, _, ok := it.Next(); ok; k, _, ok = it.Next() {
			keys = append(keys, k)
		}
		return keys
	}
	want := tr.Keys()
	for round := 0; round < 3; round++ {
		got := walk()
		if len(got) != len(want) {
			t.Fatalf("round %d: %d keys, want %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: keys[%d] = %d, want %d", round, i, got[i], want[i])
			}
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		it := tr.Iter()
		for _, _, ok := it.Next(); ok; _, _, ok = it.Next() {
		}
		it.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm Iter/drain/Release allocates %v per run, want 0", allocs)
	}
}

// TestIterReleaseMidWalk releases a part-consumed iterator and checks the
// recycled one starts from the smallest key again.
func TestIterReleaseMidWalk(t *testing.T) {
	tr := New()
	for i := 0; i < 64; i++ {
		tr.Put(i, float64(i))
	}
	it := tr.Iter()
	for i := 0; i < 10; i++ {
		it.Next()
	}
	it.Release()
	it2 := tr.Iter()
	defer it2.Release()
	k, _, ok := it2.Next()
	if !ok || k != 0 {
		t.Fatalf("recycled iterator first key = %d (ok=%v), want 0", k, ok)
	}
}
