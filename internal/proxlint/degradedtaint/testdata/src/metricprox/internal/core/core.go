// Package core is a shape-faithful fake of the session layer: Dist falls
// back to the bounds-midpoint estimate, DistErr never estimates. The
// analyzer must discover Dist's "degraded" fact on its own.
package core

import "errors"

// Session answers distance queries against a budgeted oracle.
type Session struct{ calls int }

// estimate returns the bounds midpoint: a degraded answer.
func (s *Session) estimate(i, j int) float64 { return 0.5 }

// resolve consults the oracle.
func (s *Session) resolve(i, j int) (float64, error) {
	if s.calls < 0 {
		return 0, errors.New("budget exhausted")
	}
	return 1, nil
}

// Dist returns the resolved distance, or the degraded estimate when the
// oracle is exhausted.
func (s *Session) Dist(i, j int) float64 {
	d, err := s.resolve(i, j)
	if err != nil {
		return s.estimate(i, j)
	}
	return d
}

// DistErr returns the resolved distance or the error; it never degrades.
func (s *Session) DistErr(i, j int) (float64, error) {
	return s.resolve(i, j)
}
