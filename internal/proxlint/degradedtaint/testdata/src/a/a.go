package a

import (
	"metricprox/internal/cachestore"
	"metricprox/internal/core"
	"metricprox/internal/pgraph"
	"metricprox/internal/service/api"
)

// commitEstimate commits a possibly-degraded Dist result: the "degraded"
// fact on core.Session.Dist crosses the package boundary.
func commitEstimate(s *core.Session, g *pgraph.Graph) {
	d := s.Dist(1, 2)
	g.AddEdge(1, 2, d) // want `committed as a pgraph edge weight`
}

func cacheEstimate(s *core.Session, st *cachestore.Store) {
	d := s.Dist(1, 2)
	st.Put(cachestore.Key(1, 2), d) // want `written to cachestore`
}

func wireEstimate(s *core.Session) api.DistResponse {
	d := s.Dist(1, 2)
	return api.DistResponse{D: api.WireFloat(d)} // want `converted to api.WireFloat`
}

// approx is a local estimator: the (int, int) float64 "estimate" method
// shape is the contract, wherever it lives.
type approx struct{}

func (approx) estimate(i, j int) float64 { return 0 }

func localEstimate(g *pgraph.Graph) {
	var a approx
	d := a.estimate(1, 2)
	g.AddEdge(0, 1, d) // want `committed as a pgraph edge weight`
}

// degradedWrapper earns a "degraded" fact of its own by forwarding Dist.
func degradedWrapper(s *core.Session) float64 { return s.Dist(1, 2) }

func useWrapper(s *core.Session, g *pgraph.Graph) {
	g.AddEdge(1, 2, degradedWrapper(s)) // want `committed as a pgraph edge weight`
}
