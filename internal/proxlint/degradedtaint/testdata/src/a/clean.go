package a

import (
	"metricprox/internal/cachestore"
	"metricprox/internal/core"
	"metricprox/internal/pgraph"
	"metricprox/internal/service/api"
)

// commitResolved uses the error-propagating DistErr, which never
// degrades: every sink is fine with its result.
func commitResolved(s *core.Session, g *pgraph.Graph, st *cachestore.Store) (api.DistResponse, error) {
	d, err := s.DistErr(1, 2)
	if err != nil {
		return api.DistResponse{}, err
	}
	g.AddEdge(1, 2, d)
	st.Put(cachestore.Key(1, 2), d)
	return api.DistResponse{D: api.WireFloat(d)}, nil
}

// overwritten estimates for a heuristic decision but commits only the
// resolved value.
func overwritten(s *core.Session, g *pgraph.Graph) error {
	d := s.Dist(1, 2)
	if d > 0.5 {
		resolved, err := s.DistErr(1, 2)
		if err != nil {
			return err
		}
		d = resolved
		g.AddEdge(1, 2, d)
	}
	return nil
}
