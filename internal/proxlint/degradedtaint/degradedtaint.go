// Package degradedtaint defines an analyzer that keeps degraded distance
// estimates out of durable and wire-visible state.
//
// When the fallible oracle is exhausted, core.Session.Dist (and the
// proxclient mirror) fall back to the bounds-midpoint estimate
// (lb+ub)/2 — an approximation that is fine to return to a caller that
// opted into degraded answers, but poisonous anywhere the library treats
// distances as exact: committed pgraph edges (the paper's
// output-preservation guarantee assumes committed weights are oracle
// results), cachestore writes (a cached estimate replays as truth
// forever), and api.WireFloat responses built from values the handler
// believed were resolved.
//
// The analyzer taints the result of every bounds-midpoint estimator — any
// method named "estimate" with signature func(int, int) float64 — and
// propagates with the dataflow engine. Functions that can return a
// tainted float64 export a "degraded" fact (core.Session.Dist earns one
// automatically), so the taint follows calls across package boundaries.
// Sinks:
//
//   - (pgraph.Graph).AddEdge weight arguments, and abstract AddEdge
//     methods of the same shape;
//   - any argument of a call into internal/cachestore;
//   - conversion to api.WireFloat.
//
// This is the load-bearing precursor to the weak/strong dual-oracle tier
// (ROADMAP): weak values will reuse exactly this discipline.
package degradedtaint

import (
	"go/ast"
	"go/types"

	"metricprox/internal/analysis"
	"metricprox/internal/proxlint/lintutil"
)

// Analyzer flags degraded estimate values flowing into edge commits,
// cache writes, or wire responses.
var Analyzer = &analysis.Analyzer{
	Name: "degradedtaint",
	Doc: "values from degraded bounds-midpoint estimate paths must not flow into " +
		"pgraph edge commits, cachestore writes, or api.WireFloat responses",
	Run: run,
}

const labelDegraded = "degraded"

func run(pass *analysis.Pass) error {
	fns := collectFuncs(pass)

	// Phase 1: which functions can return a degraded float64? Fixed point
	// seeded by the estimate methods themselves and by imported
	// "degraded" facts; discoveries are exported for downstream packages.
	degraded := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if degraded[fn.obj] {
				continue
			}
			if returnsDegraded(pass, fn, degraded) {
				degraded[fn.obj] = true
				pass.ExportFact(fn.obj, "degraded", "")
				changed = true
			}
		}
	}

	// Phase 2: report taint reaching a sink.
	for _, fn := range fns {
		reportFunc(pass, fn, degraded)
	}
	return nil
}

type fnInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func collectFuncs(pass *analysis.Pass) []fnInfo {
	var fns []fnInfo
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fns = append(fns, fnInfo{decl: fd, obj: obj})
		}
	}
	return fns
}

// isEstimator reports whether f is a bounds-midpoint estimator: a method
// named "estimate" with signature func(int, int) float64. The naming
// contract covers core.Session.estimate and the proxclient mirror — and
// any future estimator, which is the point of matching the shape.
func isEstimator(f *types.Func) bool {
	if f == nil || f.Name() != "estimate" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	return isBasic(sig.Params().At(0).Type(), types.Int) &&
		isBasic(sig.Params().At(1).Type(), types.Int) &&
		isBasic(sig.Results().At(0).Type(), types.Float64)
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func newTaint(pass *analysis.Pass, degraded map[*types.Func]bool) *analysis.TaintAnalysis {
	return &analysis.TaintAnalysis{
		Info: pass.TypesInfo,
		Source: func(e ast.Expr) string {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return ""
			}
			f := lintutil.Callee(pass.TypesInfo, call)
			if f == nil {
				return ""
			}
			if isEstimator(f) || degraded[f] || pass.HasFact(f, "degraded") {
				return labelDegraded
			}
			return ""
		},
	}
}

// returnsDegraded reports whether fn can return a tainted float64.
func returnsDegraded(pass *analysis.Pass, fn fnInfo, degraded map[*types.Func]bool) bool {
	found := false
	ta := newTaint(pass, degraded)
	ta.Visit = func(n ast.Node, st *analysis.TaintState) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return
		}
		for _, res := range ret.Results {
			if st.Label(res) != "" && isFloatExpr(pass.TypesInfo, res) {
				found = true
			}
		}
	}
	ta.Run(fn.decl.Body)
	return found
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isBasic(tv.Type, types.Float64)
}

// reportFunc runs the sink checks over one function.
func reportFunc(pass *analysis.Pass, fn fnInfo, degraded map[*types.Func]bool) {
	ta := newTaint(pass, degraded)
	ta.Visit = func(n ast.Node, st *analysis.TaintState) {
		ast.Inspect(n, func(sub ast.Node) bool {
			if _, ok := sub.(*ast.FuncLit); ok {
				return false
			}
			call, ok := sub.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkSinkCall(pass, st, call)
			return true
		})
	}
	ta.Run(fn.decl.Body)
}

// checkSinkCall reports tainted arguments reaching one of the three
// sinks: edge commits, cachestore calls, and WireFloat conversions.
func checkSinkCall(pass *analysis.Pass, st *analysis.TaintState, call *ast.CallExpr) {
	// Conversion to api.WireFloat.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if isWireFloat(tv.Type) && len(call.Args) == 1 && st.Label(call.Args[0]) != "" {
			pass.Reportf(call.Args[0].Pos(),
				"degraded estimate converted to api.WireFloat; a caller cannot tell it from a resolved distance — send the bound interval or an explicit degraded marker instead")
		}
		return
	}
	f := lintutil.Callee(pass.TypesInfo, call)
	if f == nil {
		return
	}
	if isAddEdge(f) {
		for _, arg := range call.Args {
			if st.Label(arg) != "" {
				pass.Reportf(arg.Pos(),
					"degraded estimate committed as a pgraph edge weight; committed edges must be oracle-resolved distances (output preservation)")
			}
		}
		return
	}
	if f.Pkg() != nil && lintutil.InCachestorePackage(f.Pkg().Path()) {
		for _, arg := range call.Args {
			if st.Label(arg) != "" {
				pass.Reportf(arg.Pos(),
					"degraded estimate written to cachestore; a cached estimate replays as an exact distance forever")
			}
		}
	}
}

// isAddEdge matches (pgraph.Graph).AddEdge and abstract AddEdge methods
// with the (int, int, float64) shape.
func isAddEdge(f *types.Func) bool {
	if f.Name() != "AddEdge" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if f.Pkg() != nil && lintutil.InPgraphPackage(f.Pkg().Path()) {
		return true
	}
	return types.IsInterface(sig.Recv().Type()) && sig.Params().Len() == 3
}

// isWireFloat reports whether t is the api.WireFloat named type.
func isWireFloat(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WireFloat" && obj.Pkg() != nil && lintutil.InAPIPackage(obj.Pkg().Path())
}
