package degradedtaint_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/degradedtaint"
)

func TestDegradedTaint(t *testing.T) {
	analyzertest.Run(t, "testdata", degradedtaint.Analyzer, "a")
}
