// Package lockheldoracle defines an analyzer that forbids oracle
// round-trips while a mutex acquired in the enclosing function is held.
//
// The PR-1 concurrency design hinges on one invariant: the SharedSession
// lock protects only in-memory bookkeeping and is never held across an
// oracle call. The oracle dominates cost (milliseconds to seconds per
// call), so a single code path that resolves a distance under the lock
// re-serialises every worker and silently erases the parallel speedup —
// without failing any test or tripping the race detector. This analyzer
// enforces the invariant mechanically: within each function it tracks
// sync.Mutex/RWMutex Lock/Unlock pairs and flags any call that can reach
// the oracle (directly, through a same-package helper, or through the
// core session API) while a lock is held. `defer mu.Unlock()` keeps the
// lock held for the remainder of the function, as at runtime.
package lockheldoracle

import (
	"go/ast"
	"go/types"

	"metricprox/internal/analysis"
	"metricprox/internal/proxlint/lintutil"
)

// Analyzer flags oracle-reaching calls made while a mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockheldoracle",
	Doc: "forbid calls that can reach the distance oracle while a sync.Mutex " +
		"or sync.RWMutex acquired in the enclosing function is still held",
	Run: run,
}

func run(pass *analysis.Pass) error {
	reach := reachability(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, reach: reach, held: map[string]ast.Expr{}}
			w.block(fd.Body.List)
		}
	}
	return nil
}

// reachability computes the set of functions declared in this package
// whose bodies can reach an oracle round-trip: directly via a
// metric-space-shaped Distance call or a core session entrypoint, or
// transitively through same-package callees. Function literals are folded
// into their enclosing declaration, which over-approximates (a closure
// may run after the lock is released) but matches how closures are used
// here: inner loops invoked synchronously.
func reachability(pass *analysis.Pass) map[*types.Func]bool {
	type fn struct {
		obj   *types.Func
		body  *ast.BlockStmt
		calls []*types.Func
		seed  bool
	}
	var fns []*fn
	byObj := make(map[*types.Func]*fn)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			f := &fn{obj: obj, body: fd.Body}
			fns = append(fns, f)
			byObj[obj] = f
		}
	}
	for _, f := range fns {
		ast.Inspect(f.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lintutil.Callee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if oracleSeed(callee) {
				f.seed = true
			} else if callee.Pkg() == pass.Pkg {
				f.calls = append(f.calls, callee)
			}
			return true
		})
	}
	reach := make(map[*types.Func]bool)
	for _, f := range fns {
		if f.seed {
			reach[f.obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if reach[f.obj] {
				continue
			}
			for _, c := range f.calls {
				if reach[c] {
					reach[f.obj] = true
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// oracleSeed reports whether calling f is, by itself, an oracle
// round-trip risk: a raw space/oracle Distance or DistanceCtx call, or a
// core session entrypoint that may resolve distances.
func oracleSeed(f *types.Func) bool {
	return lintutil.IsSpaceDistance(f) || lintutil.IsSpaceDistanceCtx(f) ||
		lintutil.IsCoreOracleEntry(f)
}

// walker performs an abstract interpretation of one function body,
// tracking which lock expressions are currently held. Branch blocks that
// end in a terminating statement (return, panic, os.Exit-style calls are
// approximated by return only) have their lock-state effects discarded:
// the fall-through path after an early `if ok { mu.Unlock(); return }`
// still holds the lock.
type walker struct {
	pass  *analysis.Pass
	reach map[*types.Func]bool
	// held maps the printed form of the lock receiver ("c.mu") to the
	// expression that acquired it.
	held map[string]ast.Expr
}

func (w *walker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.DeferStmt:
		// A deferred Unlock releases only at function exit: the lock
		// stays held for the remainder of the body, so it must not
		// change the tracked state. Any other deferred call is examined
		// for oracle reach (it will run while the lock is held if
		// nothing unlocks first — checking at the defer site is the
		// conservative approximation).
		if op, _ := classifyLockCall(w.pass.TypesInfo, s.Call); op == opNone {
			w.expr(s.Call)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.branch(s.Body.List)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.branch(e.List)
			default:
				w.stmt(e)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.branch(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		w.branch(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				w.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.GoStmt:
		// The goroutine runs concurrently; its body is analyzed as an
		// independent function (empty lock set) via the FuncLit case in
		// expr, and the spawn itself performs no oracle call.
		w.expr(s.Call.Fun)
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				w.call(n)
				return true
			case *ast.FuncLit:
				sub := &walker{pass: w.pass, reach: w.reach, held: map[string]ast.Expr{}}
				sub.block(n.Body.List)
				return false
			}
			return true
		})
	}
}

// branch analyzes a conditional block. Effects on the lock set are kept
// only when the block falls through; blocks that terminate abandon their
// effects, because execution after the branch resumes from the state at
// entry.
func (w *walker) branch(stmts []ast.Stmt) {
	saved := make(map[string]ast.Expr, len(w.held))
	for k, v := range w.held {
		saved[k] = v
	}
	w.block(stmts)
	if terminates(stmts) {
		w.held = saved
	}
}

func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// expr scans an expression for calls and function literals.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.call(n)
			return true
		case *ast.FuncLit:
			sub := &walker{pass: w.pass, reach: w.reach, held: map[string]ast.Expr{}}
			sub.block(n.Body.List)
			return false
		}
		return true
	})
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// classifyLockCall recognises Lock/RLock and Unlock/RUnlock calls on a
// sync.Mutex/RWMutex, returning the operation and the printed form of the
// lock receiver ("c.mu") used as the held-set key.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	f := lintutil.SelectedFunc(info, sel)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return opNone, ""
	}
	switch f.Name() {
	case "Lock", "RLock":
		return opLock, types.ExprString(sel.X)
	case "Unlock", "RUnlock":
		return opUnlock, types.ExprString(sel.X)
	}
	return opNone, ""
}

// call applies lock effects or reports an oracle-reaching call under a
// held lock.
func (w *walker) call(call *ast.CallExpr) {
	switch op, key := classifyLockCall(w.pass.TypesInfo, call); op {
	case opLock:
		w.held[key] = call.Fun
		return
	case opUnlock:
		delete(w.held, key)
		return
	}
	if len(w.held) == 0 {
		return
	}
	callee := lintutil.Callee(w.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if oracleSeed(callee) || (callee.Pkg() == w.pass.Pkg && w.reach[callee]) {
		for lock := range w.held {
			w.pass.Reportf(call.Pos(),
				"call to %s may reach the distance oracle while %q is held: release the lock around oracle round-trips (decide under the lock, resolve unlocked), or annotate with //proxlint:allow lockheldoracle -- <why>",
				callee.Name(), lock)
			break
		}
	}
}
