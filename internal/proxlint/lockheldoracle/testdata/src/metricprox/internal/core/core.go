// Package core is a stub of the session layer whose entrypoints the
// lockheldoracle analyzer treats as oracle-reaching.
package core

// Session mirrors the real session API surface.
type Session struct{}

func (s *Session) Dist(i, j int) float64              { return 0 }
func (s *Session) Less(i, j, k, l int) bool           { return false }
func (s *Session) LessThan(i, j int, c float64) bool  { return false }
func (s *Session) Known(i, j int) (float64, bool)     { return 0, false }
func (s *Session) Bounds(i, j int) (float64, float64) { return 0, 1 }
func (s *Session) Bootstrap(landmarks []int) int64    { return 0 }

// Error-propagating variants (fallible-oracle subsystem).
func (s *Session) DistErr(i, j int) (float64, error)           { return 0, nil }
func (s *Session) LessErr(i, j, k, l int) (bool, error)        { return false, nil }
func (s *Session) OracleErr() error                            { return nil }
func (s *Session) BootstrapErr(landmarks []int) (int64, error) { return 0, nil }
