// Package b exercises the lockheldoracle analyzer: oracle-reaching calls
// under a held sync.Mutex/RWMutex must be flagged; calls after release,
// in goroutine bodies, or on non-reaching methods must not.
package b

import (
	"context"
	"sync"

	"metricprox/internal/core"
)

type space struct{ n int }

func (s *space) Len() int                  { return s.n }
func (s *space) Distance(i, j int) float64 { return 0 }

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	s  *core.Session
	sp *space
}

func directUnderLock(g *guarded) float64 {
	g.mu.Lock()
	d := g.s.Dist(1, 2) // want `call to Dist may reach the distance oracle while "g\.mu" is held`
	g.mu.Unlock()
	return d
}

func rawSpaceUnderLock(g *guarded) float64 {
	g.rw.RLock()
	d := g.sp.Distance(1, 2) // want `call to Distance may reach the distance oracle while "g\.rw" is held`
	g.rw.RUnlock()
	return d
}

// helper reaches the oracle transitively; callers holding a lock must be
// flagged at the helper call site.
func helper(g *guarded) float64 { return g.s.Dist(3, 4) }

func transitiveUnderLock(g *guarded) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return helper(g) // want `call to helper may reach the distance oracle while "g\.mu" is held`
}

func unlockFirst(g *guarded) float64 {
	g.mu.Lock()
	if w, ok := g.s.Known(1, 2); ok {
		g.mu.Unlock()
		return w
	}
	g.mu.Unlock()
	return g.s.Dist(1, 2) // resolved with the lock released: fine
}

func earlyReturnKeepsHeld(g *guarded) float64 {
	g.mu.Lock()
	if w, ok := g.s.Known(1, 2); ok {
		g.mu.Unlock()
		return w
	}
	d := g.s.Dist(1, 2) // want `call to Dist may reach the distance oracle while "g\.mu" is held`
	g.mu.Unlock()
	return d
}

func deferKeepsHeld(g *guarded) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.s.Dist(1, 2) // want `call to Dist may reach the distance oracle while "g\.mu" is held`
}

func bookkeepingUnderLockIsFine(g *guarded) (float64, float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	lb, ub := g.s.Bounds(1, 2) // Bounds never calls the oracle
	return lb, ub
}

func goroutineBodyStartsUnlocked(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = g.s.Dist(1, 2) // runs concurrently, not under this lock
	}()
}

func allowlisted(g *guarded) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	//proxlint:allow lockheldoracle -- bootstrap is a setup phase, not a hot path
	return g.s.Bootstrap(nil)
}

func differentLockReleased(g *guarded) float64 {
	g.mu.Lock()
	g.mu.Unlock()
	g.rw.Lock()
	d := g.s.Dist(5, 6) // want `call to Dist may reach the distance oracle while "g\.rw" is held`
	g.rw.Unlock()
	return d
}

// fallibleSpace is the context-aware oracle shape: raw DistanceCtx calls
// are oracle round-trips just like Distance.
type fallibleSpace struct{ n int }

func (f *fallibleSpace) Len() int { return f.n }
func (f *fallibleSpace) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	return 0, nil
}

func rawFallibleUnderLock(g *guarded, fo *fallibleSpace) (float64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return fo.DistanceCtx(context.Background(), 1, 2) // want `call to DistanceCtx may reach the distance oracle while "g\.mu" is held`
}

func errVariantUnderLock(g *guarded) (float64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.s.DistErr(1, 2) // want `call to DistErr may reach the distance oracle while "g\.mu" is held`
}

func errVariantAfterUnlock(g *guarded) (bool, error) {
	g.mu.Lock()
	_ = g.s.OracleErr() // error inspection is bookkeeping, never an oracle call
	g.mu.Unlock()
	return g.s.LessErr(1, 2, 3, 4) // resolved with the lock released: fine
}
