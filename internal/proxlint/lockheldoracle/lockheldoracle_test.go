package lockheldoracle_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/lockheldoracle"
)

func TestLockHeldOracle(t *testing.T) {
	analyzertest.Run(t, "testdata", lockheldoracle.Analyzer, "b")
}
