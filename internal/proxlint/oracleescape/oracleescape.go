// Package oracleescape defines an analyzer that forbids resolving
// distances outside the session layer.
//
// The library's entire cost accounting — Stats.OracleCalls, the bound
// learning in the UPDATE step, the persistent cache — assumes that every
// expensive distance resolution flows through core.Session / core.View.
// A single stray metric.Oracle.Distance or metric.Space.Distance call in
// an algorithm silently breaks the paper's call-count guarantees while
// producing correct answers, which is exactly the kind of bug code review
// misses. The same goes for the fallible variant: a raw DistanceCtx call
// skips the session's memoisation, bound learning, and retry accounting
// alike. This analyzer makes the channel discipline mechanical: any
// metric-space-shaped Distance or DistanceCtx call (or method-value
// reference) outside the oracle transport chain (internal/metric,
// internal/faultmetric, internal/resilient), internal/core, a _test.go
// file, or an explicit //proxlint:allow oracleescape directive is a lint
// error.
//
// The service layer (internal/service) gets a second, stricter rule: the
// daemon's weak-oracle contract is that raw resolved distances cross the
// wire only through the audited Dist* endpoints (handleDist,
// handleDistIfLess, handleDistBatch — every other endpoint answers with
// comparison bits, bounds, or whole-problem results). So inside a
// package whose import path ends in internal/service, any call to — or
// method value of — a distance-valued core-session method (Dist,
// DistErr, Known, DistIfLess, DistIfLessErr) outside a function whose
// name starts with "handleDist" is flagged, keeping "which responses can
// contain oracle values" a greppable, mechanically enforced property.
package oracleescape

import (
	"go/ast"
	"go/types"
	"strings"

	"metricprox/internal/analysis"
	"metricprox/internal/proxlint/lintutil"
)

// Analyzer flags distance resolutions that bypass the session layer.
var Analyzer = &analysis.Analyzer{
	Name: "oracleescape",
	Doc: "forbid metric-space-shaped Distance / DistanceCtx calls outside the " +
		"oracle transport chain, internal/core, tests, and the explicit allowlist; " +
		"in internal/service, confine distance-valued session reads to the audited handleDist* endpoints",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if lintutil.InOracleLayer(path) || lintutil.InCorePackage(path) {
		return nil
	}
	inService := lintutil.InServicePackage(path)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		// Selectors that are the callee of a call expression report as
		// calls; any other reference to the method is a method value
		// being passed around, which escapes just the same.
		callFuns := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					callFuns[sel] = true
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := lintutil.SelectedFunc(pass.TypesInfo, sel)
			if !lintutil.IsSpaceDistance(f) && !lintutil.IsSpaceDistanceCtx(f) {
				return true
			}
			recv := receiverTypeString(pass.TypesInfo, sel)
			if callFuns[sel] {
				pass.Reportf(sel.Sel.Pos(),
					"call to (%s).%s bypasses the session layer: resolve distances through core.Session/core.View so OracleCalls accounting and bound learning stay sound, or annotate with //proxlint:allow oracleescape -- <why>", recv, f.Name())
			} else {
				pass.Reportf(sel.Sel.Pos(),
					"method value (%s).%s escapes the session layer: pass a session-backed resolver instead, or annotate with //proxlint:allow oracleescape -- <why>", recv, f.Name())
			}
			return true
		})
		if inService {
			checkServiceAudit(pass, file, callFuns)
		}
	}
	return nil
}

// checkServiceAudit enforces the service-layer rule: distance-valued
// session reads may appear only inside the audited handleDist* handlers.
// Declarations are walked one by one so package-level initialisers are
// covered too; a closure inherits its enclosing declaration's audit
// status, which is exactly the handler-owns-its-helpers semantics the
// audit wants.
func checkServiceAudit(pass *analysis.Pass, file *ast.File, callFuns map[*ast.SelectorExpr]bool) {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "handleDist") {
			continue // audited Dist* endpoint: raw values are its contract
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := lintutil.SelectedFunc(pass.TypesInfo, sel)
			if !lintutil.IsSessionDistValued(f) {
				return true
			}
			recv := receiverTypeString(pass.TypesInfo, sel)
			if callFuns[sel] {
				pass.Reportf(sel.Sel.Pos(),
					"call to (%s).%s reads a raw oracle value inside the service layer: only the audited handleDist* endpoints may put distances in responses — route through them, or annotate with //proxlint:allow oracleescape -- <why>", recv, f.Name())
			} else {
				pass.Reportf(sel.Sel.Pos(),
					"method value (%s).%s leaks raw oracle values past the service audit: only the handleDist* endpoints may resolve distances — or annotate with //proxlint:allow oracleescape -- <why>", recv, f.Name())
			}
			return true
		})
	}
}

func receiverTypeString(info *types.Info, sel *ast.SelectorExpr) string {
	if s, ok := info.Selections[sel]; ok {
		return types.TypeString(s.Recv(), func(p *types.Package) string { return p.Name() })
	}
	return "unknown"
}
