// Package oracleescape defines an analyzer that forbids resolving
// distances outside the session layer.
//
// The library's entire cost accounting — Stats.OracleCalls, the bound
// learning in the UPDATE step, the persistent cache — assumes that every
// expensive distance resolution flows through core.Session / core.View.
// A single stray metric.Oracle.Distance or metric.Space.Distance call in
// an algorithm silently breaks the paper's call-count guarantees while
// producing correct answers, which is exactly the kind of bug code review
// misses. The same goes for the fallible variant: a raw DistanceCtx call
// skips the session's memoisation, bound learning, and retry accounting
// alike. This analyzer makes the channel discipline mechanical: any
// metric-space-shaped Distance or DistanceCtx call (or method-value
// reference) outside the oracle transport chain (internal/metric,
// internal/faultmetric, internal/resilient), internal/core, a _test.go
// file, or an explicit //proxlint:allow oracleescape directive is a lint
// error.
package oracleescape

import (
	"go/ast"
	"go/types"

	"metricprox/internal/analysis"
	"metricprox/internal/proxlint/lintutil"
)

// Analyzer flags distance resolutions that bypass the session layer.
var Analyzer = &analysis.Analyzer{
	Name: "oracleescape",
	Doc: "forbid metric-space-shaped Distance / DistanceCtx calls outside the " +
		"oracle transport chain, internal/core, tests, and the explicit allowlist",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if lintutil.InOracleLayer(path) || lintutil.InCorePackage(path) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		// Selectors that are the callee of a call expression report as
		// calls; any other reference to the method is a method value
		// being passed around, which escapes just the same.
		callFuns := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					callFuns[sel] = true
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := lintutil.SelectedFunc(pass.TypesInfo, sel)
			if !lintutil.IsSpaceDistance(f) && !lintutil.IsSpaceDistanceCtx(f) {
				return true
			}
			recv := receiverTypeString(pass.TypesInfo, sel)
			if callFuns[sel] {
				pass.Reportf(sel.Sel.Pos(),
					"call to (%s).%s bypasses the session layer: resolve distances through core.Session/core.View so OracleCalls accounting and bound learning stay sound, or annotate with //proxlint:allow oracleescape -- <why>", recv, f.Name())
			} else {
				pass.Reportf(sel.Sel.Pos(),
					"method value (%s).%s escapes the session layer: pass a session-backed resolver instead, or annotate with //proxlint:allow oracleescape -- <why>", recv, f.Name())
			}
			return true
		})
	}
	return nil
}

func receiverTypeString(info *types.Info, sel *ast.SelectorExpr) string {
	if s, ok := info.Selections[sel]; ok {
		return types.TypeString(s.Recv(), func(p *types.Package) string { return p.Name() })
	}
	return "unknown"
}
