package oracleescape_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/oracleescape"
)

func TestOracleEscape(t *testing.T) {
	analyzertest.Run(t, "testdata", oracleescape.Analyzer,
		"a",
		"metricprox/internal/core", // exempt package: no findings expected
	)
}
