package oracleescape_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/oracleescape"
)

func TestOracleEscape(t *testing.T) {
	analyzertest.Run(t, "testdata", oracleescape.Analyzer,
		"a",
		// The service layer gets the stricter audit: distance-valued
		// session reads only inside handleDist* endpoints.
		"metricprox/internal/service",
		// Exempt packages: no findings expected in the session layer or
		// anywhere along the oracle transport chain.
		"metricprox/internal/core",
		"metricprox/internal/faultmetric",
		"metricprox/internal/resilient",
	)
}
