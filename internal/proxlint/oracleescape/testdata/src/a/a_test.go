package a

import "metricprox/internal/metric"

// Test files verify algorithms against ground truth, so raw distance
// calls are allowed here: no diagnostics expected anywhere in this file.
func groundTruth(o *metric.Oracle) float64 {
	return o.Distance(1, 2)
}
