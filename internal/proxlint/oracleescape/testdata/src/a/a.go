// Package a exercises the oracleescape analyzer: metric-space-shaped
// Distance and DistanceCtx calls outside the session layer must be
// flagged unless explicitly allowlisted.
package a

import (
	"context"

	"metricprox/internal/metric"
)

func rawOracleCall(o *metric.Oracle) float64 {
	return o.Distance(1, 2) // want `call to \(\*metric\.Oracle\)\.Distance bypasses the session layer`
}

func rawSpaceCall(s metric.Space) float64 {
	return s.Distance(1, 2) // want `call to \(metric\.Space\)\.Distance bypasses the session layer`
}

func concreteSpaceCall(v *metric.Vectors) float64 {
	return v.Distance(3, 4) // want `call to \(\*metric\.Vectors\)\.Distance bypasses the session layer`
}

func methodValueEscape(o *metric.Oracle) func(int, int) float64 {
	return o.Distance // want `method value \(\*metric\.Oracle\)\.Distance escapes the session layer`
}

func inClosure(s metric.Space) func(int) float64 {
	return func(x int) float64 {
		return s.Distance(0, x) // want `call to \(metric\.Space\)\.Distance bypasses the session layer`
	}
}

func allowlisted(o *metric.Oracle) float64 {
	//proxlint:allow oracleescape -- index construction measures its own calls
	return o.Distance(1, 2)
}

func allowlistedTrailing(o *metric.Oracle) float64 {
	return o.Distance(1, 2) //proxlint:allow oracleescape -- baseline measurement
}

func rawFallibleCall(o *metric.Oracle) (float64, error) {
	return o.DistanceCtx(context.Background(), 1, 2) // want `call to \(\*metric\.Oracle\)\.DistanceCtx bypasses the session layer`
}

func rawFallibleInterfaceCall(fo metric.FallibleOracle) (float64, error) {
	return fo.DistanceCtx(context.Background(), 1, 2) // want `call to \(metric\.FallibleOracle\)\.DistanceCtx bypasses the session layer`
}

func fallibleMethodValue(o *metric.Oracle) func(context.Context, int, int) (float64, error) {
	return o.DistanceCtx // want `method value \(\*metric\.Oracle\)\.DistanceCtx escapes the session layer`
}

func allowlistedFallible(o *metric.Oracle) (float64, error) {
	return o.DistanceCtx(context.Background(), 1, 2) //proxlint:allow oracleescape -- health probe outside accounting
}

// notASpace has a Distance method but no Len: not metric-space-shaped, so
// calls to it are fine.
type notASpace struct{}

func (notASpace) Distance(i, j int) float64 { return 0 }

func unrelatedDistance(n notASpace) float64 { return n.Distance(1, 2) }

// intDistance has the wrong signature: also fine.
type intDistance struct{}

func (intDistance) Len() int              { return 0 }
func (intDistance) Distance(i, j int) int { return 0 }
func useIntDistance(d intDistance) int    { return d.Distance(1, 2) }

// lenlessCtx has a DistanceCtx method but no Len: not oracle-shaped.
type lenlessCtx struct{}

func (lenlessCtx) DistanceCtx(ctx context.Context, i, j int) (float64, error) { return 0, nil }
func useLenlessCtx(l lenlessCtx) (float64, error) {
	return l.DistanceCtx(context.Background(), 1, 2)
}
