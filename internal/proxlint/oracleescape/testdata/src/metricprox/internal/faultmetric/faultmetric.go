// Package faultmetric is a stub of the real fault-injection layer: part
// of the oracle transport chain, so its raw distance calls are exempt by
// construction and nothing here is flagged.
package faultmetric

import (
	"context"

	"metricprox/internal/metric"
)

// Injector mirrors the real chaos wrapper.
type Injector struct{ base metric.Space }

func New(base metric.Space) *Injector { return &Injector{base: base} }

func (f *Injector) Len() int { return f.base.Len() }

func (f *Injector) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	// The wrapper's whole job is forwarding the raw call.
	return f.base.Distance(i, j), nil
}
