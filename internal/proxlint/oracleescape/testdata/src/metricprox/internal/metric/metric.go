// Package metric is a stub of the real oracle layer for analyzer tests.
package metric

import "context"

// Space mirrors the real metric.Space interface.
type Space interface {
	Len() int
	Distance(i, j int) float64
}

// FallibleOracle mirrors the real context-aware oracle interface.
type FallibleOracle interface {
	Len() int
	DistanceCtx(ctx context.Context, i, j int) (float64, error)
}

// Oracle mirrors the real call-counting oracle.
type Oracle struct{ n int }

func NewOracle(n int) *Oracle { return &Oracle{n: n} }

func (o *Oracle) Len() int { return o.n }

func (o *Oracle) Distance(i, j int) float64 { return float64(i + j) }

func (o *Oracle) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	return o.Distance(i, j), nil
}

// Vectors is a concrete space.
type Vectors struct{ Points [][]float64 }

func (v *Vectors) Len() int { return len(v.Points) }

func (v *Vectors) Distance(i, j int) float64 { return 0 }

// Internal uses are always allowed: this package IS the oracle layer.
func internalUse(s Space) float64 { return s.Distance(0, 1) }
