// Package service is a stub of the daemon's handler layer, exercising the
// oracleescape service rule: distance-valued session reads (Dist, DistErr,
// Known, DistIfLess, DistIfLessErr) are confined to the audited handleDist*
// endpoints; comparison bits and bounds flow freely.
package service

import "metricprox/internal/core"

// Server mirrors the real daemon.
type Server struct{}

// handleDist is an audited Dist* endpoint: the raw value is its contract.
func (s *Server) handleDist(sess *core.Session) float64 {
	d, _ := sess.DistErr(1, 2)
	return d
}

// handleDistIfLess is likewise audited.
func (s *Server) handleDistIfLess(sess *core.Session) (float64, bool) {
	d, less, _ := sess.DistIfLessErr(1, 2, 0.5)
	return d, less
}

// handleDistBatch is audited too, including inside its closures.
func (s *Server) handleDistBatch(sess *core.Session) []float64 {
	read := func(i, j int) float64 {
		d, _ := sess.DistErr(i, j)
		return d
	}
	return []float64{read(0, 1), read(1, 2)}
}

// handleLess answers one bit: fine anywhere in the service.
func (s *Server) handleLess(sess *core.Session) bool {
	less, _ := sess.LessErr(1, 2, 3, 4)
	return less
}

// handleBounds ships intervals, not resolved distances: fine.
func (s *Server) handleBounds(sess *core.Session) (float64, float64) {
	return sess.Bounds(1, 2)
}

// peekDistance is NOT an audited endpoint: raw value must be flagged.
func (s *Server) peekDistance(sess *core.Session) float64 {
	d, _ := sess.DistErr(1, 2) // want `call to \(\*core\.Session\)\.DistErr reads a raw oracle value inside the service layer`
	return d
}

// statsDebug leaks through Known just the same.
func statsDebug(sess *core.Session) float64 {
	if d, ok := sess.Known(3, 4); ok { // want `call to \(\*core\.Session\)\.Known reads a raw oracle value inside the service layer`
		return d
	}
	return 0
}

// legacyDist leaks through the legacy non-Err read.
func legacyDist(sess *core.Session) float64 {
	return sess.Dist(1, 2) // want `call to \(\*core\.Session\)\.Dist reads a raw oracle value inside the service layer`
}

// inHelperClosure: a closure outside any handleDist* declaration does not
// inherit the audit.
func inHelperClosure(sess *core.Session) func() float64 {
	return func() float64 {
		d, _, _ := sess.DistIfLessErr(1, 2, 0.5) // want `call to \(\*core\.Session\)\.DistIfLessErr reads a raw oracle value inside the service layer`
		return d
	}
}

// resolverEscape hands the method itself out of the audit.
func resolverEscape(sess *core.Session) func(int, int) (float64, error) {
	return sess.DistErr // want `method value \(\*core\.Session\)\.DistErr leaks raw oracle values past the service audit`
}

// allowlisted demonstrates the documented escape hatch.
func allowlisted(sess *core.Session) float64 {
	d, _ := sess.DistErr(1, 2) //proxlint:allow oracleescape -- startup self-check compares one distance against the cache
	return d
}

// comparisonsAreFree: bit- and bounds-valued reads never trip the audit.
func comparisonsAreFree(sess *core.Session) (bool, float64) {
	less, _ := sess.LessErr(0, 1, 2, 3)
	lb, _ := sess.Bounds(0, 1)
	return less, lb
}
