// Package core is a stub of the session layer: as the one place allowed
// to talk to the oracle, nothing in it is ever flagged.
package core

import "metricprox/internal/metric"

// Session mirrors the real session.
type Session struct{ oracle *metric.Oracle }

// Dist is the sanctioned resolution path.
func (s *Session) Dist(i, j int) float64 {
	return s.oracle.Distance(i, j)
}
