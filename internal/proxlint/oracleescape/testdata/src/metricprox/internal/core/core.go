// Package core is a stub of the session layer: as the one place allowed
// to talk to the oracle, nothing in it is ever flagged.
package core

import "metricprox/internal/metric"

// Session mirrors the real session.
type Session struct{ oracle *metric.Oracle }

// Dist is the sanctioned resolution path.
func (s *Session) Dist(i, j int) float64 {
	return s.oracle.Distance(i, j)
}

// DistErr mirrors the fallible exact-distance read.
func (s *Session) DistErr(i, j int) (float64, error) {
	return s.oracle.Distance(i, j), nil
}

// Known mirrors the already-resolved lookup: distance-valued.
func (s *Session) Known(i, j int) (float64, bool) { return 0, false }

// DistIfLessErr mirrors the conditional resolution: distance-valued.
func (s *Session) DistIfLessErr(i, j int, c float64) (float64, bool, error) {
	d := s.oracle.Distance(i, j)
	return d, d < c, nil
}

// LessErr mirrors the pair comparison: one bit, never a distance.
func (s *Session) LessErr(i, j, k, l int) (bool, error) { return false, nil }

// Bounds mirrors the interval read: bounds, never a resolved distance.
func (s *Session) Bounds(i, j int) (float64, float64) { return 0, 1 }
