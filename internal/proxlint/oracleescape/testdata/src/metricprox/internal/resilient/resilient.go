// Package resilient is a stub of the real retry/breaker policy layer:
// part of the oracle transport chain, so its raw distance calls are
// exempt by construction and nothing here is flagged.
package resilient

import (
	"context"

	"metricprox/internal/metric"
)

// Oracle mirrors the real policy wrapper.
type Oracle struct{ base metric.FallibleOracle }

func New(base metric.FallibleOracle) *Oracle { return &Oracle{base: base} }

func (o *Oracle) Len() int { return o.base.Len() }

func (o *Oracle) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	// Retry loops re-issue the raw fallible call.
	return o.base.DistanceCtx(ctx, i, j)
}
