// Package wireinf defines an analyzer that keeps ±Inf-capable float64s
// off the JSON wire unless they travel as api.WireFloat.
//
// Bounds in this library are routinely infinite (an unbootstrapped upper
// bound is +Inf), and encoding/json rejects infinities outright:
// json.Marshal of a raw +Inf float64 fails the whole response.
// api.WireFloat exists precisely to carry ±Inf across the wire; this
// analyzer makes its use a checked invariant instead of a convention:
//
//   - every struct field that JSON would serialise as a raw float
//     (float64/float32, directly or through slices, arrays, maps,
//     pointers, or nested structs) earns the enclosing named type a
//     "rawfloat" fact, in whatever package the type lives;
//   - inside the wire-facing packages (internal/service,
//     internal/service/api, internal/proxclient), declaring such a field
//     on a JSON-tagged struct is reported at the field;
//   - in the same packages, passing a rawfloat-carrying value (including
//     one whose type lives in another package — that is what the facts
//     are for) to json.Marshal/MarshalIndent or (*json.Encoder).Encode is
//     reported at the call.
//
// Packages outside the wire layer may marshal raw floats freely (the
// benchmark gate writes NaN-free summaries, observability traces clamp);
// their types still export facts so that wire-layer marshalling of
// imported types is caught.
package wireinf

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"metricprox/internal/analysis"
	"metricprox/internal/proxlint/lintutil"
)

// Analyzer flags raw float64s crossing service JSON marshalling.
var Analyzer = &analysis.Analyzer{
	Name: "wireinf",
	Doc: "float64 values crossing service JSON marshalling must go through " +
		"api.WireFloat so that ±Inf bounds survive the wire",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Phase 1: export "rawfloat" facts for every package-scope named
	// struct type with a JSON-visible raw float, whatever the package.
	memo := make(map[*types.Named]string)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if path := rawFloatPath(pass, named, memo); path != "" {
			pass.ExportFact(tn, "rawfloat", path)
		}
	}

	if !inWireLayer(pass.Pkg.Path()) {
		return nil
	}

	// Phase 2: report raw-float fields on JSON-tagged wire structs
	// declared here.
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || !hasJSONTag(st) {
				return true
			}
			for _, field := range st.Fields.List {
				checkFieldDecl(pass, memo, field)
			}
			return true
		})
	}

	// Phase 3: report marshalling of rawfloat-carrying values.
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isJSONMarshalCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			arg := call.Args[len(call.Args)-1] // Marshal(v) and enc.Encode(v): value last
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Type == nil {
				return true
			}
			if named, path := rawFloatNamed(pass, memo, tv.Type); named != nil {
				pass.Reportf(arg.Pos(),
					"JSON-marshalling %s, whose field %s is a raw float: ±Inf bounds fail to encode — use api.WireFloat for wire floats",
					named.Obj().Name(), path)
			}
			return true
		})
	}
	return nil
}

// inWireLayer reports whether the package is one whose JSON output
// crosses the service wire.
func inWireLayer(path string) bool {
	return lintutil.InServicePackage(path) || lintutil.InAPIPackage(path) || lintutil.InProxclientPackage(path)
}

// hasJSONTag reports whether any field of the struct carries a json tag —
// the declaration-level signal that the struct is a wire type.
func hasJSONTag(st *ast.StructType) bool {
	for _, f := range st.Fields.List {
		if f.Tag != nil && strings.Contains(f.Tag.Value, "json:") {
			return true
		}
	}
	return false
}

// checkFieldDecl reports a JSON-visible field whose type carries a raw
// float.
func checkFieldDecl(pass *analysis.Pass, memo map[*types.Named]string, field *ast.Field) {
	if len(field.Names) > 0 && !ast.IsExported(field.Names[0].Name) {
		return
	}
	if jsonSkipped(field) {
		return
	}
	tv, ok := pass.TypesInfo.Types[field.Type]
	if !ok || tv.Type == nil {
		return
	}
	if path := typeRawFloat(pass, memo, tv.Type, nil); path != "" {
		name := "embedded field"
		if len(field.Names) > 0 {
			name = field.Names[0].Name
		}
		pass.Reportf(field.Pos(),
			"wire struct field %s is a raw float (%s): ±Inf bounds fail to JSON-encode — declare it api.WireFloat", name, path)
	}
}

func jsonSkipped(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	tag, err := unquote(field.Tag.Value)
	if err != nil {
		return false
	}
	jt := reflect.StructTag(tag).Get("json")
	return jt == "-"
}

func unquote(s string) (string, error) {
	if len(s) >= 2 && s[0] == '`' && s[len(s)-1] == '`' {
		return s[1 : len(s)-1], nil
	}
	return strings.Trim(s, `"`), nil
}

// rawFloatPath computes (and memoises) the first JSON-visible raw-float
// field path inside named, "" when there is none. Cross-package named
// structs resolve through the fact table when their source is not loaded.
func rawFloatPath(pass *analysis.Pass, named *types.Named, memo map[*types.Named]string) string {
	if path, ok := memo[named]; ok {
		return path // includes the in-progress "" marker: cycles are float-free
	}
	if isWireFloat(named) {
		memo[named] = ""
		return ""
	}
	if named.Obj().Pkg() != nil && named.Obj().Pkg() != pass.Pkg {
		// Imported type: its defining package already exported the fact.
		if detail, ok := pass.FactDetail(named.Obj(), "rawfloat"); ok {
			memo[named] = detail
			return detail
		}
		// Fall through: with export data loaded we can still walk the
		// struct shape directly (standalone mode on a narrow pattern).
	}
	memo[named] = "" // cycle marker
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		// A named non-struct: raw float underlying means raw float on
		// the wire, unless it is WireFloat (checked above).
		if isRawFloat(named.Underlying()) {
			memo[named] = named.Obj().Name()
			return named.Obj().Name()
		}
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		if reflect.StructTag(st.Tag(i)).Get("json") == "-" {
			continue
		}
		if sub := typeRawFloat(pass, memo, f.Type(), nil); sub != "" {
			path := f.Name()
			if sub != "float64" && sub != "float32" {
				path = f.Name() + "." + sub
			}
			memo[named] = path
			return path
		}
	}
	return ""
}

// typeRawFloat reports the raw-float path within t as JSON serialises it,
// "" when every float is wrapped.
func typeRawFloat(pass *analysis.Pass, memo map[*types.Named]string, t types.Type, seen []types.Type) string {
	for _, s := range seen {
		if s == t {
			return ""
		}
	}
	seen = append(seen, t)
	switch t := t.(type) {
	case *types.Basic:
		if isRawFloat(t) {
			return t.Name()
		}
	case *types.Named:
		return rawFloatPath(pass, t, memo)
	case *types.Alias:
		return typeRawFloat(pass, memo, types.Unalias(t), seen)
	case *types.Pointer:
		return typeRawFloat(pass, memo, t.Elem(), seen)
	case *types.Slice:
		return typeRawFloat(pass, memo, t.Elem(), seen)
	case *types.Array:
		return typeRawFloat(pass, memo, t.Elem(), seen)
	case *types.Map:
		return typeRawFloat(pass, memo, t.Elem(), seen)
	}
	return ""
}

func isRawFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.Float32)
}

// rawFloatNamed unwraps pointers/slices around a marshalled value's type
// and returns the named struct carrying a raw float, if any.
func rawFloatNamed(pass *analysis.Pass, memo map[*types.Named]string, t types.Type) (*types.Named, string) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		case *types.Alias:
			t = types.Unalias(u)
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	if path := rawFloatPath(pass, named, memo); path != "" {
		return named, path
	}
	return nil, ""
}

// isJSONMarshalCall matches json.Marshal, json.MarshalIndent, and
// (*json.Encoder).Encode.
func isJSONMarshalCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := lintutil.Callee(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "encoding/json" {
		return false
	}
	switch f.Name() {
	case "Marshal", "MarshalIndent":
		return true
	case "Encode":
		sig, ok := f.Type().(*types.Signature)
		return ok && sig.Recv() != nil
	}
	return false
}

// isWireFloat reports whether the named type is api.WireFloat (or a
// same-named wrapper in a testdata fake of the api package).
func isWireFloat(n *types.Named) bool {
	obj := n.Obj()
	return obj.Name() == "WireFloat" && obj.Pkg() != nil && lintutil.InAPIPackage(obj.Pkg().Path())
}
