// Package stats lives outside the wire layer: declaring raw-float
// structs here is fine, but the exported "rawfloat" fact lets the wire
// layer catch itself marshalling them.
package stats

// Summary aggregates run statistics.
type Summary struct {
	Runs int     `json:"runs"`
	Mean float64 `json:"mean"`
}
