package service

import (
	"encoding/json"
	"net/http"

	"metricprox/internal/service/api"
	"metricprox/internal/stats"
)

type distResponse struct {
	D api.WireFloat `json:"d"`
}

type rawResponse struct {
	D float64 `json:"d"` // want `raw float`
}

func writeRaw(w http.ResponseWriter, d float64) error {
	return json.NewEncoder(w).Encode(rawResponse{D: d}) // want `raw float`
}

// writeImported marshals a type declared outside the wire layer: the
// cross-package "rawfloat" fact carries the verdict here.
func writeImported(w http.ResponseWriter, s stats.Summary) error {
	return json.NewEncoder(w).Encode(s) // want `raw float`
}

func marshalImported(s *stats.Summary) ([]byte, error) {
	return json.Marshal(s) // want `raw float`
}
