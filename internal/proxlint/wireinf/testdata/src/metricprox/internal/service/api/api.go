// Package api is a fake of the wire-type package: WireFloat is the
// sanctioned carrier, Interval uses it, BadStats does not.
package api

// WireFloat carries float64 values (±Inf included) across JSON.
type WireFloat float64

// Interval is the wire form of a bound pair: fully wrapped, clean.
type Interval struct {
	Lo WireFloat `json:"lo"`
	Hi WireFloat `json:"hi"`
}

// BadStats leaks a raw float onto the wire.
type BadStats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"` // want `raw float`
}
