package service

import (
	"encoding/json"
	"net/http"

	"metricprox/internal/service/api"
)

// writeDist sends every float through WireFloat: the contract done right.
func writeDist(w http.ResponseWriter, d float64) error {
	return json.NewEncoder(w).Encode(distResponse{D: api.WireFloat(d)})
}

// marshalInterval marshals a fully wrapped imported wire type.
func marshalInterval(iv api.Interval) ([]byte, error) {
	return json.Marshal(iv)
}

// countsOnly has no floats at all.
type countsOnly struct {
	Calls int `json:"calls"`
	Hits  int `json:"hits"`
}

func writeCounts(w http.ResponseWriter, c countsOnly) error {
	return json.NewEncoder(w).Encode(c)
}
