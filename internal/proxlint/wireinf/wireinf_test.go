package wireinf_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/wireinf"
)

func TestWireInf(t *testing.T) {
	analyzertest.Run(t, "testdata", wireinf.Analyzer,
		"metricprox/internal/service", "metricprox/internal/service/api")
}
