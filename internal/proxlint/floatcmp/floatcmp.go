// Package floatcmp defines an analyzer that forbids exact equality
// comparison of computed float64 values outside tests.
//
// Distances in this library are float64s produced by different code paths
// (oracle resolutions, bound arithmetic, cached replays); comparing them
// with == or != is only sound when both sides are bit-identical by
// construction. The few places that genuinely need exact comparison — the
// canonical (distance, id) tie rule and deliberate bit-exact validation —
// live in internal/fcmp, which is this analyzer's one sanctioned home.
// Everywhere else, a float equality is either a latent tie-breaking bug
// or an undocumented exactness assumption, and must be rewritten against
// internal/fcmp (TieLess, ExactEq, Eq) or annotated with
// //proxlint:allow floatcmp -- <why>.
//
// Comparisons where either operand is a compile-time constant (sentinel
// checks like `scale == 0`) are exempt: they test a value set by
// assignment, not a computed distance.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"metricprox/internal/analysis"
)

// Analyzer flags ==/!= between two computed float64 values.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= between computed float64 values outside tests and " +
		"internal/fcmp; use fcmp.TieLess/fcmp.ExactEq/fcmp.Eq instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if path := pass.Pkg.Path(); path == "metricprox/internal/fcmp" || strings.HasSuffix(path, "internal/fcmp") {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isComputedFloat(pass.TypesInfo, be.X) || !isComputedFloat(pass.TypesInfo, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"%s compares computed float64 values exactly; use fcmp.TieLess for (distance, id) ordering, fcmp.ExactEq for deliberate bit-exact checks, or fcmp.Eq for tolerance, or annotate with //proxlint:allow floatcmp -- <why>",
				be.Op)
			return true
		})
	}
	return nil
}

// isComputedFloat reports whether the expression has float64/float32 type
// and is not a compile-time constant.
func isComputedFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.Float32)
}
