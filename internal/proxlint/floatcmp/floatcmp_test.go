package floatcmp_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analyzertest.Run(t, "testdata", floatcmp.Analyzer,
		"d",
		"metricprox/internal/fcmp", // exempt package: no findings expected
	)
}
