package d

// Tests may compare floats exactly (verifying deterministic replay, cache
// hits, and ground truth): no diagnostics in this file.
func exactInTest(a, b float64) bool {
	return a == b
}
