// Package d exercises the floatcmp analyzer: exact equality between two
// computed float64 values is flagged; constant sentinels, integers, and
// allowlisted sites are not.
package d

type result struct {
	id   int
	dist float64
}

func exactEquality(a, b float64) bool {
	return a == b // want `== compares computed float64 values exactly`
}

func exactInequality(rs []result) bool {
	return rs[0].dist != rs[1].dist // want `!= compares computed float64 values exactly`
}

func sentinelZero(scale float64) float64 {
	if scale == 0 { // constant operand: a set-or-default check, not a distance comparison
		scale = 1
	}
	return scale
}

const defaultCap = 1.0

func sentinelNamedConst(c float64) bool {
	return c == defaultCap // constant operand: fine
}

func intComparison(i, j int) bool { return i == j }

func orderingIsFine(a, b float64) bool { return a < b }

func allowlisted(a, b float64) bool {
	//proxlint:allow floatcmp -- checksum identity must match bit-exactly
	return a == b
}

func float32Too(a, b float32) bool {
	return a != b // want `!= compares computed float64 values exactly`
}
