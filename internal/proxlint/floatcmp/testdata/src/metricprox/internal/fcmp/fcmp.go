// Package fcmp is the sanctioned home of exact float comparison: the
// analyzer must not flag anything here.
package fcmp

// ExactEq is a deliberate bit-exact comparison.
func ExactEq(a, b float64) bool { return a == b }

// TieLess is the canonical (distance, id) ordering.
func TieLess(d1 float64, id1 int, d2 float64, id2 int) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return id1 < id2
}
