package analyzertest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"sync"

	"metricprox/internal/analysis"
)

// stdImporter resolves standard-library imports for testdata packages
// from compiler export data, produced on demand (and cached by the go
// build cache) with `go list -deps -export`.
type stdImporter struct {
	mu      sync.Mutex
	exports map[string]string // import path -> export file
	// imp is the single underlying gc importer: it caches every package
	// it materialises, so two testdata packages importing "context" see
	// the same *types.Package (type identity across the loaded tree).
	imp types.Importer
}

func newStdImporter() *stdImporter {
	return &stdImporter{exports: make(map[string]string)}
}

func (s *stdImporter) Import(fset *token.FileSet, path string) (*types.Package, error) {
	if err := s.ensure(path); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.imp == nil {
		s.imp = analysis.ExportDataImporter(fset, func(p string) (string, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			file, ok := s.exports[p]
			if !ok {
				return "", fmt.Errorf("no export data for %q", p)
			}
			return file, nil
		})
	}
	imp := s.imp
	s.mu.Unlock()
	return imp.Import(path)
}

// ensure lists path with its dependency closure, recording export files.
func (s *stdImporter) ensure(path string) error {
	s.mu.Lock()
	_, ok := s.exports[path]
	s.mu.Unlock()
	if ok {
		return nil
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %s: %v: %s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			s.exports[p.ImportPath] = p.Export
		}
	}
	if _, ok := s.exports[path]; !ok {
		return fmt.Errorf("no export data produced for %q", path)
	}
	return nil
}
