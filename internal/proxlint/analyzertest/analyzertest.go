// Package analyzertest is a self-contained analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads small test
// packages from a testdata/src tree, runs one analyzer over them, and
// checks the reported diagnostics against `// want "regexp"` comments in
// the sources. Fake dependency packages (for example a stub
// metricprox/internal/metric) live in the same tree under their import
// path; standard-library imports are resolved from compiler export data
// via `go list -export`, so the harness needs no network access.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"metricprox/internal/analysis"
)

// Run loads each of the named packages from testdataDir/src and applies
// the analyzer, failing the test on any mismatch between reported and
// expected diagnostics.
//
// Cross-package facts work as in the real drivers: every fake dependency
// package under testdata/src is analyzed for its facts as soon as it
// loads (dependencies first, by construction of the recursive importer),
// and the shared fact table is visible while the named packages are
// checked. Fact exports are idempotent, so a package that is both a
// dependency and a named target is safe to analyze twice.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := &loader{
		srcdir:   filepath.Join(testdataDir, "src"),
		fset:     token.NewFileSet(),
		cache:    make(map[string]*entry),
		std:      newStdImporter(),
		facts:    analysis.NewFactTable(),
		analyzer: a,
	}
	for _, path := range paths {
		e, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.RunFacts(&analysis.Package{Fset: l.fset, Files: e.files, Pkg: e.pkg, Info: e.info}, []*analysis.Analyzer{a}, l.facts)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, l.fset, e.files, diags)
	}
}

type entry struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	srcdir   string
	fset     *token.FileSet
	cache    map[string]*entry
	std      *stdImporter
	facts    *analysis.FactTable
	analyzer *analysis.Analyzer
}

func (l *loader) load(path string) (*entry, error) {
	if e, ok := l.cache[path]; ok {
		if e == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return e, nil
	}
	l.cache[path] = nil // cycle marker
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	e := &entry{files: files, pkg: pkg, info: info}
	l.cache[path] = e
	// Gather the analyzer's facts immediately: importPkg recursion means
	// every dependency reaches this point before its importers, giving
	// the same deps-first fact ordering the real drivers guarantee.
	if err := analysis.GatherFacts(&analysis.Package{Fset: l.fset, Files: files, Pkg: pkg, Info: info}, []*analysis.Analyzer{l.analyzer}, l.facts); err != nil {
		return nil, fmt.Errorf("gathering facts for %s: %w", path, err)
	}
	return e, nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dirExists(filepath.Join(l.srcdir, filepath.FromSlash(path))) {
		e, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return e.pkg, nil
	}
	return l.std.Import(l.fset, path)
}

func goFilesIn(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") {
			names = append(names, de.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return names, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// --- expectation checking ---

var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range parsePatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parsePatterns extracts the sequence of quoted or backquoted regexps
// after `want`.
func parsePatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := findStringEnd(s)
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
			}
			pats = append(pats, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: malformed want clause at %q", pos, s)
		}
	}
	return pats
}

func findStringEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
