package commitonce_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/commitonce"
)

func TestCommitOnce(t *testing.T) {
	analyzertest.Run(t, "testdata", commitonce.Analyzer, "c")
}
