// Package commitonce defines an analyzer that keeps oracle round-trips
// and their bookkeeping in lockstep.
//
// Session.oracleDistanceErr (and historically oracleDistance) performs
// the raw oracle call with no accounting; Session.commitResolution
// records exactly one resolution (statistics, partial graph, bound
// scheme, persistent store). The split exists so SharedSession can
// release its lock around the round-trip — but it also means the
// compiler no longer guarantees the pairing. A path that calls the
// round-trip without committing leaks an uncounted, unlearned resolution
// (Stats.OracleCalls undercounts and the bound scheme never tightens); a
// path that commits without a round-trip double-counts. This analyzer
// requires every function that touches either side to contain exactly
// one round-trip call followed by exactly one commitResolution call.
// (A failed round-trip that commits nothing still satisfies the pairing:
// the rule is one-to-one between call sites, not executions.)
package commitonce

import (
	"go/ast"
	"go/token"

	"metricprox/internal/analysis"
	"metricprox/internal/proxlint/lintutil"
)

// Analyzer enforces the one-to-one round-trip/commitResolution pairing.
var Analyzer = &analysis.Analyzer{
	Name: "commitonce",
	Doc: "require every resolution path to pair exactly one oracle round-trip " +
		"(oracleDistance/oracleDistanceErr) with exactly one commitResolution " +
		"call, in that order",
	Run: run,
}

// roundTripNames are the raw, accounting-free oracle round-trip
// primitives. oracleDistance is the infallible original; oracleDistanceErr
// is its error-propagating successor in the fallible-oracle subsystem.
var roundTripNames = map[string]bool{
	"oracleDistance":    true,
	"oracleDistanceErr": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if roundTripNames[name] || name == "commitResolution" {
				continue // the primitives themselves
			}
			var oracleCalls, commitCalls []token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch f := lintutil.Callee(pass.TypesInfo, call); {
				case f != nil && roundTripNames[f.Name()]:
					oracleCalls = append(oracleCalls, call.Pos())
				case f != nil && f.Name() == "commitResolution":
					commitCalls = append(commitCalls, call.Pos())
				}
				return true
			})
			switch {
			case len(oracleCalls) == 0 && len(commitCalls) == 0:
				// Function does not participate in resolution.
			case len(oracleCalls) == 1 && len(commitCalls) == 1:
				if commitCalls[0] < oracleCalls[0] {
					pass.Reportf(commitCalls[0],
						"%s commits a resolution before the oracle round-trip; commitResolution must follow the round-trip so the recorded distance is the one actually resolved", name)
				}
			case len(oracleCalls) > 1 || len(commitCalls) > 1:
				pass.Reportf(fd.Name.Pos(),
					"%s contains %d oracle round-trip and %d commitResolution calls; keep exactly one pair per function so the pairing stays mechanically checkable", name, len(oracleCalls), len(commitCalls))
			case len(oracleCalls) == 1:
				pass.Reportf(oracleCalls[0],
					"%s performs an oracle round-trip without a matching commitResolution: the round-trip would be uncounted in Stats.OracleCalls and invisible to the bound scheme", name)
			default:
				pass.Reportf(commitCalls[0],
					"%s calls commitResolution without a matching oracle round-trip: committing an unresolved pair double-counts Stats.OracleCalls", name)
			}
		}
	}
	return nil
}
