// Clean resolution paths: the pairing discipline observed end to end,
// with no diagnostics expected anywhere in this file.
package c

// resolveThrough is a second canonical pairing, behind an error guard.
func (s *session) resolveThrough(i, j int) (float64, error) {
	d, err := s.oracleDistanceErr(i, j)
	if err != nil {
		return 0, err
	}
	s.commitResolution(i, j, d)
	return d, nil
}

// readsOnly touches neither primitive and is outside the rule entirely.
func (s *session) readsOnly(i, j int) (float64, bool) {
	return s.known(i, j)
}
