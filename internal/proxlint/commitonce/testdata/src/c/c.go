// Package c exercises the commitonce analyzer: every function touching
// the resolution primitives must pair exactly one oracle round-trip
// (oracleDistance or oracleDistanceErr) with exactly one
// commitResolution, round-trip first.
package c

type session struct{ calls int64 }

func (s *session) oracleDistance(i, j int) float64 { s.calls++; return float64(i + j) }

func (s *session) oracleDistanceErr(i, j int) (float64, error) { s.calls++; return float64(i + j), nil }

func (s *session) commitResolution(i, j int, d float64) {}

func (s *session) known(i, j int) (float64, bool) { return 0, false }

// goodPair is the canonical resolution path.
func (s *session) goodPair(i, j int) float64 {
	if w, ok := s.known(i, j); ok {
		return w
	}
	d := s.oracleDistance(i, j)
	s.commitResolution(i, j, d)
	return d
}

// goodFalliblePair is the canonical fallible resolution path: a failed
// round-trip commits nothing, but the call sites still pair one-to-one.
func (s *session) goodFalliblePair(i, j int) (float64, error) {
	if w, ok := s.known(i, j); ok {
		return w, nil
	}
	d, err := s.oracleDistanceErr(i, j)
	if err != nil {
		return 0, err
	}
	s.commitResolution(i, j, d)
	return d, nil
}

func (s *session) uncommitted(i, j int) float64 {
	return s.oracleDistance(i, j) // want `uncommitted performs an oracle round-trip without a matching commitResolution`
}

func (s *session) uncommittedFallible(i, j int) (float64, error) {
	return s.oracleDistanceErr(i, j) // want `uncommittedFallible performs an oracle round-trip without a matching commitResolution`
}

func (s *session) phantomCommit(i, j int) {
	s.commitResolution(i, j, 0) // want `phantomCommit calls commitResolution without a matching oracle round-trip`
}

func (s *session) committedBeforeResolved(i, j int) float64 {
	s.commitResolution(i, j, 0) // want `committedBeforeResolved commits a resolution before the oracle round-trip`
	return s.oracleDistance(i, j)
}

func (s *session) doublePair(i, j, k, l int) { // want `doublePair contains 2 oracle round-trip and 2 commitResolution calls`
	d1 := s.oracleDistance(i, j)
	s.commitResolution(i, j, d1)
	d2, _ := s.oracleDistanceErr(k, l)
	s.commitResolution(k, l, d2)
}

func (s *session) allowlisted(i, j int) float64 {
	//proxlint:allow commitonce -- replaying a persisted resolution, counted at write time
	return s.oracleDistance(i, j)
}

// unrelated functions never trip the analyzer.
func unrelated(x int) int { return x * 2 }
