// Package c exercises the commitonce analyzer: every function touching
// the resolution primitives must pair exactly one oracleDistance with
// exactly one commitResolution, round-trip first.
package c

type session struct{ calls int64 }

func (s *session) oracleDistance(i, j int) float64 { s.calls++; return float64(i + j) }

func (s *session) commitResolution(i, j int, d float64) {}

func (s *session) known(i, j int) (float64, bool) { return 0, false }

// goodPair is the canonical resolution path.
func (s *session) goodPair(i, j int) float64 {
	if w, ok := s.known(i, j); ok {
		return w
	}
	d := s.oracleDistance(i, j)
	s.commitResolution(i, j, d)
	return d
}

func (s *session) uncommitted(i, j int) float64 {
	return s.oracleDistance(i, j) // want `uncommitted calls oracleDistance without a matching commitResolution`
}

func (s *session) phantomCommit(i, j int) {
	s.commitResolution(i, j, 0) // want `phantomCommit calls commitResolution without a matching oracleDistance`
}

func (s *session) committedBeforeResolved(i, j int) float64 {
	s.commitResolution(i, j, 0) // want `committedBeforeResolved commits a resolution before the oracle round-trip`
	return s.oracleDistance(i, j)
}

func (s *session) doublePair(i, j, k, l int) { // want `doublePair contains 2 oracleDistance and 2 commitResolution calls`
	d1 := s.oracleDistance(i, j)
	s.commitResolution(i, j, d1)
	d2 := s.oracleDistance(k, l)
	s.commitResolution(k, l, d2)
}

func (s *session) allowlisted(i, j int) float64 {
	//proxlint:allow commitonce -- replaying a persisted resolution, counted at write time
	return s.oracleDistance(i, j)
}

// unrelated functions never trip the analyzer.
func unrelated(x int) int { return x * 2 }
