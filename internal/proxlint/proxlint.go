// Package proxlint assembles the project's analyzer suite: the static
// checks that keep the oracle discipline — the invariants the paper's
// call-count guarantees and the PR-1 concurrency speedup rest on —
// machine-enforced rather than review-enforced. See DESIGN.md, "Static
// guarantees".
package proxlint

import (
	"metricprox/internal/analysis"
	"metricprox/internal/proxlint/commitonce"
	"metricprox/internal/proxlint/ctxflow"
	"metricprox/internal/proxlint/degradedtaint"
	"metricprox/internal/proxlint/exporteddoc"
	"metricprox/internal/proxlint/floatcmp"
	"metricprox/internal/proxlint/lockheldoracle"
	"metricprox/internal/proxlint/obspurity"
	"metricprox/internal/proxlint/oracleescape"
	"metricprox/internal/proxlint/rowescape"
	"metricprox/internal/proxlint/slackescape"
	"metricprox/internal/proxlint/wireinf"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		oracleescape.Analyzer,
		lockheldoracle.Analyzer,
		commitonce.Analyzer,
		floatcmp.Analyzer,
		obspurity.Analyzer,
		exporteddoc.Analyzer,
		rowescape.Analyzer,
		degradedtaint.Analyzer,
		slackescape.Analyzer,
		ctxflow.Analyzer,
		wireinf.Analyzer,
	}
}
