// Package lintutil holds the type-level pattern matching shared by the
// proxlint analyzers: identifying "metric-space-shaped" distance methods,
// resolving call targets, and recognising the core session API.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee returns the static *types.Func a call resolves to, or nil when
// the callee is dynamic (a function value) or a type conversion.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		return SelectedFunc(info, fun)
	}
	return nil
}

// SelectedFunc returns the method or package-level function named by the
// selector, or nil.
func SelectedFunc(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	if s, ok := info.Selections[sel]; ok {
		if f, ok := s.Obj().(*types.Func); ok {
			return f
		}
		return nil
	}
	// Package-qualified reference (pkg.Func).
	if f, ok := info.Uses[sel.Sel].(*types.Func); ok {
		return f
	}
	return nil
}

// IsSpaceDistance reports whether f is a distance resolution in the shape
// of metric.Space: a method named Distance with signature
// func(int, int) float64 whose receiver type also has Len() int. Matching
// structurally (rather than against the metric.Space interface object)
// catches the interface itself, every concrete space, metric.Oracle, and
// any future wrapper — anything through which an algorithm could pay for
// a distance without the session noticing.
func IsSpaceDistance(f *types.Func) bool {
	if f == nil || f.Name() != "Distance" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	if !isBasic(sig.Params().At(0).Type(), types.Int) ||
		!isBasic(sig.Params().At(1).Type(), types.Int) ||
		!isBasic(sig.Results().At(0).Type(), types.Float64) {
		return false
	}
	return hasIntLen(sig.Recv().Type(), f.Pkg())
}

// IsSpaceDistanceCtx reports whether f is a distance resolution in the
// shape of metric.FallibleOracle: a method named DistanceCtx with
// signature func(context.Context, int, int) (float64, error) whose
// receiver type also has Len() int. A raw DistanceCtx call bypasses the
// session layer exactly like a raw Distance call — the fallible transport
// chain (metric → faultmetric → resilient) is the only place it belongs.
func IsSpaceDistanceCtx(f *types.Func) bool {
	if f == nil || f.Name() != "DistanceCtx" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Params().Len() != 3 || sig.Results().Len() != 2 {
		return false
	}
	if !isContext(sig.Params().At(0).Type()) ||
		!isBasic(sig.Params().At(1).Type(), types.Int) ||
		!isBasic(sig.Params().At(2).Type(), types.Int) {
		return false
	}
	if !isBasic(sig.Results().At(0).Type(), types.Float64) ||
		!types.Identical(sig.Results().At(1).Type(), types.Universe.Lookup("error").Type()) {
		return false
	}
	return hasIntLen(sig.Recv().Type(), f.Pkg())
}

// hasIntLen reports whether recv has a method Len() int — the other half
// of the metric-space shape.
func hasIntLen(recv types.Type, pkg *types.Package) bool {
	obj, _, _ := types.LookupFieldOrMethod(recv, true, pkg, "Len")
	lf, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	lsig, ok := lf.Type().(*types.Signature)
	return ok && lsig.Params().Len() == 0 && lsig.Results().Len() == 1 &&
		isBasic(lsig.Results().At(0).Type(), types.Int)
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// InCorePackage reports whether the path names the session layer
// (internal/core), matching both the real module path and testdata fakes.
func InCorePackage(path string) bool {
	return path == "metricprox/internal/core" || strings.HasSuffix(path, "internal/core")
}

// InServicePackage reports whether the path names the network service
// layer (internal/service), matching both the real module path and
// testdata fakes. Subpackages (internal/service/api is wire types only)
// deliberately do not match: they hold no sessions to leak from.
func InServicePackage(path string) bool {
	return path == "metricprox/internal/service" || strings.HasSuffix(path, "internal/service")
}

// sessionDistValued are the core-session methods whose results carry a
// raw resolved distance (rather than a comparison bit or an interval).
// Inside the service layer these are the only ways a handler can put an
// oracle value into a response, so the oracleescape service rule confines
// them to the audited handleDist* endpoints.
var sessionDistValued = map[string]bool{
	"Dist":          true,
	"DistErr":       true,
	"Known":         true,
	"DistIfLess":    true,
	"DistIfLessErr": true,
}

// IsSessionDistValued reports whether f is a core-session method that
// returns a raw resolved distance (see sessionDistValued). Matching by
// package path and method name covers core.Session, core.SharedSession,
// core.FallibleSession and the core.View interface alike.
func IsSessionDistValued(f *types.Func) bool {
	if f == nil || f.Pkg() == nil || !InCorePackage(f.Pkg().Path()) {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return sessionDistValued[f.Name()]
}

// InMetricPackage reports whether the path names the oracle layer.
func InMetricPackage(path string) bool {
	return path == "metricprox/internal/metric" || strings.HasSuffix(path, "internal/metric")
}

// InPgraphPackage reports whether the path names the proximity-graph
// store (internal/pgraph), matching both the real module path and
// testdata fakes.
func InPgraphPackage(path string) bool {
	return path == "metricprox/internal/pgraph" || strings.HasSuffix(path, "internal/pgraph")
}

// InCachestorePackage reports whether the path names the persistent
// distance cache (internal/cachestore), matching both the real module
// path and testdata fakes.
func InCachestorePackage(path string) bool {
	return path == "metricprox/internal/cachestore" || strings.HasSuffix(path, "internal/cachestore")
}

// InAPIPackage reports whether the path names the wire-type package
// (internal/service/api), matching both the real module path and testdata
// fakes.
func InAPIPackage(path string) bool {
	return path == "metricprox/internal/service/api" || strings.HasSuffix(path, "internal/service/api")
}

// InProxclientPackage reports whether the path names the service client
// (internal/proxclient), matching both the real module path and testdata
// fakes.
func InProxclientPackage(path string) bool {
	return path == "metricprox/internal/proxclient" || strings.HasSuffix(path, "internal/proxclient")
}

// oracleLayerSuffixes are the packages that make up the oracle transport
// chain: metric (the oracle itself), faultmetric (deterministic fault
// injection), and resilient (retry/backoff/circuit-breaking). Moving raw
// distance calls is these packages' entire job, so the escape discipline
// does not apply inside them — by construction, not by ad-hoc allowlist.
var oracleLayerSuffixes = []string{
	"internal/metric",
	"internal/faultmetric",
	"internal/resilient",
}

// InOracleLayer reports whether the path names a package of the oracle
// transport chain (see oracleLayerSuffixes).
func InOracleLayer(path string) bool {
	for _, suffix := range oracleLayerSuffixes {
		if path == "metricprox/"+suffix || strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// coreOracleEntrypoints are the core-session methods that may reach the
// oracle. Any call to one of these from another package is treated as
// oracle-reaching by lockheldoracle.
var coreOracleEntrypoints = map[string]bool{
	"Dist":            true,
	"Less":            true,
	"LessThan":        true,
	"DistIfLess":      true,
	"SumLessThan":     true,
	"SumLess":         true,
	"Bootstrap":       true,
	"GreedyLandmarks": true,
	"resolve":         true,

	// Error-propagating variants of the comparison API (fallible-oracle
	// subsystem) — same oracle reach as their legacy counterparts.
	"DistErr":           true,
	"LessErr":           true,
	"LessOutcome":       true,
	"LessThanErr":       true,
	"DistIfLessErr":     true,
	"BootstrapErr":      true,
	"resolveErr":        true,
	"oracleDistanceErr": true,
}

// IsCoreOracleEntry reports whether f is a core-session method that can
// reach the distance oracle (directly or transitively). It matches by
// package path and method name so it works on core.Session,
// core.SharedSession, and the core.View interface alike.
func IsCoreOracleEntry(f *types.Func) bool {
	if f == nil || f.Pkg() == nil || !InCorePackage(f.Pkg().Path()) {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return coreOracleEntrypoints[f.Name()]
}
