package rowescape_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/rowescape"
)

func TestRowEscape(t *testing.T) {
	analyzertest.Run(t, "testdata", rowescape.Analyzer, "a")
}
