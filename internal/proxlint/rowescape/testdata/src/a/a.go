package a

import (
	"metricprox/internal/bounds"
	"metricprox/internal/pgraph"
)

var global []int32

type holder struct {
	nbrs []int32
}

func staleUse(g *pgraph.Graph) float64 {
	nbrs, wts := g.Row(0)
	g.AddEdge(1, 2, 0.5)
	_ = nbrs       // want `used after a call that can relocate`
	return wts[0] // want `used after a call that can relocate`
}

func fieldStore(g *pgraph.Graph, h *holder) {
	nbrs, _ := g.Row(0)
	h.nbrs = nbrs // want `stored in a field`
}

func globalStore(g *pgraph.Graph) {
	global, _ = g.Row(0) // want `package-level variable`
}

func sendAcross(g *pgraph.Graph, ch chan []int32) {
	nbrs, _ := g.Row(0)
	ch <- nbrs // want `sent across a channel`
}

func goEscape(g *pgraph.Graph) {
	nbrs, _ := g.Row(0)
	go consume(nbrs) // want `passed to a goroutine`
}

func consume(xs []int32) {}

// borrow returns the borrowed row: not a violation, but callers inherit
// the borrow through the exported "borrows" fact.
func borrow(g *pgraph.Graph) []int32 {
	nbrs, _ := g.Row(0)
	return nbrs
}

func useBorrowedAcrossGrow(g *pgraph.Graph) {
	nbrs := borrow(g)
	g.AddEdge(1, 2, 0.5)
	_ = nbrs // want `used after a call that can relocate`
}

// grow earns a "grows" fact; the taint engine treats calls to it like
// AddEdge itself.
func grow(g *pgraph.Graph) { g.AddEdge(3, 4, 1.0) }

func transitiveGrow(g *pgraph.Graph) {
	nbrs, _ := g.Row(0)
	grow(g)
	_ = nbrs // want `used after a call that can relocate`
}

// crossPackage consumes the facts exported by the bounds fake: both the
// borrow and the growth cross a package boundary.
func crossPackage(g *pgraph.Graph) {
	nbrs := bounds.Adjacency(g, 0)
	bounds.Rebuild(g)
	_ = nbrs // want `used after a call that can relocate`
}
