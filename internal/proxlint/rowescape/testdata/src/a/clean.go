package a

import "metricprox/internal/pgraph"

// reborrow re-borrows after growing: the epoch contract done right.
func reborrow(g *pgraph.Graph) float64 {
	_, wts := g.Row(0)
	total := 0.0
	for _, w := range wts {
		total += w // element copies never alias the slab
	}
	g.AddEdge(1, 2, total)
	_, wts = g.Row(0) // fresh borrow after the growth
	return wts[0]
}

// copyOut snapshots the borrow before growing; the copy is immune to
// relocation.
func copyOut(g *pgraph.Graph) []float64 {
	_, wts := g.Row(0)
	out := make([]float64, len(wts))
	copy(out, wts)
	g.AddEdge(1, 2, 0.5)
	return out
}

// readOnly never grows, so the borrow stays valid throughout.
func readOnly(g *pgraph.Graph) int {
	nbrs, _ := g.Row(0)
	count := 0
	for range nbrs {
		count++
	}
	return count + len(nbrs)
}
