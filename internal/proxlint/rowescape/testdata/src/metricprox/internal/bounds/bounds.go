// Package bounds exercises the cross-package fact flow: Adjacency earns
// a "borrows" fact, Rebuild a "grows" fact, both consumed by package a.
package bounds

import "metricprox/internal/pgraph"

// Adjacency returns the borrowed neighbour row of u.
func Adjacency(g *pgraph.Graph, u int) []int32 {
	nbrs, _ := g.Row(u)
	return nbrs
}

// Rebuild grows the graph.
func Rebuild(g *pgraph.Graph) {
	g.AddEdge(0, 1, 1.0)
}
