// Package pgraph is a shape-faithful fake of the CSR adjacency store:
// Row borrows slab-aliasing slices, AddEdge may relocate or compact.
package pgraph

// Graph is the proximity graph.
type Graph struct{ n int }

// New returns an empty graph on n points.
func New(n int) *Graph { return &Graph{n: n} }

// Row returns slices aliasing the CSR slab, valid until the next AddEdge.
func (g *Graph) Row(u int) ([]int32, []float64) { return nil, nil }

// AddEdge inserts an edge and may relocate the row or compact the arena.
func (g *Graph) AddEdge(i, j int, w float64) {}

// N reports the number of points.
func (g *Graph) N() int { return g.n }
