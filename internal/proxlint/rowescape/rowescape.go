// Package rowescape defines an analyzer that enforces the epoch contract
// of the zero-copy CSR adjacency store, statically.
//
// pgraph.Graph.Row returns slices that alias the store's shared slabs:
// they are valid only until the next AddEdge, which may relocate the row
// or compact the whole arena in place (internal/pgraph/csr.go documents
// the contract; nothing enforced it). This analyzer runs the forward
// taint engine over every function: values borrowed from Row carry a
// "row" label, any call that can grow the slab — AddEdge itself, or any
// function whose body transitively reaches AddEdge, discovered through
// cross-package "grows" facts — rewrites live labels to "stale", and the
// analyzer reports
//
//   - any read of a stale-labeled slice (a borrow used across a growing
//     call: the classic relocation use-after-free, minus the segfault),
//   - any store of a borrowed slice into a struct field, package-level
//     variable, or channel, and any borrowed slice handed to a goroutine
//     (escapes that outlive the borrow epoch unverifiably).
//
// Functions that return a borrowed slice are not violations; they export
// a "borrows" fact, so their callers' borrows are tracked with the same
// rules. Elements copied out of a borrowed slice (nbrs[k], weights[k])
// are scalar copies and carry no label.
//
// The analyzer skips internal/pgraph itself (the store manages its own
// slabs) and test files (which exercise epoch invalidation on purpose).
package rowescape

import (
	"go/ast"
	"go/types"

	"metricprox/internal/analysis"
	"metricprox/internal/proxlint/lintutil"
)

// Analyzer flags pgraph row borrows that escape or outlive a slab-growing
// call.
var Analyzer = &analysis.Analyzer{
	Name: "rowescape",
	Doc: "slices borrowed from pgraph.Graph.Row alias the CSR slab and die at the " +
		"next AddEdge; forbid storing them in fields/globals/channels/goroutines " +
		"or reading them across a call that can grow the slab",
	Run: run,
}

const (
	labelRow   = "row"   // aliases the slab, epoch-current
	labelStale = "stale" // aliases the slab, epoch possibly expired
)

func run(pass *analysis.Pass) error {
	fns := collectFuncs(pass)

	// Phase 1: which functions can grow a slab? Fixed point over the
	// package's call structure, seeded by (pgraph.Graph).AddEdge and by
	// imported "grows" facts; every discovery is exported for downstream
	// packages.
	grows := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if grows[fn.obj] {
				continue
			}
			found := false
			ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && isGrowingCall(pass, grows, call) {
					found = true
				}
				return true
			})
			if found {
				grows[fn.obj] = true
				pass.ExportFact(fn.obj, "grows", "")
				changed = true
			}
		}
	}

	// Phase 2: which functions return a borrowed slice? Fixed point with
	// the taint engine, since a borrow can pass through locals before
	// being returned; each discovery becomes a "borrows" fact and a new
	// taint source for the next round.
	borrows := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if borrows[fn.obj] {
				continue
			}
			if returnsBorrow(pass, fn, grows, borrows) {
				borrows[fn.obj] = true
				pass.ExportFact(fn.obj, "borrows", "")
				changed = true
			}
		}
	}

	// Phase 3: report escapes and stale uses. The store's own package is
	// exempt — it manages the slabs the borrows alias.
	if lintutil.InPgraphPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, fn := range fns {
		reportFunc(pass, fn, grows, borrows)
	}
	return nil
}

// fnInfo pairs a function body with its object; function literals are
// analyzed as the body of their enclosing declaration.
type fnInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func collectFuncs(pass *analysis.Pass) []fnInfo {
	var fns []fnInfo
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fns = append(fns, fnInfo{decl: fd, obj: obj})
		}
	}
	return fns
}

// isGrowingCall reports whether the call can relocate or compact a CSR
// slab: (pgraph.Graph).AddEdge, a function already known (locally or by
// imported fact) to grow, or an abstract method named AddEdge with the
// (int, int, float64) shape — the conservative answer for interface
// dispatch.
func isGrowingCall(pass *analysis.Pass, grows map[*types.Func]bool, call *ast.CallExpr) bool {
	f := lintutil.Callee(pass.TypesInfo, call)
	if f == nil {
		return false
	}
	if f.Name() == "AddEdge" {
		if f.Pkg() != nil && lintutil.InPgraphPackage(f.Pkg().Path()) {
			return true
		}
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil &&
			types.IsInterface(sig.Recv().Type()) && sig.Params().Len() == 3 {
			return true
		}
	}
	return grows[f] || pass.HasFact(f, "grows")
}

// newTaint configures the engine with rowescape's shapes.
func newTaint(pass *analysis.Pass, grows, borrows map[*types.Func]bool) *analysis.TaintAnalysis {
	return &analysis.TaintAnalysis{
		Info: pass.TypesInfo,
		Source: func(e ast.Expr) string {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return ""
			}
			f := lintutil.Callee(pass.TypesInfo, call)
			if f == nil {
				return ""
			}
			if f.Name() == "Row" && f.Pkg() != nil && lintutil.InPgraphPackage(f.Pkg().Path()) {
				if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
					return labelRow
				}
			}
			if borrows[f] || pass.HasFact(f, "borrows") {
				return labelRow
			}
			return ""
		},
		Clobber: func(call *ast.CallExpr, label string) string {
			if label == labelRow && isGrowingCall(pass, grows, call) {
				return labelStale
			}
			return label
		},
		// Elements read out of a borrowed slice are scalar copies.
		Element: func(string) string { return "" },
		Join: func(a, b string) string {
			if a == labelStale || b == labelStale {
				return labelStale
			}
			return labelRow
		},
	}
}

// returnsBorrow reports whether fn can return a row-labeled value of
// slice type.
func returnsBorrow(pass *analysis.Pass, fn fnInfo, grows, borrows map[*types.Func]bool) bool {
	found := false
	ta := newTaint(pass, grows, borrows)
	ta.Visit = func(n ast.Node, st *analysis.TaintState) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return
		}
		for _, res := range ret.Results {
			if st.Label(res) == "" {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[res]; ok {
				if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
					found = true
				}
			}
		}
	}
	ta.Run(fn.decl.Body)
	return found
}

// reportFunc runs the reporting pass over one function.
func reportFunc(pass *analysis.Pass, fn fnInfo, grows, borrows map[*types.Func]bool) {
	ta := newTaint(pass, grows, borrows)
	ta.Visit = func(n ast.Node, st *analysis.TaintState) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkStores(pass, st, n)
		case *ast.SendStmt:
			if st.Label(n.Value) != "" {
				pass.Reportf(n.Value.Pos(),
					"borrowed pgraph row slice sent across a channel; the receiver cannot know when the slab grows — copy the data instead")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if st.Label(arg) != "" {
					pass.Reportf(arg.Pos(),
						"borrowed pgraph row slice passed to a goroutine that may outlive the borrow epoch; copy the data instead")
				}
			}
		}
		checkStaleUses(pass, st, n)
	}
	ta.Run(fn.decl.Body)
}

// checkStores reports borrowed slices stored where they outlive the
// borrow: struct fields, package-level variables, and element stores into
// either.
func checkStores(pass *analysis.Pass, st *analysis.TaintState, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		} else {
			continue
		}
		if st.Label(rhs) == "" {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			pass.Reportf(l.Pos(),
				"borrowed pgraph row slice stored in a field; it aliases the CSR slab and dies at the next AddEdge — copy the data or re-borrow with Row at use time")
		case *ast.Ident:
			if obj := pass.TypesInfo.ObjectOf(l); obj != nil && obj.Parent() == pass.Pkg.Scope() {
				pass.Reportf(l.Pos(),
					"borrowed pgraph row slice stored in package-level variable %s; it aliases the CSR slab and dies at the next AddEdge", l.Name)
			}
		}
	}
}

// checkStaleUses reports reads of idents whose borrow predates a growing
// call, citing the borrow site from the def-use chains.
func checkStaleUses(pass *analysis.Pass, st *analysis.TaintState, n ast.Node) {
	ast.Inspect(n, func(sub ast.Node) bool {
		id, ok := sub.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || st.Of(obj) != labelStale || !isUse(st.DefUse, obj, id) {
			return true
		}
		borrowed := ""
		if defs := st.DefUse.Defs[obj]; len(defs) > 0 {
			borrowed = " (borrowed at line " + itoa(pass.Fset.Position(defs[0].Pos()).Line) + ")"
		}
		pass.Reportf(id.Pos(),
			"pgraph row slice %s%s used after a call that can relocate or compact the slab; re-borrow with Row after any AddEdge", id.Name, borrowed)
		return true
	})
}

func isUse(du *analysis.DefUse, obj types.Object, id *ast.Ident) bool {
	for _, use := range du.Uses[obj] {
		if use == id {
			return true
		}
	}
	return false
}

func itoa(n int) string {
	if n <= 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
