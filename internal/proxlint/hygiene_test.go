package proxlint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestAnalyzerHygiene enforces the registration contract for every
// analyzer in the suite: a non-empty doc, a unique identifier-shaped name
// matching its package directory, and a testdata corpus that proves the
// analyzer both fires (at least one `// want` expectation) and stays
// quiet on conforming code (at least one expectation-free file).
func TestAnalyzerHygiene(t *testing.T) {
	nameRe := regexp.MustCompile(`^[a-z][a-z0-9]*$`)
	seen := make(map[string]bool)
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			if a.Doc == "" {
				t.Error("empty Doc: the -flags probe and docs/LINT.md both render it")
			}
			if !nameRe.MatchString(a.Name) {
				t.Errorf("name %q is not a lowercase identifier", a.Name)
			}
			if seen[a.Name] {
				t.Errorf("duplicate analyzer name %q", a.Name)
			}
			seen[a.Name] = true
			if a.Run == nil {
				t.Fatal("nil Run")
			}

			dir := a.Name // package directory == analyzer name
			if st, err := os.Stat(dir); err != nil || !st.IsDir() {
				t.Fatalf("no package directory internal/proxlint/%s for analyzer %q", dir, a.Name)
			}
			srcdir := filepath.Join(dir, "testdata", "src")
			wantFiles, cleanFiles := 0, 0
			err := filepath.WalkDir(srcdir, func(path string, d os.DirEntry, err error) error {
				if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
					return err
				}
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				if strings.Contains(string(data), "// want ") {
					wantFiles++
				} else {
					cleanFiles++
				}
				return nil
			})
			if err != nil {
				t.Fatalf("walking %s: %v", srcdir, err)
			}
			if wantFiles == 0 {
				t.Errorf("%s has no testdata file with a // want expectation: nothing proves the analyzer fires", srcdir)
			}
			if cleanFiles == 0 {
				t.Errorf("%s has no expectation-free testdata file: nothing proves the analyzer stays quiet on conforming code", srcdir)
			}
		})
	}
}
