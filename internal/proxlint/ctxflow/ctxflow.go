// Package ctxflow defines an analyzer that forbids minting a fresh root
// context where a caller's context is already in scope.
//
// The fallible-session stack threads cancellation from the service edge
// down to the oracle transport; per-attempt deadlines belong to the
// resilient policy layer, not to ad-hoc context.Background() calls in the
// middle of a call path. A Background()/TODO() inside a function that
// receives a context (directly, through an enclosing closure, or via an
// *http.Request) silently detaches everything below it from the caller's
// deadline and cancellation — the bug class this analyzer removes.
//
// Functions with no caller context in scope (constructors storing a base
// context, main, tests) are untouched: there, Background() is the honest
// root. Deliberate detachment on a context-carrying path should use
// context.WithoutCancel(ctx), which keeps values and says what it means,
// or carry a //proxlint:allow ctxflow directive with the rationale.
package ctxflow

import (
	"go/ast"
	"go/types"

	"metricprox/internal/analysis"
	"metricprox/internal/proxlint/lintutil"
)

// Analyzer flags context.Background()/TODO() where a caller ctx is in
// scope.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background()/context.TODO() inside functions where a " +
		"caller context is in scope; thread the caller's ctx or use context.WithoutCancel",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Type, fd.Body, ctxParamName(pass, fd.Type))
		}
	}
	return nil
}

// checkFunc walks one function body. ctxName is the name of the context
// (or request) parameter in scope, "" when none is; nested function
// literals inherit the enclosing scope's context.
func checkFunc(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxParamName(pass, n.Type)
			if inner == "" {
				inner = ctxName
			}
			checkFunc(pass, n.Type, n.Body, inner)
			return false
		case *ast.CallExpr:
			if ctxName == "" {
				return true
			}
			f := lintutil.Callee(pass.TypesInfo, n)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" {
				return true
			}
			if f.Name() == "Background" || f.Name() == "TODO" {
				pass.Reportf(n.Pos(),
					"context.%s() discards the caller's context %s that is in scope; thread it through, or use context.WithoutCancel(%s) to detach deliberately",
					f.Name(), ctxName, ctxName)
			}
		}
		return true
	})
}

// ctxParamName returns the name of the first parameter that carries a
// caller context: a context.Context, or an *http.Request (whose
// .Context() is the caller context at the service edge). Unnamed and
// blank parameters still count — the context is in scope in the
// signature sense, and naming it is the fix.
func ctxParamName(pass *analysis.Pass, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if !isContextType(tv.Type) && !isHTTPRequest(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
		return "_" // unnamed/blank ctx param: still in scope to claim
	}
	return ""
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

func isHTTPRequest(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == "Request"
}
