package a

import "context"

// root is a constructor with no caller context in scope: Background is
// the honest root here.
func root() context.Context {
	return context.Background()
}

// detach detaches deliberately with WithoutCancel, keeping values.
func detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}

// freshParam's literal receives its own context; using it is the point.
func freshParam() func(context.Context) error {
	return func(ctx context.Context) error {
		return run(ctx, "q")
	}
}

// spawn has no ctx in scope even though its sibling functions do.
func spawn() {
	go func() {
		_ = run(context.Background(), "background job")
	}()
}
