package a

import (
	"context"
	"net/http"
)

func query(ctx context.Context, q string) error {
	c := context.Background() // want `discards the caller's context ctx`
	_ = c
	return run(ctx, q)
}

func todoInside(ctx context.Context) {
	_ = run(context.TODO(), "x") // want `discards the caller's context ctx`
}

func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `discards the caller's context r`
	_ = ctx
}

// closureInherits: the literal has no ctx parameter of its own, so the
// enclosing function's ctx is the caller context in scope.
func closureInherits(ctx context.Context) func() {
	return func() {
		_ = context.Background() // want `discards the caller's context ctx`
	}
}

func run(ctx context.Context, q string) error { return nil }
