package ctxflow_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analyzertest.Run(t, "testdata", ctxflow.Analyzer, "a")
}
