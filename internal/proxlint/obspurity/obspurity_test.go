package obspurity_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/obspurity"
)

func TestObsPurity(t *testing.T) {
	analyzertest.Run(t, "testdata", obspurity.Analyzer,
		"metricprox/internal/bounds",
		"metricprox/internal/core", // obs importer outside the pure layer: no findings expected
		"metricprox/internal/obs",  // obs itself: no findings expected
	)
}
