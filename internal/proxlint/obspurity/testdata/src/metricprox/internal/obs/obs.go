// Package obs is a stub of the real observability registry for analyzer
// tests.
package obs

// Registry mirrors the real metrics registry.
type Registry struct{}

// NewRegistry mirrors the real constructor.
func NewRegistry() *Registry { return &Registry{} }
