// Package obshttp is a stub of the real exposition endpoint for analyzer
// tests.
package obshttp

// Serve mirrors the real exposition entry point.
func Serve(addr string) (string, error) { return addr, nil }
