// Package bounds exercises the obspurity analyzer: the pure
// bound-decision layer must not import the observability subsystem.
package bounds

import (
	"math"

	"metricprox/internal/obs"         // want `the pure bound-decision layer imports metricprox/internal/obs`
	"metricprox/internal/obs/obshttp" // want `the pure bound-decision layer imports metricprox/internal/obs/obshttp`
)

// Interval is a stand-in for the real bound interval.
type Interval struct{ Lo, Hi float64 }

// Width is pure interval arithmetic: fine.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

func tainted() *obs.Registry {
	_, _ = obshttp.Serve(":0")
	return obs.NewRegistry()
}

func pure(a, b Interval) float64 { return math.Min(a.Width(), b.Width()) }
