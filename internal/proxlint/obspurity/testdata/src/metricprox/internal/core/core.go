// Package core stands in for the session layer: it owns all instrument
// recording, so importing obs here is exactly right and must not be
// flagged.
package core

import "metricprox/internal/obs"

// Session mirrors the real session's ownership of the registry.
type Session struct{ reg *obs.Registry }

// NewSession wires the observability registry into the session.
func NewSession() *Session { return &Session{reg: obs.NewRegistry()} }
