// Package obspurity defines an analyzer that keeps the bound decision
// layer free of observability imports.
//
// The framework's correctness story (DESIGN.md §8) rests on observation
// being write-only: metrics and traces may record what a bound decision
// did, but must never be able to influence it. internal/bounds is the
// pure decision layer — interval arithmetic over what the session has
// learned — so the strongest mechanical form of that invariant is a
// dependency rule: internal/bounds must not import internal/obs (or any
// of its subpackages) at all. A bounds file that needs to report
// something returns it to internal/core, which owns all instrument
// recording. There is deliberately no //proxlint:allow escape valve in
// practice: an allowed import would still be flagged at every future
// review because the rationale must argue against the purity invariant
// itself.
package obspurity

import (
	"strconv"
	"strings"

	"metricprox/internal/analysis"
)

// Analyzer flags imports of internal/obs from the pure decision layer.
var Analyzer = &analysis.Analyzer{
	Name: "obspurity",
	Doc: "forbid internal/bounds (the pure bound-decision layer) from importing " +
		"internal/obs: observation is write-only and must not be able to influence decisions",
	Run: run,
}

// pureSuffixes lists the decision packages that must stay
// observation-free. Matching by suffix covers both the real module path
// and testdata fakes, like the other analyzers.
var pureSuffixes = []string{
	"internal/bounds",
}

func run(pass *analysis.Pass) error {
	if !inPureDecisionPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !isObsPath(path) {
				continue
			}
			pass.Reportf(imp.Path.Pos(),
				"the pure bound-decision layer imports %s: observation must stay write-only, so record in internal/core instead and keep %s observation-free",
				path, pass.Pkg.Path())
		}
	}
	return nil
}

// inPureDecisionPackage reports whether path names a package of the pure
// decision layer (see pureSuffixes).
func inPureDecisionPackage(path string) bool {
	for _, suffix := range pureSuffixes {
		if path == "metricprox/"+suffix || strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// isObsPath reports whether path names internal/obs or one of its
// subpackages (for example internal/obs/obshttp).
func isObsPath(path string) bool {
	if path == "metricprox/internal/obs" || strings.HasSuffix(path, "internal/obs") {
		return true
	}
	if i := strings.Index(path, "internal/obs/"); i >= 0 {
		return i == 0 || path[i-1] == '/'
	}
	return false
}
