package a

import (
	"metricprox/internal/cachestore"
	"metricprox/internal/core"
	"metricprox/internal/pgraph"
	"metricprox/internal/service/api"
)

// commitBound commits a relaxed interval endpoint: the "slack" fact on
// core.Session.Bounds crosses the package boundary, and the tuple
// assignment taints both endpoints.
func commitBound(s *core.Session, g *pgraph.Graph) {
	lb, ub := s.Bounds(1, 2)
	_ = lb
	g.AddEdge(1, 2, ub) // want `committed as a pgraph edge weight`
}

func cacheBound(s *core.Session, st *cachestore.Store) {
	lb, _ := s.Bounds(1, 2)
	st.Put(cachestore.Key(1, 2), lb) // want `written to cachestore`
}

func wireBound(s *core.Session) api.DistResponse {
	_, ub := s.Bounds(1, 2)
	return api.DistResponse{D: api.WireFloat(ub)} // want `converted to api.WireFloat`
}

// localRelax applies a local relaxation: the Relax method shape is the
// contract, wherever it lives.
type widen struct{}

func (widen) Relax(lb, ub, eps, maxDist float64) (float64, float64) {
	return lb - eps, ub + eps
}

func localRelax(g *pgraph.Graph) {
	var w widen
	lb, ub := w.Relax(0.2, 0.4, 0.1, 1)
	_ = ub
	g.AddEdge(0, 1, lb) // want `committed as a pgraph edge weight`
}

// upperBound earns a "slack" fact of its own by forwarding a relaxed
// endpoint.
func upperBound(s *core.Session) float64 {
	_, ub := s.Bounds(1, 2)
	return ub
}

func useWrapper(s *core.Session, st *cachestore.Store) {
	st.Put(cachestore.Key(1, 2), upperBound(s)) // want `written to cachestore`
}
