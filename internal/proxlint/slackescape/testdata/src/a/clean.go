package a

import (
	"metricprox/internal/cachestore"
	"metricprox/internal/core"
	"metricprox/internal/pgraph"
	"metricprox/internal/service/api"
)

// commitResolved commits the exact DistErr resolution: slack never
// touches resolved values, so every sink is fine with the result.
func commitResolved(s *core.Session, g *pgraph.Graph, st *cachestore.Store) (api.DistResponse, error) {
	d, err := s.DistErr(1, 2)
	if err != nil {
		return api.DistResponse{}, err
	}
	g.AddEdge(1, 2, d)
	st.Put(cachestore.Key(1, 2), d)
	return api.DistResponse{D: api.WireFloat(d)}, nil
}

// pruneThenCommit uses the relaxed interval only for the pruning
// decision — the whole point of slack mode — and commits the resolved
// value.
func pruneThenCommit(s *core.Session, g *pgraph.Graph) error {
	lb, ub := s.Bounds(1, 2)
	if ub-lb < 0.5 {
		return nil
	}
	d, err := s.DistErr(1, 2)
	if err != nil {
		return err
	}
	g.AddEdge(1, 2, d)
	return nil
}
