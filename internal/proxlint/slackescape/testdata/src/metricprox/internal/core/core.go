// Package core is a shape-faithful fake of the slack layer: Bounds
// widens every derived interval through SlackPolicy.Relax, DistErr
// resolves exactly and never relaxes. The analyzer must discover
// Bounds's "slack" fact on its own.
package core

import "errors"

// SlackPolicy declares how far an interval may be relaxed.
type SlackPolicy struct {
	// Additive is the ε applied to both endpoints.
	Additive float64
}

// Relax widens [lb, ub] to the sound near-metric envelope
// [lb−ε, ub+ε], clamped to [0, maxDist].
func (p SlackPolicy) Relax(lb, ub, eps, maxDist float64) (float64, float64) {
	lb -= eps
	if lb < 0 {
		lb = 0
	}
	ub += eps
	if ub > maxDist {
		ub = maxDist
	}
	return lb, ub
}

// Session answers bound queries with the session slack applied.
type Session struct {
	slack   SlackPolicy
	maxDist float64
}

// Bounds returns the relaxed derived interval for (i, j).
func (s *Session) Bounds(i, j int) (float64, float64) {
	lb, ub := 0.0, s.maxDist
	lb, ub = s.slack.Relax(lb, ub, s.slack.Additive, s.maxDist)
	return lb, ub
}

// DistErr resolves the exact oracle distance or fails; slack never
// applies to resolved values.
func (s *Session) DistErr(i, j int) (float64, error) {
	if i == j {
		return 0, nil
	}
	if i < 0 || j < 0 {
		return 0, errors.New("out of range")
	}
	return 1, nil
}
