// Package pgraph is a minimal fake of the CSR adjacency store.
package pgraph

// Graph is the proximity graph.
type Graph struct{ n int }

// AddEdge commits an edge with an exact resolved weight.
func (g *Graph) AddEdge(i, j int, w float64) {}
