// Package cachestore is a minimal fake of the persistent distance cache.
package cachestore

// Store persists resolved distances.
type Store struct{}

// Put records a resolved distance.
func (s *Store) Put(key int64, d float64) {}

// Key canonicalises a pair.
func Key(i, j int) int64 { return int64(i)<<32 | int64(j) }
