// Package api is a minimal fake of the wire-type package.
package api

// WireFloat carries float64 values (±Inf included) across JSON.
type WireFloat float64

// DistResponse is the wire form of a distance answer.
type DistResponse struct {
	D WireFloat `json:"d"`
}
