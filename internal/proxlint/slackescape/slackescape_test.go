package slackescape_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/slackescape"
)

func TestSlackEscape(t *testing.T) {
	analyzertest.Run(t, "testdata", slackescape.Analyzer, "a")
}
