// Package slackescape defines an analyzer that keeps ε-slack relaxed
// bounds out of durable and wire-visible state.
//
// Under a near-metric slack policy, core.Session.Bounds widens every
// derived interval through SlackPolicy.Relax: the endpoints it returns
// are deliberately NOT exact — they are the sound envelope
// [lb−ε, ub+ε] around the derived interval. That is fine for pruning
// decisions (the whole point of slack mode) but poisonous anywhere the
// library treats a float64 as an exact distance: committed pgraph edges
// (output preservation assumes committed weights are oracle results),
// cachestore writes (a cached relaxed endpoint replays as truth forever,
// and would then feed calibration as if the oracle had said it), and
// api.WireFloat responses on endpoints whose contract promises resolved
// values.
//
// The analyzer taints the results of every relaxation — any method named
// "Relax" with signature func(float64, float64, float64, float64)
// (float64, float64) — and propagates with the dataflow engine.
// Functions that can return a tainted float64 export a "slack" fact
// (core.Session.Bounds earns one automatically), so the taint follows
// calls across package boundaries. Sinks:
//
//   - (pgraph.Graph).AddEdge weight arguments, and abstract AddEdge
//     methods of the same shape;
//   - any argument of a call into internal/cachestore;
//   - conversion to api.WireFloat.
//
// Wire endpoints whose contract is "these are bounds" (the bounds
// handlers ship LB/UB as bounds, labeled as such, alongside the session
// ε) suppress the diagnostic with a //proxlint:allow directive carrying
// that rationale.
package slackescape

import (
	"go/ast"
	"go/types"

	"metricprox/internal/analysis"
	"metricprox/internal/proxlint/lintutil"
)

// Analyzer flags relaxed ε-slack bound values flowing into edge commits,
// cache writes, or wire responses.
var Analyzer = &analysis.Analyzer{
	Name: "slackescape",
	Doc: "ε-slack relaxed bound values must not flow into pgraph edge commits, " +
		"cachestore writes, or api.WireFloat responses",
	Run: run,
}

const labelSlack = "slack"

func run(pass *analysis.Pass) error {
	fns := collectFuncs(pass)

	// Phase 1: which functions can return a relaxed float64? Fixed point
	// seeded by the Relax methods themselves and by imported "slack"
	// facts; discoveries are exported for downstream packages.
	slacked := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if slacked[fn.obj] {
				continue
			}
			if returnsSlack(pass, fn, slacked) {
				slacked[fn.obj] = true
				pass.ExportFact(fn.obj, labelSlack, "")
				changed = true
			}
		}
	}

	// Phase 2: report taint reaching a sink.
	for _, fn := range fns {
		reportFunc(pass, fn, slacked)
	}
	return nil
}

type fnInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func collectFuncs(pass *analysis.Pass) []fnInfo {
	var fns []fnInfo
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fns = append(fns, fnInfo{decl: fd, obj: obj})
		}
	}
	return fns
}

// isRelax reports whether f is an interval relaxation: a method named
// "Relax" with signature func(float64, float64, float64, float64)
// (float64, float64). The shape covers core.SlackPolicy.Relax — and any
// future relaxation, which is the point of matching the shape.
func isRelax(f *types.Func) bool {
	if f == nil || f.Name() != "Relax" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 4 || sig.Results().Len() != 2 {
		return false
	}
	for i := 0; i < 4; i++ {
		if !isBasic(sig.Params().At(i).Type(), types.Float64) {
			return false
		}
	}
	return isBasic(sig.Results().At(0).Type(), types.Float64) &&
		isBasic(sig.Results().At(1).Type(), types.Float64)
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func newTaint(pass *analysis.Pass, slacked map[*types.Func]bool) *analysis.TaintAnalysis {
	return &analysis.TaintAnalysis{
		Info: pass.TypesInfo,
		Source: func(e ast.Expr) string {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return ""
			}
			f := lintutil.Callee(pass.TypesInfo, call)
			if f == nil {
				return ""
			}
			if isRelax(f) || slacked[f] || pass.HasFact(f, labelSlack) {
				return labelSlack
			}
			return ""
		},
	}
}

// returnsSlack reports whether fn can return a tainted float64.
func returnsSlack(pass *analysis.Pass, fn fnInfo, slacked map[*types.Func]bool) bool {
	found := false
	ta := newTaint(pass, slacked)
	ta.Visit = func(n ast.Node, st *analysis.TaintState) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return
		}
		for _, res := range ret.Results {
			if st.Label(res) != "" && isFloatExpr(pass.TypesInfo, res) {
				found = true
			}
		}
	}
	ta.Run(fn.decl.Body)
	return found
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isBasic(tv.Type, types.Float64)
}

// reportFunc runs the sink checks over one function.
func reportFunc(pass *analysis.Pass, fn fnInfo, slacked map[*types.Func]bool) {
	ta := newTaint(pass, slacked)
	ta.Visit = func(n ast.Node, st *analysis.TaintState) {
		ast.Inspect(n, func(sub ast.Node) bool {
			if _, ok := sub.(*ast.FuncLit); ok {
				return false
			}
			call, ok := sub.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkSinkCall(pass, st, call)
			return true
		})
	}
	ta.Run(fn.decl.Body)
}

// checkSinkCall reports tainted arguments reaching one of the three
// sinks: edge commits, cachestore calls, and WireFloat conversions.
func checkSinkCall(pass *analysis.Pass, st *analysis.TaintState, call *ast.CallExpr) {
	// Conversion to api.WireFloat.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if isWireFloat(tv.Type) && len(call.Args) == 1 && st.Label(call.Args[0]) != "" {
			pass.Reportf(call.Args[0].Pos(),
				"relaxed ε-slack bound converted to api.WireFloat; a relaxed endpoint is not an exact distance — ship it only on an endpoint whose contract says bounds, with an allow directive saying so")
		}
		return
	}
	f := lintutil.Callee(pass.TypesInfo, call)
	if f == nil {
		return
	}
	if isAddEdge(f) {
		for _, arg := range call.Args {
			if st.Label(arg) != "" {
				pass.Reportf(arg.Pos(),
					"relaxed ε-slack bound committed as a pgraph edge weight; committed edges must be oracle-resolved distances (output preservation)")
			}
		}
		return
	}
	if f.Pkg() != nil && lintutil.InCachestorePackage(f.Pkg().Path()) {
		for _, arg := range call.Args {
			if st.Label(arg) != "" {
				pass.Reportf(arg.Pos(),
					"relaxed ε-slack bound written to cachestore; a cached relaxed endpoint replays as an exact distance forever and would poison calibration")
			}
		}
	}
}

// isAddEdge matches (pgraph.Graph).AddEdge and abstract AddEdge methods
// with the (int, int, float64) shape.
func isAddEdge(f *types.Func) bool {
	if f.Name() != "AddEdge" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if f.Pkg() != nil && lintutil.InPgraphPackage(f.Pkg().Path()) {
		return true
	}
	return types.IsInterface(sig.Recv().Type()) && sig.Params().Len() == 3
}

// isWireFloat reports whether t is the api.WireFloat named type.
func isWireFloat(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WireFloat" && obj.Pkg() != nil && lintutil.InAPIPackage(obj.Pkg().Path())
}
