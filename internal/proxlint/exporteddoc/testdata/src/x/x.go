// Package x is outside the documented API surface: undocumented exports
// here are not exporteddoc's business.
package x

type Whatever struct{}

func AlsoWhatever() {}
