// Package core exercises the exporteddoc analyzer inside a documented
// package: every exported identifier must carry a doc comment.
package core

// Session is documented: fine.
type Session struct{}

type Undocumented struct{} // want `exported type Undocumented has no doc comment`

// unexported types never need doc comments.
type internalState struct{}

// NewSession is documented: fine.
func NewSession() *Session { return &Session{} }

func MissingDoc() {} // want `exported function MissingDoc has no doc comment`

func helper() {} // unexported: fine

// Close is documented: fine.
func (s *Session) Close() {}

func (s *Session) Flush() {} // want `exported method Session.Flush has no doc comment`

// Methods on unexported receiver types are skipped: their documentation
// home is whatever exposes them.
func (internalState) Reset() {}

// SchemeNames is an enum-style block: the block comment documents every
// constant in it.
const (
	SchemeNoop = "noop"
	SchemeTri  = "tri"
)

const (
	MaxRetries = 5 // want `exported const MaxRetries has no doc comment`

	// BackoffBase is documented per-spec: fine.
	BackoffBase = 2

	minBudget = 1 // unexported: fine
)

var DefaultSession *Session // want `exported var DefaultSession has no doc comment`

// ErrClosed is documented: fine.
var ErrClosed error

func Allowed() {} //proxlint:allow exporteddoc -- deliberate gap exercised by the directive test
