// Package exporteddoc defines an analyzer that requires a doc comment on
// every exported identifier in the library's documented API packages.
//
// The packages a user of this library programs against — the session
// layer, the oracle transport chain, and the observability subsystem —
// promise that godoc alone is enough to use them; docs/METRICS.md and
// DESIGN.md link into those doc comments rather than duplicating them.
// That promise decays one undocumented export at a time, so this
// analyzer makes it mechanical: an exported function, method, type,
// const, or var in a documented package must carry a doc comment (its
// own, or the enclosing const/var/type block's — the idiomatic form for
// enum-style groups). Packages outside the documented set are untouched;
// a deliberate gap can be annotated with
// //proxlint:allow exporteddoc -- <why>.
package exporteddoc

import (
	"go/ast"
	"go/token"
	"strings"

	"metricprox/internal/analysis"
)

// Analyzer flags undocumented exported identifiers in documented
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "exporteddoc",
	Doc: "require a doc comment on every exported identifier in the documented API " +
		"packages (internal/core, internal/metric, internal/resilient, internal/faultmetric, " +
		"internal/obs, internal/pgraph, internal/bounds, internal/nsw, internal/service, " +
		"internal/proxclient, internal/cluster)",
	Run: run,
}

// documentedSuffixes lists the packages whose exported surface must be
// fully documented. Matching by suffix covers both the real module path
// and testdata fakes, like the other analyzers.
var documentedSuffixes = []string{
	"internal/core",
	"internal/metric",
	"internal/resilient",
	"internal/faultmetric",
	"internal/obs",
	"internal/obs/obshttp",
	"internal/pgraph",
	"internal/bounds",
	"internal/nsw",
	"internal/service",
	"internal/service/api",
	"internal/proxclient",
	"internal/cluster",
}

func run(pass *analysis.Pass) error {
	if !inDocumentedPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				checkGen(pass, d)
			}
		}
	}
	return nil
}

// checkFunc flags an undocumented exported function or method. Methods
// on unexported receiver types are skipped: their documentation home is
// the interface or constructor that exposes them.
func checkFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	name := d.Name.Name
	if d.Recv != nil {
		recv := receiverIdent(d.Recv)
		if recv == nil || !recv.IsExported() {
			return
		}
		kind = "method"
		name = recv.Name + "." + name
	}
	pass.Reportf(d.Name.Pos(),
		"exported %s %s has no doc comment; this package promises a fully documented godoc surface", kind, name)
}

// checkGen flags undocumented exported names in const, var, and type
// declarations. A doc comment on the enclosing block documents every
// spec in it (the idiomatic form for enum-style const groups).
func checkGen(pass *analysis.Pass, d *ast.GenDecl) {
	if d.Doc != nil {
		return
	}
	kind := map[token.Token]string{token.CONST: "const", token.VAR: "var", token.TYPE: "type"}[d.Tok]
	if kind == "" {
		return // import declarations
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil {
				pass.Reportf(s.Name.Pos(),
					"exported type %s has no doc comment; this package promises a fully documented godoc surface", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(),
						"exported %s %s has no doc comment; this package promises a fully documented godoc surface", kind, name.Name)
				}
			}
		}
	}
}

// receiverIdent returns the identifier of the receiver's base type, or
// nil when the receiver is not a named type.
func receiverIdent(recv *ast.FieldList) *ast.Ident {
	if recv == nil || len(recv.List) == 0 {
		return nil
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			t = tt.X
		case *ast.Ident:
			return tt
		default:
			return nil
		}
	}
}

// inDocumentedPackage reports whether path names a package of the
// documented API surface (see documentedSuffixes).
func inDocumentedPackage(path string) bool {
	for _, suffix := range documentedSuffixes {
		if path == "metricprox/"+suffix || strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}
