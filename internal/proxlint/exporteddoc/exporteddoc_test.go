package exporteddoc_test

import (
	"testing"

	"metricprox/internal/proxlint/analyzertest"
	"metricprox/internal/proxlint/exporteddoc"
)

func TestExportedDoc(t *testing.T) {
	analyzertest.Run(t, "testdata", exporteddoc.Analyzer,
		"metricprox/internal/core",
		"x", // outside the documented set: no findings expected
	)
}
