// Package buildinfo renders the shared -version line printed by every
// binary under cmd/. The information comes from
// runtime/debug.ReadBuildInfo, so it is correct for `go install`,
// `go build`, and `go run` alike without any linker-flag plumbing.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String returns the one-line version report for the named tool:
// the tool name, the module version (or "(devel)" for a working-tree
// build), the VCS revision and dirty marker when the build recorded
// them, and the Go toolchain that produced the binary.
func String(tool string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", tool, moduleVersion())
	if rev, dirty, ok := vcsRevision(); ok {
		short := rev
		if len(short) > 12 {
			short = short[:12]
		}
		fmt.Fprintf(&b, " (%s%s)", short, dirty)
	}
	fmt.Fprintf(&b, " %s", runtime.Version())
	return b.String()
}

// readBuildInfo is swapped by tests to exercise the no-build-info path.
var readBuildInfo = debug.ReadBuildInfo

// moduleVersion returns the main module's version, or "(devel)" when the
// binary carries no build info (e.g. some test binaries).
func moduleVersion() string {
	bi, ok := readBuildInfo()
	if !ok || bi.Main.Version == "" {
		return "(devel)"
	}
	return bi.Main.Version
}

// vcsRevision extracts the vcs.revision and vcs.modified settings the Go
// tool stamps into builds made inside a checkout.
func vcsRevision() (rev, dirty string, ok bool) {
	bi, bok := readBuildInfo()
	if !bok {
		return "", "", false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	return rev, dirty, rev != ""
}
