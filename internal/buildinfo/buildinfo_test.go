package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringCarriesToolAndToolchain(t *testing.T) {
	s := String("metricproxd")
	if !strings.HasPrefix(s, "metricproxd ") {
		t.Fatalf("version line %q does not start with the tool name", s)
	}
	if !strings.Contains(s, "go1") {
		t.Fatalf("version line %q does not name the Go toolchain", s)
	}
}

func TestStringWithoutBuildInfo(t *testing.T) {
	old := readBuildInfo
	readBuildInfo = func() (*debug.BuildInfo, bool) { return nil, false }
	defer func() { readBuildInfo = old }()
	if s := String("x"); !strings.Contains(s, "(devel)") {
		t.Fatalf("no-build-info version line %q, want (devel) marker", s)
	}
}

func TestStringReportsRevision(t *testing.T) {
	old := readBuildInfo
	readBuildInfo = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			Main: debug.Module{Version: "v1.2.3"},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "abcdef0123456789"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	}
	defer func() { readBuildInfo = old }()
	s := String("proxbench")
	for _, want := range []string{"v1.2.3", "abcdef012345", "+dirty"} {
		if !strings.Contains(s, want) {
			t.Fatalf("version line %q missing %q", s, want)
		}
	}
}
