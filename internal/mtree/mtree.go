// Package mtree implements an M-tree (Ciaccia, Patella & Zezula, VLDB
// 1997) — the balanced, paged metric index the paper's related-work
// section groups with GNAT among the Voronoi-inspired structures
// (Section 6.1). Every routing entry stores a pivot and a covering radius;
// queries prune whole subtrees whose covering ball cannot intersect the
// query ball, and insertion keeps the tree balanced through node splits
// with pivot promotion.
//
// This implementation is an in-memory rendition with the classic design
// choices: choose-subtree by minimum radius enlargement, split by
// max-separated promotion with nearest-pivot partition, and best-first
// kNN search. Distance evaluations (the expensive resource) are counted.
package mtree

import (
	"math"
	"sort"

	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
)

const capacity = 8 // max entries per node before a split

// Tree is an M-tree over the objects of a metric.Space.
type Tree struct {
	space metric.Space
	root  *node
	size  int
	calls int64
}

type entry struct {
	id     int     // pivot (routing) or object (leaf)
	radius float64 // covering radius; 0 for leaf entries
	child  *node   // nil for leaf entries
}

type node struct {
	leaf    bool
	entries []entry
}

// New returns an empty M-tree over the space.
func New(space metric.Space) *Tree {
	return &Tree{space: space, root: &node{leaf: true}}
}

// Build indexes all objects of the space in id order.
func Build(space metric.Space) *Tree {
	t := New(space)
	for i := 0; i < space.Len(); i++ {
		t.Add(i)
	}
	return t
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// Calls returns the distance evaluations spent (construction + queries).
func (t *Tree) Calls() int64 { return t.calls }

func (t *Tree) d(i, j int) float64 {
	t.calls++
	//proxlint:allow oracleescape -- related-work baseline: the M-tree pays raw construction-time distance calls by design; t.calls keeps its own accounting for the experiments
	return t.space.Distance(i, j)
}

// Add inserts an object.
func (t *Tree) Add(id int) {
	t.size++
	split := t.insert(t.root, id)
	if split != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &node{leaf: false, entries: []entry{
			t.routingEntry(old),
			t.routingEntry(split),
		}}
	}
}

// routingEntry wraps a node into a routing entry, electing its first
// entry's id as pivot and computing the covering radius.
func (t *Tree) routingEntry(n *node) entry {
	pivot := n.entries[0].id
	radius := 0.0
	for _, e := range n.entries {
		r := t.d(pivot, e.id) + e.radius
		if r > radius {
			radius = r
		}
	}
	return entry{id: pivot, radius: radius, child: n}
}

// insert places id under n; if n overflows it splits and the spun-off
// sibling is returned for the parent to absorb.
func (t *Tree) insert(n *node, id int) *node {
	if n.leaf {
		n.entries = append(n.entries, entry{id: id})
		if len(n.entries) > capacity {
			return t.split(n)
		}
		return nil
	}
	// Choose the subtree needing the least radius enlargement; break ties
	// by closer pivot.
	best, bestEnl, bestDist := -1, math.Inf(1), math.Inf(1)
	for i := range n.entries {
		dd := t.d(id, n.entries[i].id)
		enl := dd - n.entries[i].radius
		if enl < 0 {
			enl = 0
		}
		if enl < bestEnl || (fcmp.ExactEq(enl, bestEnl) && dd < bestDist) {
			best, bestEnl, bestDist = i, enl, dd
		}
	}
	e := &n.entries[best]
	if bestDist > e.radius {
		e.radius = bestDist
	}
	if sibling := t.insert(e.child, id); sibling != nil {
		// Refresh the split child's routing entry and absorb the sibling.
		n.entries[best] = t.routingEntry(e.child)
		n.entries = append(n.entries, t.routingEntry(sibling))
		if len(n.entries) > capacity {
			return t.split(n)
		}
	}
	return nil
}

// split partitions n's entries around two max-separated pivots, keeping
// one group in n and returning the other as a new sibling.
func (t *Tree) split(n *node) *node {
	es := n.entries
	// Promotion: the pair of entries with the largest pivot distance.
	p1, p2, worst := 0, 1, -1.0
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			if dd := t.d(es[i].id, es[j].id); dd > worst {
				p1, p2, worst = i, j, dd
			}
		}
	}
	var a, b []entry
	for i, e := range es {
		switch i {
		case p1:
			a = append(a, e)
		case p2:
			b = append(b, e)
		default:
			if t.d(e.id, es[p1].id) <= t.d(e.id, es[p2].id) {
				a = append(a, e)
			} else {
				b = append(b, e)
			}
		}
	}
	n.entries = a
	return &node{leaf: n.leaf, entries: b}
}

// Result is one query answer.
type Result struct {
	ID   int
	Dist float64
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(x, y int) bool {
		return fcmp.TieLess(rs[x].Dist, rs[x].ID, rs[y].Dist, rs[y].ID)
	})
}

// Range returns every indexed object within radius r of the query object
// (the query itself included if indexed), sorted by (dist, id).
func (t *Tree) Range(query int, r float64) []Result {
	var out []Result
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			dd := t.d(query, e.id)
			if n.leaf {
				if dd <= r {
					out = append(out, Result{ID: e.id, Dist: dd})
				}
				continue
			}
			// Subtree ball B(pivot, radius) intersects B(query, r)?
			if dd <= r+e.radius {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	sortResults(out)
	return out
}

// NN returns the k nearest indexed objects to the query object, excluding
// the query itself. Best-first search: subtrees are visited in order of
// their minimum possible distance, and abandoned once that minimum
// exceeds the current k-th distance.
func (t *Tree) NN(query, k int) []Result {
	type frontier struct {
		n      *node
		minday float64 // lower bound on any object distance in n
	}
	var best []Result
	worst := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].Dist
	}
	heap := []frontier{{n: t.root, minday: 0}}
	pop := func() frontier {
		bi := 0
		for i := range heap {
			if heap[i].minday < heap[bi].minday {
				bi = i
			}
		}
		f := heap[bi]
		heap[bi] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		return f
	}
	for len(heap) > 0 {
		f := pop()
		if f.minday > worst() {
			continue
		}
		for _, e := range f.n.entries {
			dd := t.d(query, e.id)
			if f.n.leaf {
				if e.id != query && dd < worst() {
					best = append(best, Result{ID: e.id, Dist: dd})
					sortResults(best)
					if len(best) > k {
						best = best[:k]
					}
				}
				continue
			}
			if min := dd - e.radius; min <= worst() {
				if min < 0 {
					min = 0
				}
				heap = append(heap, frontier{n: e.child, minday: min})
			}
		}
	}
	return best
}
