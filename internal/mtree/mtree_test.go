package mtree

import (
	"math/rand"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

func refRange(m metric.Space, q int, r float64) map[int]float64 {
	out := map[int]float64{}
	for x := 0; x < m.Len(); x++ {
		if d := m.Distance(q, x); d <= r {
			out[x] = d
		}
	}
	return out
}

func TestRangeMatchesBruteForce(t *testing.T) {
	m := datasets.RandomMetric(150, 81)
	tree := Build(m)
	if tree.Len() != 150 {
		t.Fatalf("Len = %d", tree.Len())
	}
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 30; trial++ {
		q := rng.Intn(150)
		r := 0.02 + rng.Float64()*0.4
		got := tree.Range(q, r)
		want := refRange(m, q, r)
		if len(got) != len(want) {
			t.Fatalf("q=%d r=%v: %d results, want %d", q, r, len(got), len(want))
		}
		for _, res := range got {
			if wd, ok := want[res.ID]; !ok || wd != res.Dist {
				t.Fatalf("q=%d r=%v: wrong result %+v", q, r, res)
			}
		}
	}
}

func TestNNMatchesBruteForce(t *testing.T) {
	m := datasets.RandomMetric(120, 83)
	tree := Build(m)
	for q := 0; q < 120; q += 13 {
		got := tree.NN(q, 5)
		if len(got) != 5 {
			t.Fatalf("q=%d: %d results", q, len(got))
		}
		// Brute-force reference.
		type res struct {
			id int
			d  float64
		}
		var all []res
		for x := 0; x < 120; x++ {
			if x != q {
				all = append(all, res{id: x, d: m.Distance(q, x)})
			}
		}
		for i := 0; i < 5; i++ {
			bi := i
			for j := i + 1; j < len(all); j++ {
				if all[j].d < all[bi].d {
					bi = j
				}
			}
			all[i], all[bi] = all[bi], all[i]
			if got[i].ID != all[i].id {
				t.Fatalf("q=%d: NN[%d] = %d (%v), want %d (%v)",
					q, i, got[i].ID, got[i].Dist, all[i].id, all[i].d)
			}
		}
	}
}

func TestNNPrunes(t *testing.T) {
	m := datasets.SFPOI(400, 84)
	tree := Build(m)
	before := tree.Calls()
	tree.NN(7, 3)
	queryCalls := tree.Calls() - before
	if queryCalls >= 399 {
		t.Fatalf("M-tree NN made %d calls — no pruning over a linear scan", queryCalls)
	}
}

func TestCoveringRadiiInvariant(t *testing.T) {
	// Every object under a routing entry must lie within its covering
	// radius — the invariant all pruning rests on.
	m := datasets.RandomMetric(200, 85)
	tree := Build(m)
	var check func(n *node) []int
	check = func(n *node) []int {
		if n.leaf {
			ids := make([]int, len(n.entries))
			for i, e := range n.entries {
				ids[i] = e.id
			}
			return ids
		}
		var all []int
		for _, e := range n.entries {
			under := check(e.child)
			for _, id := range under {
				if d := m.Distance(e.id, id); d > e.radius+1e-9 {
					t.Fatalf("object %d at %v outside covering radius %v of pivot %d",
						id, d, e.radius, e.id)
				}
			}
			all = append(all, under...)
		}
		return all
	}
	if got := len(check(tree.root)); got != 200 {
		t.Fatalf("tree holds %d objects, want 200", got)
	}
}

func TestNodeCapacityInvariant(t *testing.T) {
	m := datasets.RandomMetric(300, 86)
	tree := Build(m)
	var walk func(n *node)
	walk = func(n *node) {
		if len(n.entries) > capacity {
			t.Fatalf("node holds %d entries, capacity %d", len(n.entries), capacity)
		}
		if !n.leaf {
			for _, e := range n.entries {
				walk(e.child)
			}
		}
	}
	walk(tree.root)
}

func TestSmallTrees(t *testing.T) {
	m := datasets.RandomMetric(3, 87)
	tree := Build(m)
	if got := tree.NN(0, 2); len(got) != 2 {
		t.Fatalf("n=3 NN returned %d", len(got))
	}
	if got := tree.Range(0, 1.0); len(got) != 3 {
		t.Fatalf("full-radius range returned %d", len(got))
	}
}
