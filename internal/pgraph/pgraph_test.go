package pgraph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("N,M = %d,%d; want 4,0", g.N(), g.M())
	}
	if g.Known(0, 1) {
		t.Fatal("edge known in empty graph")
	}
	dist := make([]float64, 4)
	g.Dijkstra(0, dist)
	if dist[0] != 0 || !math.IsInf(dist[1], 1) {
		t.Fatalf("dist = %v; want [0 +Inf +Inf +Inf]", dist)
	}
}

func TestKeySymmetry(t *testing.T) {
	if Key(3, 7) != Key(7, 3) {
		t.Fatal("Key not symmetric")
	}
	if Key(3, 7) == Key(3, 8) {
		t.Fatal("Key collision")
	}
}

func TestAddEdge(t *testing.T) {
	g := New(5)
	g.AddEdge(1, 3, 0.8)
	g.AddEdge(3, 4, 0.1)
	if w, ok := g.Weight(3, 1); !ok || w != 0.8 {
		t.Fatalf("Weight(3,1) = %v,%v; want 0.8,true", w, ok)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if g.Degree(3) != 2 || g.Degree(0) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(3), g.Degree(0))
	}
	// Duplicate with equal weight: no-op.
	g.AddEdge(3, 1, 0.8)
	if g.M() != 2 {
		t.Fatalf("duplicate add changed M to %d", g.M())
	}
	// Edge list stores U < V.
	for _, e := range g.Edges() {
		if e.U >= e.V {
			t.Fatalf("edge not normalised: %+v", e)
		}
	}
}

func TestAddEdgePanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	g := New(3)
	assertPanics("self edge", func() { g.AddEdge(1, 1, 0.5) })
	assertPanics("out of range", func() { g.AddEdge(0, 3, 0.5) })
	g.AddEdge(0, 1, 0.5)
	assertPanics("conflicting weight", func() { g.AddEdge(0, 1, 0.6) })
}

// paperGraph builds the 7-object running example of Figure 1 (weights are
// representative; the test only relies on values we set here).
func paperGraph() *Graph {
	g := New(7)
	g.AddEdge(1, 3, 0.8)
	g.AddEdge(3, 4, 0.1)
	g.AddEdge(2, 3, 0.3)
	g.AddEdge(2, 4, 0.4)
	g.AddEdge(1, 5, 0.2)
	g.AddEdge(2, 5, 0.9)
	g.AddEdge(0, 6, 0.5)
	g.AddEdge(0, 1, 0.7)
	return g
}

func TestDijkstraPaperExample(t *testing.T) {
	g := paperGraph()
	dist := make([]float64, 7)
	g.Dijkstra(1, dist)
	// 1->3 direct 0.8; via 2: 1->5 (0.2) + 5->2 (0.9) + 2->3 (0.3) = 1.4.
	if dist[3] != 0.8 {
		t.Fatalf("dist[3] = %v, want 0.8", dist[3])
	}
	if got, want := dist[4], 0.8+0.1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("dist[4] = %v, want %v", got, want)
	}
	if dist[0] != 0.7 {
		t.Fatalf("dist[0] = %v, want 0.7", dist[0])
	}
	if got, want := dist[6], 0.7+0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("dist[6] = %v, want %v", got, want)
	}
}

// bellmanFord is a reference shortest-path implementation for cross-checks.
func bellmanFord(g *Graph, src int) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.Edges() {
			if d := dist[e.U] + e.W; d < dist[e.V] {
				dist[e.V] = d
				changed = true
			}
			if d := dist[e.V] + e.W; d < dist[e.U] {
				dist[e.U] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := New(n)
		m := rng.Intn(n * 2)
		for e := 0; e < m; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j || g.Known(i, j) {
				continue
			}
			g.AddEdge(i, j, rng.Float64())
		}
		src := rng.Intn(n)
		got := make([]float64, n)
		g.Dijkstra(src, got)
		want := bellmanFord(g, src)
		for v := range got {
			if math.Abs(got[v]-want[v]) > 1e-9 && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("n=%d src=%d v=%d: dijkstra %v vs bellman-ford %v", n, src, v, got[v], want[v])
			}
		}
	}
}

func TestRunToEarlyExit(t *testing.T) {
	g := paperGraph()
	s := NewSearcher(g)
	dist := make([]float64, 7)
	d := s.RunTo(1, 4, dist)
	if math.Abs(d-0.9) > 1e-12 {
		t.Fatalf("RunTo(1,4) = %v, want 0.9", d)
	}
	// Unreachable target.
	g2 := New(4)
	g2.AddEdge(0, 1, 0.3)
	s2 := NewSearcher(g2)
	dist2 := make([]float64, 4)
	if d := s2.RunTo(0, 3, dist2); !math.IsInf(d, 1) {
		t.Fatalf("RunTo to unreachable = %v, want +Inf", d)
	}
}

func TestSearcherReuse(t *testing.T) {
	g := paperGraph()
	s := NewSearcher(g)
	a := make([]float64, 7)
	b := make([]float64, 7)
	s.Run(1, a)
	s.Run(1, b) // second run must be identical
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reused Searcher diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Searcher must observe edges added after construction.
	g.AddEdge(1, 6, 0.05)
	s.Run(1, a)
	if a[6] != 0.05 {
		t.Fatalf("Searcher missed new edge: dist[6] = %v", a[6])
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := New(10)
	for _, v := range []int{7, 2, 9, 4} {
		g.AddEdge(5, v, float64(v)/10)
	}
	nbrs, weights := g.Row(5)
	keys := make([]int, len(nbrs))
	for i, v := range nbrs {
		keys[i] = int(v)
	}
	if !sort.IntsAreSorted(keys) {
		t.Fatalf("adjacency keys unsorted: %v", keys)
	}
	for i, v := range nbrs {
		if w, ok := g.Weight(5, int(v)); !ok || w != weights[i] {
			t.Fatalf("row weight mismatch at %d: %v vs known %v", v, weights[i], w)
		}
	}
}

func TestQuickTriangleClosure(t *testing.T) {
	// Property: shortest-path distances satisfy the triangle inequality
	// among themselves (they form a metric closure on the reachable set).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		g := New(n)
		for e := 0; e < 24; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j || g.Known(i, j) {
				continue
			}
			g.AddEdge(i, j, rng.Float64())
		}
		sp := make([][]float64, n)
		for i := range sp {
			sp[i] = make([]float64, n)
			g.Dijkstra(i, sp[i])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if sp[i][j] > sp[i][k]+sp[k][j]+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
