package pgraph

// flatStore is the CSR-style flat adjacency layout behind Graph: every
// node's neighbour list lives as a sorted (neighbour, weight) run inside
// two shared slabs, replacing the former red–black-tree-per-node layout.
//
// Why flat: the Tri Scheme's bound query is a sorted merge of two
// adjacency lists, and on the service hot path that merge runs millions of
// times per second. A balanced BST pays a pointer dereference, an
// iterator-stack push/pop, and (in Go) iterator allocations per visited
// neighbour; a sorted slice run pays one predictable sequential read. The
// paper's O(log n)-insert argument for the BST still holds asymptotically,
// but the constant factors on query — the factor every proximity algorithm
// multiplies (Theorem 4.2) — favour the flat layout by a wide margin.
//
// Layout and growth:
//
//   - rows[u] names u's run: offset into the slabs, live length, and
//     reserved capacity. Runs are kept sorted by neighbour id.
//   - An insert into a full run relocates it to fresh space at the slab
//     tail with doubled capacity (epoch-based growth: the epoch counter
//     advances on every relocation, so stale row views are detectable).
//     The abandoned cells become garbage.
//   - When garbage exceeds half the slab, the whole store compacts into
//     node order with a little per-row headroom (amortized compaction).
//     Relocation is O(deg) and doubling makes its amortized cost O(1) per
//     insert; compaction is O(total) and halving makes it amortized O(1)
//     per relocated cell.
//
// Sorted-insert costs O(deg) memmove instead of the tree's O(log deg)
// pointer surgery, but the partial graph's expected degree is m/n (the
// same figure Theorem 4.2's query bound rests on) and a memmove of a few
// cache lines is cheaper than rebalancing in practice; the bench-smoke CI
// job pins the end-to-end win.
//
// flatStore is not safe for concurrent mutation; Graph's owner (the
// Session lock) serialises writers, matching the previous layout's
// contract.
type flatStore struct {
	rows  []rowRef
	nbr   []int32
	wt    []float64
	live  int    // cells referenced by live runs (sum of rows[].len)
	dead  int    // cells abandoned by relocations, reclaimed by compaction
	epoch uint64 // advanced on every relocation or compaction
}

// rowRef names one node's run inside the slabs.
type rowRef struct {
	off int32 // first cell of the run
	len int32 // live cells
	cap int32 // reserved cells (len <= cap)
}

// minRowCap is the capacity a row receives on its first insert. Four
// cells cover the long tail of low-degree nodes without a relocation.
const minRowCap = 4

// newFlatStore returns an empty store over n nodes.
func newFlatStore(n int) *flatStore {
	return &flatStore{rows: make([]rowRef, n)}
}

// degree returns the number of neighbours of u.
func (f *flatStore) degree(u int) int { return int(f.rows[u].len) }

// row returns u's sorted neighbour ids and the matching weights. The
// slices alias the store's slabs: they are valid until the next insert or
// compaction (watch epoch to detect invalidation) and must not be
// modified.
func (f *flatStore) row(u int) ([]int32, []float64) {
	r := f.rows[u]
	return f.nbr[r.off : r.off+r.len : r.off+r.len], f.wt[r.off : r.off+r.len : r.off+r.len]
}

// get returns the weight stored under neighbour v of u.
func (f *flatStore) get(u, v int) (float64, bool) {
	nb, ws := f.row(u)
	if i, ok := searchInt32(nb, int32(v)); ok {
		return ws[i], true
	}
	return 0, false
}

// searchInt32 binary-searches a sorted run for key, returning its index
// or the insertion point.
func searchInt32(s []int32, key int32) (int, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo] == key
}

// insert records neighbour v of u with weight w, keeping the run sorted.
// The caller (Graph.AddEdge) guarantees v is not already present.
func (f *flatStore) insert(u, v int, w float64) {
	r := &f.rows[u]
	if r.len == r.cap {
		f.relocate(u)
		r = &f.rows[u]
	}
	nb := f.nbr[r.off : r.off+r.len]
	pos, _ := searchInt32(nb, int32(v))
	// Shift the tail one cell right inside the reserved capacity.
	base := int(r.off)
	copy(f.nbr[base+pos+1:base+int(r.len)+1], f.nbr[base+pos:base+int(r.len)])
	copy(f.wt[base+pos+1:base+int(r.len)+1], f.wt[base+pos:base+int(r.len)])
	f.nbr[base+pos] = int32(v)
	f.wt[base+pos] = w
	r.len++
	f.live++
}

// relocate moves u's run to fresh slab space with doubled capacity,
// abandoning the old cells, and compacts the slab when garbage dominates.
func (f *flatStore) relocate(u int) {
	r := f.rows[u]
	newCap := int32(minRowCap)
	if r.cap > 0 {
		newCap = r.cap * 2
	}
	off := int32(len(f.nbr))
	f.nbr = append(f.nbr, make([]int32, newCap)...)
	f.wt = append(f.wt, make([]float64, newCap)...)
	copy(f.nbr[off:off+r.len], f.nbr[r.off:r.off+r.len])
	copy(f.wt[off:off+r.len], f.wt[r.off:r.off+r.len])
	f.rows[u] = rowRef{off: off, len: r.len, cap: newCap}
	f.dead += int(r.cap)
	f.epoch++
	if f.dead > len(f.nbr)/2 && len(f.nbr) > 1024 {
		f.compact()
	}
}

// compact rebuilds the slabs in node order, reclaiming abandoned cells.
// Every surviving row keeps 25% headroom (at least one cell) so the next
// insert does not immediately relocate it again.
func (f *flatStore) compact() {
	total := 0
	for i := range f.rows {
		if l := int(f.rows[i].len); l > 0 {
			total += l + l/4 + 1
		}
	}
	nbr := make([]int32, 0, total)
	wt := make([]float64, 0, total)
	for i := range f.rows {
		r := &f.rows[i]
		if r.len == 0 {
			*r = rowRef{}
			continue
		}
		newCap := r.len + r.len/4 + 1
		off := int32(len(nbr))
		nbr = append(nbr, f.nbr[r.off:r.off+r.len]...)
		wt = append(wt, f.wt[r.off:r.off+r.len]...)
		nbr = append(nbr, make([]int32, newCap-r.len)...)
		wt = append(wt, make([]float64, newCap-r.len)...)
		*r = rowRef{off: off, len: r.len, cap: newCap}
	}
	f.nbr, f.wt = nbr, wt
	f.dead = 0
	f.epoch++
}

// StoreStats reports the flat store's occupancy for benchmarks, tests,
// and capacity planning.
type StoreStats struct {
	// Live is the number of adjacency cells referenced by live rows
	// (2·M for an undirected partial graph).
	Live int
	// Slab is the total slab size in cells, including reserved headroom
	// and garbage awaiting compaction.
	Slab int
	// Dead is the number of garbage cells left behind by row relocations.
	Dead int
	// Epoch counts row relocations and compactions since creation; row
	// views obtained before a growth event may alias stale memory.
	Epoch uint64
}

// stats snapshots the store's occupancy.
func (f *flatStore) stats() StoreStats {
	return StoreStats{Live: f.live, Slab: len(f.nbr), Dead: f.dead, Epoch: f.epoch}
}
