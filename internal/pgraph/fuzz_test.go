package pgraph

import (
	"math"
	"testing"

	"metricprox/internal/rbtree"
)

// refGraph is the differential reference for the flat CSR store: one
// red–black tree per node (the layout the store replaced) plus a plain
// map of packed keys. It is implemented independently of flatStore so a
// bug must occur twice, identically, to escape the comparison.
type refGraph struct {
	n     int
	adj   []*rbtree.Tree
	known map[int64]float64
}

func newRefGraph(n int) *refGraph {
	r := &refGraph{n: n, adj: make([]*rbtree.Tree, n), known: make(map[int64]float64)}
	for i := range r.adj {
		r.adj[i] = rbtree.New()
	}
	return r
}

func (r *refGraph) addEdge(i, j int, w float64) {
	r.known[Key(i, j)] = w
	r.adj[i].Put(j, w)
	r.adj[j].Put(i, w)
}

// triIntersect is the reference triangle intersection: a sorted merge of
// two rbtree iterators, exactly the pre-CSR Tri walk.
func (r *refGraph) triIntersect(i, j int) (lb, ub float64) {
	lb, ub = 0, 1
	iti, itj := r.adj[i].Iter(), r.adj[j].Iter()
	defer iti.Release()
	defer itj.Release()
	ki, wi, oki := iti.Next()
	kj, wj, okj := itj.Next()
	for oki && okj {
		switch {
		case ki == kj:
			if d := math.Abs(wi - wj); d > lb {
				lb = d
			}
			if s := wi + wj; s < ub {
				ub = s
			}
			ki, wi, oki = iti.Next()
			kj, wj, okj = itj.Next()
		case ki < kj:
			ki, wi, oki = iti.Next()
		default:
			kj, wj, okj = itj.Next()
		}
	}
	return lb, ub
}

// FuzzStoreVsRBTree feeds an arbitrary interleaved schedule of edge
// insertions and queries to the flat CSR store and to the rbtree+map
// reference, and fails on any divergence in Weight, Degree, row order and
// content, or the Tri-style intersection. The byte stream is decoded two
// bytes per operation, so the fuzzer explores relocation and compaction
// schedules (many inserts on few nodes) as well as query-heavy mixes.
func FuzzStoreVsRBTree(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 0, 251, 1})
	f.Add([]byte{7, 7, 7, 8, 7, 9, 7, 10, 7, 11, 7, 12, 250, 7})
	f.Add([]byte{0, 255, 16, 32, 250, 16, 252, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 24
		g := New(n)
		ref := newRefGraph(n)
		nextW := 0.0 // distinct deterministic weights, 0 < w ≤ 1

		for k := 0; k+1 < len(data); k += 2 {
			a, b := data[k], data[k+1]
			switch {
			case a < 250: // insert edge (a%n, b%n) if new
				i, j := int(a)%n, int(b)%n
				if i == j || g.Known(i, j) {
					continue
				}
				nextW += 1.0 / 1024
				if nextW > 1 {
					nextW = 1.0 / 1024
				}
				g.AddEdge(i, j, nextW)
				ref.addEdge(i, j, nextW)
			case a == 250: // full-row audit of node b%n
				u := int(b) % n
				checkRow(t, g, ref, u)
			case a == 251: // intersection audit of (b%n, b%n+1)
				i := int(b) % n
				j := (i + 1) % n
				if i == j {
					continue
				}
				checkIntersect(t, g, ref, i, j)
			default: // global audit
				checkAll(t, g, ref)
			}
		}
		checkAll(t, g, ref)
	})
}

func checkRow(t *testing.T, g *Graph, ref *refGraph, u int) {
	t.Helper()
	if got, want := g.Degree(u), ref.adj[u].Len(); got != want {
		t.Fatalf("Degree(%d) = %d, reference %d", u, got, want)
	}
	nbrs, weights := g.Row(u)
	x := 0
	it := ref.adj[u].Iter()
	defer it.Release()
	for k, w, ok := it.Next(); ok; k, w, ok = it.Next() {
		if x >= len(nbrs) {
			t.Fatalf("Row(%d) shorter than reference ascend", u)
		}
		if int(nbrs[x]) != k || weights[x] != w {
			t.Fatalf("Row(%d)[%d] = (%d,%v), reference (%d,%v)", u, x, nbrs[x], weights[x], k, w)
		}
		x++
	}
	if x != len(nbrs) {
		t.Fatalf("Row(%d) longer than reference ascend (%d > %d)", u, len(nbrs), x)
	}
	for x := 1; x < len(nbrs); x++ {
		if nbrs[x-1] >= nbrs[x] {
			t.Fatalf("Row(%d) not strictly ascending at %d: %v", u, x, nbrs)
		}
	}
}

func checkIntersect(t *testing.T, g *Graph, ref *refGraph, i, j int) {
	t.Helper()
	// Flat-row sorted merge over the store under test.
	lb, ub := 0.0, 1.0
	ni, wi := g.Row(i)
	nj, wj := g.Row(j)
	x, y := 0, 0
	for x < len(ni) && y < len(nj) {
		switch {
		case ni[x] == nj[y]:
			if d := math.Abs(wi[x] - wj[y]); d > lb {
				lb = d
			}
			if s := wi[x] + wj[y]; s < ub {
				ub = s
			}
			x++
			y++
		case ni[x] < nj[y]:
			x++
		default:
			y++
		}
	}
	rlb, rub := ref.triIntersect(i, j)
	if lb != rlb || ub != rub {
		t.Fatalf("intersection (%d,%d) = [%v,%v], reference [%v,%v]", i, j, lb, ub, rlb, rub)
	}
}

func checkAll(t *testing.T, g *Graph, ref *refGraph) {
	t.Helper()
	for k, w := range ref.known {
		i, j := int(k>>32), int(k&0xffffffff)
		if got, ok := g.Weight(i, j); !ok || got != w {
			t.Fatalf("Weight(%d,%d) = (%v,%v), reference %v", i, j, got, ok, w)
		}
		if got, ok := g.Neighbor(i, j); !ok || got != w {
			t.Fatalf("Neighbor(%d,%d) = (%v,%v), reference %v", i, j, got, ok, w)
		}
	}
	if g.M() != len(ref.known) {
		t.Fatalf("M() = %d, reference %d", g.M(), len(ref.known))
	}
	for u := 0; u < g.N(); u++ {
		checkRow(t, g, ref, u)
	}
	st := g.Stats()
	if st.Live != 2*g.M() {
		t.Fatalf("stats: Live = %d, want 2·M = %d", st.Live, 2*g.M())
	}
	if st.Slab > 1024 && st.Dead > st.Slab/2 {
		t.Fatalf("stats: compaction invariant violated: %+v", st)
	}
}
