package pgraph

import (
	"math/rand"
	"sort"
	"testing"
)

// TestFlatStoreSortedRows checks that every row stays sorted and complete
// under a random insertion order.
func TestFlatStoreSortedRows(t *testing.T) {
	const n = 64
	g := New(n)
	rng := rand.New(rand.NewSource(11))
	ref := make(map[int]map[int]float64)
	for e := 0; e < 600; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || g.Known(i, j) {
			continue
		}
		w := rng.Float64()
		g.AddEdge(i, j, w)
		for _, p := range [][2]int{{i, j}, {j, i}} {
			if ref[p[0]] == nil {
				ref[p[0]] = make(map[int]float64)
			}
			ref[p[0]][p[1]] = w
		}
	}
	for u := 0; u < n; u++ {
		nbrs, weights := g.Row(u)
		if len(nbrs) != len(ref[u]) || g.Degree(u) != len(ref[u]) {
			t.Fatalf("node %d: row len %d, degree %d, want %d", u, len(nbrs), g.Degree(u), len(ref[u]))
		}
		for x := 1; x < len(nbrs); x++ {
			if nbrs[x-1] >= nbrs[x] {
				t.Fatalf("node %d: row not strictly sorted at %d: %v", u, x, nbrs)
			}
		}
		for x, v := range nbrs {
			if w, ok := ref[u][int(v)]; !ok || w != weights[x] {
				t.Fatalf("node %d neighbour %d: weight %v, want %v (present %v)", u, v, weights[x], w, ok)
			}
		}
	}
}

// TestFlatStoreGrowthEpoch checks that relocations advance the epoch and
// that garbage is eventually compacted away.
func TestFlatStoreGrowthEpoch(t *testing.T) {
	const n = 512
	g := New(n)
	if g.Stats().Epoch != 0 {
		t.Fatalf("fresh store has nonzero epoch: %+v", g.Stats())
	}
	rng := rand.New(rand.NewSource(7))
	for g.M() < 20000 {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j && !g.Known(i, j) {
			g.AddEdge(i, j, rng.Float64())
		}
	}
	st := g.Stats()
	if st.Epoch == 0 {
		t.Fatal("no growth events despite thousands of inserts")
	}
	if st.Live != 2*g.M() {
		t.Fatalf("live cells %d, want 2*M = %d", st.Live, 2*g.M())
	}
	if st.Slab > 1024 && st.Dead > st.Slab/2 {
		t.Fatalf("compaction never ran: %d dead of %d slab cells", st.Dead, st.Slab)
	}
}

// TestFlatStoreCompaction drives one node's row through repeated doublings
// so the slab accumulates garbage and must compact, then checks the rows
// survived the move intact.
func TestFlatStoreCompaction(t *testing.T) {
	const n = 600
	g := New(n)
	// Star around node 0: its row doubles ~log2(n) times, abandoning
	// capacity each time, while the leaves keep minimal rows.
	for v := 1; v < n; v++ {
		g.AddEdge(0, v, float64(v))
	}
	st := g.Stats()
	if st.Dead > st.Slab/2 && st.Slab > 1024 {
		t.Fatalf("store left more than half the slab dead: %+v", st)
	}
	nbrs, weights := g.Row(0)
	if len(nbrs) != n-1 {
		t.Fatalf("hub row has %d entries, want %d", len(nbrs), n-1)
	}
	for x, v := range nbrs {
		if int(v) != x+1 || weights[x] != float64(v) {
			t.Fatalf("hub row corrupted at %d: (%d, %v)", x, v, weights[x])
		}
	}
	for v := 1; v < n; v++ {
		nb, ws := g.Row(v)
		if len(nb) != 1 || nb[0] != 0 || ws[0] != float64(v) {
			t.Fatalf("leaf %d row corrupted: %v %v", v, nb, ws)
		}
	}
}

// TestNeighborLookup checks the binary-search lookup against the packed
// known map.
func TestNeighborLookup(t *testing.T) {
	g := New(16)
	g.AddEdge(3, 7, 0.25)
	g.AddEdge(3, 1, 0.5)
	if w, ok := g.Neighbor(3, 7); !ok || w != 0.25 {
		t.Fatalf("Neighbor(3,7) = %v,%v", w, ok)
	}
	if w, ok := g.Neighbor(7, 3); !ok || w != 0.25 {
		t.Fatalf("Neighbor(7,3) = %v,%v", w, ok)
	}
	if _, ok := g.Neighbor(3, 2); ok {
		t.Fatal("Neighbor reported an absent edge")
	}
	if _, ok := g.Neighbor(5, 6); ok {
		t.Fatal("Neighbor reported an edge on an isolated node")
	}
}

// TestDijkstraConvenienceReuse verifies the lazily cached searcher path
// gives the same answers as a dedicated Searcher and allocates only on
// first use.
func TestDijkstraConvenienceReuse(t *testing.T) {
	g := paperGraph()
	a := make([]float64, 7)
	b := make([]float64, 7)
	g.Dijkstra(1, a) // builds the cached searcher
	s := NewSearcher(g)
	s.Run(1, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cached searcher diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	allocs := testing.AllocsPerRun(50, func() { g.Dijkstra(1, a) })
	if allocs > 0 {
		t.Fatalf("warm convenience Dijkstra allocates %v per run, want 0", allocs)
	}
}

// TestRowViewsMatchSortedScan cross-checks Row against a sort of the edge
// list after heavy churn (many relocations and at least one compaction).
func TestRowViewsMatchSortedScan(t *testing.T) {
	const n = 300
	g := New(n)
	rng := rand.New(rand.NewSource(23))
	for g.M() < 9000 {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j && !g.Known(i, j) {
			g.AddEdge(i, j, rng.Float64())
		}
	}
	want := make(map[int][]int)
	for _, e := range g.Edges() {
		want[e.U] = append(want[e.U], e.V)
		want[e.V] = append(want[e.V], e.U)
	}
	for u := 0; u < n; u++ {
		sort.Ints(want[u])
		nbrs, _ := g.Row(u)
		if len(nbrs) != len(want[u]) {
			t.Fatalf("node %d: %d neighbours, want %d", u, len(nbrs), len(want[u]))
		}
		for x, v := range nbrs {
			if int(v) != want[u][x] {
				t.Fatalf("node %d position %d: %d, want %d", u, x, v, want[u][x])
			}
		}
	}
}
