// Package pgraph implements the partial distance graph of Section 3.1 of
// the paper: a weighted complete graph over n objects in which only a
// subset of the edges (the distances resolved so far by the oracle) are
// known. It is the shared data model of every bound-computation scheme.
//
// Each node's adjacency is a sorted run inside a CSR-style flat store
// (see csr.go): sorted neighbour/weight slabs with epoch-based growth and
// amortized compaction, serving the Tri Scheme's merge intersection and
// SPLUB's Dijkstra relaxation allocation-free. Edge weights are
// additionally indexed by a packed (i,j) key for O(1) exact lookup, and
// the append-only edge list serves SPLUB's "scan all known edges" step.
// (The original red–black-tree-per-node layout survives in
// internal/rbtree as the differential-test reference.)
//
// The graph is strictly append-only: a resolved distance is a fact, so
// edges are added and never removed or reweighted, which is what makes
// bound caching in the schemes above sound ("bounds only tighten").
package pgraph
