// Package pgraph implements the partial distance graph of Section 3.1 of
// the paper: a weighted complete graph over n objects in which only a
// subset of the edges (the distances resolved so far by the oracle) are
// known. It is the shared data model of every bound-computation scheme.
//
// Each node's adjacency is kept both as a flat edge list (for SPLUB's
// "scan all known edges" step) and as a sorted structure (a red–black tree,
// for the Tri Scheme's merge intersection). Edge weights are additionally
// indexed by a packed (i,j) key for O(1) lookup.
package pgraph

import (
	"fmt"
	"math"

	"metricprox/internal/fcmp"
	"metricprox/internal/pqueue"
	"metricprox/internal/rbtree"
)

// Edge is a known, weighted edge of the partial graph with U < V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is a partial distance graph over objects 0..n-1.
type Graph struct {
	n     int
	adj   []*rbtree.Tree // adj[u]: neighbour -> weight, sorted by neighbour
	edges []Edge         // append-only list of known edges
	known map[int64]float64
}

// New returns an empty partial graph over n objects.
func New(n int) *Graph {
	g := &Graph{
		n:     n,
		adj:   make([]*rbtree.Tree, n),
		known: make(map[int64]float64),
	}
	for i := range g.adj {
		g.adj[i] = rbtree.New()
	}
	return g
}

// Key packs an unordered pair into a single map key.
func Key(i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	return int64(i)<<32 | int64(j)
}

// N returns the number of objects.
func (g *Graph) N() int { return g.n }

// M returns the number of known edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the known edges. The returned slice is owned by the graph
// and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Weight returns the known weight of edge (i, j), if resolved.
func (g *Graph) Weight(i, j int) (float64, bool) {
	w, ok := g.known[Key(i, j)]
	return w, ok
}

// Known reports whether the distance between i and j has been resolved.
func (g *Graph) Known(i, j int) bool {
	_, ok := g.known[Key(i, j)]
	return ok
}

// Degree returns the number of known edges incident on u.
func (g *Graph) Degree(u int) int { return g.adj[u].Len() }

// Adjacency returns u's sorted adjacency tree (neighbour -> weight). The
// tree is owned by the graph and must not be modified by callers.
func (g *Graph) Adjacency(u int) *rbtree.Tree { return g.adj[u] }

// AddEdge records the resolved distance w between i and j.
// Re-adding an existing edge with the same weight is a no-op; re-adding
// with a different weight panics, because a metric distance is immutable —
// a disagreement means the caller's oracle is not a function.
func (g *Graph) AddEdge(i, j int, w float64) {
	if i == j {
		panic("pgraph: self edge")
	}
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		panic(fmt.Sprintf("pgraph: edge (%d,%d) outside universe of %d objects", i, j, g.n))
	}
	k := Key(i, j)
	if old, ok := g.known[k]; ok {
		if !fcmp.ExactEq(old, w) {
			panic(fmt.Sprintf("pgraph: conflicting weights %v and %v for edge (%d,%d)", old, w, i, j))
		}
		return
	}
	g.known[k] = w
	g.adj[i].Put(j, w)
	g.adj[j].Put(i, w)
	if i > j {
		i, j = j, i
	}
	g.edges = append(g.edges, Edge{U: i, V: j, W: w})
}

// Dijkstra computes single-source shortest paths over the known edges from
// src and stores them into dist, which must have length n. Unreachable
// nodes get +Inf. The scratch queue is allocated per call; for the hot path
// use a Searcher.
func (g *Graph) Dijkstra(src int, dist []float64) {
	s := NewSearcher(g)
	s.Run(src, dist)
}

// Searcher runs repeated Dijkstra searches over the same graph, reusing its
// priority queue allocation. SPLUB issues two searches per bound query, so
// this reuse matters.
type Searcher struct {
	g *Graph
	q *pqueue.IndexedMin
}

// NewSearcher returns a Searcher bound to g. The Searcher sees edges added
// to g after construction (it reads the live adjacency).
func NewSearcher(g *Graph) *Searcher {
	return &Searcher{g: g, q: pqueue.NewIndexedMin(g.n)}
}

// Run computes shortest path distances from src into dist (length n).
func (s *Searcher) Run(src int, dist []float64) {
	g := s.g
	if len(dist) != g.n {
		panic("pgraph: dist slice has wrong length")
	}
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := s.q
	for q.Len() > 0 { // drain any residue from an aborted prior run
		q.Pop()
	}
	q.Push(src, 0)
	for q.Len() > 0 {
		u, du, _ := q.Pop()
		if du > dist[u] {
			continue
		}
		g.adj[u].Ascend(func(v int, w float64) bool {
			if nd := du + w; nd < dist[v] {
				dist[v] = nd
				q.Push(v, nd)
			}
			return true
		})
	}
}

// RunTo computes shortest path distances from src but may stop early once
// target is settled; entries for unsettled nodes are upper bounds or +Inf.
// It returns the shortest-path distance to target (possibly +Inf).
func (s *Searcher) RunTo(src, target int, dist []float64) float64 {
	g := s.g
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := s.q
	for q.Len() > 0 {
		q.Pop()
	}
	q.Push(src, 0)
	for q.Len() > 0 {
		u, du, _ := q.Pop()
		if du > dist[u] {
			continue
		}
		if u == target {
			return du
		}
		g.adj[u].Ascend(func(v int, w float64) bool {
			if nd := du + w; nd < dist[v] {
				dist[v] = nd
				q.Push(v, nd)
			}
			return true
		})
	}
	return dist[target]
}
