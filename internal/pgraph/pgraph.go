package pgraph

import (
	"fmt"
	"math"

	"metricprox/internal/fcmp"
	"metricprox/internal/pqueue"
)

// Edge is a known, weighted edge of the partial graph with U < V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is a partial distance graph over objects 0..n-1.
type Graph struct {
	n     int
	adj   *flatStore // per-node sorted neighbour/weight runs
	edges []Edge     // append-only list of known edges
	known map[int64]float64

	// searcher backs the convenience Dijkstra method, built lazily on
	// first use and reused across calls so the convenience path stops
	// paying an O(n) priority-queue allocation per call. Callers running
	// searches from multiple goroutines (none in-repo: the Session lock
	// serialises graph access) must hold their own Searcher instead.
	searcher *Searcher
}

// New returns an empty partial graph over n objects.
func New(n int) *Graph {
	return &Graph{
		n:     n,
		adj:   newFlatStore(n),
		known: make(map[int64]float64),
	}
}

// Key packs an unordered pair into a single map key.
func Key(i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	return int64(i)<<32 | int64(j)
}

// N returns the number of objects.
func (g *Graph) N() int { return g.n }

// M returns the number of known edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the known edges. The returned slice is owned by the graph
// and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Weight returns the known weight of edge (i, j), if resolved.
func (g *Graph) Weight(i, j int) (float64, bool) {
	w, ok := g.known[Key(i, j)]
	return w, ok
}

// Known reports whether the distance between i and j has been resolved.
func (g *Graph) Known(i, j int) bool {
	_, ok := g.known[Key(i, j)]
	return ok
}

// Degree returns the number of known edges incident on u.
func (g *Graph) Degree(u int) int { return g.adj.degree(u) }

// Row returns u's adjacency as two parallel slices — neighbour ids in
// strictly increasing order and the matching edge weights. The slices
// alias the graph's flat store: they are read-only and valid only until
// the next AddEdge (a row relocation or compaction may move them; see
// Stats().Epoch). This zero-copy view is the substrate of the Tri
// Scheme's sorted-merge intersection.
func (g *Graph) Row(u int) (nbrs []int32, weights []float64) {
	return g.adj.row(u)
}

// Neighbor returns the weight of the known edge (u, v) by binary search
// over u's row. It exists for ablation benchmarks; Weight is the O(1)
// production lookup.
func (g *Graph) Neighbor(u, v int) (float64, bool) {
	return g.adj.get(u, v)
}

// Stats snapshots the flat store's occupancy (slab cells, garbage,
// growth epoch).
func (g *Graph) Stats() StoreStats { return g.adj.stats() }

// AddEdge records the resolved distance w between i and j.
// Re-adding an existing edge with the same weight is a no-op; re-adding
// with a different weight panics, because a metric distance is immutable —
// a disagreement means the caller's oracle is not a function.
func (g *Graph) AddEdge(i, j int, w float64) {
	if i == j {
		panic("pgraph: self edge")
	}
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		panic(fmt.Sprintf("pgraph: edge (%d,%d) outside universe of %d objects", i, j, g.n))
	}
	k := Key(i, j)
	if old, ok := g.known[k]; ok {
		if !fcmp.ExactEq(old, w) {
			panic(fmt.Sprintf("pgraph: conflicting weights %v and %v for edge (%d,%d)", old, w, i, j))
		}
		return
	}
	g.known[k] = w
	g.adj.insert(i, j, w)
	g.adj.insert(j, i, w)
	if i > j {
		i, j = j, i
	}
	g.edges = append(g.edges, Edge{U: i, V: j, W: w})
}

// Dijkstra computes single-source shortest paths over the known edges from
// src and stores them into dist, which must have length n. Unreachable
// nodes get +Inf. The convenience path reuses one lazily built per-graph
// Searcher, so repeated calls allocate nothing; callers needing
// concurrent searches (or early exit) hold their own Searcher.
func (g *Graph) Dijkstra(src int, dist []float64) {
	if g.searcher == nil {
		g.searcher = NewSearcher(g)
	}
	g.searcher.Run(src, dist)
}

// Searcher runs repeated Dijkstra searches over the same graph, reusing its
// priority queue allocation. SPLUB issues two searches per bound query, so
// this reuse matters.
type Searcher struct {
	g *Graph
	q *pqueue.IndexedMin
}

// NewSearcher returns a Searcher bound to g. The Searcher sees edges added
// to g after construction (it reads the live adjacency).
func NewSearcher(g *Graph) *Searcher {
	return &Searcher{g: g, q: pqueue.NewIndexedMin(g.n)}
}

// Run computes shortest path distances from src into dist (length n).
func (s *Searcher) Run(src int, dist []float64) {
	g := s.g
	if len(dist) != g.n {
		panic("pgraph: dist slice has wrong length")
	}
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := s.q
	for q.Len() > 0 { // drain any residue from an aborted prior run
		q.Pop()
	}
	q.Push(src, 0)
	for q.Len() > 0 {
		u, du, _ := q.Pop()
		if du > dist[u] {
			continue
		}
		nb, ws := g.adj.row(u)
		for t, v := range nb {
			if nd := du + ws[t]; nd < dist[v] {
				dist[v] = nd
				q.Push(int(v), nd)
			}
		}
	}
}

// RunTo computes shortest path distances from src but may stop early once
// target is settled; entries for unsettled nodes are upper bounds or +Inf.
// It returns the shortest-path distance to target (possibly +Inf).
func (s *Searcher) RunTo(src, target int, dist []float64) float64 {
	g := s.g
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := s.q
	for q.Len() > 0 {
		q.Pop()
	}
	q.Push(src, 0)
	for q.Len() > 0 {
		u, du, _ := q.Pop()
		if du > dist[u] {
			continue
		}
		if u == target {
			return du
		}
		nb, ws := g.adj.row(u)
		for t, v := range nb {
			if nd := du + ws[t]; nd < dist[v] {
				dist[v] = nd
				q.Push(int(v), nd)
			}
		}
	}
	return dist[target]
}
