package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Comparison operations recorded in Event.Op — one per re-authored IF
// shape of the session API.
const (
	// OpLess is Session.Less / LessErr / LessOutcome:
	// dist(i,j) < dist(k,l).
	OpLess = "less"
	// OpLessThan is Session.LessThan / LessThanErr: dist(i,j) < c.
	OpLessThan = "lessthan"
	// OpDistIfLess is Session.DistIfLess / DistIfLessErr: the
	// value-needed variant of LessThan.
	OpDistIfLess = "distifless"
)

// Comparison outcomes recorded in Event.Outcome — how the IF was settled
// and, therefore, what it cost.
const (
	// OutcomeCache: both distances were already resolved; answered from
	// the memo with no bound probe and no oracle call.
	OutcomeCache = "cache"
	// OutcomeBounds: triangle-inequality bounds (or the DFT comparator)
	// proved the answer; exact, zero oracle calls.
	OutcomeBounds = "bounds"
	// OutcomeOracle: the bounds were inconclusive and the oracle was paid
	// to resolve the comparison exactly. Event.Gap records how
	// inconclusive, Event.LatencyNs what the resolution cost.
	OutcomeOracle = "oracle"
	// OutcomeDegraded: a needed resolution failed and the answer is a
	// best-effort bounds-midpoint estimate (the legacy methods' graceful
	// degradation; see DESIGN.md §7).
	OutcomeDegraded = "degraded"
	// OutcomeError: a needed resolution failed on an error-propagating
	// method — no answer was produced, the caller got the error.
	OutcomeError = "error"
	// OutcomeSlack: settled from bound intervals that were widened by an
	// active ε-slack policy (core.SlackPolicy) — exact under the declared
	// near-metric contract, but distinguishable from OutcomeBounds so a
	// trace shows which savings leaned on the relaxation (DESIGN.md §12).
	OutcomeSlack = "slack"
)

// Event records how one comparison was settled. Events are emitted by
// internal/core when a Tracer is attached (core.WithObserver); field
// semantics are documented in docs/METRICS.md.
type Event struct {
	// Seq is the 1-based global sequence number assigned by the Tracer.
	Seq int64 `json:"seq"`
	// Op is the comparison shape (OpLess, OpLessThan, OpDistIfLess).
	Op string `json:"op"`
	// Scheme is the session's bound scheme name (core.Scheme.String).
	Scheme string `json:"scheme"`
	// Phase is "bootstrap" during landmark bootstrap, "run" otherwise.
	Phase string `json:"phase"`
	// I, J identify the first distance term dist(I, J).
	I int `json:"i"`
	J int `json:"j"`
	// K, L identify the second term for OpLess; both are -1 otherwise.
	K int `json:"k"`
	L int `json:"l"`
	// Outcome is how the comparison was settled (Outcome* constants).
	Outcome string `json:"outcome"`
	// Gap is the bound slack that forced the oracle fallback at decision
	// time: the width of the interval overlap (OpLess), of the straddled
	// interval (OpLessThan), or min(c, ub) − lb (OpDistIfLess, finite
	// even for c = +Inf). 0 for comparisons the bounds settled.
	Gap float64 `json:"gap"`
	// LatencyNs is the wall-clock nanoseconds this comparison spent in
	// oracle resolutions (0 when no oracle call was made).
	LatencyNs int64 `json:"latency_ns"`
}

// Tally aggregates every traced event of one (Op, Outcome) pair. Unlike
// the ring, tallies are exact over the whole run — they are not subject
// to ring eviction.
type Tally struct {
	// Op and Outcome identify the aggregated event class.
	Op      string
	Outcome string
	// Count is the number of events in the class.
	Count int64
	// GapSum is the sum of Event.Gap over the class.
	GapSum float64
	// LatencyNsSum is the sum of Event.LatencyNs over the class.
	LatencyNsSum int64
}

// Tracer records comparison events into a fixed-capacity ring buffer
// (most recent events win), keeps exact running tallies per
// (op, outcome), and optionally streams every event to a JSONL sink.
// It is safe for concurrent use; Record takes one short mutex hold.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	cap     int
	seq     int64 // events ever recorded; ring holds the last min(seq, cap)
	tallies map[[2]string]*Tally
	sink    io.Writer
	enc     *json.Encoder
	sinkErr error
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity: enough to hold the tail of a large build without
// measurable memory cost (~100 bytes/event).
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer with the given ring capacity (≤ 0 selects
// DefaultTraceCapacity). A non-nil sink receives every event as one JSON
// line; the first sink write error latches (SinkErr) and disables the
// sink, never the tracing.
func NewTracer(capacity int, sink io.Writer) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{
		ring:    make([]Event, 0, capacity),
		cap:     capacity,
		tallies: make(map[[2]string]*Tally),
		sink:    sink,
	}
	if sink != nil {
		t.enc = json.NewEncoder(sink)
	}
	return t
}

// Record assigns the event its sequence number and stores it. The ring
// overwrites the oldest event once full; tallies and the sink always see
// every event.
func (t *Tracer) Record(e Event) {
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, e)
	} else {
		t.ring[int((t.seq-1)%int64(t.cap))] = e
	}
	key := [2]string{e.Op, e.Outcome}
	tl := t.tallies[key]
	if tl == nil {
		tl = &Tally{Op: e.Op, Outcome: e.Outcome}
		t.tallies[key] = tl
	}
	tl.Count++
	tl.GapSum += e.Gap
	tl.LatencyNsSum += e.LatencyNs
	if t.enc != nil && t.sinkErr == nil {
		if err := t.enc.Encode(e); err != nil {
			t.sinkErr = err
			t.enc = nil
		}
	}
	t.mu.Unlock()
}

// Total returns the number of events ever recorded (≥ len(Events())).
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many events have been evicted from the ring (they
// remain counted in the tallies and written to the sink).
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq <= int64(t.cap) {
		return 0
	}
	return t.seq - int64(t.cap)
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq <= int64(t.cap) {
		return append([]Event(nil), t.ring...)
	}
	// Full ring: the oldest event sits just past the most recent write.
	head := int(t.seq % int64(t.cap))
	out := make([]Event, 0, t.cap)
	out = append(out, t.ring[head:]...)
	out = append(out, t.ring[:head]...)
	return out
}

// Tallies returns the exact per-(op, outcome) aggregates, sorted by op
// then outcome for stable reporting.
func (t *Tracer) Tallies() []Tally {
	t.mu.Lock()
	out := make([]Tally, 0, len(t.tallies))
	for _, tl := range t.tallies {
		out = append(out, *tl)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Outcome < out[j].Outcome
	})
	return out
}

// SinkErr returns the first JSONL sink write error, or nil. After an
// error the sink is disabled; ring and tallies keep recording.
func (t *Tracer) SinkErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Observer bundles the two observation surfaces for plumbing through
// constructors: a Registry every layer records metrics into, and an
// optional Tracer for per-comparison events. A nil *Observer disables
// observation wherever it is accepted.
type Observer struct {
	// Registry receives every metric instrument; never nil in an
	// Observer built by NewObserver.
	Registry *Registry
	// Tracer receives per-comparison events; nil disables tracing while
	// keeping metrics.
	Tracer *Tracer
}

// NewObserver returns an observer with a fresh registry and, when trace
// is true, a tracer of the given capacity writing to sink (which may be
// nil for ring-only tracing).
func NewObserver(trace bool, traceCapacity int, sink io.Writer) *Observer {
	o := &Observer{Registry: NewRegistry()}
	if trace {
		o.Tracer = NewTracer(traceCapacity, sink)
	}
	return o
}
