package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of an instrument. Instruments with the
// same name but different label sets are distinct time series; the
// conventional keys in this repository are "scheme" (bound scheme name)
// and "phase" ("bootstrap" | "run").
type Label struct {
	// Key is the label name; it must not contain '=', ',', '{' or '}'.
	Key string
	// Value is the label value; same character restrictions as Key.
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// instrumentID renders the canonical identity of an instrument: the name
// followed by its labels sorted by key, in the text form used as the JSON
// exposition key (e.g. `session_oracle_calls_total{phase="run",scheme="tri"}`).
func instrumentID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry hands out metric instruments keyed by (name, labels). Handle
// resolution takes the registry mutex; recording through a resolved
// handle is a single atomic operation and never locks, which is why hot
// paths resolve their handles once at construction time. The zero value
// is not usable; call NewRegistry. A Registry is safe for concurrent use.
type Registry struct {
	mu          sync.Mutex
	instruments map[string]any // id -> *Counter | *Gauge | *Histogram
	order       []string       // ids in first-registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{instruments: make(map[string]any)}
}

// Counter returns the counter registered under (name, labels), creating
// it on first use. Requesting an existing id with a different instrument
// kind panics: it is a programming error, not a runtime condition.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	id := instrumentID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.instruments[id]; ok {
		c, ok := in.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: instrument %s already registered as %T", id, in))
		}
		return c
	}
	c := &Counter{}
	r.instruments[id] = c
	r.order = append(r.order, id)
	return c
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use; see Counter for the collision rule.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	id := instrumentID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.instruments[id]; ok {
		g, ok := in.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: instrument %s already registered as %T", id, in))
		}
		return g
	}
	g := &Gauge{}
	r.instruments[id] = g
	r.order = append(r.order, id)
	return g
}

// Histogram returns the histogram registered under (name, labels),
// creating it on first use; see Counter for the collision rule.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	id := instrumentID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.instruments[id]; ok {
		h, ok := in.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: instrument %s already registered as %T", id, in))
		}
		return h
	}
	h := &Histogram{}
	r.instruments[id] = h
	r.order = append(r.order, id)
	return h
}

// each visits every instrument in first-registration order. Callers must
// not hold the registry mutex.
func (r *Registry) each(visit func(id string, in any)) {
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	ins := make([]any, len(ids))
	for i, id := range ids {
		ins[i] = r.instruments[id]
	}
	r.mu.Unlock()
	for i, id := range ids {
		visit(id, ins[i])
	}
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; handles from a Registry share state per (name, labels).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters are monotone by contract).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: Counter.Add with negative delta; use a Gauge")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can move in either direction — breaker
// state, queue depth, last-seen values. The zero value is ready to use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of log₂-scale histogram buckets. Bucket k
// (k ≥ 1) covers values v with 2^(k−1) ≤ v ≤ 2^k − 1; bucket 0 holds
// exactly 0 (and clamped negatives). With 49 buckets the top finite
// bucket's upper edge is 2^48 − 1 — about 78 hours in nanoseconds —
// and anything larger lands in the last bucket.
const histBuckets = 49

// Histogram is a fixed-layout log₂-scale histogram of int64 values
// (by convention nanoseconds). Observation is two atomic adds on a
// pre-computed bucket index: no locks, no allocation, safe for any
// number of concurrent writers. The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketIndex maps a value to its bucket: 0 → 0, otherwise the bit length
// of v (so 1 → 1, 2..3 → 2, 4..7 → 3, …), clamped to the last bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(v))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// BucketUpper returns the inclusive upper edge of bucket idx: 0 for
// bucket 0, 2^idx − 1 otherwise (the last bucket reports math.MaxInt64,
// as it also absorbs clamped overflow).
func BucketUpper(idx int) int64 {
	switch {
	case idx <= 0:
		return 0
	case idx >= histBuckets-1:
		return math.MaxInt64
	default:
		return int64(1)<<idx - 1
	}
}

// Observe records one value. Negative values are clamped to 0 (they can
// only arise from clock anomalies in latency measurement).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one non-empty histogram bucket in a snapshot: N observations
// with values ≤ Le (and greater than the previous bucket's Le).
type Bucket struct {
	// Le is the bucket's inclusive upper edge.
	Le int64 `json:"le"`
	// N is the number of observations in this bucket.
	N int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, as exposed in
// the metrics JSON. Concurrent writers may make Count/Sum/Buckets
// mutually slightly stale; each field is individually consistent.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of observed values (same unit as the observations).
	Sum int64 `json:"sum"`
	// Buckets lists the non-empty buckets in increasing Le order.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: BucketUpper(i), N: n})
		}
	}
	return s
}

// Quantile returns an upper estimate of the q-quantile (q in [0, 1]): the
// upper edge of the bucket in which the q-th observation falls. With
// log₂ buckets the estimate is within 2× of the true value. Returns 0
// for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.N
		if seen >= rank {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}
