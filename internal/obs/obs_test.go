package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestBucketIndexBoundaries pins the log₂ bucket layout at its edges:
// every power of two starts a new bucket, 2^k−1 closes the previous one,
// and the extremes (0, negatives, MaxInt64) land where BucketUpper says
// they do.
func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21}, {1<<21 - 1, 21},
		{1 << 47, 48}, {1<<48 - 1, 48},
		// Everything past the top finite edge clamps into the last bucket.
		{1 << 48, histBuckets - 1},
		{math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestBucketUpperMatchesIndex checks the two halves of the layout against
// each other: a value is never above its bucket's upper edge and always
// above the previous bucket's.
func TestBucketUpperMatchesIndex(t *testing.T) {
	if got := BucketUpper(0); got != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", got)
	}
	if got := BucketUpper(1); got != 1 {
		t.Errorf("BucketUpper(1) = %d, want 1", got)
	}
	if got := BucketUpper(histBuckets - 2); got != 1<<47-1 {
		t.Errorf("BucketUpper(%d) = %d, want 2^47-1", histBuckets-2, got)
	}
	for _, idx := range []int{-1, histBuckets - 1, histBuckets, histBuckets + 10} {
		want := int64(math.MaxInt64)
		if idx <= 0 {
			want = 0
		}
		if got := BucketUpper(idx); got != want {
			t.Errorf("BucketUpper(%d) = %d, want %d", idx, got, want)
		}
	}
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100, 1<<30 + 7, 1<<48 - 1, 1 << 48, math.MaxInt64} {
		idx := bucketIndex(v)
		if v > BucketUpper(idx) {
			t.Errorf("value %d above its bucket edge BucketUpper(%d)=%d", v, idx, BucketUpper(idx))
		}
		if idx > 0 && v <= BucketUpper(idx-1) {
			t.Errorf("value %d not above previous bucket edge BucketUpper(%d)=%d", v, idx-1, BucketUpper(idx-1))
		}
	}
}

// TestHistogramObserveSnapshot checks counting, negative clamping, and
// the non-empty-buckets-only snapshot shape.
func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, -5, 1, 3, 3, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 0+0+1+3+3+1000 {
		t.Fatalf("Sum = %d, want 1007 (negatives clamp to 0)", s.Sum)
	}
	want := []Bucket{{Le: 0, N: 2}, {Le: 1, N: 1}, {Le: 3, N: 2}, {Le: 1023, N: 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("Buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("Buckets[%d] = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
}

// TestHistogramQuantile checks the upper-estimate contract: the returned
// edge is the smallest bucket edge covering the requested rank.
func TestHistogramQuantile(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	// Rank 50 falls in bucket (32..63]; rank 100 in (64..127].
	if got := h.Quantile(0.5); got != 63 {
		t.Errorf("p50 = %d, want 63", got)
	}
	if got := h.Quantile(1); got != 127 {
		t.Errorf("p100 = %d, want 127", got)
	}
	if got, want := h.Quantile(-1), h.Quantile(0); got != want {
		t.Errorf("q<0 = %d, want clamp to q=0 (%d)", got, want)
	}
	if got, want := h.Quantile(2), h.Quantile(1); got != want {
		t.Errorf("q>1 = %d, want clamp to q=1 (%d)", got, want)
	}
}

// TestRegistryIdentity checks that label order does not split series, that
// distinct labels do, and that kind collisions panic.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("scheme", "tri"), L("phase", "run"))
	b := r.Counter("x_total", L("phase", "run"), L("scheme", "tri"))
	if a != b {
		t.Fatal("same (name, labels) in different order produced distinct counters")
	}
	if c := r.Counter("x_total", L("phase", "bootstrap"), L("scheme", "tri")); c == a {
		t.Fatal("distinct label values shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering an existing counter id as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", L("scheme", "tri"), L("phase", "run"))
}

// TestCounterNegativeAddPanics pins the monotonicity contract.
func TestCounterNegativeAddPanics(t *testing.T) {
	var c Counter
	defer func() {
		if recover() == nil {
			t.Fatal("Counter.Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

// TestConcurrentRecording hammers one counter, one gauge, and one
// histogram from many goroutines (run under -race in CI) and checks the
// exact totals.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total")
			g := r.Gauge("conc_gauge")
			h := r.Histogram("conc_hist")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("conc_total").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	h := r.Histogram("conc_hist")
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got, want := h.Sum(), int64(workers)*per*(per-1)/2; got != want {
		t.Fatalf("histogram sum = %d, want %d", got, want)
	}
	var n int64
	for _, b := range h.Snapshot().Buckets {
		n += b.N
	}
	if n != workers*per {
		t.Fatalf("bucket total = %d, want %d", n, workers*per)
	}
}

// TestWriteJSON checks the exposition output is valid JSON keyed by the
// canonical instrument ids.
func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", L("scheme", "tri")).Add(3)
	r.Gauge("b_state").Set(2)
	r.Histogram("c_ns").Observe(100)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("exposition is not valid JSON: %v\n%s", err, b.String())
	}
	for _, id := range []string{`a_total{scheme="tri"}`, "b_state", "c_ns"} {
		if _, ok := out[id]; !ok {
			t.Errorf("exposition missing %s; got keys %v", id, keys(out))
		}
	}
	var hist HistogramSnapshot
	if err := json.Unmarshal(out["c_ns"], &hist); err != nil || hist.Count != 1 {
		t.Errorf("histogram exposition = %s (err %v), want count 1", out["c_ns"], err)
	}
}

func keys(m map[string]json.RawMessage) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
