package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
)

func mkEvent(op, outcome string, i int) Event {
	return Event{Op: op, Scheme: "tri", Phase: "run", I: i, J: i + 1, K: -1, L: -1, Outcome: outcome, Gap: 0.5, LatencyNs: 10}
}

// TestTracerRingBelowCapacity checks ordering and sequence assignment
// before any eviction happens.
func TestTracerRingBelowCapacity(t *testing.T) {
	tr := NewTracer(8, nil)
	for i := 0; i < 5; i++ {
		tr.Record(mkEvent(OpLess, OutcomeBounds, i))
	}
	if tr.Total() != 5 || tr.Dropped() != 0 {
		t.Fatalf("Total/Dropped = %d/%d, want 5/0", tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("len(Events) = %d, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i+1) || e.I != i {
			t.Fatalf("Events[%d] = seq %d I %d, want seq %d I %d", i, e.Seq, e.I, i+1, i)
		}
	}
}

// TestTracerRingEviction checks that a full ring keeps exactly the most
// recent cap events, oldest-first, while tallies stay exact.
func TestTracerRingEviction(t *testing.T) {
	const cap, total = 4, 11
	tr := NewTracer(cap, nil)
	for i := 0; i < total; i++ {
		tr.Record(mkEvent(OpDistIfLess, OutcomeOracle, i))
	}
	if tr.Total() != total || tr.Dropped() != total-cap {
		t.Fatalf("Total/Dropped = %d/%d, want %d/%d", tr.Total(), tr.Dropped(), total, total-cap)
	}
	evs := tr.Events()
	if len(evs) != cap {
		t.Fatalf("len(Events) = %d, want %d", len(evs), cap)
	}
	for i, e := range evs {
		if want := int64(total - cap + i + 1); e.Seq != want {
			t.Fatalf("Events[%d].Seq = %d, want %d (oldest-first tail)", i, e.Seq, want)
		}
	}
	tallies := tr.Tallies()
	if len(tallies) != 1 {
		t.Fatalf("tallies = %+v, want one class", tallies)
	}
	tl := tallies[0]
	if tl.Op != OpDistIfLess || tl.Outcome != OutcomeOracle || tl.Count != total {
		t.Fatalf("tally = %+v, want {%s %s %d ...}", tl, OpDistIfLess, OutcomeOracle, total)
	}
	if tl.GapSum != 0.5*total || tl.LatencyNsSum != 10*total {
		t.Fatalf("tally sums = %g/%d, want %g/%d (eviction must not touch tallies)",
			tl.GapSum, tl.LatencyNsSum, 0.5*total, 10*total)
	}
}

// TestTracerSinkJSONL checks that every event reaches the sink as one
// parseable JSON line with the documented field names.
func TestTracerSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(2, &buf)
	for i := 0; i < 6; i++ {
		tr.Record(mkEvent(OpLessThan, OutcomeBounds, i))
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var n int
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", n+1, err)
		}
		if e.Seq != int64(n+1) || e.Op != OpLessThan || e.Outcome != OutcomeBounds || e.K != -1 {
			t.Fatalf("line %d round-tripped to %+v", n+1, e)
		}
		n++
	}
	if n != 6 {
		t.Fatalf("sink received %d lines, want 6 (eviction must not drop sink writes)", n)
	}
}

// failAfter errors on the (n+1)-th write.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

// TestTracerSinkErrorLatches checks the degradation contract: the first
// sink failure latches into SinkErr and disables the sink, while the ring
// and tallies keep recording every event.
func TestTracerSinkErrorLatches(t *testing.T) {
	tr := NewTracer(8, &failAfter{n: 2})
	for i := 0; i < 5; i++ {
		tr.Record(mkEvent(OpLess, OutcomeOracle, i))
	}
	if err := tr.SinkErr(); err == nil || err.Error() == "" {
		t.Fatalf("SinkErr = %v, want the latched write error", err)
	}
	if tr.Total() != 5 || len(tr.Events()) != 5 {
		t.Fatalf("Total/len(Events) = %d/%d after sink failure, want 5/5", tr.Total(), len(tr.Events()))
	}
	if tl := tr.Tallies(); len(tl) != 1 || tl[0].Count != 5 {
		t.Fatalf("tallies after sink failure = %+v, want exact count 5", tl)
	}
}

// TestTracerConcurrent hammers Record from many goroutines (run under
// -race in CI): sequence numbers must stay unique, totals exact, and the
// retained window must hold the cap most recent events.
func TestTracerConcurrent(t *testing.T) {
	const workers, per, cap = 8, 2000, 64
	tr := NewTracer(cap, nil)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outcome := []string{OutcomeBounds, OutcomeOracle}[w%2]
			for i := 0; i < per; i++ {
				tr.Record(mkEvent(OpLess, outcome, i))
			}
		}(w)
	}
	wg.Wait()
	const total = workers * per
	if tr.Total() != total || tr.Dropped() != total-cap {
		t.Fatalf("Total/Dropped = %d/%d, want %d/%d", tr.Total(), tr.Dropped(), total, total-cap)
	}
	evs := tr.Events()
	if len(evs) != cap {
		t.Fatalf("len(Events) = %d, want %d", len(evs), cap)
	}
	seen := make(map[int64]bool)
	for _, e := range evs {
		if e.Seq <= total-cap || e.Seq > total || seen[e.Seq] {
			t.Fatalf("retained seq %d out of window (%d, %d] or duplicated", e.Seq, total-cap, total)
		}
		seen[e.Seq] = true
	}
	var n int64
	for _, tl := range tr.Tallies() {
		n += tl.Count
	}
	if n != total {
		t.Fatalf("tally total = %d, want %d", n, total)
	}
}

// TestNewObserver pins the constructor contract used by the CLIs.
func TestNewObserver(t *testing.T) {
	if o := NewObserver(false, 0, nil); o.Registry == nil || o.Tracer != nil {
		t.Fatalf("NewObserver(false) = %+v, want registry only", o)
	}
	o := NewObserver(true, 0, nil)
	if o.Tracer == nil {
		t.Fatal("NewObserver(true) did not build a tracer")
	}
	for i := 0; i < DefaultTraceCapacity+1; i++ {
		o.Tracer.Record(Event{Op: OpLess, Outcome: OutcomeBounds})
	}
	if got := o.Tracer.Dropped(); got != 1 {
		t.Fatalf("default capacity: Dropped = %d after cap+1 events, want 1", got)
	}
}
