// Package obs is the repository's zero-dependency observability layer:
// a lock-cheap metrics registry, an event tracer, and a JSON exposition
// surface, threaded through the oracle stack so a live workload can be
// watched, attributed, and profiled without changing what it computes.
//
// The paper's entire value claim is a count — oracle calls saved per IF
// statement resolved from triangle-inequality bounds — so the library's
// natural telemetry is exactly that count, broken down by who paid it and
// why. Three layers record into this package:
//
//   - internal/core (Session, SharedSession) counts oracle calls per
//     phase (bootstrap vs run), comparisons saved/resolved, cache hits,
//     degraded answers, and oracle latency, and — when a Tracer is
//     attached — emits one Event per comparison recording how it was
//     settled (cache, bounds, oracle, degraded) and the bound gap that
//     forced any oracle fallback.
//   - internal/resilient mirrors its retry/breaker accounting (attempts,
//     retries, timeouts, breaker transitions, attempt latency).
//   - internal/faultmetric mirrors its injection ground truth, so a chaos
//     run's dashboards show injected cause next to observed effect.
//
// # Design rules
//
// Observation never influences decisions. Instruments are write-only from
// the hot path's perspective: nothing in internal/core or below ever
// reads a metric to decide a comparison, and internal/bounds must not
// import this package at all — the proxlint analyzer "obspurity" enforces
// that mechanically. Failures in observation (a full trace sink, a slow
// scrape) degrade observability, never answers.
//
// Overhead is budgeted, not assumed. Counters and histograms are single
// atomic operations on pre-resolved handles — no map lookups, no label
// formatting, no allocation on the hot path. Tracing and latency timing
// are opt-in per session (attach an Observer); without one, a session
// pays only the atomic counter increments. BenchmarkObservationOverhead
// (internal/core) pins the fully-observed overhead to within a few
// percent of wall clock; DESIGN.md §8 records the budget.
//
// # Composition
//
// A Registry hands out Counter/Gauge/Histogram handles keyed by
// (name, labels); the conventional labels are scheme (bound scheme name)
// and phase (bootstrap | run). A Tracer keeps a fixed-capacity ring of
// the most recent Events plus exact running tallies per (op, outcome),
// and optionally streams every event to a JSONL sink. An Observer
// bundles the two for plumbing through constructors
// (core.WithObserver, experiments.Config.Observer). Handler serves a
// registry as expvar-style JSON for scraping; cmd/metricprox -listen
// mounts it next to net/http/pprof so long builds can be profiled live.
//
// Every metric and trace field is documented in docs/METRICS.md.
package obs
