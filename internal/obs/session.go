package obs

// Metric names recorded by the session layer (internal/core). Each is
// labelled with scheme=<bound scheme>; the oracle-call counter is
// additionally labelled with phase=bootstrap|run. Full semantics live in
// docs/METRICS.md.
const (
	// MetricOracleCalls counts successful oracle resolutions (the
	// paper's primary cost metric), split by phase label.
	MetricOracleCalls = "session_oracle_calls_total"
	// MetricBoundProbes counts Bounds() evaluations for comparisons.
	MetricBoundProbes = "session_bound_probes_total"
	// MetricSaved counts comparisons decided from bounds alone.
	MetricSaved = "session_comparisons_saved_total"
	// MetricResolved counts comparisons that needed the oracle.
	MetricResolved = "session_comparisons_resolved_total"
	// MetricCacheHits counts comparisons answered from resolved pairs.
	MetricCacheHits = "session_cache_hits_total"
	// MetricDegraded counts best-effort answers produced while the
	// oracle was unavailable.
	MetricDegraded = "session_degraded_answers_total"
	// MetricStoreErrors counts failed appends to the attached
	// persistent cache.
	MetricStoreErrors = "session_store_errors_total"
	// MetricOracleLatency is the latency histogram (nanoseconds) of
	// oracle round-trips, recorded only when an Observer is attached.
	MetricOracleLatency = "session_oracle_latency_ns"
	// MetricSlackResolved counts comparisons settled from bound intervals
	// widened by an active ε-slack policy (a subset of MetricSaved).
	MetricSlackResolved = "session_slack_resolved_total"
	// MetricSlackEps is a gauge holding the additive slack ε currently
	// applied to derived intervals (grows under an Auto policy as the
	// violation auditor observes larger margins).
	MetricSlackEps = "session_slack_eps"
)

// Phase label values used on MetricOracleCalls.
const (
	// PhaseRun labels oracle calls made by the algorithm proper.
	PhaseRun = "run"
	// PhaseBootstrap labels oracle calls spent on landmark bootstrap
	// (the Bootstrap column of the paper's tables).
	PhaseBootstrap = "bootstrap"
)

// SessionInstruments is the set of handles one core.Session records
// into — the instrument-handle replacement for the ad-hoc counter
// fields Stats grew before this layer existed. Handles are resolved
// once at session construction; every recording is a single atomic op.
type SessionInstruments struct {
	// OracleCalls counts run-phase oracle resolutions
	// (MetricOracleCalls, phase=run).
	OracleCalls *Counter
	// BootstrapCalls counts bootstrap-phase oracle resolutions
	// (MetricOracleCalls, phase=bootstrap).
	BootstrapCalls *Counter
	// BoundProbes mirrors Stats.BoundProbes (MetricBoundProbes).
	BoundProbes *Counter
	// SavedComparisons mirrors Stats.SavedComparisons (MetricSaved).
	SavedComparisons *Counter
	// ResolvedComparisons mirrors Stats.ResolvedComparisons
	// (MetricResolved).
	ResolvedComparisons *Counter
	// CacheHits mirrors Stats.CacheHits (MetricCacheHits).
	CacheHits *Counter
	// DegradedAnswers mirrors Stats.DegradedAnswers (MetricDegraded).
	DegradedAnswers *Counter
	// StoreErrors mirrors Stats.StoreErrors (MetricStoreErrors).
	StoreErrors *Counter
	// SlackResolved mirrors Stats.SlackResolved (MetricSlackResolved).
	SlackResolved *Counter
	// SlackEps holds the session's current additive slack
	// (MetricSlackEps); 0 while slack mode is off.
	SlackEps *Gauge
	// OracleLatency is the oracle round-trip latency histogram
	// (MetricOracleLatency); populated only for observed sessions.
	OracleLatency *Histogram
}

// NewSessionInstruments resolves the session instrument handles in r,
// labelled with the given bound-scheme name. Two sessions with the same
// scheme sharing one registry share (aggregate into) the same series,
// the standard metrics-registry semantics.
func NewSessionInstruments(r *Registry, scheme string) *SessionInstruments {
	s := L("scheme", scheme)
	return &SessionInstruments{
		OracleCalls:         r.Counter(MetricOracleCalls, s, L("phase", PhaseRun)),
		BootstrapCalls:      r.Counter(MetricOracleCalls, s, L("phase", PhaseBootstrap)),
		BoundProbes:         r.Counter(MetricBoundProbes, s),
		SavedComparisons:    r.Counter(MetricSaved, s),
		ResolvedComparisons: r.Counter(MetricResolved, s),
		CacheHits:           r.Counter(MetricCacheHits, s),
		DegradedAnswers:     r.Counter(MetricDegraded, s),
		StoreErrors:         r.Counter(MetricStoreErrors, s),
		SlackResolved:       r.Counter(MetricSlackResolved, s),
		SlackEps:            r.Gauge(MetricSlackEps, s),
		OracleLatency:       r.Histogram(MetricOracleLatency, s),
	}
}
