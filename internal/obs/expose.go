package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// WriteJSON renders the registry as one flat expvar-style JSON object:
// each key is the instrument's canonical identity
// (`name{label="v",…}`), each value a number (counter, gauge) or a
// HistogramSnapshot object. Keys are sorted, so output is diffable.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	r.each(func(id string, in any) {
		switch v := in.(type) {
		case *Counter:
			out[id] = v.Value()
		case *Gauge:
			out[id] = v.Value()
		case *Histogram:
			out[id] = v.Snapshot()
		}
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// Handler serves the registry as JSON (Content-Type application/json) —
// the /metrics endpoint mounted by cmd/metricprox -listen and the CI
// exposition smoke test.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
}

// WriteSummary renders a human-readable observability report: every
// counter and gauge grouped by metric name, histogram quantiles, and —
// when t is non-nil — the per-(op, outcome) "why did we pay?" breakdown
// with mean bound gaps and oracle latency. This is the -obs report of
// cmd/proxbench.
func WriteSummary(w io.Writer, r *Registry, t *Tracer) {
	fmt.Fprintln(w, "## Observability")
	fmt.Fprintln(w)

	type row struct {
		id string
		in any
	}
	var rows []row
	r.each(func(id string, in any) { rows = append(rows, row{id, in}) })
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })

	fmt.Fprintln(w, "### Metrics")
	for _, rw := range rows {
		switch v := rw.in.(type) {
		case *Counter:
			if v.Value() != 0 {
				fmt.Fprintf(w, "  %-70s %d\n", rw.id, v.Value())
			}
		case *Gauge:
			fmt.Fprintf(w, "  %-70s %g\n", rw.id, v.Value())
		case *Histogram:
			if v.Count() == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-70s count=%d mean=%s p50≤%s p99≤%s\n",
				rw.id, v.Count(),
				time.Duration(v.Sum()/v.Count()).Round(time.Microsecond),
				time.Duration(v.Quantile(0.5)).Round(time.Microsecond),
				time.Duration(v.Quantile(0.99)).Round(time.Microsecond))
		}
	}

	if t == nil {
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "### Comparison trace — why did we pay? (%d events, %d retained, %d dropped from ring)\n",
		t.Total(), int64(len(t.Events())), t.Dropped())
	tallies := t.Tallies()
	if len(tallies) == 0 {
		fmt.Fprintln(w, "  (no comparisons traced)")
		return
	}
	fmt.Fprintf(w, "  %-12s %-10s %10s %12s %14s\n", "op", "outcome", "count", "mean gap", "mean latency")
	for _, tl := range tallies {
		gap, lat := "-", "-"
		if tl.Count > 0 {
			if tl.Outcome == OutcomeOracle || tl.Outcome == OutcomeDegraded || tl.Outcome == OutcomeError {
				gap = fmt.Sprintf("%.5f", tl.GapSum/float64(tl.Count))
			}
			if tl.LatencyNsSum > 0 {
				lat = time.Duration(tl.LatencyNsSum / tl.Count).Round(time.Microsecond).String()
			}
		}
		fmt.Fprintf(w, "  %-12s %-10s %10d %12s %14s\n", tl.Op, tl.Outcome, tl.Count, gap, lat)
	}
}
