// Package obshttp mounts the observability exposition surface on an HTTP
// listener: the obs registry as JSON at /metrics plus the stdlib
// net/http/pprof suite at /debug/pprof/. It lives apart from package obs
// so that linking the instrument layer into a binary does not also link
// the pprof handlers; only binaries that opt into -listen pay for them.
package obshttp

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"

	"metricprox/internal/obs"
)

// Mux returns a ServeMux serving r as JSON at /metrics and the pprof
// handlers under /debug/pprof/.
func Mux(r *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running exposition endpoint. It wraps http.Server so the
// owning binary can drain in-flight scrapes on exit instead of abandoning
// them: call Shutdown with a drain deadline on the way out, or Close to
// drop connections immediately.
type Server struct {
	srv  *http.Server
	addr string
	done chan struct{}
}

// Serve binds addr (":0" picks a free port) and serves Mux(r) in a
// background goroutine until Shutdown or Close. The bind itself is the
// only reported failure mode; per-connection errors after it are the
// client's problem, not the run's.
func Serve(addr string, r *obs.Registry) (*Server, error) {
	return ServeHandler(addr, Mux(r))
}

// ServeHandler is Serve for an arbitrary handler: it lets a binary mount
// the exposition mux alongside its own routes on one listener (metricproxd
// composes its service API with Mux this way) while reusing the same
// graceful-shutdown path.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: h},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:39041".
func (s *Server) Addr() string { return s.addr }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish or ctx to expire, whichever comes first. Requests
// still running at the deadline are cut off (http.Server.Shutdown
// semantics). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// Close drops the listener and all active connections immediately. Prefer
// Shutdown when scrapes may be in flight.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
