// Package obshttp mounts the observability exposition surface on an HTTP
// listener: the obs registry as JSON at /metrics plus the stdlib
// net/http/pprof suite at /debug/pprof/. It lives apart from package obs
// so that linking the instrument layer into a binary does not also link
// the pprof handlers; only binaries that opt into -listen pay for them.
package obshttp

import (
	"net"
	"net/http"
	"net/http/pprof"

	"metricprox/internal/obs"
)

// Mux returns a ServeMux serving r as JSON at /metrics and the pprof
// handlers under /debug/pprof/.
func Mux(r *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (":0" picks a free port), serves Mux(r) in a
// background goroutine for the remaining life of the process, and returns
// the bound address. The bind itself is the only reported failure mode;
// per-connection errors after it are the client's problem, not the run's.
func Serve(addr string, r *obs.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Mux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
