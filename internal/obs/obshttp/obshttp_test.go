package obshttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"metricprox/internal/obs"
)

func TestServeExposesMetricsAndShutsDown(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("smoke_total").Add(3)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d, body %s", resp.StatusCode, body)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if got := string(doc["smoke_total"]); got != "3" {
		t.Fatalf("smoke_total=%s in metrics payload, want 3: %s", got, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

func TestShutdownDrainsInflightScrape(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		w.Write([]byte("drained"))
	})

	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatalf("ServeHandler: %v", err)
	}

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- string(body)
	}()

	<-entered
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The in-flight request must still complete: release it and confirm the
	// client saw the full response, then confirm Shutdown returned cleanly.
	close(release)
	if body := <-got; body != "drained" {
		t.Fatalf("in-flight scrape got %q, want %q", body, "drained")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown during in-flight scrape: %v", err)
	}
}
