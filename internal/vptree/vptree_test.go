package vptree

import (
	"math/rand"
	"sort"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

func refNN(m metric.Space, q, k int) []Result {
	var all []Result
	for x := 0; x < m.Len(); x++ {
		if x != q {
			all = append(all, Result{ID: x, Dist: m.Distance(q, x)})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].ID < all[b].ID
	})
	return all[:k]
}

func TestNNMatchesBruteForce(t *testing.T) {
	m := datasets.RandomMetric(120, 1)
	tree := Build(m, 2)
	for q := 0; q < 120; q += 7 {
		want := refNN(m, q, 5)
		got, _ := tree.NN(q, 5, func(x int) float64 { return m.Distance(q, x) })
		if len(got) != 5 {
			t.Fatalf("q=%d: got %d results", q, len(got))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("q=%d: NN[%d] = %d (%v), want %d (%v)",
					q, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
			}
		}
	}
}

func TestNNPrunes(t *testing.T) {
	m := datasets.SFPOI(300, 3)
	tree := Build(m, 4)
	_, calls := tree.NN(0, 3, func(x int) float64 { return m.Distance(0, x) })
	if calls >= 299 {
		t.Fatalf("VP-tree NN made %d calls — no pruning over linear scan", calls)
	}
	if tree.ConstructionCalls() == 0 {
		t.Fatal("construction spent no calls?")
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	m := datasets.RandomMetric(100, 5)
	tree := Build(m, 6)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		q := rng.Intn(100)
		r := 0.05 + rng.Float64()*0.3
		got, _ := tree.Range(q, r, func(x int) float64 { return m.Distance(q, x) })
		want := map[int]bool{}
		for x := 0; x < 100; x++ {
			if x != q && m.Distance(q, x) <= r {
				want[x] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("q=%d r=%v: %d results, want %d", q, r, len(got), len(want))
		}
		for _, res := range got {
			if !want[res.ID] {
				t.Fatalf("q=%d r=%v: spurious result %d", q, r, res.ID)
			}
		}
	}
}

func TestSmallUniverse(t *testing.T) {
	m := datasets.RandomMetric(3, 8)
	tree := Build(m, 9)
	got, _ := tree.NN(0, 2, func(x int) float64 { return m.Distance(0, x) })
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	// k larger than the universe returns everything else.
	got, _ = tree.NN(0, 10, func(x int) float64 { return m.Distance(0, x) })
	if len(got) != 2 {
		t.Fatalf("k>n returned %d results, want 2", len(got))
	}
}
