// Package vptree implements a Vantage-Point Tree (Yianilos, SODA 1993) —
// one of the general-metric-space index structures the paper surveys as
// related work (Section 6.1). It answers nearest-neighbour and range
// queries over a metric.Space with triangle-inequality pruning of subtrees.
//
// The VP-tree represents the opposite end of the design space from the
// paper's framework: it pays a fixed Θ(n log n) distance-call construction
// cost up front and then prunes *index traversal*; the paper's schemes pay
// nothing up front and prune *algorithm comparisons*. The query package
// benchmarks the two against each other on the kNN-query workload.
package vptree

import (
	"math/rand"
	"sort"

	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
)

// Tree is an immutable vantage-point tree over the objects of a Space.
type Tree struct {
	space metric.Space
	root  *node
	calls int64 // distance calls spent during construction
}

type node struct {
	vantage int     // object id
	radius  float64 // median distance of the inside set
	inside  *node   // objects with d(vantage, x) < radius
	outside *node   // objects with d(vantage, x) ≥ radius
	bucket  []int   // leaf objects (vantage not used below leafSize)
}

const leafSize = 8

// Build constructs a VP-tree over all objects of the space, selecting
// vantage points pseudo-randomly from seed. The number of distance calls
// spent is available via ConstructionCalls.
func Build(space metric.Space, seed int64) *Tree {
	t := &Tree{space: space}
	ids := make([]int, space.Len())
	for i := range ids {
		ids[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(ids, rng)
	return t
}

// ConstructionCalls returns the distance computations spent building.
func (t *Tree) ConstructionCalls() int64 { return t.calls }

func (t *Tree) dist(i, j int) float64 {
	t.calls++
	//proxlint:allow oracleescape -- related-work baseline: the VP-tree pays its Θ(n log n) construction distance calls up front by design; t.calls keeps its own accounting for the experiments
	return t.space.Distance(i, j)
}

func (t *Tree) build(ids []int, rng *rand.Rand) *node {
	if len(ids) == 0 {
		return nil
	}
	if len(ids) <= leafSize {
		return &node{vantage: -1, bucket: append([]int(nil), ids...)}
	}
	// Pick a vantage point and partition the rest by the median distance.
	vi := rng.Intn(len(ids))
	ids[0], ids[vi] = ids[vi], ids[0]
	v := ids[0]
	rest := ids[1:]
	type od struct {
		id int
		d  float64
	}
	ods := make([]od, len(rest))
	for i, x := range rest {
		ods[i] = od{id: x, d: t.dist(v, x)}
	}
	sort.Slice(ods, func(a, b int) bool { return ods[a].d < ods[b].d })
	mid := len(ods) / 2
	radius := ods[mid].d
	insideIDs := make([]int, 0, mid)
	outsideIDs := make([]int, 0, len(ods)-mid)
	for _, e := range ods {
		if e.d < radius {
			insideIDs = append(insideIDs, e.id)
		} else {
			outsideIDs = append(outsideIDs, e.id)
		}
	}
	return &node{
		vantage: v,
		radius:  radius,
		inside:  t.build(insideIDs, rng),
		outside: t.build(outsideIDs, rng),
	}
}

// Result is one query answer.
type Result struct {
	ID   int
	Dist float64
}

// NN returns the k nearest neighbours of the query object (excluding the
// object itself), and the number of distance calls spent. dist is the
// caller's distance function to the query — typically a counting closure
// over the oracle, so external callers control accounting.
func (t *Tree) NN(query int, k int, dist func(x int) float64) ([]Result, int64) {
	s := &search{query: query, k: k, dist: dist}
	s.walk(t.root)
	sort.Slice(s.best, func(a, b int) bool {
		return fcmp.TieLess(s.best[a].Dist, s.best[a].ID, s.best[b].Dist, s.best[b].ID)
	})
	return s.best, s.calls
}

type search struct {
	query int
	k     int
	dist  func(int) float64
	best  []Result // unsorted top-k, worst tracked linearly (k is small)
	worst float64
	calls int64
}

func (s *search) d(x int) float64 {
	s.calls++
	return s.dist(x)
}

func (s *search) offer(id int, d float64) {
	if len(s.best) < s.k {
		s.best = append(s.best, Result{ID: id, Dist: d})
		if len(s.best) == s.k {
			s.recomputeWorst()
		}
		return
	}
	if d >= s.worst {
		return
	}
	// Replace the current worst.
	wi := 0
	for i, r := range s.best {
		if r.Dist > s.best[wi].Dist {
			wi = i
		}
		_ = r
	}
	s.best[wi] = Result{ID: id, Dist: d}
	s.recomputeWorst()
}

func (s *search) recomputeWorst() {
	s.worst = 0
	for _, r := range s.best {
		if r.Dist > s.worst {
			s.worst = r.Dist
		}
	}
}

func (s *search) tau() float64 {
	if len(s.best) < s.k {
		return 1e18
	}
	return s.worst
}

func (s *search) walk(n *node) {
	if n == nil {
		return
	}
	if n.vantage == -1 {
		for _, id := range n.bucket {
			if id == s.query {
				continue
			}
			if d := s.d(id); d < s.tau() || len(s.best) < s.k {
				s.offer(id, d)
			}
		}
		return
	}
	dv := 0.0
	if n.vantage != s.query {
		dv = s.d(n.vantage)
		s.offer(n.vantage, dv)
	}
	// Triangle-inequality pruning: a subtree can only contain an answer if
	// its annulus intersects the ball of radius tau around the query.
	if dv < n.radius {
		s.walk(n.inside)
		if dv+s.tau() >= n.radius {
			s.walk(n.outside)
		}
	} else {
		s.walk(n.outside)
		if dv-s.tau() < n.radius {
			s.walk(n.inside)
		}
	}
}

// Range returns every object within radius r of the query (excluding the
// query itself), plus the distance calls spent.
func (t *Tree) Range(query int, r float64, dist func(x int) float64) ([]Result, int64) {
	var out []Result
	var calls int64
	d := func(x int) float64 {
		calls++
		return dist(x)
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.vantage == -1 {
			for _, id := range n.bucket {
				if id == query {
					continue
				}
				if dd := d(id); dd <= r {
					out = append(out, Result{ID: id, Dist: dd})
				}
			}
			return
		}
		dv := 0.0
		if n.vantage != query {
			dv = d(n.vantage)
			if dv <= r {
				out = append(out, Result{ID: n.vantage, Dist: dv})
			}
		}
		if dv-r < n.radius {
			walk(n.inside)
		}
		if dv+r >= n.radius {
			walk(n.outside)
		}
	}
	walk(t.root)
	sort.Slice(out, func(a, b int) bool {
		return fcmp.TieLess(out[a].Dist, out[a].ID, out[b].Dist, out[b].ID)
	})
	return out, calls
}
