// Package service implements the metricproxd daemon: a long-running HTTP
// server hosting named multi-tenant core.SharedSessions over one metric
// space, so many clients can amortise a single shared partial graph of
// resolved distances and bounds instead of each re-paying the oracle.
//
// The layer split: core.SessionRegistry owns session lifecycle (single-
// flight creation, max-sessions cap, TTL eviction); this package owns
// transport (the HTTP/JSON API of internal/service/api), admission
// control (bounded per-session work slots with Retry-After load
// shedding), observability (per-endpoint latency histograms, queue-depth
// gauge, shed counter in internal/obs), persistence (one cachestore file
// per session for warm restarts), and graceful drain. See DESIGN.md §10.
//
// Since the /search endpoint (search.go), the daemon also hosts one lazy
// navigable-small-world graph per session (internal/nsw), built on first
// query with the session's own landmarks seeding every beam and shared by
// all subsequent queries; docs/SEARCH.md specifies the wire schema and
// the determinism contract that CI's server-smoke job enforces.
package service
