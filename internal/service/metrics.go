package service

import (
	"strconv"

	"metricprox/internal/obs"
)

// Metric names exported by the service layer. Documented in
// docs/METRICS.md; the CI server-smoke job asserts they appear on
// /metrics after traffic.
const (
	// MetricRequests counts finished requests, labelled by endpoint and
	// HTTP status code.
	MetricRequests = "service_requests_total"
	// MetricLatency is the per-endpoint request latency histogram in
	// nanoseconds.
	MetricLatency = "service_request_latency_ns"
	// MetricQueueDepth gauges the work requests currently holding an
	// admission slot, across all sessions.
	MetricQueueDepth = "service_queue_depth"
	// MetricShed counts requests refused with 503/overloaded because the
	// session's work queue was full, labelled by endpoint.
	MetricShed = "service_shed_total"
	// MetricSessions gauges the live session count.
	MetricSessions = "service_sessions"
	// MetricEvictions counts sessions evicted (DELETE, TTL sweep, or
	// shutdown drain).
	MetricEvictions = "service_evictions_total"
	// MetricSearchBuilds counts navigable-graph constructions triggered by
	// the /search endpoint (at most one successful build per session).
	MetricSearchBuilds = "service_search_builds_total"
	// MetricSearchQueries counts answered /search queries (builds
	// excluded: a request that builds and then answers counts once here
	// and once in MetricSearchBuilds).
	MetricSearchQueries = "service_search_queries_total"
	// MetricSearchBuildLatency is the histogram of /search graph
	// construction times in nanoseconds.
	MetricSearchBuildLatency = "service_search_build_latency_ns"
	// MetricPromotions counts replica-to-live session promotions — each is
	// one failover this node absorbed for a dead (or drained) primary.
	MetricPromotions = "cluster_promotions_total"
	// MetricReplReceived counts replicated records applied to this node's
	// replica stores via POST /v1/repl/{name}.
	MetricReplReceived = "cluster_repl_received_records_total"
	// MetricReplSessions gauges the replica (un-promoted) session stores
	// this node currently holds.
	MetricReplSessions = "cluster_repl_sessions"
)

// metrics bundles the service instruments. A nil registry yields a
// registry-of-convenience so handler code never branches on observability
// being off.
type metrics struct {
	reg           *obs.Registry
	queueDepth    *obs.Gauge
	sessions      *obs.Gauge
	evictions     *obs.Counter
	searchBuilds  *obs.Counter
	searchQueries *obs.Counter
	searchBuild   *obs.Histogram
	promotions    *obs.Counter
	replReceived  *obs.Counter
	replSessions  *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &metrics{
		reg:           reg,
		queueDepth:    reg.Gauge(MetricQueueDepth),
		sessions:      reg.Gauge(MetricSessions),
		evictions:     reg.Counter(MetricEvictions),
		searchBuilds:  reg.Counter(MetricSearchBuilds),
		searchQueries: reg.Counter(MetricSearchQueries),
		searchBuild:   reg.Histogram(MetricSearchBuildLatency),
		promotions:    reg.Counter(MetricPromotions),
		replReceived:  reg.Counter(MetricReplReceived),
		replSessions:  reg.Gauge(MetricReplSessions),
	}
}

// count bumps the per-(endpoint, code) request counter.
func (m *metrics) count(endpoint string, code int) {
	m.reg.Counter(MetricRequests,
		obs.Label{Key: "endpoint", Value: endpoint},
		obs.Label{Key: "code", Value: statusLabel(code)},
	).Inc()
}

// latency returns the endpoint's latency histogram.
func (m *metrics) latency(endpoint string) *obs.Histogram {
	return m.reg.Histogram(MetricLatency, obs.Label{Key: "endpoint", Value: endpoint})
}

// shed returns the endpoint's load-shed counter.
func (m *metrics) shed(endpoint string) *obs.Counter {
	return m.reg.Counter(MetricShed, obs.Label{Key: "endpoint", Value: endpoint})
}

// statusLabel renders an HTTP status code as a label value.
func statusLabel(code int) string { return strconv.Itoa(code) }
