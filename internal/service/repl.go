package service

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"

	"metricprox/internal/cachestore"
	"metricprox/internal/cluster"
	"metricprox/internal/core"
	"metricprox/internal/service/api"
)

// replState is this node's replica of one session hosted elsewhere: an
// open cachestore receiving the primary's append stream, plus the
// creation parameters needed to promote it into a live session.
type replState struct {
	store *cachestore.Store
	meta  api.ReplMeta
	// promoted is the single-ownership tombstone: the store was adopted by
	// a live local session (failover promotion, or a client create landing
	// here), so further append batches are refused with 409 repl_conflict —
	// two writers on one log would fork it. Cleared when the session is
	// evicted and the store closed, at which point replication may resume
	// from the file.
	promoted bool
}

// replManager owns every replica store on this node. All transitions —
// open, append, adopt-for-promotion, forget — happen under one mutex, so
// exactly one of {replication stream, live session} can own a store file
// at any moment.
type replManager struct {
	mu     sync.Mutex
	states map[string]*replState
}

// peek returns the session's replica meta when a promotable (non-adopted)
// replica exists.
func (m *replManager) peek(name string) (api.ReplMeta, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.states[name]
	if !ok || st.promoted {
		return api.ReplMeta{}, false
	}
	return st.meta, true
}

// adopt hands the session's replica store to a live session being built,
// marking the tombstone. Returns nil when no adoptable replica exists.
func (m *replManager) adopt(name string) *cachestore.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.states[name]
	if !ok || st.promoted {
		return nil
	}
	st.promoted = true
	store := st.store
	st.store = nil
	return store
}

// forget clears the session's tombstone after the adopting session was
// evicted (its store is closed); a still-open un-adopted replica store is
// closed. Replication for the name can start afresh from the file.
func (m *replManager) forget(name string) {
	m.mu.Lock()
	st, ok := m.states[name]
	delete(m.states, name)
	m.mu.Unlock()
	if ok && st.store != nil {
		st.store.Close()
	}
}

// closeAll closes every un-adopted replica store; part of Server.Close.
func (m *replManager) closeAll() {
	m.mu.Lock()
	states := m.states
	m.states = make(map[string]*replState)
	m.mu.Unlock()
	for _, st := range states {
		if st.store != nil {
			st.store.Close()
		}
	}
}

// count returns the number of live (un-adopted) replica states.
func (m *replManager) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.states {
		if !st.promoted {
			n++
		}
	}
	return n
}

// clusterEnabled reports whether this node participates in a cluster (it
// then must have a cache dir: the store file is the replication medium).
func (s *Server) clusterEnabled() bool {
	return s.cfg.Cluster != nil && s.cfg.CacheDir != ""
}

// replMeta renders a session's creation parameters as wire meta.
func (s *Server) replMeta(scheme core.Scheme, lmCount int, seed int64, bootstrap bool, slack core.SlackPolicy, audit bool) api.ReplMeta {
	return api.ReplMeta{
		Scheme:     scheme.String(),
		Landmarks:  lmCount,
		Seed:       seed,
		Bootstrap:  bootstrap,
		SlackEps:   api.WireFloat(slack.Additive),
		SlackRatio: api.WireFloat(slack.Ratio),
		SlackAuto:  slack.Auto,
		Audit:      audit,
		N:          s.n,
	}
}

// handleReplAppend is POST /v1/repl/{name}: apply a sequence-numbered
// batch of replicated resolutions to this node's replica store for the
// session. Idempotent and resumable: the response always carries the
// replica's post-append cursor, and the sender adopts it — including
// rewinding after this replica lost a suffix to a crash. An empty batch
// is a cursor probe. Refused with 409 repl_conflict while a live local
// session owns the log.
func (s *Server) handleReplAppend(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled() {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "node is not a cluster member (no -cluster/-cache-dir)")
		return
	}
	name := r.PathValue("name")
	if !validName(name) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("invalid session name %q", name))
		return
	}
	var req api.ReplAppendRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if req.Meta.N != s.n {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("universe mismatch: sender has n=%d, this node n=%d", req.Meta.N, s.n))
		return
	}
	if req.From < 0 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("negative cursor %d", req.From))
		return
	}

	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	st, ok := s.repl.states[name]
	if ok && st.promoted {
		writeError(w, http.StatusConflict, api.CodeReplConflict,
			fmt.Sprintf("session %q is hosted live on this node", name))
		return
	}
	if !ok {
		// The registry check sits behind the repl mutex so a concurrent
		// create (which adopts under the same mutex) cannot interleave.
		if s.reg.Get(name) != nil {
			writeError(w, http.StatusConflict, api.CodeReplConflict,
				fmt.Sprintf("session %q is hosted live on this node", name))
			return
		}
		store, err := cachestore.OpenOrCreate(s.cachePath(name), s.n)
		if err != nil {
			writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		if err := cluster.SaveMeta(s.cfg.CacheDir, name, req.Meta); err != nil {
			store.Close()
			writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		st = &replState{store: store, meta: req.Meta}
		s.repl.states[name] = st
		s.met.replSessions.Set(float64(len(s.repl.states)))
	}

	recs := make([]cachestore.Record, len(req.Records))
	for i, rr := range req.Records {
		recs[i] = cachestore.Record{I: rr.I, J: rr.J, Dist: float64(rr.D)}
	}
	before, err := st.store.LastSeq()
	if err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	seq, err := st.store.AppendFrom(req.From, recs)
	switch {
	case errors.Is(err, cachestore.ErrSeqGap):
		// Not an error on the wire: the cursor in the response tells the
		// sender where to rewind to.
	case err != nil:
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	if seq > before {
		s.met.replReceived.Add(seq - before)
	}
	writeJSON(w, api.ReplAppendResponse{Seq: seq})
}

// handleReplStatus is GET /v1/repl/{name}: the replica's cursor and
// promotion state — handoff verification and smoke tests, never the hot
// path.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled() {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "node is not a cluster member")
		return
	}
	name := r.PathValue("name")
	s.repl.mu.Lock()
	st, ok := s.repl.states[name]
	var resp api.ReplStatusResponse
	if ok && !st.promoted {
		seq, err := st.store.LastSeq()
		s.repl.mu.Unlock()
		if err != nil {
			writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		resp.Seq = seq
		writeJSON(w, resp)
		return
	}
	s.repl.mu.Unlock()
	// Promoted, or hosted live without ever having been a replica.
	if entry := s.reg.Acquire(name); entry != nil {
		defer s.reg.Release(entry)
		resp.Promoted = true
		if sst, ok := entry.Data.(*sessionState); ok && sst.store != nil {
			if seq, err := sst.store.LastSeq(); err == nil {
				resp.Seq = seq
			}
		}
		writeJSON(w, resp)
		return
	}
	writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("no replica state for %q", name))
}

// promote builds a live session from replicated state — the failover
// moment: a request for a session this node does not host arrives (the
// router fell through to us because the primary died), and this node
// holds the session's bound-state log plus its creation parameters. The
// rebuilt session replays the log's strictly-sound prefix, so every
// distance the dead primary resolved and managed to stream is free again;
// only the unreplicated tail is re-paid at the oracle.
//
// Returns an Acquired entry (the caller Releases it), or nil when this
// node holds nothing promotable under the name.
func (s *Server) promote(name string) *core.SessionEntry {
	if !s.clusterEnabled() || !validName(name) {
		return nil
	}
	meta, ok := s.repl.peek(name)
	if !ok {
		// Cold path: a restart dropped the in-memory state, but the replica
		// store and its meta sidecar survive on disk. Only promote names
		// with both artifacts — an absent store would build an empty, cold
		// session and mask a routing bug as a silent slow start.
		m, found, err := cluster.LoadMeta(s.cfg.CacheDir, name)
		if err != nil || !found {
			return nil
		}
		if _, err := os.Stat(s.cachePath(name)); err != nil {
			return nil
		}
		meta = m
	}
	scheme, err := core.ParseScheme(meta.Scheme)
	if err != nil {
		s.logf("service: promote %q: bad replicated scheme: %v", name, err)
		return nil
	}
	slack := core.SlackPolicy{
		Additive: float64(meta.SlackEps),
		Ratio:    float64(meta.SlackRatio),
		Auto:     meta.SlackAuto,
	}
	if err := core.SlackSupported(slack, scheme); err != nil {
		s.logf("service: promote %q: replicated slack unsupported: %v", name, err)
		return nil
	}
	_, created, err := s.reg.GetOrCreate(name, func() (*core.SharedSession, any, error) {
		return s.buildSession(name, scheme, meta.Landmarks, meta.Seed, meta.Bootstrap, slack, meta.Audit)
	})
	if err != nil {
		s.logf("service: promote %q: %v", name, err)
		return nil
	}
	if created {
		s.met.promotions.Inc()
		s.met.sessions.Set(float64(s.reg.Len()))
		s.logf("service: promoted replica of session %q to live (failover)", name)
	}
	return s.reg.Acquire(name)
}
