package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
	"metricprox/internal/nsw"
	"metricprox/internal/obs"
	"metricprox/internal/service/api"
)

// planarOracle gives the search suite a history-free oracle (see the
// proxclient suite for why bit-identity comparisons want the planar
// surrogate rather than the road network).
func planarOracle() *metric.Oracle {
	return metric.NewOracle(datasets.SFPOIPlanar(testN, testSeed))
}

// planarLandmarks is the landmark set buildSession derives for a
// created-with-defaults session over the planar test space: log2-n
// landmarks from the session seed. The server seeds its search graph
// from these, so reference builds must pass the same list.
func planarLandmarks() []int {
	k := 0
	for v := testN; v > 1; v /= 2 {
		k++
	}
	return core.PickLandmarks(testN, k, testSeed)
}

// planarReference is the in-process session a server-side search-graph
// build must match: same space, scheme, landmarks, seed as buildSession.
func planarReference(t *testing.T) *core.Session {
	t.Helper()
	lms := planarLandmarks()
	s := core.NewFallibleSessionWithLandmarks(planarOracle(), core.SchemeTri, lms)
	if _, err := s.BootstrapErr(lms); err != nil {
		t.Fatalf("reference bootstrap: %v", err)
	}
	return s
}

func TestSearchEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts, _ := newTestServer(t, Config{Oracle: planarOracle(), Registry: reg})
	createSession(t, ts.URL, "srch", "tri", true)
	base := ts.URL + "/v1/sessions/srch"

	// The server's first search builds the graph; its answers must equal
	// the in-process build over an identical session.
	ref := planarReference(t)
	wantGraph, err := nsw.Build(ref, nsw.Params{Seed: testSeed, Landmarks: planarLandmarks()})
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}

	var first api.SearchResponse
	post(t, base+"/search", api.SearchRequest{Q: 0, K: 5}, &first, http.StatusOK)
	if !first.Built {
		t.Error("first search did not report building the graph")
	}
	if len(first.Neighbors) != 5 {
		t.Fatalf("first search returned %d neighbours, want 5", len(first.Neighbors))
	}

	for q := 0; q < testN; q++ {
		var resp api.SearchResponse
		post(t, base+"/search", api.SearchRequest{Q: q, K: 5}, &resp, http.StatusOK)
		if resp.Built {
			t.Fatalf("search %d rebuilt the graph", q)
		}
		want, err := wantGraph.Search(ref, q, 5, nsw.DefaultEfConstruction)
		if err != nil {
			t.Fatalf("reference search %d: %v", q, err)
		}
		if len(resp.Neighbors) != len(want) {
			t.Fatalf("search %d: %d neighbours, want %d", q, len(resp.Neighbors), len(want))
		}
		for x, wn := range resp.Neighbors {
			if wn.ID != want[x].ID || !fcmp.ExactEq(float64(wn.D), want[x].Dist) {
				t.Fatalf("search %d result %d: got (%d, %v), want (%d, %v)",
					q, x, wn.ID, float64(wn.D), want[x].ID, want[x].Dist)
			}
		}
	}

	// GET form answers identically to the POST form.
	var getResp api.SearchResponse
	httpGetJSON(t, fmt.Sprintf("%s/search?q=3&k=5", base), &getResp, http.StatusOK)
	var postResp api.SearchResponse
	post(t, base+"/search", api.SearchRequest{Q: 3, K: 5}, &postResp, http.StatusOK)
	if len(getResp.Neighbors) != len(postResp.Neighbors) {
		t.Fatalf("GET and POST disagree: %d vs %d neighbours", len(getResp.Neighbors), len(postResp.Neighbors))
	}
	for x := range getResp.Neighbors {
		if getResp.Neighbors[x] != postResp.Neighbors[x] {
			t.Fatalf("GET and POST disagree at %d: %+v vs %+v", x, getResp.Neighbors[x], postResp.Neighbors[x])
		}
	}

	// The service_search_* series must be live after traffic — the CI
	// search-smoke job asserts the same thing from outside.
	if got := reg.Counter(MetricSearchBuilds).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricSearchBuilds, got)
	}
	if got := reg.Counter(MetricSearchQueries).Value(); got < int64(testN) {
		t.Errorf("%s = %d, want >= %d", MetricSearchQueries, got, testN)
	}
	if got := reg.Histogram(MetricSearchBuildLatency).Count(); got != 1 {
		t.Errorf("%s count = %d, want 1", MetricSearchBuildLatency, got)
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Oracle: planarOracle()})
	createSession(t, ts.URL, "srcherr", "tri", true)
	base := ts.URL + "/v1/sessions/srcherr"

	post(t, base+"/search", api.SearchRequest{Q: -1, K: 5}, nil, http.StatusBadRequest)
	post(t, base+"/search", api.SearchRequest{Q: testN, K: 5}, nil, http.StatusBadRequest)
	post(t, base+"/search", api.SearchRequest{Q: 0, K: 0}, nil, http.StatusBadRequest)
	httpGetJSON(t, base+"/search?q=zero&k=5", nil, http.StatusBadRequest)

	// First successful search fixes the graph parameters...
	var resp api.SearchResponse
	post(t, base+"/search", api.SearchRequest{Q: 0, K: 3, M: 4}, &resp, http.StatusOK)
	if !resp.Built {
		t.Fatal("first search did not build")
	}
	// ...so a later request naming different build knobs is a conflict,
	// while one naming the same (or defaulted query-only) knobs is served.
	post(t, base+"/search", api.SearchRequest{Q: 0, K: 3, M: 6}, nil, http.StatusConflict)
	post(t, base+"/search", api.SearchRequest{Q: 1, K: 3, M: 4, EfSearch: 32}, &resp, http.StatusOK)

	// Unknown session is a 404 from the admission wrapper.
	post(t, ts.URL+"/v1/sessions/ghost/search", api.SearchRequest{Q: 0, K: 3}, nil, http.StatusNotFound)
}

// httpGetJSON GETs a URL and decodes the JSON response, failing on any
// status other than want.
func httpGetJSON(t *testing.T, url string, out any, want int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, want)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode GET %s: %v", url, err)
		}
	}
}
