// Package api defines the wire types of the metricproxd HTTP/JSON
// protocol, shared by the server (internal/service) and the client
// (internal/proxclient) so the two cannot drift. Every request and
// response is a small JSON document; distances travel as WireFloat so the
// ±Inf thresholds the prox builders pass to DistIfLess survive encoding
// (encoding/json rejects infinities). docs/API.md is the prose reference
// for these schemas.
package api

import (
	"encoding/json"
	"fmt"
	"math"
)

// Error codes carried in ErrorBody.Code. The client maps them back to
// typed errors; codes, not HTTP statuses, are the stable contract.
const (
	// CodeBadRequest marks malformed or out-of-range request fields.
	CodeBadRequest = "bad_request"
	// CodeNotFound marks an unknown session name.
	CodeNotFound = "not_found"
	// CodeConflict marks a create that contradicts an existing session
	// (same name, different scheme or landmarks).
	CodeConflict = "conflict"
	// CodeOverloaded marks a request shed because the session's work
	// queue was full; retry after the Retry-After delay.
	CodeOverloaded = "overloaded"
	// CodeDraining marks a request refused because the daemon is shutting
	// down.
	CodeDraining = "draining"
	// CodeTooManySessions marks a create refused by the max-sessions cap.
	CodeTooManySessions = "too_many_sessions"
	// CodeOracleUnavailable marks a resolution that failed after the
	// resilient policy exhausted its retries; the answer was NOT degraded
	// to an estimate server-side.
	CodeOracleUnavailable = "oracle_unavailable"
	// CodeReplConflict marks a replication append refused because the
	// receiving node hosts the session itself (it was promoted, or the
	// ring disagrees about ownership). The sender must stop replicating
	// this session here: two live writers would fork the log.
	CodeReplConflict = "repl_conflict"
	// CodeUnavailable marks a request the router could not place on any
	// owner of the session — every candidate node was down or draining.
	CodeUnavailable = "unavailable"
	// CodeInternal marks any other server-side failure.
	CodeInternal = "internal"
)

// ErrorBody is the JSON error envelope every non-2xx response carries.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable elaboration.
	Message string `json:"message"`
}

// WireFloat is a float64 that survives JSON round-trips for every value
// the session layer produces: finite floats use encoding/json's exact
// round-trip, and ±Inf — which encoding/json refuses — travel as the
// strings "+Inf"/"-Inf". (NaN never crosses the wire: metric.
// ValidateDistance rejects it at the oracle boundary.)
type WireFloat float64

// MarshalJSON encodes ±Inf as quoted strings and finite values as plain
// JSON numbers.
func (w WireFloat) MarshalJSON() ([]byte, error) {
	f := float64(w)
	switch {
	case math.IsInf(f, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-Inf"`), nil
	default:
		return json.Marshal(f)
	}
}

// UnmarshalJSON accepts plain numbers plus the "+Inf"/"-Inf" strings.
func (w *WireFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*w = WireFloat(math.Inf(1))
			return nil
		case "-Inf":
			*w = WireFloat(math.Inf(-1))
			return nil
		}
		return fmt.Errorf("api: invalid float string %q", s)
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*w = WireFloat(f)
	return nil
}

// CreateSessionRequest creates (or idempotently attaches to) a named
// session. The daemon owns the metric space; a session is a (scheme,
// landmark) view over it. Landmarks are picked server-side with
// core.PickLandmarks(n, Landmarks, Seed) — deterministic, so a client can
// predict them.
type CreateSessionRequest struct {
	// Name identifies the session; [a-zA-Z0-9._-]+.
	Name string `json:"name"`
	// Scheme is the bound scheme name as accepted by core.ParseScheme.
	Scheme string `json:"scheme"`
	// Landmarks is the number of bootstrap landmarks; 0 means log2 n.
	Landmarks int `json:"landmarks,omitempty"`
	// Seed drives the landmark choice.
	Seed int64 `json:"seed,omitempty"`
	// Bootstrap resolves all landmark rows up front when true.
	Bootstrap bool `json:"bootstrap,omitempty"`
	// SlackEps declares the oracle a near-metric with additive violation
	// margin ε and activates ε-slack mode (core.SlackPolicy.Additive).
	// Only single-triangle schemes (noop, tri, laesa, tlaesa) accept it.
	SlackEps WireFloat `json:"slack_eps,omitempty"`
	// SlackRatio declares a multiplicative violation factor ρ ≥ 1
	// (core.SlackPolicy.Ratio); 0 means none. Limited to noop and tri.
	SlackRatio WireFloat `json:"slack_ratio,omitempty"`
	// SlackAuto grows the effective ε with the margins the session's
	// auditor observes (core.SlackPolicy.Auto). Implies an auditor.
	SlackAuto bool `json:"slack_auto,omitempty"`
	// Audit attaches a triangle-violation auditor without any slack:
	// strict mode, where a violation voids output preservation and is
	// surfaced through StatsResponse.Violations.
	Audit bool `json:"audit,omitempty"`
}

// SessionInfo describes one hosted session.
type SessionInfo struct {
	// Name is the session's registry key.
	Name string `json:"name"`
	// Scheme is the bound scheme name.
	Scheme string `json:"scheme"`
	// N is the universe size.
	N int `json:"n"`
	// MaxDistance is the a-priori distance cap.
	MaxDistance WireFloat `json:"max_distance"`
	// Created reports whether this request built the session (false for
	// an attach to an existing one).
	Created bool `json:"created"`
}

// PairRequest addresses one object pair (Dist, Bounds).
type PairRequest struct {
	// I and J are object indices in [0, n).
	I int `json:"i"`
	J int `json:"j"`
}

// DistResponse carries one resolved distance.
type DistResponse struct {
	// D is the exact distance.
	D WireFloat `json:"d"`
}

// LessRequest asks whether dist(i,j) < dist(k,l).
type LessRequest struct {
	// I, J, K, L are object indices; the comparison is dist(I,J) < dist(K,L).
	I int `json:"i"`
	J int `json:"j"`
	K int `json:"k"`
	L int `json:"l"`
}

// LessResponse answers Less and LessThan. It deliberately carries no
// distance value: comparison endpoints reveal one bit, keeping raw oracle
// values confined to the audited Dist* endpoints (see the oracleescape
// analyzer's service rule).
type LessResponse struct {
	// Less is the comparison outcome.
	Less bool `json:"less"`
}

// LessThanRequest asks whether dist(i,j) < c.
type LessThanRequest struct {
	// I and J are object indices.
	I int `json:"i"`
	J int `json:"j"`
	// C is the threshold (may be ±Inf).
	C WireFloat `json:"c"`
}

// DistIfLessRequest resolves dist(i,j) only when the bounds cannot prove
// dist(i,j) ≥ c.
type DistIfLessRequest struct {
	// I and J are object indices.
	I int `json:"i"`
	J int `json:"j"`
	// C is the threshold (may be +Inf, the "always resolve" form).
	C WireFloat `json:"c"`
}

// DistIfLessResponse carries the DistIfLess outcome. D is meaningful only
// when Less is true, mirroring core.Session.DistIfLess.
type DistIfLessResponse struct {
	// Less reports dist(i,j) < c.
	Less bool `json:"less"`
	// D is the exact distance when Less, 0 otherwise.
	D WireFloat `json:"d,omitempty"`
}

// BoundsResponse carries the current lower/upper bounds of a pair; no
// oracle call is spent answering it. lb == ub exactly when the pair is
// resolved.
type BoundsResponse struct {
	// LB is the lower bound.
	LB WireFloat `json:"lb"`
	// UB is the upper bound.
	UB WireFloat `json:"ub"`
	// Eps is the additive slack the interval was relaxed by — 0 for a
	// strict session. Under an auto slack policy this value can grow
	// between responses; a client mirror that caches intervals must drop
	// them when it sees Eps rise, because "server bounds only tighten"
	// stops holding at the escalation point.
	Eps WireFloat `json:"eps,omitempty"`
}

// BootstrapRequest resolves the given landmark rows up front.
type BootstrapRequest struct {
	// Landmarks are the landmark object indices.
	Landmarks []int `json:"landmarks"`
}

// BootstrapResponse reports the oracle calls the bootstrap spent.
type BootstrapResponse struct {
	// Calls is the number of oracle calls made.
	Calls int64 `json:"calls"`
}

// Batch op names accepted in BatchOp.Op.
const (
	// OpDist resolves a distance.
	OpDist = "dist"
	// OpLess compares two pairs.
	OpLess = "less"
	// OpLessThan compares a pair against a threshold.
	OpLessThan = "lessthan"
	// OpDistIfLess conditionally resolves against a threshold.
	OpDistIfLess = "distifless"
	// OpBounds reads the current bounds of a pair.
	OpBounds = "bounds"
)

// BatchOp is one operation inside a BatchRequest. Fields beyond Op are
// interpreted per the op's scalar request type.
type BatchOp struct {
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// I and J address the primary pair.
	I int `json:"i"`
	J int `json:"j"`
	// K and L address the second pair for OpLess.
	K int `json:"k,omitempty"`
	L int `json:"l,omitempty"`
	// C is the threshold for OpLessThan and OpDistIfLess.
	C WireFloat `json:"c,omitempty"`
}

// BatchRequest executes many ops in one round-trip, in order, against one
// session. Results arrive positionally in BatchResponse.Results.
type BatchRequest struct {
	// Ops are executed sequentially server-side.
	Ops []BatchOp `json:"ops"`
}

// BatchResult is the outcome of one BatchOp; which fields are meaningful
// depends on the op (same contracts as the scalar responses).
type BatchResult struct {
	// Less is set for less / lessthan / distifless ops.
	Less bool `json:"less,omitempty"`
	// D is set for dist ops, and for distifless ops when Less.
	D WireFloat `json:"d,omitempty"`
	// LB and UB are set for bounds ops.
	LB WireFloat `json:"lb,omitempty"`
	UB WireFloat `json:"ub,omitempty"`
	// Eps is set for bounds ops: the additive slack applied to the
	// interval (see BoundsResponse.Eps).
	Eps WireFloat `json:"eps,omitempty"`
	// Err is an error code (Code* constant) when this op failed; ops are
	// independent, so one failure does not poison the batch.
	Err string `json:"err,omitempty"`
}

// BatchResponse carries one result per request op, positionally.
type BatchResponse struct {
	// Results aligns 1:1 with the request's Ops.
	Results []BatchResult `json:"results"`
}

// KNNRequest runs the server-side kNN-graph builder on the session.
type KNNRequest struct {
	// K is the neighbour count per object.
	K int `json:"k"`
}

// WireNeighbor is one (id, distance) edge of a kNN row.
type WireNeighbor struct {
	// ID is the neighbour object index.
	ID int `json:"id"`
	// D is the exact distance.
	D WireFloat `json:"d"`
}

// KNNResponse is the full kNN graph in canonical (distance, id) order.
type KNNResponse struct {
	// Rows holds each object's neighbour list, indexed by object.
	Rows [][]WireNeighbor `json:"rows"`
}

// SearchRequest answers an approximate k-nearest-neighbour query over
// the session's navigable search graph (internal/nsw). The first search
// on a session builds the graph — every construction comparison routed
// through the session's IF surface, so the hosted bounds prune it — and
// caches it; later searches reuse it. Graph parameters are fixed at that
// first build: a later request naming different ones is a 409/conflict,
// exactly like a contradictory session re-create.
//
// GET form: the same fields as URL query parameters (q, k, ef_search,
// m, ef_construction, seed).
type SearchRequest struct {
	// Q is the query object index in [0, n). The query is part of the
	// universe; it is traversed but never reported as its own neighbour.
	Q int `json:"q"`
	// K is the number of neighbours wanted.
	K int `json:"k"`
	// EfSearch is the query beam width; larger is more accurate and more
	// expensive. 0 means the server default (nsw.DefaultEfConstruction);
	// values below K are clamped up to K.
	EfSearch int `json:"ef_search,omitempty"`
	// M is the graph's links-per-node parameter; 0 means nsw.DefaultM.
	// Only consulted by the build; conflicting with the built graph is a
	// 409.
	M int `json:"m,omitempty"`
	// EfConstruction is the insertion beam width; 0 means
	// nsw.DefaultEfConstruction. Build-only, conflict rules as M.
	EfConstruction int `json:"ef_construction,omitempty"`
	// Seed drives the insertion order; 0 means the session's create seed.
	// Build-only, conflict rules as M.
	Seed int64 `json:"seed,omitempty"`
}

// SearchResponse carries an approximate-kNN answer. Audited Dist*
// endpoint: neighbour distances are raw oracle values by design.
type SearchResponse struct {
	// Neighbors are the K approximate nearest neighbours in canonical
	// (distance, id) order with exact distances.
	Neighbors []WireNeighbor `json:"neighbors"`
	// EfSearch is the beam width actually used (after defaulting and
	// clamping).
	EfSearch int `json:"ef_search"`
	// Built reports whether this request paid for the graph construction
	// (true exactly once per session graph).
	Built bool `json:"built"`
}

// WireEdge is one MST edge with U < V.
type WireEdge struct {
	// U and V are the endpoint object indices, U < V.
	U int `json:"u"`
	V int `json:"v"`
	// W is the exact edge weight.
	W WireFloat `json:"w"`
}

// MSTResponse is the server-side Prim MST result.
type MSTResponse struct {
	// Edges are the n−1 tree edges in discovery order.
	Edges []WireEdge `json:"edges"`
	// Weight is the summed edge weight.
	Weight WireFloat `json:"weight"`
}

// MedoidRequest runs the server-side PAM clustering.
type MedoidRequest struct {
	// L is the number of medoids.
	L int `json:"l"`
	// Seed drives the random initialisation.
	Seed int64 `json:"seed"`
}

// MedoidResponse is the server-side PAM result.
type MedoidResponse struct {
	// Medoids are the chosen medoid object indices.
	Medoids []int `json:"medoids"`
	// Assign maps each object to an index into Medoids.
	Assign []int `json:"assign"`
	// Cost is the summed point-to-medoid distance.
	Cost WireFloat `json:"cost"`
}

// StatsResponse mirrors core.Stats for one session.
type StatsResponse struct {
	// OracleCalls — see core.Stats.
	OracleCalls int64 `json:"oracle_calls"`
	// BootstrapCalls — see core.Stats.
	BootstrapCalls int64 `json:"bootstrap_calls"`
	// BoundProbes — see core.Stats.
	BoundProbes int64 `json:"bound_probes"`
	// SavedComparisons — see core.Stats.
	SavedComparisons int64 `json:"saved_comparisons"`
	// ResolvedComparisons — see core.Stats.
	ResolvedComparisons int64 `json:"resolved_comparisons"`
	// CacheHits — see core.Stats.
	CacheHits int64 `json:"cache_hits"`
	// Retries — see core.Stats.
	Retries int64 `json:"retries"`
	// Timeouts — see core.Stats.
	Timeouts int64 `json:"timeouts"`
	// BreakerOpens — see core.Stats.
	BreakerOpens int64 `json:"breaker_opens"`
	// DegradedAnswers — see core.Stats.
	DegradedAnswers int64 `json:"degraded_answers"`
	// StoreErrors — see core.Stats.
	StoreErrors int64 `json:"store_errors"`
	// SlackResolved — see core.Stats.
	SlackResolved int64 `json:"slack_resolved,omitempty"`
	// Violations — see core.Stats. Non-zero on a strict (audited,
	// slack-free) session means output preservation is void.
	Violations int64 `json:"violations,omitempty"`
}

// SessionList is the GET /v1/sessions response.
type SessionList struct {
	// Sessions are the live session names, sorted.
	Sessions []string `json:"sessions"`
}

// ReplMeta carries a session's creation parameters alongside its
// replicated bound state, so a replica can rebuild the session — same
// scheme, same landmarks, same slack policy — without ever having seen
// the client's CreateSessionRequest. It travels with every append batch;
// senders keep it constant for a session's lifetime (create parameters
// are immutable after the first build).
type ReplMeta struct {
	// Scheme is the bound scheme name as accepted by core.ParseScheme.
	Scheme string `json:"scheme"`
	// Landmarks is the resolved landmark count (after the log2-n default —
	// replicas must not re-derive it against a different universe).
	Landmarks int `json:"landmarks"`
	// Seed drives the deterministic landmark choice.
	Seed int64 `json:"seed"`
	// Bootstrap mirrors CreateSessionRequest.Bootstrap. A promoted replica
	// honours it so the rebuilt session has the same landmark rows resolved
	// — mostly already free, replayed from the replicated log.
	Bootstrap bool `json:"bootstrap,omitempty"`
	// SlackEps mirrors CreateSessionRequest.SlackEps.
	SlackEps WireFloat `json:"slack_eps,omitempty"`
	// SlackRatio mirrors CreateSessionRequest.SlackRatio.
	SlackRatio WireFloat `json:"slack_ratio,omitempty"`
	// SlackAuto mirrors CreateSessionRequest.SlackAuto.
	SlackAuto bool `json:"slack_auto,omitempty"`
	// Audit mirrors CreateSessionRequest.Audit.
	Audit bool `json:"audit,omitempty"`
	// N is the sender's universe size; a mismatch with the receiver's
	// space is a configuration error and refuses the stream (replaying
	// distances onto wrong indices would be silent corruption).
	N int `json:"n"`
}

// ReplRecord is one replicated exact-distance resolution.
type ReplRecord struct {
	// I and J are the object indices, I < J (cachestore normalised).
	I int `json:"i"`
	J int `json:"j"`
	// D is the exact distance.
	D WireFloat `json:"d"`
}

// ReplAppendRequest is the POST /v1/repl/{name} body: a sequence-numbered
// batch of committed resolutions from the session's hosting node. From is
// the sequence number of Records[0] in the sender's log; the receiver
// applies idempotently (overlap skipped) and answers with its own cursor,
// which the sender adopts — including rewinding when the replica lost a
// suffix to a crash.
type ReplAppendRequest struct {
	// Node is the sending node's cluster name (diagnostics and conflict
	// messages; the ring, not this field, decides legitimacy).
	Node string `json:"node"`
	// Meta carries the session's creation parameters (see ReplMeta).
	Meta ReplMeta `json:"meta"`
	// From is the sequence number of the first record in Records.
	From int64 `json:"from"`
	// Records are consecutive log records starting at From. An empty batch
	// is a cursor probe: the response still reports the replica's seq.
	Records []ReplRecord `json:"records,omitempty"`
}

// ReplAppendResponse acknowledges an append batch.
type ReplAppendResponse struct {
	// Seq is the replica's log length after the append — the cursor the
	// sender should send next. Seq below the request's From+len(Records)
	// means the replica rejected a gap (or tore its tail); the sender
	// rewinds and resends from Seq.
	Seq int64 `json:"seq"`
}

// ReplStatusResponse is the GET /v1/repl/{name} answer: the replica's
// view of one replicated session. Used by handoff verification and the
// cluster smoke tests; never on the hot path.
type ReplStatusResponse struct {
	// Seq is the replica's current log length for the session.
	Seq int64 `json:"seq"`
	// Promoted reports that this node now hosts the session live (the
	// replica state was adopted by a promotion or a client create).
	Promoted bool `json:"promoted"`
}

// ClusterHealthz is the router's GET /healthz response: the router's own
// liveness plus its current view of each node from the health prober.
type ClusterHealthz struct {
	// Status is "ok" while the router serves.
	Status string `json:"status"`
	// Nodes maps node name to "up" or "down".
	Nodes map[string]string `json:"nodes"`
}

// Healthz is the GET /healthz response.
type Healthz struct {
	// Status is "ok" while serving, "draining" during shutdown.
	Status string `json:"status"`
	// N is the universe size of the daemon's space.
	N int `json:"n"`
	// Sessions is the live session count.
	Sessions int `json:"sessions"`
}
