package api

import (
	"encoding/json"
	"math"
	"testing"

	"metricprox/internal/fcmp"
)

func TestWireFloatRoundTripsExactly(t *testing.T) {
	cases := []float64{
		0, 1, 0.1, 1.0 / 3.0, math.Pi, 5e-324, math.MaxFloat64,
		math.Nextafter(0.7, 1), -0.25,
		math.Inf(1), math.Inf(-1),
	}
	for _, f := range cases {
		b, err := json.Marshal(WireFloat(f))
		if err != nil {
			t.Fatalf("marshal %v: %v", f, err)
		}
		var got WireFloat
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !fcmp.ExactEq(float64(got), f) && !(math.IsInf(f, 1) && math.IsInf(float64(got), 1)) &&
			!(math.IsInf(f, -1) && math.IsInf(float64(got), -1)) {
			t.Fatalf("round-trip %v → %s → %v: bits changed", f, b, float64(got))
		}
	}
}

func TestWireFloatInsideStruct(t *testing.T) {
	req := DistIfLessRequest{I: 1, J: 2, C: WireFloat(math.Inf(1))}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got DistIfLessRequest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	if !math.IsInf(float64(got.C), 1) {
		t.Fatalf("threshold +Inf became %v over the wire (%s)", float64(got.C), b)
	}
}

func TestWireFloatRejectsJunkStrings(t *testing.T) {
	var w WireFloat
	if err := json.Unmarshal([]byte(`"NaN"`), &w); err == nil {
		t.Fatal("accepted NaN, which never legitimately crosses the wire")
	}
	if err := json.Unmarshal([]byte(`"fast"`), &w); err == nil {
		t.Fatal("accepted a junk string")
	}
}
