package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metricprox/internal/cachestore"
	"metricprox/internal/cluster"
	"metricprox/internal/core"
	"metricprox/internal/metric"
	"metricprox/internal/nsw"
	"metricprox/internal/obs"
	"metricprox/internal/service/api"
)

// Config parameterises a Server. Oracle is the only required field.
type Config struct {
	// Oracle is the daemon's distance transport — typically a
	// resilient.Oracle wrapping the real (possibly flaky) space. It is
	// shared by every hosted session and must be safe for concurrent use.
	Oracle metric.FallibleOracle
	// MaxDistance overrides the sessions' a-priori distance cap when > 0.
	MaxDistance float64
	// MaxSessions caps the number of live sessions (0 = unlimited).
	MaxSessions int
	// SessionTTL evicts sessions idle this long (0 = never). The sweeper
	// runs at TTL/4 granularity.
	SessionTTL time.Duration
	// Queue is the per-session cap on concurrently executing work
	// requests; requests beyond it are shed with 503 + Retry-After.
	// 0 means DefaultQueue.
	Queue int
	// CacheDir, when non-empty, gives every session a persistent
	// cachestore at <CacheDir>/<name>.cache: resolutions are appended as
	// they happen and replayed on the next create of the same name, so a
	// daemon restart warm-starts instead of re-paying the oracle.
	CacheDir string
	// Cluster, when non-nil, makes this server a cluster member: it
	// accepts replicated bound state on /v1/repl/{name}, promotes replicas
	// to live sessions when requests for them arrive (failover), and
	// writes meta sidecars next to every store. Requires CacheDir — the
	// store file is the replication medium.
	Cluster *cluster.Topology
	// Replicator, when non-nil, streams every hosted session's store to
	// its replica owners: sessions are Tracked on build and Untracked on
	// eviction. The server does not own its lifecycle (the daemon starts,
	// flushes, and closes it around the HTTP drain).
	Replicator *cluster.Replicator
	// Registry receives the service metrics when non-nil.
	Registry *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// DefaultQueue is the per-session admission cap when Config.Queue is 0.
const DefaultQueue = 64

// sessionState is the service-side payload attached to each registry
// entry via SessionEntry.Data: the admission semaphore plus the creation
// parameters used to detect conflicting re-creates, and the cache store
// to close on eviction.
type sessionState struct {
	sem       chan struct{} // admission slots; acquire non-blocking
	store     *cachestore.Store
	scheme    core.Scheme
	landmarks int
	lms       []int // the landmark IDs the session bootstrapped on
	seed      int64
	slack     core.SlackPolicy
	audit     bool

	// The session's navigable search graph (internal/nsw), built lazily by
	// the first successful /search and immutable afterwards; graphParams
	// records what it was built with so conflicting requests can be
	// refused. searchMu serialises the build — concurrent first searches
	// must not each pay for construction.
	searchMu    sync.Mutex
	graph       *nsw.Graph
	graphParams nsw.Params
}

// Server hosts the registry and implements the HTTP API. Create with New,
// mount Handler on a listener (metricproxd composes it with the obshttp
// exposition mux), and on shutdown call BeginDrain, drain the HTTP
// listener, then Close.
type Server struct {
	cfg      Config
	n        int
	queue    int
	reg      *core.SessionRegistry
	mux      *http.ServeMux
	met      *metrics
	repl     replManager
	inflight atomic.Int64
	draining atomic.Bool
	sweep    chan struct{} // closed by Close to stop the sweeper
	wg       sync.WaitGroup
}

// New builds a Server over cfg.Oracle. The universe size is taken from
// the oracle; it is fixed for the daemon's lifetime.
func New(cfg Config) (*Server, error) {
	if cfg.Oracle == nil {
		return nil, fmt.Errorf("service: Config.Oracle is required")
	}
	q := cfg.Queue
	if q <= 0 {
		q = DefaultQueue
	}
	if cfg.Cluster != nil && cfg.CacheDir == "" {
		return nil, fmt.Errorf("service: cluster mode requires CacheDir (the store file is the replication medium)")
	}
	s := &Server{
		cfg:   cfg,
		n:     cfg.Oracle.Len(),
		queue: q,
		met:   newMetrics(cfg.Registry),
		repl:  replManager{states: make(map[string]*replState)},
		sweep: make(chan struct{}),
	}
	s.reg = core.NewSessionRegistry(cfg.MaxSessions, cfg.SessionTTL, s.onEvict)
	s.routes()
	if cfg.SessionTTL > 0 {
		s.wg.Add(1)
		go s.sweeper()
	}
	return s, nil
}

// logf forwards to Config.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// onEvict flushes and closes an evicted session's cache store; it runs
// outside the registry lock. In cluster mode it also stops the session's
// replication stream first (so no pump cycle touches the closing store)
// and clears the promotion tombstone afterwards, making the name
// replicable again from the surviving file.
func (s *Server) onEvict(e *core.SessionEntry) {
	s.met.evictions.Inc()
	s.met.sessions.Set(float64(s.reg.Len()))
	if s.cfg.Replicator != nil {
		s.cfg.Replicator.Untrack(e.Name)
	}
	st, ok := e.Data.(*sessionState)
	if ok && st.store != nil {
		if err := st.store.Close(); err != nil {
			s.logf("service: closing cache of session %q: %v", e.Name, err)
		}
	}
	if s.clusterEnabled() {
		s.repl.forget(e.Name)
		s.met.replSessions.Set(float64(s.repl.count()))
	}
}

// sweeper evicts TTL-expired sessions in the background.
func (s *Server) sweeper() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SessionTTL / 4)
	defer t.Stop()
	for {
		select {
		case <-s.sweep:
			return
		case <-t.C:
			if names := s.reg.Sweep(); len(names) > 0 {
				s.logf("service: evicted idle sessions %v", names)
			}
		}
	}
}

// Handler returns the service's HTTP handler (all /v1/... routes plus
// /healthz).
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the server into draining mode: every subsequent
// request is refused with 503/draining, while requests already executing
// finish normally (the HTTP server's Shutdown waits for those).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the TTL sweeper and evicts every session, flushing and
// closing their cache stores. Call after the HTTP listener has drained.
func (s *Server) Close() error {
	select {
	case <-s.sweep:
	default:
		close(s.sweep)
	}
	s.wg.Wait()
	n := s.reg.Clear()
	s.repl.closeAll()
	s.logf("service: closed %d sessions", n)
	return nil
}

// Drain is the full graceful-shutdown sequence for servers not embedded
// in a larger binary: BeginDrain, wait out ctx (the caller's HTTP
// listener drain), then Close.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	<-ctx.Done()
	return s.Close()
}

// routes mounts every endpoint. Go 1.22 pattern syntax gives us method
// and path-variable matching without a router dependency.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/sessions", s.instrument("create", s.handleCreate))
	s.mux.HandleFunc("GET /v1/sessions", s.instrument("list", s.handleList))
	s.mux.HandleFunc("GET /v1/sessions/{name}", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("DELETE /v1/sessions/{name}", s.instrument("delete", s.handleDelete))
	work := func(endpoint string, h func(http.ResponseWriter, *http.Request, *core.SessionEntry)) http.HandlerFunc {
		return s.instrument(endpoint, s.admit(endpoint, h))
	}
	s.mux.HandleFunc("POST /v1/sessions/{name}/dist", work("dist", s.handleDist))
	s.mux.HandleFunc("POST /v1/sessions/{name}/less", work("less", s.handleLess))
	s.mux.HandleFunc("POST /v1/sessions/{name}/lessthan", work("lessthan", s.handleLessThan))
	s.mux.HandleFunc("POST /v1/sessions/{name}/distifless", work("distifless", s.handleDistIfLess))
	s.mux.HandleFunc("POST /v1/sessions/{name}/bounds", work("bounds", s.handleBounds))
	s.mux.HandleFunc("POST /v1/sessions/{name}/bootstrap", work("bootstrap", s.handleBootstrap))
	s.mux.HandleFunc("POST /v1/sessions/{name}/batch", work("batch", s.handleDistBatch))
	s.mux.HandleFunc("POST /v1/sessions/{name}/knn", work("knn", s.handleKNN))
	s.mux.HandleFunc("GET /v1/sessions/{name}/search", work("search", s.handleSearch))
	s.mux.HandleFunc("POST /v1/sessions/{name}/search", work("search", s.handleSearch))
	s.mux.HandleFunc("POST /v1/sessions/{name}/mst", work("mst", s.handleMST))
	s.mux.HandleFunc("POST /v1/sessions/{name}/medoid", work("medoid", s.handleMedoid))
	// Cluster replication: node-to-node, not client-facing. Mounted
	// unconditionally; the handlers refuse with 400 outside cluster mode.
	s.mux.HandleFunc("POST /v1/repl/{name}", s.instrument("repl", s.handleReplAppend))
	s.mux.HandleFunc("GET /v1/repl/{name}", s.instrument("replstatus", s.handleReplStatus))
}

// instrument wraps a handler with the drain gate, the per-endpoint
// latency histogram, and the request counter.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.met.count(endpoint, http.StatusServiceUnavailable)
			writeError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining")
			return
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.met.latency(endpoint).Observe(time.Since(start).Nanoseconds())
		s.met.count(endpoint, sw.code)
	}
}

// admit resolves the session named in the path and takes one of its
// admission slots, shedding with 503 + Retry-After when all slots are
// busy. The slot is held for the duration of the wrapped handler — the
// "bounded per-session work queue". The registry entry is held via
// Acquire/Release for the same span, so the TTL sweeper can neither evict
// the session nor close its cache store while the handler runs (the
// drain-era race fixed in core.SessionRegistry). When this node holds
// replicated state for an unknown session, admit promotes it first — the
// failover path: a client routed here after the primary died finds a
// warm, already-replayed session instead of a 404.
func (s *Server) admit(endpoint string, h func(http.ResponseWriter, *http.Request, *core.SessionEntry)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		entry := s.reg.Acquire(r.PathValue("name"))
		if entry == nil {
			entry = s.promote(r.PathValue("name"))
		}
		if entry == nil {
			writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("no session %q", r.PathValue("name")))
			return
		}
		defer s.reg.Release(entry)
		st := entry.Data.(*sessionState)
		select {
		case st.sem <- struct{}{}:
		default:
			s.met.shed(endpoint).Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, api.CodeOverloaded,
				fmt.Sprintf("session %q has all %d work slots busy", entry.Name, cap(st.sem)))
			return
		}
		depth := s.inflight.Add(1)
		s.met.queueDepth.Set(float64(depth))
		defer func() {
			<-st.sem
			s.met.queueDepth.Set(float64(s.inflight.Add(-1)))
		}()
		h(w, r, entry)
	}
}

// statusWriter records the status code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader captures the code before delegating.
func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// writeError emits the JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"code": code, "message": msg})
}

// writeJSON emits a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// decode parses a JSON request body into v.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// validName reports whether a session name is safe for registry keys and
// cache filenames: [A-Za-z0-9._-]+, no leading dot, at most 128 bytes.
func validName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// cachePath returns the session's cachestore path, or "" when persistence
// is off.
func (s *Server) cachePath(name string) string {
	if s.cfg.CacheDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.CacheDir, name+".cache")
}

// landmarkCount applies the log2-n default used across the CLIs.
func (s *Server) landmarkCount(req int) int {
	if req > 0 {
		return req
	}
	k := 0
	for v := s.n; v > 1; v /= 2 {
		k++
	}
	return k
}

// sortedNames returns the live session names sorted for stable listings.
func (s *Server) sortedNames() []string {
	names := s.reg.Names()
	sort.Strings(names)
	return names
}
