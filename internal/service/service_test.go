package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
	"metricprox/internal/obs"
	"metricprox/internal/prox"
	"metricprox/internal/service/api"
)

const (
	testN    = 60
	testSeed = int64(1)
)

func testSpace() metric.Space { return datasets.SFPOI(testN, testSeed) }

// newTestServer starts a Server over its own oracle and returns it with
// an httptest listener. Callers own srv.Close.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *metric.Oracle) {
	t.Helper()
	oracle := metric.NewOracle(testSpace())
	if cfg.Oracle == nil {
		cfg.Oracle = oracle
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, oracle
}

// post sends a JSON request and decodes a JSON response, failing the test
// on any status other than want.
func post(t *testing.T, url string, reqBody, out any, want int) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if reqBody != nil {
		if err := json.NewEncoder(&buf).Encode(reqBody); err != nil {
			t.Fatalf("encode request: %v", err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	if resp.StatusCode != want {
		t.Fatalf("POST %s: status %d, want %d; body %s", url, resp.StatusCode, want, body.String())
	}
	if out != nil && resp.StatusCode == want {
		if err := json.Unmarshal(body.Bytes(), out); err != nil {
			t.Fatalf("decode response %s: %v", body.String(), err)
		}
	}
	return resp
}

func createSession(t *testing.T, base, name, scheme string, bootstrap bool) api.SessionInfo {
	t.Helper()
	var info api.SessionInfo
	post(t, base+"/v1/sessions", api.CreateSessionRequest{
		Name: name, Scheme: scheme, Seed: testSeed, Bootstrap: bootstrap,
	}, &info, http.StatusOK)
	return info
}

// referenceSession builds the in-process session the server-side runs
// must match bit for bit: same oracle source, scheme, landmarks, seed.
func referenceSession(t *testing.T, scheme core.Scheme) *core.Session {
	t.Helper()
	k := 0
	for v := testN; v > 1; v /= 2 {
		k++
	}
	lms := core.PickLandmarks(testN, k, testSeed)
	s := core.NewFallibleSessionWithLandmarks(metric.NewOracle(testSpace()), scheme, lms)
	if scheme != core.SchemeNoop {
		if _, err := s.BootstrapErr(lms); err != nil {
			t.Fatalf("reference bootstrap: %v", err)
		}
	}
	return s
}

func TestServerSideRunsMatchInProcess(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	createSession(t, ts.URL, "equiv", "tri", true)
	base := ts.URL + "/v1/sessions/equiv"

	ref := referenceSession(t, core.SchemeTri)
	wantKNN := prox.KNNGraph(ref, 3)
	wantMST := prox.PrimMST(ref)
	wantPAM := prox.PAM(referenceSession(t, core.SchemeTri), 4, 7)

	var knn api.KNNResponse
	post(t, base+"/knn", api.KNNRequest{K: 3}, &knn, http.StatusOK)
	if len(knn.Rows) != testN {
		t.Fatalf("knn rows = %d, want %d", len(knn.Rows), testN)
	}
	for u, row := range knn.Rows {
		if len(row) != len(wantKNN[u]) {
			t.Fatalf("node %d: %d neighbours, want %d", u, len(row), len(wantKNN[u]))
		}
		for i, nb := range row {
			if nb.ID != wantKNN[u][i].ID || !fcmp.ExactEq(float64(nb.D), wantKNN[u][i].Dist) {
				t.Fatalf("node %d neighbour %d: got (%d, %v), want (%d, %v)",
					u, i, nb.ID, float64(nb.D), wantKNN[u][i].ID, wantKNN[u][i].Dist)
			}
		}
	}

	var mst api.MSTResponse
	post(t, base+"/mst", nil, &mst, http.StatusOK)
	if !fcmp.ExactEq(float64(mst.Weight), wantMST.Weight) || len(mst.Edges) != len(wantMST.Edges) {
		t.Fatalf("mst weight %v / %d edges, want %v / %d",
			float64(mst.Weight), len(mst.Edges), wantMST.Weight, len(wantMST.Edges))
	}
	for i, e := range mst.Edges {
		w := wantMST.Edges[i]
		if e.U != w.U || e.V != w.V || !fcmp.ExactEq(float64(e.W), w.W) {
			t.Fatalf("mst edge %d: got (%d,%d,%v), want (%d,%d,%v)", i, e.U, e.V, float64(e.W), w.U, w.V, w.W)
		}
	}

	// PAM mutates bound state heavily; run it on a fresh session so the
	// reference and remote start from the same (bootstrapped-only) state.
	createSession(t, ts.URL, "equiv-pam", "tri", true)
	var med api.MedoidResponse
	post(t, ts.URL+"/v1/sessions/equiv-pam/medoid", api.MedoidRequest{L: 4, Seed: 7}, &med, http.StatusOK)
	if !reflect.DeepEqual(med.Medoids, wantPAM.Medoids) || !reflect.DeepEqual(med.Assign, wantPAM.Assign) ||
		!fcmp.ExactEq(float64(med.Cost), wantPAM.Cost) {
		t.Fatalf("medoid: got %v/%v, want %v/%v", med.Medoids, float64(med.Cost), wantPAM.Medoids, wantPAM.Cost)
	}
}

func TestPrimitivesMatchInProcess(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	createSession(t, ts.URL, "prims", "tri", true)
	base := ts.URL + "/v1/sessions/prims"
	ref := referenceSession(t, core.SchemeTri)

	var dist api.DistResponse
	post(t, base+"/dist", api.PairRequest{I: 3, J: 17}, &dist, http.StatusOK)
	if want := ref.Dist(3, 17); !fcmp.ExactEq(float64(dist.D), want) {
		t.Fatalf("dist = %v, want %v", float64(dist.D), want)
	}

	var less api.LessResponse
	post(t, base+"/less", api.LessRequest{I: 3, J: 17, K: 5, L: 40}, &less, http.StatusOK)
	if want := ref.Less(3, 17, 5, 40); less.Less != want {
		t.Fatalf("less = %v, want %v", less.Less, want)
	}

	post(t, base+"/lessthan", api.LessThanRequest{I: 8, J: 9, C: 0.2}, &less, http.StatusOK)
	if want := ref.LessThan(8, 9, 0.2); less.Less != want {
		t.Fatalf("lessthan = %v, want %v", less.Less, want)
	}

	var dil api.DistIfLessResponse
	post(t, base+"/distifless", api.DistIfLessRequest{I: 2, J: 30, C: api.WireFloat(ref.MaxDistance() * 2)}, &dil, http.StatusOK)
	wd, wl := ref.DistIfLess(2, 30, ref.MaxDistance()*2)
	if dil.Less != wl || !fcmp.ExactEq(float64(dil.D), wd) {
		t.Fatalf("distifless = (%v,%v), want (%v,%v)", float64(dil.D), dil.Less, wd, wl)
	}

	var bounds api.BoundsResponse
	post(t, base+"/bounds", api.PairRequest{I: 2, J: 30}, &bounds, http.StatusOK)
	lb, ub := ref.Bounds(2, 30)
	if !fcmp.ExactEq(float64(bounds.LB), lb) || !fcmp.ExactEq(float64(bounds.UB), ub) {
		t.Fatalf("bounds = [%v,%v], want [%v,%v]", float64(bounds.LB), float64(bounds.UB), lb, ub)
	}

	// The pair was just resolved by distifless: bounds must have collapsed.
	if !fcmp.ExactEq(float64(bounds.LB), float64(bounds.UB)) {
		t.Fatalf("bounds of a resolved pair did not collapse: [%v,%v]", float64(bounds.LB), float64(bounds.UB))
	}
}

func TestBatchMatchesScalars(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	createSession(t, ts.URL, "batch", "tri", true)
	ref := referenceSession(t, core.SchemeTri)

	ops := []api.BatchOp{
		{Op: api.OpBounds, I: 1, J: 2},
		{Op: api.OpDist, I: 1, J: 2},
		{Op: api.OpLess, I: 1, J: 2, K: 3, L: 4},
		{Op: api.OpLessThan, I: 5, J: 6, C: 0.5},
		{Op: api.OpDistIfLess, I: 7, J: 8, C: api.WireFloat(ref.MaxDistance() * 2)},
		{Op: "nonsense", I: 1, J: 2},
		{Op: api.OpDist, I: -1, J: 2},
	}
	var resp api.BatchResponse
	post(t, ts.URL+"/v1/sessions/batch/batch", api.BatchRequest{Ops: ops}, &resp, http.StatusOK)
	if len(resp.Results) != len(ops) {
		t.Fatalf("%d results for %d ops", len(resp.Results), len(ops))
	}

	lb, ub := ref.Bounds(1, 2)
	if r := resp.Results[0]; !fcmp.ExactEq(float64(r.LB), lb) || !fcmp.ExactEq(float64(r.UB), ub) {
		t.Fatalf("batch bounds [%v,%v], want [%v,%v]", float64(r.LB), float64(r.UB), lb, ub)
	}
	if r := resp.Results[1]; !fcmp.ExactEq(float64(r.D), ref.Dist(1, 2)) {
		t.Fatalf("batch dist %v, want %v", float64(r.D), ref.Dist(1, 2))
	}
	if r := resp.Results[2]; r.Less != ref.Less(1, 2, 3, 4) {
		t.Fatalf("batch less %v, want %v", r.Less, ref.Less(1, 2, 3, 4))
	}
	if r := resp.Results[3]; r.Less != ref.LessThan(5, 6, 0.5) {
		t.Fatalf("batch lessthan %v, want %v", r.Less, ref.LessThan(5, 6, 0.5))
	}
	wd, wl := ref.DistIfLess(7, 8, ref.MaxDistance()*2)
	if r := resp.Results[4]; r.Less != wl || !fcmp.ExactEq(float64(r.D), wd) {
		t.Fatalf("batch distifless (%v,%v), want (%v,%v)", float64(r.D), r.Less, wd, wl)
	}
	if r := resp.Results[5]; r.Err != api.CodeBadRequest {
		t.Fatalf("unknown op err = %q, want %q", r.Err, api.CodeBadRequest)
	}
	if r := resp.Results[6]; r.Err != api.CodeBadRequest {
		t.Fatalf("out-of-range op err = %q, want %q", r.Err, api.CodeBadRequest)
	}
}

func TestCreateConflictAndValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	createSession(t, ts.URL, "c1", "tri", false)

	// Same parameters: idempotent attach.
	var info api.SessionInfo
	post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Name: "c1", Scheme: "tri", Seed: testSeed}, &info, http.StatusOK)
	if info.Created {
		t.Fatal("re-create with same params reported Created=true")
	}

	// Different scheme: conflict.
	post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Name: "c1", Scheme: "splub", Seed: testSeed}, nil, http.StatusConflict)

	// Bad names and schemes are rejected up front.
	post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Name: "../evil", Scheme: "tri"}, nil, http.StatusBadRequest)
	post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Name: "ok", Scheme: "warp"}, nil, http.StatusBadRequest)

	// Unknown session name on a work endpoint.
	post(t, ts.URL+"/v1/sessions/ghost/dist", api.PairRequest{I: 0, J: 1}, nil, http.StatusNotFound)
}

func TestMaxSessionsCap(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxSessions: 2})
	createSession(t, ts.URL, "a", "tri", false)
	createSession(t, ts.URL, "b", "tri", false)
	resp := post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Name: "c", Scheme: "tri"}, nil, http.StatusServiceUnavailable)
	_ = resp
	// Attaching to an existing session still works at the cap.
	post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Name: "a", Scheme: "tri", Seed: testSeed}, nil, http.StatusOK)
	// Deleting frees a slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/b", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil || dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %v %v", err, dresp.Status)
	}
	dresp.Body.Close()
	createSession(t, ts.URL, "c", "tri", false)
}

// gatedOracle blocks every DistanceCtx call until released, making
// admission tests deterministic.
type gatedOracle struct {
	space   metric.Space
	entered chan struct{} // receives one token per call that has started
	release chan struct{} // closed to let calls finish
}

func (g *gatedOracle) Len() int { return g.space.Len() }

func (g *gatedOracle) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	g.entered <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return g.space.Distance(i, j), nil
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	reg := obs.NewRegistry()
	gate := &gatedOracle{space: testSpace(), entered: make(chan struct{}, 8), release: make(chan struct{})}
	_, ts, _ := newTestServer(t, Config{Oracle: gate, Queue: 1, Registry: reg})
	createSession(t, ts.URL, "q", "noop", false)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var d api.DistResponse
		post(t, ts.URL+"/v1/sessions/q/dist", api.PairRequest{I: 0, J: 1}, &d, http.StatusOK)
	}()
	<-gate.entered // slot holder is now inside the oracle

	// Second request: the single work slot is busy → shed with Retry-After.
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(api.PairRequest{I: 0, J: 2})
	resp, err := http.Post(ts.URL+"/v1/sessions/q/dist", "application/json", &buf)
	if err != nil {
		t.Fatalf("shed request: %v", err)
	}
	var errBody api.ErrorBody
	json.NewDecoder(resp.Body).Decode(&errBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || errBody.Code != api.CodeOverloaded {
		t.Fatalf("shed response: status %d code %q, want 503 %q", resp.StatusCode, errBody.Code, api.CodeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	close(gate.release)
	wg.Wait()

	if got := reg.Counter(MetricShed, obs.Label{Key: "endpoint", Value: "dist"}).Value(); got != 1 {
		t.Fatalf("%s{endpoint=dist} = %d, want 1", MetricShed, got)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{})
	createSession(t, ts.URL, "d", "tri", false)

	srv.BeginDrain()
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(api.PairRequest{I: 0, J: 1})
	resp, err := http.Post(ts.URL+"/v1/sessions/d/dist", "application/json", &buf)
	if err != nil {
		t.Fatalf("drain request: %v", err)
	}
	var errBody api.ErrorBody
	json.NewDecoder(resp.Body).Decode(&errBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || errBody.Code != api.CodeDraining {
		t.Fatalf("drain response: status %d code %q, want 503 %q", resp.StatusCode, errBody.Code, api.CodeDraining)
	}

	// Healthz keeps answering, reporting the drain.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz during drain: %v", err)
	}
	var h api.Healthz
	json.NewDecoder(hresp.Body).Decode(&h)
	hresp.Body.Close()
	if h.Status != "draining" {
		t.Fatalf("healthz status %q during drain, want draining", h.Status)
	}
}

func TestCachePersistsAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()
	space := testSpace()

	// Cold server: resolve a set of pairs, then shut down cleanly.
	oracle1 := metric.NewOracle(space)
	srv1, err := New(Config{Oracle: oracle1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	createSession(t, ts1.URL, "warm", "tri", true)
	var ops []api.BatchOp
	for j := 1; j <= 20; j++ {
		ops = append(ops, api.BatchOp{Op: api.OpDist, I: 0, J: j})
	}
	var bresp api.BatchResponse
	post(t, ts1.URL+"/v1/sessions/warm/batch", api.BatchRequest{Ops: ops}, &bresp, http.StatusOK)
	want := make([]float64, len(bresp.Results))
	for i, r := range bresp.Results {
		want[i] = float64(r.D)
	}
	coldCalls := oracle1.Calls()
	ts1.Close()
	srv1.Close() // evicts sessions, closing (and flushing) the cache store

	if _, err := filepath.Glob(filepath.Join(dir, "warm.cache")); err != nil {
		t.Fatal(err)
	}

	// Restarted server over the same CacheDir: same pairs must come from
	// the replayed cache with strictly fewer oracle calls.
	oracle2 := metric.NewOracle(space)
	srv2, err := New(Config{Oracle: oracle2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	createSession(t, ts2.URL, "warm", "tri", true)
	post(t, ts2.URL+"/v1/sessions/warm/batch", api.BatchRequest{Ops: ops}, &bresp, http.StatusOK)
	for i, r := range bresp.Results {
		if !fcmp.ExactEq(float64(r.D), want[i]) {
			t.Fatalf("pair %d after restart: %v, want %v", i, float64(r.D), want[i])
		}
	}
	if oracle2.Calls() >= coldCalls {
		t.Fatalf("warm restart made %d oracle calls, want < %d", oracle2.Calls(), coldCalls)
	}
}

func TestServiceMetricsAppear(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts, _ := newTestServer(t, Config{Registry: reg})
	createSession(t, ts.URL, "m", "tri", false)
	var d api.DistResponse
	post(t, ts.URL+"/v1/sessions/m/dist", api.PairRequest{I: 0, J: 1}, &d, http.StatusOK)

	if got := reg.Counter(MetricRequests,
		obs.Label{Key: "endpoint", Value: "dist"}, obs.Label{Key: "code", Value: "200"}).Value(); got != 1 {
		t.Fatalf("%s{dist,200} = %d, want 1", MetricRequests, got)
	}
	if got := reg.Histogram(MetricLatency, obs.Label{Key: "endpoint", Value: "dist"}).Count(); got != 1 {
		t.Fatalf("%s{dist} count = %d, want 1", MetricLatency, got)
	}
	if got := reg.Gauge(MetricSessions).Value(); !fcmp.ExactEq(got, 1) {
		t.Fatalf("%s = %v, want 1", MetricSessions, got)
	}
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.Healthz
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "ok" || h.N != testN {
		t.Fatalf("healthz = %+v, want ok/%d", h, testN)
	}
}

func TestSessionListSorted(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, name := range []string{"zeta", "alpha", "mid"} {
		createSession(t, ts.URL, name, "tri", false)
	}
	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list api.SessionList
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if want := []string{"alpha", "mid", "zeta"}; !reflect.DeepEqual(list.Sessions, want) {
		t.Fatalf("sessions = %v, want %v", list.Sessions, want)
	}
}

func TestTTLEvictionEndToEnd(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{SessionTTL: 80 * time.Millisecond})
	createSession(t, ts.URL, "ttl", "tri", false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sessions")
		if err != nil {
			t.Fatal(err)
		}
		var list api.SessionList
		json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if len(list.Sessions) == 0 {
			return // swept
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %v not TTL-evicted within deadline", list.Sessions)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSelfPairRejected(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	createSession(t, ts.URL, "self", "tri", false)
	var eb api.ErrorBody
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(api.PairRequest{I: 4, J: 4})
	resp, err := http.Post(ts.URL+"/v1/sessions/self/dist", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Code != api.CodeBadRequest {
		t.Fatalf("self pair: status %d code %q", resp.StatusCode, eb.Code)
	}
}

// TestBatchBoundsRunMatchesScalar drives the /batch bounds fast path: a
// long consecutive run of bounds ops (served by one BoundsBatch sweep),
// interrupted by invalid pairs inside the run and a dist op that splits
// it. Every bounds result must equal the reference session's scalar
// answer, and invalid ops must fail individually.
func TestBatchBoundsRunMatchesScalar(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	createSession(t, ts.URL, "boundsrun", "tri", true)
	ref := referenceSession(t, core.SchemeTri)

	rng := rand.New(rand.NewSource(21))
	var ops []api.BatchOp
	for q := 0; q < 40; q++ {
		ops = append(ops, api.BatchOp{Op: api.OpBounds, I: rng.Intn(testN), J: rng.Intn(testN)})
	}
	ops[7] = api.BatchOp{Op: api.OpBounds, I: 7, J: 7}       // self pair: rejected
	ops[13] = api.BatchOp{Op: api.OpBounds, I: -1, J: 3}     // out of range: rejected
	ops[20] = api.BatchOp{Op: api.OpDist, I: 20, J: 21}      // splits the run
	ops = append(ops, ops[0])                                // duplicate of the first query

	var resp api.BatchResponse
	post(t, ts.URL+"/v1/sessions/boundsrun/batch", api.BatchRequest{Ops: ops}, &resp, http.StatusOK)
	if len(resp.Results) != len(ops) {
		t.Fatalf("%d results for %d ops", len(resp.Results), len(ops))
	}
	for idx, op := range ops {
		res := resp.Results[idx]
		switch {
		case idx == 7 || idx == 13:
			if res.Err != api.CodeBadRequest {
				t.Fatalf("op %d: err %q, want %q", idx, res.Err, api.CodeBadRequest)
			}
		case idx == 20:
			if !fcmp.ExactEq(float64(res.D), ref.Dist(op.I, op.J)) {
				t.Fatalf("op %d: dist %v, want %v", idx, float64(res.D), ref.Dist(op.I, op.J))
			}
		default:
			lb, ub := ref.Bounds(op.I, op.J)
			if !fcmp.ExactEq(float64(res.LB), lb) || !fcmp.ExactEq(float64(res.UB), ub) {
				t.Fatalf("op %d (%d,%d): bounds [%v,%v], want [%v,%v]",
					idx, op.I, op.J, float64(res.LB), float64(res.UB), lb, ub)
			}
		}
	}
}
