package service

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"metricprox/internal/cachestore"
	"metricprox/internal/cluster"
	"metricprox/internal/faultmetric"
	"metricprox/internal/metric"
	"metricprox/internal/obs"
	"metricprox/internal/resilient"
	"metricprox/internal/service/api"
)

// clusterPair is a two-node test cluster: node "a" (the primary side —
// its server gets the Replicator) and node "b" (the replica side), each a
// full service.Server with its own cache dir, plus the topology both
// share. URLs are real httptest listeners, so replication crosses a
// loopback socket exactly as in production.
type clusterPair struct {
	srvA, srvB   *Server
	tsA, tsB     *httptest.Server
	dirA, dirB   string
	topoA, topoB *cluster.Topology
	repl         *cluster.Replicator
	regB         *obs.Registry
}

// newClusterPair wires the pair. oracleA serves node a (letting tests
// inject faults on the primary side); node b always gets a clean oracle
// over the same space.
func newClusterPair(t *testing.T, oracleA metric.FallibleOracle) *clusterPair {
	t.Helper()
	cp := &clusterPair{dirA: t.TempDir(), dirB: t.TempDir()}
	if oracleA == nil {
		oracleA = metric.NewOracle(testSpace())
	}

	// Listeners must exist before topologies (the config carries URLs), but
	// servers need the topology — so bind mux shells first and swap the
	// handlers in after construction.
	muxA, muxB := httptest.NewServer(nil), httptest.NewServer(nil)
	t.Cleanup(muxA.Close)
	t.Cleanup(muxB.Close)
	nodes := []cluster.Node{
		{Name: "a", URL: muxA.URL},
		{Name: "b", URL: muxB.URL},
	}
	var err error
	cp.topoA, err = cluster.NewTopology(cluster.Config{Self: "a", Nodes: nodes, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	cp.topoB, err = cluster.NewTopology(cluster.Config{Self: "b", Nodes: nodes, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}

	cp.repl = cluster.NewReplicator(cluster.ReplicatorConfig{
		Topology: cp.topoA,
		Interval: 5 * time.Millisecond,
	})
	t.Cleanup(cp.repl.Close)

	cp.srvA, err = New(Config{
		Oracle:     oracleA,
		CacheDir:   cp.dirA,
		Cluster:    cp.topoA,
		Replicator: cp.repl,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	cp.regB = obs.NewRegistry()
	cp.srvB, err = New(Config{
		Oracle:   metric.NewOracle(testSpace()),
		CacheDir: cp.dirB,
		Cluster:  cp.topoB,
		Registry: cp.regB,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cp.srvA.Close(); cp.srvB.Close() })
	muxA.Config.Handler = cp.srvA.Handler()
	muxB.Config.Handler = cp.srvB.Handler()
	cp.tsA, cp.tsB = muxA, muxB
	return cp
}

// doDelete issues a DELETE and expects 200.
func doDelete(t *testing.T, url string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE %s: status %d", url, resp.StatusCode)
	}
}

// records replays a closed store file.
func storeRecords(t *testing.T, path string) []cachestore.Record {
	t.Helper()
	s, err := cachestore.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer s.Close()
	var out []cachestore.Record
	if err := s.Replay(func(r cachestore.Record) bool { out = append(out, r); return true }); err != nil {
		t.Fatal(err)
	}
	return out
}

// assertPrefix fails unless got is a strict record-for-record prefix of
// full.
func assertPrefix(t *testing.T, got, full []cachestore.Record, label string) {
	t.Helper()
	if len(got) > len(full) {
		t.Fatalf("%s: replica has %d records, primary only %d — not a prefix", label, len(got), len(full))
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("%s: record %d diverges: replica %+v, primary %+v", label, i, got[i], full[i])
		}
	}
}

func TestReplAppendProtocol(t *testing.T) {
	cp := newClusterPair(t, nil)
	base := cp.tsB.URL + "/v1/repl/proto"
	meta := api.ReplMeta{Scheme: "tri", Landmarks: 2, Seed: 1, N: testN}

	// Probe an empty replica: cursor 0.
	var ack api.ReplAppendResponse
	post(t, base, api.ReplAppendRequest{Node: "a", Meta: meta, From: 0}, &ack, 200)
	if ack.Seq != 0 {
		t.Fatalf("probe seq = %d, want 0", ack.Seq)
	}
	// Append three records.
	recs := []api.ReplRecord{{I: 0, J: 1, D: 0.5}, {I: 1, J: 2, D: 0.25}, {I: 2, J: 3, D: 0.75}}
	post(t, base, api.ReplAppendRequest{Node: "a", Meta: meta, From: 0, Records: recs}, &ack, 200)
	if ack.Seq != 3 {
		t.Fatalf("append seq = %d, want 3", ack.Seq)
	}
	// Idempotent overlapping retry.
	post(t, base, api.ReplAppendRequest{Node: "a", Meta: meta, From: 1, Records: recs[1:]}, &ack, 200)
	if ack.Seq != 3 {
		t.Fatalf("overlap seq = %d, want 3", ack.Seq)
	}
	// A gap is answered 200 with the rewind cursor, not an HTTP error.
	post(t, base, api.ReplAppendRequest{Node: "a", Meta: meta, From: 9, Records: recs[:1]}, &ack, 200)
	if ack.Seq != 3 {
		t.Fatalf("gap seq = %d, want 3 (rewind cursor)", ack.Seq)
	}
	// Universe mismatch is refused.
	bad := meta
	bad.N = testN + 1
	post(t, base, api.ReplAppendRequest{Node: "a", Meta: bad, From: 3}, nil, 400)

	// Status endpoint reflects the replica.
	var st api.ReplStatusResponse
	httpGetJSON(t, base, &st, 200)
	if st.Seq != 3 || st.Promoted {
		t.Fatalf("status = %+v, want seq 3, not promoted", st)
	}

	// A client create on the replica node adopts the store; replication is
	// then conflicted.
	var info api.SessionInfo
	post(t, cp.tsB.URL+"/v1/sessions",
		api.CreateSessionRequest{Name: "proto", Scheme: "tri", Landmarks: 2, Seed: 1}, &info, 200)
	if !info.Created {
		t.Fatal("create did not build the session")
	}
	post(t, base, api.ReplAppendRequest{Node: "a", Meta: meta, From: 3}, nil, 409)
	httpGetJSON(t, base, &st, 200)
	if !st.Promoted {
		t.Fatalf("status after adoption = %+v, want promoted", st)
	}

	// Deleting the session clears the tombstone: replication resumes from
	// the surviving file.
	doDelete(t, cp.tsB.URL+"/v1/sessions/proto")
	post(t, base, api.ReplAppendRequest{Node: "a", Meta: meta, From: 3,
		Records: []api.ReplRecord{{I: 3, J: 4, D: 0.125}}}, &ack, 200)
	if ack.Seq != 4 {
		t.Fatalf("post-eviction append seq = %d, want 4 (resumed from file)", ack.Seq)
	}
}

func TestReplRefusedOutsideClusterMode(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{CacheDir: t.TempDir()})
	post(t, ts.URL+"/v1/repl/x",
		api.ReplAppendRequest{Node: "a", Meta: api.ReplMeta{Scheme: "tri", N: testN}}, nil, 400)
}

func TestFailoverPromotionServesReplicatedState(t *testing.T) {
	cp := newClusterPair(t, nil)
	cp.repl.Start()

	// Create on the primary and resolve a workload there.
	var info api.SessionInfo
	post(t, cp.tsA.URL+"/v1/sessions",
		api.CreateSessionRequest{Name: "fo", Scheme: "tri", Landmarks: 4, Seed: 2}, &info, 200)
	type pair struct{ i, j int }
	pairs := []pair{{0, 1}, {5, 9}, {12, 30}, {7, 41}, {3, 22}, {18, 55}}
	dists := map[pair]float64{}
	for _, p := range pairs {
		var d api.DistResponse
		post(t, cp.tsA.URL+"/v1/sessions/fo/dist", api.PairRequest{I: p.i, J: p.j}, &d, 200)
		dists[p] = float64(d.D)
	}

	// Let replication drain, then kill the primary (close its listener and
	// server — the hard way, like SIGKILL, is exercised in the e2e test).
	flushReplicator(t, cp)
	cp.tsA.Close()
	cp.repl.Close()

	// The same session name on the replica node: the first request
	// promotes, answers come from replayed state with zero oracle calls.
	for _, p := range pairs {
		var d api.DistResponse
		post(t, cp.tsB.URL+"/v1/sessions/fo/dist", api.PairRequest{I: p.i, J: p.j}, &d, 200)
		if float64(d.D) != dists[p] {
			t.Fatalf("pair %v: replica answered %v, primary answered %v", p, d.D, dists[p])
		}
	}
	var st api.StatsResponse
	httpGetJSON(t, cp.tsB.URL+"/v1/sessions/fo", &st, 200)
	if st.OracleCalls != 0 {
		t.Fatalf("promoted replica paid %d oracle calls for replicated pairs, want 0", st.OracleCalls)
	}
	if got := cp.regB.Counter(MetricPromotions).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricPromotions, got)
	}

	// The replica's log is a prefix of the dead primary's.
	cp.srvB.Close()
	cp.srvA.Close()
	assertPrefix(t,
		storeRecords(t, filepath.Join(cp.dirB, "fo.cache")),
		storeRecords(t, filepath.Join(cp.dirA, "fo.cache")),
		"failover")
}

// flushReplicator flushes with a test deadline.
func flushReplicator(t *testing.T, cp *clusterPair) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cp.repl.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func TestPromotedReplicaIsPrefixUnderFaultSchedules(t *testing.T) {
	// Satellite property test: whatever moment replication stops — here, a
	// seeded random point mid-workload on a faulty oracle — the replica's
	// bound store must be an exact record-for-record prefix of the
	// primary's, and the promoted session must serve every replicated pair
	// without new oracle calls. Soundness of failover reduces to this
	// property plus cachestore's replay soundness.
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			space := testSpace()
			inj := faultmetric.New(space, faultmetric.Config{
				Seed:               seed,
				TransientRate:      0.2,
				MaxFailuresPerPair: 2,
			})
			oracle := resilient.New(inj, resilient.RetryOnlyPolicy(seed))
			cp := newClusterPair(t, oracle)
			cp.repl.Start()

			name := fmt.Sprintf("prop%d", seed)
			var info api.SessionInfo
			post(t, cp.tsA.URL+"/v1/sessions",
				api.CreateSessionRequest{Name: name, Scheme: "tri", Landmarks: 3, Seed: seed}, &info, 200)

			rng := rand.New(rand.NewSource(seed))
			stopAfter := 10 + rng.Intn(30) // the "kill point" in requests
			for k := 0; k < 60; k++ {
				i, j := rng.Intn(testN), rng.Intn(testN)
				if i == j {
					continue
				}
				var d api.DistResponse
				post(t, cp.tsA.URL+"/v1/sessions/"+name+"/dist", api.PairRequest{I: i, J: j}, &d, 200)
				if k == stopAfter {
					// Replication dies here; the primary keeps resolving.
					cp.repl.Close()
				}
			}

			// Promote on the replica: any request does it.
			var st api.StatsResponse
			httpGetJSON(t, cp.tsB.URL+"/v1/sessions/"+name, &st, 200)

			// Replay both logs and check the prefix property.
			cp.srvB.Close()
			cp.srvA.Close()
			replica := storeRecords(t, filepath.Join(cp.dirB, name+".cache"))
			primary := storeRecords(t, filepath.Join(cp.dirA, name+".cache"))
			assertPrefix(t, replica, primary, fmt.Sprintf("seed %d", seed))
		})
	}
}
