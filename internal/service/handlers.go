package service

import (
	"errors"
	"fmt"
	"net/http"

	"metricprox/internal/cachestore"
	"metricprox/internal/cluster"
	"metricprox/internal/core"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
	"metricprox/internal/service/api"
)

// handleHealthz answers liveness probes; it stays mounted during drain so
// orchestrators can watch the daemon go down cleanly.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, api.Healthz{Status: status, N: s.n, Sessions: len(s.reg.Names())})
}

// handleCreate creates a named session or idempotently attaches to an
// existing one; attaching with contradictory parameters is a 409.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if !validName(req.Name) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("invalid session name %q (want [A-Za-z0-9._-]+, no leading dot)", req.Name))
		return
	}
	scheme, err := core.ParseScheme(req.Scheme)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	lmCount := s.landmarkCount(req.Landmarks)
	slack := core.SlackPolicy{
		Additive: float64(req.SlackEps),
		Ratio:    float64(req.SlackRatio),
		Auto:     req.SlackAuto,
	}
	// Validate the slack/scheme combination up front: the core options
	// panic on bad combinations, and a client mistake must be a 400, not a
	// daemon crash.
	if err := core.SlackSupported(slack, scheme); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}

	entry, created, err := s.reg.GetOrCreate(req.Name, func() (*core.SharedSession, any, error) {
		return s.buildSession(req.Name, scheme, lmCount, req.Seed, req.Bootstrap, slack, req.Audit)
	})
	switch {
	case errors.Is(err, core.ErrTooManySessions):
		writeError(w, http.StatusServiceUnavailable, api.CodeTooManySessions, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	st := entry.Data.(*sessionState)
	if !created && (st.scheme != scheme || st.landmarks != lmCount || st.seed != req.Seed ||
		st.slack != slack || st.audit != req.Audit) {
		writeError(w, http.StatusConflict, api.CodeConflict,
			fmt.Sprintf("session %q exists with scheme=%v landmarks=%d seed=%d slack=%+v audit=%v",
				entry.Name, st.scheme, st.landmarks, st.seed, st.slack, st.audit))
		return
	}
	s.met.sessions.Set(float64(s.reg.Len()))
	writeJSON(w, api.SessionInfo{
		Name:        entry.Name,
		Scheme:      st.scheme.String(),
		N:           s.n,
		MaxDistance: api.WireFloat(entry.Session.MaxDistance()),
		Created:     created,
	})
}

// buildSession is the registry build callback: session, optional
// persistent cache (replayed for warm starts), optional bootstrap, then
// the shared concurrent wrapper.
func (s *Server) buildSession(name string, scheme core.Scheme, lmCount int, seed int64, bootstrap bool, slack core.SlackPolicy, audit bool) (*core.SharedSession, any, error) {
	var opts []core.Option
	if s.cfg.MaxDistance > 0 {
		opts = append(opts, core.WithMaxDistance(s.cfg.MaxDistance))
	}
	if slack.Active() {
		opts = append(opts, core.WithSlack(slack))
	}
	if audit && !slack.Auto { // Auto already attaches its own auditor
		opts = append(opts, core.WithAuditor(metric.NewAuditor(0)))
	}
	lms := core.PickLandmarks(s.n, lmCount, seed)
	sess := core.NewFallibleSessionWithLandmarks(s.cfg.Oracle, scheme, lms, opts...)

	st := &sessionState{
		sem:       make(chan struct{}, s.queue),
		scheme:    scheme,
		landmarks: lmCount,
		lms:       lms,
		seed:      seed,
		slack:     slack,
		audit:     audit,
	}
	if path := s.cachePath(name); path != "" {
		// In cluster mode, prefer adopting this node's replica store over
		// re-opening the path: the replica stream may still be appending
		// through that handle, and adoption atomically halts it (further
		// repl appends answer 409) before the session takes ownership.
		store := s.repl.adopt(name)
		if store == nil {
			var err error
			store, err = cachestore.OpenOrCreate(path, s.n)
			if err != nil {
				return nil, nil, fmt.Errorf("open session cache: %w", err)
			}
		} else {
			s.met.replSessions.Set(float64(s.repl.count()))
		}
		if err := sess.AttachStore(store); err != nil {
			store.Close()
			s.repl.forget(name) // a failed adoption must not leave a tombstone
			return nil, nil, fmt.Errorf("replay session cache: %w", err)
		}
		st.store = store
	}
	if bootstrap && scheme != core.SchemeNoop {
		if _, err := sess.BootstrapErr(lms); err != nil {
			// Partial bootstrap is sound (bounds stay conservative);
			// log and serve rather than refusing the session.
			s.logf("service: session %q bootstrap aborted, continuing with partial bounds: %v", name, err)
		}
	}
	if s.clusterEnabled() && st.store != nil {
		meta := s.replMeta(scheme, lmCount, seed, bootstrap, slack, audit)
		if err := cluster.SaveMeta(s.cfg.CacheDir, name, meta); err != nil {
			s.logf("service: session %q: writing meta sidecar: %v", name, err)
		}
		if s.cfg.Replicator != nil {
			s.cfg.Replicator.Track(name, st.store, meta)
		}
	}
	return core.Share(sess), st, nil
}

// handleList lists live sessions.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, api.SessionList{Sessions: s.sortedNames()})
}

// handleStats snapshots one session's core.Stats. Like the work
// endpoints it promotes a replicated session on a miss, so any request —
// including a bare stats probe — brings a failed-over session up.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	entry := s.reg.Acquire(r.PathValue("name"))
	if entry == nil {
		entry = s.promote(r.PathValue("name"))
	}
	if entry == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("no session %q", r.PathValue("name")))
		return
	}
	defer s.reg.Release(entry)
	st := entry.Session.Stats()
	writeJSON(w, api.StatsResponse{
		OracleCalls:         st.OracleCalls,
		BootstrapCalls:      st.BootstrapCalls,
		BoundProbes:         st.BoundProbes,
		SavedComparisons:    st.SavedComparisons,
		ResolvedComparisons: st.ResolvedComparisons,
		CacheHits:           st.CacheHits,
		Retries:             st.Retries,
		Timeouts:            st.Timeouts,
		BreakerOpens:        st.BreakerOpens,
		DegradedAnswers:     st.DegradedAnswers,
		StoreErrors:         st.StoreErrors,
		SlackResolved:       st.SlackResolved,
		Violations:          st.Violations,
	})
}

// handleDelete evicts a session, closing its cache store.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Evict(name) {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("no session %q", name))
		return
	}
	writeJSON(w, map[string]string{"deleted": name})
}

// checkPair validates one (i, j) index pair against the universe.
func (s *Server) checkPair(i, j int) error {
	if i < 0 || i >= s.n || j < 0 || j >= s.n {
		return fmt.Errorf("pair (%d,%d) out of range [0,%d)", i, j, s.n)
	}
	if i == j {
		return fmt.Errorf("pair (%d,%d): self-distances are not mediated", i, j)
	}
	return nil
}

// oracleFailure maps a session resolution error onto the wire: a 502 with
// oracle_unavailable when the resilient policy gave up, 500 otherwise.
// The server never degrades an answer to an estimate — that decision
// belongs to the client, which knows whether its caller can tolerate it.
func oracleFailure(w http.ResponseWriter, err error) {
	if errors.Is(err, core.ErrOracleUnavailable) {
		writeError(w, http.StatusBadGateway, api.CodeOracleUnavailable, err.Error())
		return
	}
	writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
}

// handleDist resolves one exact distance. Audited Dist* endpoint: the
// response carries a raw oracle value by design.
func (s *Server) handleDist(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	var req api.PairRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if err := s.checkPair(req.I, req.J); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	d, err := entry.Session.DistErr(req.I, req.J)
	if err != nil {
		oracleFailure(w, err)
		return
	}
	writeJSON(w, api.DistResponse{D: api.WireFloat(d)})
}

// handleLess answers dist(i,j) < dist(k,l) — one bit, no distances.
func (s *Server) handleLess(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	var req api.LessRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if err := s.checkPair(req.I, req.J); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if err := s.checkPair(req.K, req.L); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	less, err := entry.Session.LessErr(req.I, req.J, req.K, req.L)
	if err != nil {
		oracleFailure(w, err)
		return
	}
	writeJSON(w, api.LessResponse{Less: less})
}

// handleLessThan answers dist(i,j) < c — one bit, no distances.
func (s *Server) handleLessThan(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	var req api.LessThanRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if err := s.checkPair(req.I, req.J); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	less, err := entry.Session.LessThanErr(req.I, req.J, float64(req.C))
	if err != nil {
		oracleFailure(w, err)
		return
	}
	writeJSON(w, api.LessResponse{Less: less})
}

// handleDistIfLess conditionally resolves a distance. Audited Dist*
// endpoint: D is a raw oracle value when Less.
func (s *Server) handleDistIfLess(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	var req api.DistIfLessRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if err := s.checkPair(req.I, req.J); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	d, less, err := entry.Session.DistIfLessErr(req.I, req.J, float64(req.C))
	if err != nil {
		oracleFailure(w, err)
		return
	}
	resp := api.DistIfLessResponse{Less: less}
	if less {
		// d is exact whenever less is true: the relaxed-bounds decision
		// path returns less=false, so a shipped D is always a cache hit or
		// an oracle resolution. The taint is decideDistIfLess's gap metric
		// sharing the function-level fact.
		resp.D = api.WireFloat(d) //proxlint:allow slackescape -- D ships only on the exact (cache/oracle) path; the bounds-decided path never sets less
	}
	writeJSON(w, resp)
}

// handleBounds reads the current bounds of a pair — never an oracle call.
// lb == ub exactly when the pair is resolved; that is the weak oracle's
// public face, deliberately outside the Dist* audit (DESIGN.md §10).
func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	var req api.PairRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if err := s.checkPair(req.I, req.J); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	lb, ub := entry.Session.Bounds(req.I, req.J)
	// Eps is read after Bounds so it is ≥ the slack actually applied (an
	// auto policy can only grow it); the client's escalation detection
	// needs that ordering, not exactness.
	writeJSON(w, api.BoundsResponse{
		LB:  api.WireFloat(lb),
		UB:  api.WireFloat(ub),
		Eps: api.WireFloat(entry.Session.SlackEps()),
	})
}

// handleBootstrap resolves landmark rows up front.
func (s *Server) handleBootstrap(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	var req api.BootstrapRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	for _, l := range req.Landmarks {
		if l < 0 || l >= s.n {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Sprintf("landmark %d out of range [0,%d)", l, s.n))
			return
		}
	}
	calls, err := entry.Session.BootstrapErr(req.Landmarks)
	if err != nil {
		oracleFailure(w, err)
		return
	}
	writeJSON(w, api.BootstrapResponse{Calls: calls})
}

// handleDistBatch executes many primitive ops in one round-trip. Audited
// Dist* endpoint: dist and distifless results carry raw oracle values;
// less/lessthan/bounds results follow their scalar contracts (one bit /
// bounds only). Ops fail independently via per-result error codes.
func (s *Server) handleDistBatch(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	var req api.BatchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	results := make([]api.BatchResult, len(req.Ops))
	sess := entry.Session
	for idx := 0; idx < len(req.Ops); idx++ {
		op := req.Ops[idx]
		if op.Op == api.OpBounds {
			// A bounds op never mutates session state, so a maximal
			// consecutive run of them answers identically whether served
			// one by one or in a single BoundsBatch sweep — and the sweep
			// takes one lock acquisition and one pass over the bound
			// scheme's state for the whole run (the shape the client's
			// PrefetchBounds emits).
			end := idx + 1
			for end < len(req.Ops) && req.Ops[end].Op == api.OpBounds {
				end++
			}
			s.serveBoundsRun(sess, req.Ops[idx:end], results[idx:end])
			idx = end - 1
			continue
		}
		res := &results[idx]
		if err := s.checkPair(op.I, op.J); err != nil {
			res.Err = api.CodeBadRequest
			continue
		}
		switch op.Op {
		case api.OpDist:
			d, err := sess.DistErr(op.I, op.J)
			if err != nil {
				res.Err = api.CodeOracleUnavailable
				continue
			}
			res.D = api.WireFloat(d)
		case api.OpLess:
			if err := s.checkPair(op.K, op.L); err != nil {
				res.Err = api.CodeBadRequest
				continue
			}
			less, err := sess.LessErr(op.I, op.J, op.K, op.L)
			if err != nil {
				res.Err = api.CodeOracleUnavailable
				continue
			}
			res.Less = less
		case api.OpLessThan:
			less, err := sess.LessThanErr(op.I, op.J, float64(op.C))
			if err != nil {
				res.Err = api.CodeOracleUnavailable
				continue
			}
			res.Less = less
		case api.OpDistIfLess:
			d, less, err := sess.DistIfLessErr(op.I, op.J, float64(op.C))
			if err != nil {
				res.Err = api.CodeOracleUnavailable
				continue
			}
			res.Less = less
			if less {
				res.D = api.WireFloat(d) //proxlint:allow slackescape -- D ships only on the exact (cache/oracle) path; the bounds-decided path never sets less
			}
		default:
			res.Err = api.CodeBadRequest
		}
	}
	writeJSON(w, api.BatchResponse{Results: results})
}

// serveBoundsRun answers a consecutive run of bounds ops with one
// BoundsBatch call. Ops with invalid pairs fail individually with
// CodeBadRequest, exactly as the scalar path would, and do not join the
// batch.
func (s *Server) serveBoundsRun(sess *core.SharedSession, ops []api.BatchOp, results []api.BatchResult) {
	is := make([]int, 0, len(ops))
	js := make([]int, 0, len(ops))
	slots := make([]int, 0, len(ops))
	for x, op := range ops {
		if err := s.checkPair(op.I, op.J); err != nil {
			results[x].Err = api.CodeBadRequest
			continue
		}
		is = append(is, op.I)
		js = append(js, op.J)
		slots = append(slots, x)
	}
	if len(is) == 0 {
		return
	}
	lb := make([]float64, len(is))
	ub := make([]float64, len(is))
	sess.BoundsBatch(is, js, lb, ub)
	eps := api.WireFloat(sess.SlackEps()) // after the batch; see handleBounds
	for q, x := range slots {
		results[x].LB, results[x].UB = api.WireFloat(lb[q]), api.WireFloat(ub[q])
		results[x].Eps = eps
	}
}

// handleKNN runs the kNN-graph builder server-side. The session's sticky
// OracleErr gates the response: results assembled while the oracle was
// unavailable are estimates, and the server never ships estimates as
// exact.
func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	var req api.KNNRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("k=%d, want >= 1", req.K))
		return
	}
	g := prox.KNNGraph(entry.Session, req.K)
	if err := entry.Session.OracleErr(); err != nil {
		oracleFailure(w, err)
		return
	}
	rows := make([][]api.WireNeighbor, len(g))
	for u, ns := range g {
		rows[u] = make([]api.WireNeighbor, len(ns))
		for i, nb := range ns {
			rows[u][i] = api.WireNeighbor{ID: nb.ID, D: api.WireFloat(nb.Dist)}
		}
	}
	writeJSON(w, api.KNNResponse{Rows: rows})
}

// handleMST runs Prim's MST server-side; same OracleErr gate as handleKNN.
func (s *Server) handleMST(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	m := prox.PrimMST(entry.Session)
	if err := entry.Session.OracleErr(); err != nil {
		oracleFailure(w, err)
		return
	}
	edges := make([]api.WireEdge, len(m.Edges))
	for i, e := range m.Edges {
		edges[i] = api.WireEdge{U: e.U, V: e.V, W: api.WireFloat(e.W)}
	}
	writeJSON(w, api.MSTResponse{Edges: edges, Weight: api.WireFloat(m.Weight)})
}

// handleMedoid runs PAM server-side; same OracleErr gate as handleKNN.
func (s *Server) handleMedoid(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	var req api.MedoidRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if req.L < 1 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("l=%d, want >= 1", req.L))
		return
	}
	c := prox.PAM(entry.Session, req.L, req.Seed)
	if err := entry.Session.OracleErr(); err != nil {
		oracleFailure(w, err)
		return
	}
	writeJSON(w, api.MedoidResponse{Medoids: c.Medoids, Assign: c.Assign, Cost: api.WireFloat(c.Cost)})
}
