package service

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"metricprox/internal/core"
	"metricprox/internal/nsw"
	"metricprox/internal/service/api"
)

// handleSearch answers an approximate-kNN query over the session's
// navigable search graph, building the graph on the first call (lazily,
// once — concurrent first searches serialise on the session's searchMu
// and only one pays). Audited Dist* endpoint: neighbour distances are
// raw oracle values by design.
//
// Accepts the POST/JSON body of api.SearchRequest or the equivalent GET
// query parameters. Build-time parameters (m, ef_construction, seed)
// are fixed by whichever request builds first; a later request naming
// different ones is refused with 409/conflict rather than silently
// served from a graph it did not ask for.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, entry *core.SessionEntry) {
	var req api.SearchRequest
	if r.Method == http.MethodGet {
		if !decodeSearchQuery(w, r, &req) {
			return
		}
	} else if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if req.Q < 0 || req.Q >= s.n {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("query %d out of range [0,%d)", req.Q, s.n))
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("k=%d, want >= 1", req.K))
		return
	}
	st := entry.Data.(*sessionState)
	// The graph is always seeded from the session's own landmarks: their
	// distance rows were resolved by bootstrap, so the seeding is free for
	// the session's IF and the build matches an in-process one over the
	// same landmarks.
	want := nsw.Params{M: req.M, EfConstruction: req.EfConstruction, Seed: req.Seed, Landmarks: st.lms}
	if want.Seed == 0 {
		want.Seed = st.seed
	}
	want = want.WithDefaults()

	g, built, err := s.searchGraph(entry, st, want)
	if err != nil {
		var conflict *graphConflictError
		if errors.As(err, &conflict) {
			writeError(w, http.StatusConflict, api.CodeConflict, conflict.Error())
			return
		}
		oracleFailure(w, err)
		return
	}

	ef := req.EfSearch
	if ef <= 0 {
		ef = nsw.DefaultEfConstruction
	}
	if ef < req.K {
		ef = req.K
	}
	res, err := g.Search(entry.Session, req.Q, req.K, ef)
	if err != nil {
		oracleFailure(w, err)
		return
	}
	s.met.searchQueries.Inc()
	neighbors := make([]api.WireNeighbor, len(res))
	for i, nb := range res {
		neighbors[i] = api.WireNeighbor{ID: nb.ID, D: api.WireFloat(nb.Dist)}
	}
	writeJSON(w, api.SearchResponse{Neighbors: neighbors, EfSearch: ef, Built: built})
}

// graphConflictError reports a /search whose build parameters contradict
// the session's already-built graph.
type graphConflictError struct{ have, want nsw.Params }

func (e *graphConflictError) Error() string {
	return fmt.Sprintf("search graph built with m=%d ef_construction=%d seed=%d; request wants m=%d ef_construction=%d seed=%d",
		e.have.M, e.have.EfConstruction, e.have.Seed, e.want.M, e.want.EfConstruction, e.want.Seed)
}

// searchGraph returns the session's search graph, building it on first
// use. A failed (aborted) build is not cached: its committed prefix is a
// degraded index, and serving it silently would turn an outage into
// wrong answers — the next request retries the build instead.
func (s *Server) searchGraph(entry *core.SessionEntry, st *sessionState, want nsw.Params) (*nsw.Graph, bool, error) {
	st.searchMu.Lock()
	defer st.searchMu.Unlock()
	if st.graph != nil {
		if !st.graphParams.Equal(want) {
			return nil, false, &graphConflictError{have: st.graphParams, want: want}
		}
		return st.graph, false, nil
	}
	start := time.Now()
	g, err := nsw.Build(entry.Session, want)
	if err != nil {
		return nil, false, err
	}
	s.met.searchBuild.Observe(time.Since(start).Nanoseconds())
	s.met.searchBuilds.Inc()
	st.graph, st.graphParams = g, want
	s.logf("service: session %q built search graph (m=%d efc=%d seed=%d, %d nodes, %d edges)",
		entry.Name, want.M, want.EfConstruction, want.Seed, g.Inserted(), g.Edges())
	return g, true, nil
}

// decodeSearchQuery parses the GET form of a search request — the
// api.SearchRequest fields as URL query parameters — writing a 400 and
// returning false on any malformed value.
func decodeSearchQuery(w http.ResponseWriter, r *http.Request, req *api.SearchRequest) bool {
	q := r.URL.Query()
	intParam := func(key string, dst *int) bool {
		v := q.Get(key)
		if v == "" {
			return true
		}
		x, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Sprintf("query parameter %s=%q: not an integer", key, v))
			return false
		}
		*dst = x
		return true
	}
	if !intParam("q", &req.Q) || !intParam("k", &req.K) ||
		!intParam("ef_search", &req.EfSearch) || !intParam("m", &req.M) ||
		!intParam("ef_construction", &req.EfConstruction) {
		return false
	}
	if v := q.Get("seed"); v != "" {
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Sprintf("query parameter seed=%q: not an integer", v))
			return false
		}
		req.Seed = x
	}
	return true
}
