package datasets

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLoadPointsCSV(t *testing.T) {
	in := "x,y\n0,0\n3,4\n"
	v, err := LoadPointsCSV(strings.NewReader(in), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	if d := v.Distance(0, 1); d != 5 {
		t.Fatalf("Distance = %v, want 5", d)
	}
}

func TestLoadPointsCSVAutoScale(t *testing.T) {
	in := "0,0\n3,4\n0,4\n"
	v, err := LoadPointsCSV(strings.NewReader(in), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Bounding box 3×4 → L2 diameter 5 → all distances ≤ 1, max = 1.
	if d := v.Distance(0, 1); math.Abs(d-1) > 1e-12 {
		t.Fatalf("auto-scaled max distance %v, want 1", d)
	}
}

func TestLoadPointsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"":                "no points",
		"a,b\nc,d\n":      "non-numeric beyond header",
		"1,2\n3\n":        "ragged rows",
		"1,2\nNaN,3\n":    "NaN coordinate",
		"hdr\n1,2\n3,4,5": "dimension change",
	}
	for in, why := range cases {
		if _, err := LoadPointsCSV(strings.NewReader(in), 2, 1); err == nil {
			t.Errorf("%s: accepted %q", why, in)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := SFPOIPlanar(30, 91)
	var buf bytes.Buffer
	if err := WritePointsCSV(&buf, orig.Points); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPointsCSV(&buf, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j += 7 {
			if a, b := orig.Distance(i, j), back.Distance(i, j); a != b {
				t.Fatalf("round trip changed d(%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
}
