package datasets

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoadNetBasics(t *testing.T) {
	r := SFPOI(150, 1)
	if r.Len() != 150 {
		t.Fatalf("Len = %d", r.Len())
	}
	checkNormalised(t, r)
	checkTriangles(t, r)
	// Distinct objects must have positive distance.
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 100; k++ {
		i, j := rng.Intn(150), rng.Intn(150)
		if i != j && r.Distance(i, j) <= 0 {
			t.Fatalf("non-positive distance between distinct objects %d,%d", i, j)
		}
	}
	if r.Distance(3, 3) != 0 {
		t.Fatal("self distance not 0")
	}
}

func TestRoadNetSymmetryProperty(t *testing.T) {
	r := UrbanGB(120, 3)
	f := func(a, b uint8) bool {
		i, j := int(a)%120, int(b)%120
		return math.Abs(r.Distance(i, j)-r.Distance(j, i)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoadNetUrbanClustered(t *testing.T) {
	urban, sf := UrbanGB(300, 5), SFPOI(300, 5)
	mean := func(s interface{ Distance(i, j int) float64 }) float64 {
		rng := rand.New(rand.NewSource(11))
		sum := 0.0
		const k = 1500
		for i := 0; i < k; i++ {
			sum += s.Distance(rng.Intn(300), rng.Intn(300))
		}
		return sum / k
	}
	if mu, ms := mean(urban), mean(sf); mu >= ms {
		t.Fatalf("UrbanGB mean distance %v not below SF %v — clustering lost", mu, ms)
	}
}

func TestRoadNetDeterminism(t *testing.T) {
	a, b := SFPOI(80, 7), SFPOI(80, 7)
	for i := 0; i < 80; i++ {
		for j := i + 1; j < 80; j += 13 {
			if a.Distance(i, j) != b.Distance(i, j) {
				t.Fatal("same seed produced different road networks")
			}
		}
	}
	c := SFPOI(80, 8)
	diff := false
	for j := 1; j < 80 && !diff; j++ {
		diff = a.Distance(0, j) != c.Distance(0, j)
	}
	if !diff {
		t.Fatal("different seeds produced identical road networks")
	}
}

func TestRoadNetDetourStructure(t *testing.T) {
	// Road distances must show genuine detours: the ratio of road distance
	// between nearby objects to the graph's diameter-normalised floor
	// should vary. Concretely, the triangle slack |d(i,j)+d(j,k)−d(i,k)|
	// must not be uniformly near zero (that was the flaw of the planar L1
	// surrogate, which collapses scheme differences).
	r := SFPOI(100, 9)
	rng := rand.New(rand.NewSource(10))
	slackSum, count := 0.0, 0
	for k := 0; k < 500; k++ {
		i, j, l := rng.Intn(100), rng.Intn(100), rng.Intn(100)
		if i == j || j == l || i == l {
			continue
		}
		slack := r.Distance(i, l) + r.Distance(l, j) - r.Distance(i, j)
		slackSum += slack
		count++
	}
	if avg := slackSum / float64(count); avg < 0.05 {
		t.Fatalf("mean triangle slack %v too small — road network lacks detour structure", avg)
	}
}

func TestRoadNetLargerThanGrid(t *testing.T) {
	// n exceeding the default grid must still produce distinct placements.
	r := newRoadNet(2500, 1, roadNetConfig{grid: 48, keepExtra: 0.5})
	if r.Len() != 2500 {
		t.Fatalf("Len = %d", r.Len())
	}
	seen := map[int]bool{}
	for i := 0; i < r.Len(); i++ {
		if seen[r.Node(i)] {
			t.Fatalf("duplicate node placement %d", r.Node(i))
		}
		seen[r.Node(i)] = true
	}
}
