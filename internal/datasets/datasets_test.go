package datasets

import (
	"math/rand"
	"testing"

	"metricprox/internal/metric"
)

// checkNormalised verifies distances are within [0,1] on sampled pairs.
func checkNormalised(t *testing.T, s metric.Space) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for k := 0; k < 500; k++ {
		i, j := rng.Intn(s.Len()), rng.Intn(s.Len())
		d := s.Distance(i, j)
		if d < 0 || d > 1 {
			t.Fatalf("distance %v outside [0,1] for pair (%d,%d)", d, i, j)
		}
	}
}

// checkTriangles samples triples and verifies the triangle inequality.
func checkTriangles(t *testing.T, s metric.Space) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 300; k++ {
		i, j, l := rng.Intn(s.Len()), rng.Intn(s.Len()), rng.Intn(s.Len())
		if s.Distance(i, j) > s.Distance(i, l)+s.Distance(l, j)+1e-12 {
			t.Fatalf("triangle violation on (%d,%d,%d)", i, j, l)
		}
	}
}

func TestSFPOIPlanar(t *testing.T) {
	s := SFPOIPlanar(200, 1)
	if s.Len() != 200 {
		t.Fatalf("Len = %d", s.Len())
	}
	checkNormalised(t, s)
	checkTriangles(t, s)
}

func TestUrbanGBPlanar(t *testing.T) {
	s := UrbanGBPlanar(300, 2)
	if s.Len() != 300 {
		t.Fatalf("Len = %d", s.Len())
	}
	checkNormalised(t, s)
	checkTriangles(t, s)
}

func TestUrbanGBPlanarIsClustered(t *testing.T) {
	// The UrbanGB surrogate must be meaningfully more clustered than the
	// uniform SF surrogate: its mean pairwise distance should be smaller.
	urban, sf := UrbanGBPlanar(400, 3), SFPOIPlanar(400, 3)
	mean := func(s metric.Space) float64 {
		rng := rand.New(rand.NewSource(11))
		sum := 0.0
		const k = 2000
		for i := 0; i < k; i++ {
			sum += s.Distance(rng.Intn(s.Len()), rng.Intn(s.Len()))
		}
		return sum / k
	}
	if mu, ms := mean(urban), mean(sf); mu >= ms {
		t.Fatalf("UrbanGB mean distance %v not below SF %v — clustering lost", mu, ms)
	}
}

func TestFlickr(t *testing.T) {
	s := Flickr(100, 64, 4)
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	if len(s.Points[0]) != 64 {
		t.Fatalf("dim = %d, want 64", len(s.Points[0]))
	}
	checkNormalised(t, s)
	checkTriangles(t, s)
}

func TestDNA(t *testing.T) {
	seqs, s := DNA(50, 40, 5)
	if len(seqs) != 50 || s.Len() != 50 {
		t.Fatalf("sizes: %d seqs, space %d", len(seqs), s.Len())
	}
	for _, q := range seqs {
		if len(q) != 40 {
			t.Fatalf("sequence length %d, want 40", len(q))
		}
		for i := 0; i < len(q); i++ {
			switch q[i] {
			case 'A', 'C', 'G', 'T':
			default:
				t.Fatalf("invalid base %c", q[i])
			}
		}
	}
	checkNormalised(t, s)
	checkTriangles(t, s)
}

func TestRandomMetricIsMetric(t *testing.T) {
	m := RandomMetric(40, 6)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	checkNormalised(t, m)
}

func TestDeterminism(t *testing.T) {
	a, b := SFPOIPlanar(50, 123), SFPOIPlanar(50, 123)
	for i := range a.Points {
		if a.Points[i][0] != b.Points[i][0] || a.Points[i][1] != b.Points[i][1] {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := SFPOIPlanar(50, 124)
	same := true
	for i := range a.Points {
		if a.Points[i][0] != c.Points[i][0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}
