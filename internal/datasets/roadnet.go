package datasets

import (
	"math/rand"
	"sync"

	"metricprox/internal/pqueue"
	"metricprox/internal/unionfind"
)

// RoadNet is a metric.Space whose distances are shortest-path lengths over
// a synthetic road network: a jittered grid graph with per-road detour
// factors and a fraction of roads removed (while preserving connectivity).
// It is the library's stand-in for the Google Maps driving-distance oracle
// used by the paper's SF POI and UrbanGB datasets: unlike plain planar
// norms, shortest paths over a thinned, unevenly weighted grid exhibit the
// detour structure of real road distances, so triangle-inequality bounds
// are realistically loose and the bound schemes separate the way the
// paper reports.
//
// Distance calls run Dijkstra over the road graph (genuinely expensive,
// like the API they simulate) with per-object row caching so that repeated
// resolutions of the same source stay affordable. RoadNet is safe for
// concurrent use.
type RoadNet struct {
	objects []int // object index -> road-graph node
	adj     [][]roadEdge
	scale   float64 // normalises all object distances into [0,1]

	mu   sync.Mutex
	rows map[int][]float64 // road node -> SSSP row (scaled)
}

type roadEdge struct {
	to int
	w  float64
}

// roadNetConfig controls synthesis.
type roadNetConfig struct {
	grid      int     // grid side; grid² road nodes
	keepExtra float64 // probability of keeping a non-spanning-tree road
	clustered bool    // cluster object placement (UrbanGB style)
}

// SFPOI returns n points of interest placed uniformly over a synthetic
// city road network, with shortest-path driving distance (normalised into
// [0,1]). This is the paper's SF POI / Google Maps substitution.
func SFPOI(n int, seed int64) *RoadNet {
	return newRoadNet(n, seed, roadNetConfig{grid: 48, keepExtra: 0.55})
}

// UrbanGB returns n points clustered around a handful of urban cores of a
// synthetic road network — the paper's UrbanGB substitution. The clustered
// placement reproduces the skewed edge-length distribution that drives the
// larger save-ups the paper reports on UrbanGB.
func UrbanGB(n int, seed int64) *RoadNet {
	return newRoadNet(n, seed, roadNetConfig{grid: 48, keepExtra: 0.55, clustered: true})
}

func newRoadNet(n int, seed int64, cfg roadNetConfig) *RoadNet {
	rng := rand.New(rand.NewSource(seed))
	g := cfg.grid
	nodes := g * g
	if n > nodes {
		// Degenerate demand: grow the grid to fit distinct placements.
		for g*g < n {
			g++
		}
		nodes = g * g
	}

	// Candidate roads: the lattice edges of the grid.
	type cand struct{ a, b int }
	var cands []cand
	id := func(x, y int) int { return y*g + x }
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			if x+1 < g {
				cands = append(cands, cand{id(x, y), id(x+1, y)})
			}
			if y+1 < g {
				cands = append(cands, cand{id(x, y), id(x, y+1)})
			}
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	// Keep a random spanning tree (connectivity), then each remaining road
	// with probability keepExtra; every road gets a detour factor.
	adj := make([][]roadEdge, nodes)
	dsu := unionfind.New(nodes)
	addRoad := func(a, b int) {
		w := 1 + 1.5*rng.Float64()
		adj[a] = append(adj[a], roadEdge{to: b, w: w})
		adj[b] = append(adj[b], roadEdge{to: a, w: w})
	}
	var extras []cand
	for _, c := range cands {
		if dsu.Union(c.a, c.b) {
			addRoad(c.a, c.b)
		} else {
			extras = append(extras, c)
		}
	}
	for _, c := range extras {
		if rng.Float64() < cfg.keepExtra {
			addRoad(c.a, c.b)
		}
	}

	r := &RoadNet{adj: adj, rows: make(map[int][]float64), scale: 1}

	// Place objects on distinct road nodes.
	used := make(map[int]bool, n)
	place := func(node int) bool {
		if node < 0 || node >= nodes || used[node] {
			return false
		}
		used[node] = true
		r.objects = append(r.objects, node)
		return true
	}
	if cfg.clustered {
		const cities = 8
		centers := make([][2]int, cities)
		for c := range centers {
			centers[c] = [2]int{rng.Intn(g), rng.Intn(g)}
		}
		for len(r.objects) < n {
			if rng.Float64() < 0.9 {
				c := centers[rng.Intn(cities)]
				x := c[0] + int(rng.NormFloat64()*float64(g)/24)
				y := c[1] + int(rng.NormFloat64()*float64(g)/24)
				place(id(clampInt(x, 0, g-1), clampInt(y, 0, g-1)))
			} else {
				place(rng.Intn(nodes))
			}
		}
	} else {
		for len(r.objects) < n {
			place(rng.Intn(nodes))
		}
	}

	// Normalise: the graph diameter is at most twice any eccentricity.
	ecc := 0.0
	for _, d := range r.ssspRaw(r.objects[0]) {
		if d > ecc {
			ecc = d
		}
	}
	r.scale = 1 / (2 * ecc)
	return r
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Len returns the number of objects.
func (r *RoadNet) Len() int { return len(r.objects) }

// Node returns the road-graph node an object is placed on.
func (r *RoadNet) Node(i int) int { return r.objects[i] }

// Distance returns the scaled shortest-path distance between objects i
// and j, running (and caching) a Dijkstra over the road network.
func (r *RoadNet) Distance(i, j int) float64 {
	if i == j {
		return 0
	}
	src, dst := r.objects[i], r.objects[j]
	r.mu.Lock()
	row, ok := r.rows[src]
	if !ok {
		if row, ok = r.rows[dst]; ok {
			src, dst = dst, src
		}
	}
	if !ok {
		row = r.ssspRaw(src)
		r.rows[src] = row
	}
	d := row[dst] * r.scale
	r.mu.Unlock()
	return d
}

// ssspRaw computes unscaled shortest paths from a road node.
func (r *RoadNet) ssspRaw(src int) []float64 {
	nodes := len(r.adj)
	dist := make([]float64, nodes)
	for i := range dist {
		dist[i] = -1
	}
	q := pqueue.NewIndexedMin(nodes)
	q.Push(src, 0)
	dist[src] = 0
	visited := make([]bool, nodes)
	for q.Len() > 0 {
		u, du, _ := q.Pop()
		if visited[u] {
			continue
		}
		visited[u] = true
		dist[u] = du
		for _, e := range r.adj[u] {
			if !visited[e.to] {
				nd := du + e.w
				if dist[e.to] < 0 || nd < dist[e.to] {
					dist[e.to] = nd
					q.Push(e.to, nd)
				}
			}
		}
	}
	for i := range dist {
		if dist[i] < 0 {
			dist[i] = 0 // unreachable cannot happen (spanning tree), defensively 0
		}
	}
	return dist
}
