// Package datasets generates the synthetic stand-ins for the paper's three
// evaluation datasets, plus a DNA-sequence generator for the edit-distance
// example. All generators are deterministic in the seed, and every returned
// space yields distances normalised into [0,1] — the paper's setting, where
// the trivial upper bound of an unknown edge is 1.
//
// Substitutions (documented in DESIGN.md §2):
//
//   - SF POI (Google Maps API)  → uniform points on the unit square under
//     Manhattan distance, the city-block surrogate for driving distance.
//   - UrbanGB (Google Maps API) → Gaussian city-like clusters, Manhattan.
//   - Flickr1M (256-dim, L2)    → Gaussian-mixture feature vectors, L2.
package datasets

import (
	"math"
	"math/rand"

	"metricprox/internal/metric"
)

// SFPOIPlanar returns n points-of-interest scattered uniformly over the
// unit square with Manhattan distance, scaled by 1/2 so the diameter is 1.
// The road-network SFPOI is the primary SF surrogate; the planar variant
// remains for tests and micro-benchmarks that want a cheap closed-form
// metric.
func SFPOIPlanar(n int, seed int64) *metric.Vectors {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	return metric.NewVectors(pts, 1, 0.5)
}

// UrbanGBPlanar returns n points in city-like Gaussian clusters on the
// unit square with Manhattan distance (diameter-normalised). See
// SFPOIPlanar for when to prefer the planar variants.
func UrbanGBPlanar(n int, seed int64) *metric.Vectors {
	rng := rand.New(rand.NewSource(seed))
	const cities = 8
	centers := make([][2]float64, cities)
	for c := range centers {
		centers[c] = [2]float64{0.1 + 0.8*rng.Float64(), 0.1 + 0.8*rng.Float64()}
	}
	pts := make([][]float64, n)
	for i := range pts {
		if rng.Float64() < 0.9 { // urban
			c := centers[rng.Intn(cities)]
			pts[i] = []float64{
				clamp01(c[0] + rng.NormFloat64()*0.03),
				clamp01(c[1] + rng.NormFloat64()*0.03),
			}
		} else { // rural
			pts[i] = []float64{rng.Float64(), rng.Float64()}
		}
	}
	return metric.NewVectors(pts, 1, 0.5)
}

// Flickr returns n dim-dimensional feature-like vectors drawn from a
// Gaussian mixture, clamped to the unit hypercube, under Euclidean distance
// scaled by 1/sqrt(dim) so that distances stay within [0,1].
func Flickr(n, dim int, seed int64) *metric.Vectors {
	rng := rand.New(rand.NewSource(seed))
	const modes = 16
	centers := make([][]float64, modes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for k := range centers[c] {
			centers[c][k] = rng.Float64()
		}
	}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[rng.Intn(modes)]
		p := make([]float64, dim)
		for k := range p {
			p[k] = clamp01(c[k] + rng.NormFloat64()*0.03)
		}
		pts[i] = p
	}
	// Tight modes with well-separated centers give the bimodal distance
	// distribution of real image-feature collections: high-dimensional
	// concentration still loosens the bounds relative to the planar
	// datasets (as the paper observes for Flickr1M), but not so much that
	// no comparison is ever pruned.
	return metric.NewVectors(pts, 2, 1/math.Sqrt(float64(dim)))
}

// DNA returns n nucleotide sequences, generated as mutated copies of a few
// ancestral sequences (so that clustering structure exists), together with
// a Levenshtein space normalised by the maximum possible edit distance.
func DNA(n, length int, seed int64) ([]string, *metric.Strings) {
	rng := rand.New(rand.NewSource(seed))
	const bases = "ACGT"
	const ancestors = 5
	roots := make([][]byte, ancestors)
	for a := range roots {
		roots[a] = make([]byte, length)
		for i := range roots[a] {
			roots[a][i] = bases[rng.Intn(4)]
		}
	}
	seqs := make([]string, n)
	for i := range seqs {
		s := append([]byte(nil), roots[rng.Intn(ancestors)]...)
		mutations := rng.Intn(length / 4)
		for m := 0; m < mutations; m++ {
			s[rng.Intn(len(s))] = bases[rng.Intn(4)]
		}
		seqs[i] = string(s)
	}
	return seqs, metric.NewStrings(seqs, 1/float64(length))
}

// RandomMetric returns an n×n ground-truth matrix space that is a metric
// by construction: random points are drawn in a latent space and their
// Euclidean distances are read off. It is the workhorse of the
// bound-scheme tests because distances are in general position (no two
// equal) while still obeying the triangle inequality.
func RandomMetric(n int, seed int64) *metric.Matrix {
	rng := rand.New(rand.NewSource(seed))
	// Latent points in R^3 keep triples in general position without the
	// near-degenerate triangles of 1-D.
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	v := metric.NewVectors(pts, 2, 1/math.Sqrt(3))
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = v.Distance(i, j) //proxlint:allow oracleescape -- dataset synthesis: materialising the ground-truth matrix that the sessions under test will later treat as the oracle
		}
	}
	m, err := metric.NewMatrix(d)
	if err != nil {
		panic(err) // unreachable: matrix is symmetric by construction
	}
	return m
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
