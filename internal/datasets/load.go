package datasets

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"metricprox/internal/metric"
)

// LoadPointsCSV reads numeric rows (one point per line, comma-separated
// coordinates, optional header) and returns a Minkowski-p space over them,
// scaled by scale (0 means auto-normalise by the bounding-box diameter
// under the chosen norm so distances land in [0,1]).
//
// This is the bridge for users with real datasets: the paper's pipeline
// applies to any coordinate file, and the resulting space plugs straight
// into metric.NewOracle / core.NewSession.
func LoadPointsCSV(r io.Reader, p, scale float64) (*metric.Vectors, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1 // validate dimensionality ourselves for a clearer error
	var pts [][]float64
	dim := -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datasets: csv line %d: %w", line+1, err)
		}
		line++
		point := make([]float64, 0, len(rec))
		bad := false
		for _, f := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				bad = true
				break
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("datasets: csv line %d: non-finite coordinate %q", line, f)
			}
			point = append(point, v)
		}
		if bad {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("datasets: csv line %d: non-numeric field", line)
		}
		if dim == -1 {
			dim = len(point)
		} else if len(point) != dim {
			return nil, fmt.Errorf("datasets: csv line %d has %d fields, want %d", line, len(point), dim)
		}
		pts = append(pts, point)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("datasets: csv contains no points")
	}
	if scale == 0 {
		scale = autoScale(pts, p)
	}
	return metric.NewVectors(pts, p, scale), nil
}

// autoScale returns 1/diameterBound of the bounding box under the p-norm
// (1 when the points are all identical).
func autoScale(pts [][]float64, p float64) float64 {
	dim := len(pts[0])
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, pts[0])
	copy(hi, pts[0])
	for _, pt := range pts[1:] {
		for k, v := range pt {
			if v < lo[k] {
				lo[k] = v
			}
			if v > hi[k] {
				hi[k] = v
			}
		}
	}
	span := make([]float64, dim)
	for k := range span {
		span[k] = hi[k] - lo[k]
	}
	corner := metric.NewVectors([][]float64{make([]float64, dim), span}, p, 1)
	//proxlint:allow oracleescape -- dataset ingest: one probe of a throwaway two-point space to compute the normalisation scale, before any session exists
	diam := corner.Distance(0, 1)
	if diam == 0 {
		return 1
	}
	return 1 / diam
}

// WritePointsCSV writes a point set as CSV, the inverse of LoadPointsCSV.
func WritePointsCSV(w io.Writer, pts [][]float64) error {
	cw := csv.NewWriter(w)
	rec := make([]string, 0, 8)
	for _, p := range pts {
		rec = rec[:0]
		for _, v := range p {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
