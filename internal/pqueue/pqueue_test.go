package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexedEmpty(t *testing.T) {
	q := NewIndexedMin(4)
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue succeeded")
	}
	if q.Contains(2) {
		t.Fatal("empty queue contains key")
	}
}

func TestIndexedOrdering(t *testing.T) {
	q := NewIndexedMin(8)
	prios := []float64{0.9, 0.1, 0.5, 0.3, 0.7, 0.2, 0.8, 0.4}
	for k, p := range prios {
		q.Push(k, p)
	}
	var out []float64
	for q.Len() > 0 {
		_, p, _ := q.Pop()
		out = append(out, p)
	}
	if !sort.Float64sAreSorted(out) {
		t.Fatalf("pop order not sorted: %v", out)
	}
}

func TestIndexedDecreaseKey(t *testing.T) {
	q := NewIndexedMin(3)
	q.Push(0, 5)
	q.Push(1, 3)
	q.Push(2, 4)
	q.DecreaseKey(0, 1)
	k, p, _ := q.Pop()
	if k != 0 || p != 1 {
		t.Fatalf("Pop = (%d,%v), want (0,1)", k, p)
	}
	// DecreaseKey with a larger value must be a no-op.
	q.DecreaseKey(2, 10)
	k, p, _ = q.Pop()
	if k != 1 || p != 3 {
		t.Fatalf("Pop = (%d,%v), want (1,3)", k, p)
	}
}

func TestIndexedPushUpdates(t *testing.T) {
	q := NewIndexedMin(2)
	q.Push(0, 1)
	q.Push(0, 9) // update upward
	q.Push(1, 5)
	k, p, _ := q.Pop()
	if k != 1 || p != 5 {
		t.Fatalf("Pop = (%d,%v), want (1,5)", k, p)
	}
	if got := q.Priority(0); got != 9 {
		t.Fatalf("Priority(0) = %v, want 9", got)
	}
}

func TestIndexedQuickHeapOrder(t *testing.T) {
	// Property: popping after random pushes and decreases yields a
	// non-decreasing priority sequence and each key exactly once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		q := NewIndexedMin(n)
		for k := 0; k < n; k++ {
			q.Push(k, rng.Float64())
		}
		for i := 0; i < 40; i++ {
			k := rng.Intn(n)
			if q.Contains(k) {
				q.DecreaseKey(k, q.Priority(k)*rng.Float64())
			}
		}
		seen := map[int]bool{}
		last := -1.0
		for q.Len() > 0 {
			k, p, ok := q.Pop()
			if !ok || seen[k] || p < last {
				return false
			}
			seen[k] = true
			last = p
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeHeap(t *testing.T) {
	h := NewEdgeHeap(0)
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty EdgeHeap succeeded")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty EdgeHeap succeeded")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		h.Push(Edge{U: i, V: i + 1, Key: rng.Float64()})
	}
	if h.Len() != 200 {
		t.Fatalf("Len = %d, want 200", h.Len())
	}
	last := -1.0
	for h.Len() > 0 {
		top, _ := h.Peek()
		e, _ := h.Pop()
		if e != top {
			t.Fatal("Peek disagrees with Pop")
		}
		if e.Key < last {
			t.Fatalf("heap order violated: %v after %v", e.Key, last)
		}
		last = e.Key
	}
}

func TestEdgeHeapReinsert(t *testing.T) {
	// Kruskal's lazy pattern: pop a lower-bound edge, refine, re-push.
	h := NewEdgeHeap(4)
	h.Push(Edge{U: 0, V: 1, Key: 0.2})
	h.Push(Edge{U: 2, V: 3, Key: 0.5})
	e, _ := h.Pop()
	e.Key, e.Exact = 0.9, true
	h.Push(e)
	e, _ = h.Pop()
	if e.U != 2 || e.Exact {
		t.Fatalf("expected inexact edge (2,3) first, got %+v", e)
	}
	e, _ = h.Pop()
	if !e.Exact || e.Key != 0.9 {
		t.Fatalf("expected refined edge, got %+v", e)
	}
}

func BenchmarkIndexedPushPop(b *testing.B) {
	n := 1024
	rng := rand.New(rand.NewSource(11))
	prios := make([]float64, n)
	for i := range prios {
		prios[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := NewIndexedMin(n)
		for k := 0; k < n; k++ {
			q.Push(k, prios[k])
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}
