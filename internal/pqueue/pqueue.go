// Package pqueue provides priority queues used throughout the library.
//
// Two flavours are provided:
//
//   - IndexedMin: an indexed binary min-heap over a fixed universe of int
//     keys 0..n-1 with float64 priorities, supporting DecreaseKey. This is
//     the classic Dijkstra/Prim workhorse.
//   - EdgeHeap: a grow-able binary min-heap of weighted edges, used by the
//     lazy lower-bound Kruskal variant where items are pushed and re-pushed
//     with refined keys.
//
// Both are written from scratch (no container/heap) so that DecreaseKey can
// be O(log n) without interface boxing.
package pqueue

// IndexedMin is an indexed binary min-heap over keys 0..n-1.
type IndexedMin struct {
	n    int
	heap []int     // heap[i] = key at heap position i
	pos  []int     // pos[key] = heap position, -1 if absent
	prio []float64 // prio[key]
}

// NewIndexedMin returns an empty indexed heap over the key universe 0..n-1.
func NewIndexedMin(n int) *IndexedMin {
	q := &IndexedMin{
		n:    n,
		heap: make([]int, 0, n),
		pos:  make([]int, n),
		prio: make([]float64, n),
	}
	for i := range q.pos {
		q.pos[i] = -1
	}
	return q
}

// Len returns the number of keys currently queued.
func (q *IndexedMin) Len() int { return len(q.heap) }

// Contains reports whether key is currently queued.
func (q *IndexedMin) Contains(key int) bool { return q.pos[key] >= 0 }

// Priority returns the queued priority of key; only valid if Contains(key).
func (q *IndexedMin) Priority(key int) float64 { return q.prio[key] }

// Push inserts key with the given priority. If key is already present its
// priority is updated (in either direction).
func (q *IndexedMin) Push(key int, priority float64) {
	if q.pos[key] >= 0 {
		q.update(key, priority)
		return
	}
	q.prio[key] = priority
	q.pos[key] = len(q.heap)
	q.heap = append(q.heap, key)
	q.up(len(q.heap) - 1)
}

// DecreaseKey lowers key's priority; it is a no-op if the new priority is
// not lower or the key is absent.
func (q *IndexedMin) DecreaseKey(key int, priority float64) {
	if q.pos[key] < 0 || priority >= q.prio[key] {
		return
	}
	q.prio[key] = priority
	q.up(q.pos[key])
}

func (q *IndexedMin) update(key int, priority float64) {
	old := q.prio[key]
	q.prio[key] = priority
	if priority < old {
		q.up(q.pos[key])
	} else {
		q.down(q.pos[key])
	}
}

// Pop removes and returns the key with the smallest priority.
// ok is false when the queue is empty.
func (q *IndexedMin) Pop() (key int, priority float64, ok bool) {
	if len(q.heap) == 0 {
		return 0, 0, false
	}
	key = q.heap[0]
	priority = q.prio[key]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap = q.heap[:last]
	q.pos[key] = -1
	if last > 0 {
		q.down(0)
	}
	return key, priority, true
}

func (q *IndexedMin) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i]] = i
	q.pos[q.heap[j]] = j
}

func (q *IndexedMin) less(i, j int) bool {
	return q.prio[q.heap[i]] < q.prio[q.heap[j]]
}

func (q *IndexedMin) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *IndexedMin) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

// Edge is a weighted pair of object indices, used by Kruskal-style
// algorithms. Key is the sorting priority (a lower bound or an exact
// weight); Exact records whether Key is the resolved distance.
type Edge struct {
	U, V  int
	Key   float64
	Exact bool
}

// EdgeHeap is a binary min-heap of Edges ordered by Key.
// The zero value is an empty heap ready for use.
type EdgeHeap struct {
	items []Edge
}

// NewEdgeHeap returns an empty heap with the given capacity hint.
func NewEdgeHeap(capacity int) *EdgeHeap {
	return &EdgeHeap{items: make([]Edge, 0, capacity)}
}

// Len returns the number of queued edges.
func (h *EdgeHeap) Len() int { return len(h.items) }

// Push inserts an edge.
func (h *EdgeHeap) Push(e Edge) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Key <= h.items[i].Key {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

// Peek returns the minimum edge without removing it.
// ok is false when the heap is empty.
func (h *EdgeHeap) Peek() (Edge, bool) {
	if len(h.items) == 0 {
		return Edge{}, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum edge.
// ok is false when the heap is empty.
func (h *EdgeHeap) Pop() (Edge, bool) {
	if len(h.items) == 0 {
		return Edge{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].Key < h.items[smallest].Key {
			smallest = l
		}
		if r < last && h.items[r].Key < h.items[smallest].Key {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top, true
}
