package lp

import (
	"math"

	"metricprox/internal/fcmp"
)

// This file implements the repair half of the near-metric story: given a
// vector of cached pairwise distances that violate some triangle
// inequalities, project it onto the polytope of metric-consistent values.
//
// The polytope is the intersection of the halfspaces
//
//	x_p − x_q − x_r ≤ 0
//
// for every orientation of every triangle, plus x ≥ 0. Rather than hand
// the (potentially huge) system to the simplex solver in lp.go — which
// answers feasibility, not nearness — we use the classical
// Halpern–Lions–Wittmann–Bauschke (HLWB) scheme: cyclic projections onto
// the individual halfspaces, anchored back toward the starting point with
// a vanishing step α_k = 1/(k+2). HLWB converges to the projection of the
// start onto the intersection, i.e. the *nearest* metric-consistent
// distance set, but only at O(1/k); so after a short anchored warm-up we
// switch to plain POCS (cyclic projections with no anchor), which
// converges linearly to *a* point of the intersection near the warm-up
// iterate. The result is approximately-nearest and exactly what a cache
// calibration pass wants: small, targeted edits that remove the measured
// violation margin.
//
// Projection onto one halfspace {x : x_p − x_q − x_r ≤ 0} with normal
// a = (1, −1, −1), ‖a‖² = 3, moves a violating point by −(v/3)·a where
// v = x_p − x_q − x_r is the violation:
//
//	x_p -= v/3,  x_q += v/3,  x_r += v/3.

// ProjectResult reports the outcome of a ProjectTriangles run.
type ProjectResult struct {
	// Iterations is the number of full sweeps over the constraint set
	// that were performed (anchored warm-up sweeps included).
	Iterations int
	// MaxViolation is the worst residual triangle margin
	// max(0, x_p − x_q − x_r) over all orientations at exit. Zero (or
	// ≤ tol) means the vector is metric-consistent.
	MaxViolation float64
}

// hlwbWarmup is the number of anchored sweeps before switching to plain
// POCS. The anchor's O(1/k) rate means more sweeps buy little extra
// nearness, while the POCS tail converges linearly.
const hlwbWarmup = 16

// ProjectTriangles projects x in place onto the set of vectors satisfying
// every triangle inequality listed in tris, plus x ≥ 0. Each triangle
// {p, q, r} names three indices into x (the three pairwise distances of
// one point triple); all three orientations of each triangle are
// enforced. The method is HLWB-anchored cyclic projection (see the file
// comment), so the fixed point is approximately the nearest
// metric-consistent vector to the input.
//
// It stops when a full sweep leaves the worst violation ≤ tol, or after
// maxIter sweeps. tol ≤ 0 defaults to 1e-9; maxIter ≤ 0 defaults to
// 10000. Triangle indices out of range panic.
func ProjectTriangles(x []float64, tris [][3]int, maxIter int, tol float64) ProjectResult {
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	for _, tr := range tris {
		for _, p := range tr {
			if p < 0 || p >= len(x) {
				panic("lp: triangle index out of range")
			}
		}
	}
	x0 := make([]float64, len(x))
	copy(x0, x)

	res := ProjectResult{MaxViolation: MaxTriangleViolation(x, tris)}
	if res.MaxViolation <= tol {
		return res
	}
	for k := 0; k < maxIter; k++ {
		sweep(x, tris)
		if k < hlwbWarmup {
			// Halpern anchor: blend back toward the start so the limit
			// tracks the nearest feasible point rather than drifting.
			alpha := 1.0 / float64(k+2)
			for i := range x {
				// Skip coordinates no projection has moved (a deliberate
				// bit-exact check): blending them anyway would perturb
				// them by FP rounding.
				if !fcmp.ExactEq(x[i], x0[i]) {
					x[i] = alpha*x0[i] + (1-alpha)*x[i]
				}
			}
		}
		res.Iterations = k + 1
		res.MaxViolation = MaxTriangleViolation(x, tris)
		if k >= hlwbWarmup && res.MaxViolation <= tol {
			break
		}
	}
	return res
}

// sweep performs one cyclic pass: for every triangle, project onto each
// of its three orientation halfspaces in turn, then clamp to x ≥ 0.
func sweep(x []float64, tris [][3]int) {
	for _, tr := range tris {
		projectOrientation(x, tr[0], tr[1], tr[2])
		projectOrientation(x, tr[1], tr[0], tr[2])
		projectOrientation(x, tr[2], tr[0], tr[1])
	}
	for i := range x {
		if x[i] < 0 {
			x[i] = 0
		}
	}
}

// projectOrientation projects x onto {x_p ≤ x_q + x_r} if violated.
func projectOrientation(x []float64, p, q, r int) {
	v := x[p] - x[q] - x[r]
	if v <= 0 {
		return
	}
	v /= 3
	x[p] -= v
	x[q] += v
	x[r] += v
}

// MaxTriangleViolation returns the worst margin max(0, x_p − x_q − x_r)
// over all orientations of all listed triangles — the additive ε̂ a
// metric.Auditor would measure on the same values.
func MaxTriangleViolation(x []float64, tris [][3]int) float64 {
	worst := 0.0
	for _, tr := range tris {
		a, b, c := x[tr[0]], x[tr[1]], x[tr[2]]
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			// NaN poisons every comparison below (always false), so an
			// unreadable value would silently report "no violation".
			return math.Inf(1)
		}
		if v := a - b - c; v > worst {
			worst = v
		}
		if v := b - a - c; v > worst {
			worst = v
		}
		if v := c - a - b; v > worst {
			worst = v
		}
	}
	return worst
}
