// Package lp implements a dense phase-1 simplex solver for linear
// feasibility systems of the form
//
//	A x ≤ b,  x ≥ 0.
//
// It is the substrate for the paper's DIRECT FEASIBILITY TEST (Section 2.2):
// the triangle-inequality relationships among known and unknown distances
// are encoded as such a system and the IF statement of a proximity
// algorithm is resolved by asking whether the system extended with the
// *reversed* comparison constraint is infeasible.
//
// The paper used CPLEX; this package replaces it with a from-scratch
// tableau simplex using Bland's pivoting rule (which guarantees
// termination). Only the feasibility verdict of phase 1 is needed — no
// objective is ever optimised — so the implementation stops as soon as the
// artificial cost reaches zero.
//
// The solver is exponential in the worst case and cubic-ish in practice;
// exactly as the paper observes, DFT is only viable for graphs with a few
// hundred edges.
package lp

import "math"

const eps = 1e-9

// Problem is a feasibility problem over nonnegative variables.
type Problem struct {
	nvars int
	rows  []row
}

type row struct {
	coeffs []float64 // dense, length nvars
	rhs    float64
}

// NewProblem returns an empty problem over numVars nonnegative variables.
func NewProblem(numVars int) *Problem {
	return &Problem{nvars: numVars}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddLE adds the constraint Σ coeffs[i]·x[i] ≤ rhs. coeffs is sparse:
// variable index → coefficient.
func (p *Problem) AddLE(coeffs map[int]float64, rhs float64) {
	dense := make([]float64, p.nvars)
	for i, c := range coeffs {
		if i < 0 || i >= p.nvars {
			panic("lp: coefficient index out of range")
		}
		dense[i] = c
	}
	p.rows = append(p.rows, row{coeffs: dense, rhs: rhs})
}

// AddGE adds Σ coeffs[i]·x[i] ≥ rhs by negating.
func (p *Problem) AddGE(coeffs map[int]float64, rhs float64) {
	neg := make(map[int]float64, len(coeffs))
	for i, c := range coeffs {
		neg[i] = -c
	}
	p.AddLE(neg, -rhs)
}

// AddEQ adds Σ coeffs[i]·x[i] = rhs as a pair of inequalities, mirroring
// the paper's encoding of known distances.
func (p *Problem) AddEQ(coeffs map[int]float64, rhs float64) {
	p.AddLE(coeffs, rhs)
	p.AddGE(coeffs, rhs)
}

// Snapshot returns the number of rows; Rollback truncates back to it.
// The DFT comparator adds one probing constraint per IF statement and rolls
// it back afterwards.
func (p *Problem) Snapshot() int { return len(p.rows) }

// Rollback removes all rows added after the snapshot.
func (p *Problem) Rollback(snapshot int) {
	if snapshot < 0 || snapshot > len(p.rows) {
		panic("lp: invalid snapshot")
	}
	p.rows = p.rows[:snapshot]
}

// Feasible reports whether some x ≥ 0 satisfies every constraint.
//
// Method: phase-1 simplex. Each row aᵀx ≤ b becomes aᵀx + s = b with slack
// s ≥ 0. Rows with b < 0 are negated (yielding a surplus variable) and get
// an artificial variable; minimising the sum of artificials to zero proves
// feasibility.
func (p *Problem) Feasible() bool {
	ok, _ := p.solve(false)
	return ok
}

// FeasiblePoint returns a witness x ≥ 0 satisfying every constraint, if
// one exists. The witness is a basic feasible solution — a vertex of the
// polytope — which makes it useful for tests and for extracting concrete
// metric completions from a DFT system.
func (p *Problem) FeasiblePoint() ([]float64, bool) {
	ok, x := p.solve(true)
	if !ok {
		return nil, false
	}
	return x, true
}

func (p *Problem) solve(wantPoint bool) (bool, []float64) {
	m := len(p.rows)
	n := p.nvars
	if m == 0 {
		if wantPoint {
			return true, make([]float64, n)
		}
		return true, nil
	}

	// Column layout: [x (n)] [slack/surplus (m)] [artificial (k)].
	// First pass: count artificials.
	nart := 0
	for _, r := range p.rows {
		if r.rhs < -eps {
			nart++
		}
	}
	total := n + m + nart

	// Tableau: m rows × (total+1) columns (last column = rhs), plus an
	// objective row at index m.
	t := make([][]float64, m+1)
	for i := range t {
		t[i] = make([]float64, total+1)
	}
	basis := make([]int, m)

	ai := 0
	for i, r := range p.rows {
		sign := 1.0
		if r.rhs < -eps {
			sign = -1.0
		}
		for j, c := range r.coeffs {
			t[i][j] = sign * c
		}
		t[i][n+i] = sign // slack (+1) or surplus (−1)
		t[i][total] = sign * r.rhs
		if sign < 0 {
			col := n + m + ai
			t[i][col] = 1
			basis[i] = col
			ai++
		} else {
			basis[i] = n + i
		}
	}

	// Objective: minimise sum of artificials (phase-1 cost 1 on every
	// artificial column), expressed over non-basic variables by subtracting
	// each artificial's basic row so that basic reduced costs are zero.
	obj := t[m]
	for j := n + m; j < total; j++ {
		obj[j] = 1
	}
	for i := range p.rows {
		if basis[i] >= n+m {
			for j := 0; j <= total; j++ {
				obj[j] -= t[i][j]
			}
		}
	}

	// Simplex iterations with Bland's rule (smallest-index entering and
	// leaving variables) to preclude cycling.
	for {
		if -obj[total] <= eps { // objective value = -obj[rhs]
			return true, extract(t, basis, n, total, wantPoint)
		}
		enter := -1
		for j := 0; j < total; j++ {
			if obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			// Optimal with positive artificial sum: infeasible.
			return false, nil
		}
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][total] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			// Unbounded in a minimisation of a sum of nonnegative
			// variables cannot happen; defensively treat as feasible
			// (objective can be driven to zero).
			return true, extract(t, basis, n, total, wantPoint)
		}
		pivot(t, basis, leave, enter, total)
	}
}

// extract reads the original variables' values off the final tableau.
func extract(t [][]float64, basis []int, n, total int, wantPoint bool) []float64 {
	if !wantPoint {
		return nil
	}
	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			v := t[i][total]
			if v < 0 {
				v = 0 // rounding guard: basics are nonnegative up to eps
			}
			x[b] = v
		}
	}
	return x
}

func pivot(t [][]float64, basis []int, leave, enter, total int) {
	pr := t[leave]
	pv := pr[enter]
	for j := 0; j <= total; j++ {
		pr[j] /= pv
	}
	for i := range t {
		if i == leave {
			continue
		}
		factor := t[i][enter]
		if factor == 0 {
			continue
		}
		ri := t[i]
		for j := 0; j <= total; j++ {
			ri[j] -= factor * pr[j]
		}
	}
	basis[leave] = enter
}
