package lp

import (
	"math"
	"math/rand"
	"testing"
)

// trianglesOverPairs builds the pair-index layout used by the tests: n
// points, variable k(i,j) for each unordered pair, and every point triple
// as a triangle of pair indices.
func trianglesOverPairs(n int) (pairIdx func(i, j int) int, tris [][3]int, npairs int) {
	idx := make(map[[2]int]int)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			idx[[2]int{i, j}] = len(idx)
		}
	}
	pairIdx = func(i, j int) int {
		if i > j {
			i, j = j, i
		}
		return idx[[2]int{i, j}]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				tris = append(tris, [3]int{pairIdx(i, j), pairIdx(i, k), pairIdx(k, j)})
			}
		}
	}
	return pairIdx, tris, len(idx)
}

func TestProjectTrianglesAlreadyMetric(t *testing.T) {
	_, tris, np := trianglesOverPairs(5)
	x := make([]float64, np)
	for i := range x {
		x[i] = 1 // uniform distances: a metric
	}
	before := append([]float64(nil), x...)
	res := ProjectTriangles(x, tris, 0, 0)
	if res.Iterations != 0 || res.MaxViolation != 0 {
		t.Fatalf("metric input ran %d sweeps, residual %v", res.Iterations, res.MaxViolation)
	}
	for i := range x {
		if x[i] != before[i] {
			t.Fatal("metric input was modified")
		}
	}
}

func TestProjectTrianglesRepairsPlantedViolation(t *testing.T) {
	pairIdx, tris, np := trianglesOverPairs(6)
	x := make([]float64, np)
	for i := range x {
		x[i] = 0.5
	}
	x[pairIdx(1, 4)] = 2.0 // violates every triangle through (1,4) by 1.0
	if v := MaxTriangleViolation(x, tris); v != 1.0 {
		t.Fatalf("planted violation margin = %v, want 1.0", v)
	}
	res := ProjectTriangles(x, tris, 5000, 1e-10)
	if res.MaxViolation > 1e-10 {
		t.Fatalf("residual violation %v after %d sweeps", res.MaxViolation, res.Iterations)
	}
	if v := MaxTriangleViolation(x, tris); v > 1e-10 {
		t.Fatalf("reported residual disagrees with recomputed %v", v)
	}
	for i := range x {
		if x[i] < 0 {
			t.Fatalf("negative distance x[%d] = %v", i, x[i])
		}
	}
	// The repair should be targeted: untouched metric far from the planted
	// pair stays near its original value.
	if d := math.Abs(x[pairIdx(0, 5)] - 0.5); d > 0.2 {
		t.Fatalf("distant pair moved by %v; repair is not targeted", d)
	}
}

// TestProjectTrianglesMatchesFeasibility differentially checks the
// projector against the simplex solver: the projected vector, asserted as
// equalities, must form a feasible triangle system.
func TestProjectTrianglesMatchesFeasibility(t *testing.T) {
	const n = 5
	_, tris, np := trianglesOverPairs(n)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, np)
		for i := range x {
			x[i] = 0.2 + rng.Float64() // arbitrary, generally non-metric
		}
		res := ProjectTriangles(x, tris, 20000, 1e-9)
		if res.MaxViolation > 1e-9 {
			t.Fatalf("trial %d: residual %v", trial, res.MaxViolation)
		}
		// Encode x as equalities (with a small slack folded into the
		// triangle rows to absorb the projector's tolerance) and ask the
		// simplex for a verdict.
		p := NewProblem(np)
		for i := range x {
			p.AddEQ(map[int]float64{i: 1}, x[i])
		}
		for _, tr := range tris {
			p.AddLE(map[int]float64{tr[0]: 1, tr[1]: -1, tr[2]: -1}, 1e-8)
			p.AddLE(map[int]float64{tr[1]: 1, tr[0]: -1, tr[2]: -1}, 1e-8)
			p.AddLE(map[int]float64{tr[2]: 1, tr[0]: -1, tr[1]: -1}, 1e-8)
		}
		if !p.Feasible() {
			t.Fatalf("trial %d: projected vector rejected by the simplex solver", trial)
		}
	}
}

func TestProjectTrianglesNearness(t *testing.T) {
	// HLWB anchoring should keep the repaired vector close to the input:
	// for a single violated triangle the exact nearest repair moves each
	// coordinate by margin/3, total squared movement margin²/3.
	x := []float64{1.9, 0.5, 0.5} // one triangle, margin 0.9
	orig := append([]float64(nil), x...)
	res := ProjectTriangles(x, [][3]int{{0, 1, 2}}, 10000, 1e-12)
	if res.MaxViolation > 1e-12 {
		t.Fatalf("residual %v", res.MaxViolation)
	}
	var move float64
	for i := range x {
		move += (x[i] - orig[i]) * (x[i] - orig[i])
	}
	exact := 0.9 * 0.9 / 3
	if move > exact*1.01+1e-9 {
		t.Fatalf("squared movement %v exceeds nearest-repair %v", move, exact)
	}
}

func TestProjectTrianglesBadIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range triangle index did not panic")
		}
	}()
	ProjectTriangles([]float64{1, 2}, [][3]int{{0, 1, 2}}, 10, 1e-9)
}

func TestMaxTriangleViolationNaN(t *testing.T) {
	if v := MaxTriangleViolation([]float64{math.NaN(), 1, 1}, [][3]int{{0, 1, 2}}); !math.IsInf(v, 1) {
		t.Fatalf("NaN input reported margin %v, want +Inf", v)
	}
}
