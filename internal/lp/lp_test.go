package lp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyProblemFeasible(t *testing.T) {
	if !NewProblem(3).Feasible() {
		t.Fatal("empty problem reported infeasible")
	}
}

func TestTrivialFeasible(t *testing.T) {
	p := NewProblem(2)
	p.AddLE(map[int]float64{0: 1, 1: 1}, 1) // x0 + x1 <= 1
	if !p.Feasible() {
		t.Fatal("x0+x1<=1 with x>=0 reported infeasible")
	}
}

func TestTrivialInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddLE(map[int]float64{0: 1}, 1) // x <= 1
	p.AddGE(map[int]float64{0: 1}, 2) // x >= 2
	if p.Feasible() {
		t.Fatal("x<=1 && x>=2 reported feasible")
	}
}

func TestEqualityPair(t *testing.T) {
	p := NewProblem(2)
	p.AddEQ(map[int]float64{0: 1}, 0.8)      // x0 = 0.8
	p.AddLE(map[int]float64{0: -1, 1: 1}, 0) // x1 <= x0
	p.AddGE(map[int]float64{1: 1}, 0.5)      // x1 >= 0.5
	if !p.Feasible() {
		t.Fatal("x0=0.8, 0.5<=x1<=x0 reported infeasible")
	}
	p.AddGE(map[int]float64{1: 1}, 0.9) // now x1 >= 0.9 > x0: infeasible
	if p.Feasible() {
		t.Fatal("x1>=0.9 && x1<=x0=0.8 reported feasible")
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x0 <= -0.3  (i.e. x0 >= 0.3) together with x0 <= 0.5.
	p := NewProblem(1)
	p.AddLE(map[int]float64{0: -1}, -0.3)
	p.AddLE(map[int]float64{0: 1}, 0.5)
	if !p.Feasible() {
		t.Fatal("0.3<=x0<=0.5 reported infeasible")
	}
}

func TestSnapshotRollback(t *testing.T) {
	p := NewProblem(1)
	p.AddLE(map[int]float64{0: 1}, 1)
	snap := p.Snapshot()
	p.AddGE(map[int]float64{0: 1}, 2)
	if p.Feasible() {
		t.Fatal("probe constraint should make it infeasible")
	}
	p.Rollback(snap)
	if p.NumRows() != 1 {
		t.Fatalf("NumRows = %d after rollback, want 1", p.NumRows())
	}
	if !p.Feasible() {
		t.Fatal("rolled-back problem reported infeasible")
	}
}

// TestTriangleSystem encodes the paper's core pattern: three distances with
// one known edge and triangle inequalities.
func TestTriangleSystem(t *testing.T) {
	// Variables: x01, x02, x12, all in [0,1], with x01 = 0.9 and triangle
	// inequalities. Probe: can x02 + x12 < 0.9 hold? No — the triangle
	// inequality forces x02 + x12 >= x01 = 0.9.
	mk := func() *Problem {
		p := NewProblem(3)
		for v := 0; v < 3; v++ {
			p.AddLE(map[int]float64{v: 1}, 1)
		}
		p.AddEQ(map[int]float64{0: 1}, 0.9) // x01 = 0.9
		// Triangle: each edge <= sum of the other two.
		p.AddLE(map[int]float64{0: 1, 1: -1, 2: -1}, 0)
		p.AddLE(map[int]float64{0: -1, 1: 1, 2: -1}, 0)
		p.AddLE(map[int]float64{0: -1, 1: -1, 2: 1}, 0)
		return p
	}
	p := mk()
	if !p.Feasible() {
		t.Fatal("base triangle system infeasible")
	}
	p.AddLE(map[int]float64{1: 1, 2: 1}, 0.8) // x02 + x12 <= 0.8 < 0.9
	if p.Feasible() {
		t.Fatal("triangle violation went undetected")
	}
	p2 := mk()
	p2.AddLE(map[int]float64{1: 1, 2: 1}, 0.95) // >= 0.9 is fine
	if !p2.Feasible() {
		t.Fatal("satisfiable probe reported infeasible")
	}
}

// TestQuickAgainstWitness checks random small systems against a random
// witness search: if we can find a satisfying point by sampling, the solver
// must say feasible.
func TestQuickAgainstWitness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		// Generate a system that is feasible by construction: pick a hidden
		// point z >= 0 and only add constraints it satisfies.
		z := make([]float64, n)
		for i := range z {
			z[i] = rng.Float64()
		}
		p := NewProblem(n)
		for r := 0; r < 3+rng.Intn(8); r++ {
			coeffs := map[int]float64{}
			lhs := 0.0
			for i := 0; i < n; i++ {
				c := rng.NormFloat64()
				coeffs[i] = c
				lhs += c * z[i]
			}
			p.AddLE(coeffs, lhs+rng.Float64()) // slack keeps z feasible
		}
		return p.Feasible()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInfeasiblePairs builds systems that are infeasible by
// construction (x_i >= a and x_i <= b with b < a) hidden among noise.
func TestQuickInfeasiblePairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		p := NewProblem(n)
		for r := 0; r < rng.Intn(6); r++ {
			coeffs := map[int]float64{}
			for i := 0; i < n; i++ {
				coeffs[i] = rng.Float64() // nonnegative: satisfiable at x=0
			}
			p.AddLE(coeffs, rng.Float64())
		}
		v := rng.Intn(n)
		a := 0.5 + rng.Float64()
		p.AddGE(map[int]float64{v: 1}, a)
		p.AddLE(map[int]float64{v: 1}, a-0.1-rng.Float64()/2)
		return !p.Feasible()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFeasibleMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	n := 45 // edges of a K10 — the paper's smallest DFT configuration
	build := func() *Problem {
		p := NewProblem(n)
		for v := 0; v < n; v++ {
			p.AddLE(map[int]float64{v: 1}, 1)
		}
		for r := 0; r < 300; r++ {
			i, j, k := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			p.AddLE(map[int]float64{i: 1, j: -1, k: -1}, 0)
		}
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Feasible() {
			b.Fatal("unexpected infeasible")
		}
	}
}

func TestFeasiblePointSatisfiesConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(5)
		z := make([]float64, n)
		for i := range z {
			z[i] = rng.Float64()
		}
		p := NewProblem(n)
		type stored struct {
			coeffs []float64
			rhs    float64
		}
		var rows []stored
		for r := 0; r < 2+rng.Intn(8); r++ {
			coeffs := map[int]float64{}
			dense := make([]float64, n)
			lhs := 0.0
			for i := 0; i < n; i++ {
				c := rng.NormFloat64()
				coeffs[i] = c
				dense[i] = c
				lhs += c * z[i]
			}
			rhs := lhs + rng.Float64()
			p.AddLE(coeffs, rhs)
			rows = append(rows, stored{coeffs: dense, rhs: rhs})
		}
		x, ok := p.FeasiblePoint()
		if !ok {
			t.Fatalf("trial %d: feasible-by-construction system reported infeasible", trial)
		}
		if len(x) != n {
			t.Fatalf("trial %d: witness has %d vars, want %d", trial, len(x), n)
		}
		for _, v := range x {
			if v < 0 {
				t.Fatalf("trial %d: negative witness coordinate %v", trial, v)
			}
		}
		for ri, row := range rows {
			lhs := 0.0
			for i, c := range row.coeffs {
				lhs += c * x[i]
			}
			if lhs > row.rhs+1e-6 {
				t.Fatalf("trial %d row %d: witness violates constraint (%v > %v)", trial, ri, lhs, row.rhs)
			}
		}
	}
}

func TestFeasiblePointInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddLE(map[int]float64{0: 1}, 1)
	p.AddGE(map[int]float64{0: 1}, 2)
	if _, ok := p.FeasiblePoint(); ok {
		t.Fatal("infeasible system produced a witness")
	}
}

func TestFeasiblePointEmpty(t *testing.T) {
	x, ok := NewProblem(3).FeasiblePoint()
	if !ok || len(x) != 3 {
		t.Fatalf("empty problem witness: %v %v", x, ok)
	}
}
