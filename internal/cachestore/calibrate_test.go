package cachestore

import (
	"math"
	"path/filepath"
	"testing"

	"metricprox/internal/datasets"
)

// writeStore creates a store at path holding the full pairwise distance
// set of the given space over n points, with one pair overridden.
func writeCalibrationStore(t *testing.T, path string, n int, override func(i, j int, d float64) float64) {
	t.Helper()
	m := datasets.RandomMetric(n, 21)
	st, err := Create(path, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := m.Distance(i, j)
			if override != nil {
				d = override(i, j, d)
			}
			if err := st.Append(i, j, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateRemovesPlantedViolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.mpx")
	const n = 10
	writeCalibrationStore(t, path, n, func(i, j int, d float64) float64 {
		if i == 2 && j == 7 {
			return d + 1.5 // guaranteed violation: RandomMetric distances are ≤ 1
		}
		return d
	})
	rep, err := Calibrate(path, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != n*(n-1)/2 {
		t.Fatalf("Records = %d, want %d", rep.Records, n*(n-1)/2)
	}
	if want := n * (n - 1) * (n - 2) / 6; rep.Triangles != want {
		t.Fatalf("Triangles = %d, want %d", rep.Triangles, want)
	}
	if rep.MarginBefore <= 0.5 {
		t.Fatalf("MarginBefore = %v; planted violation not measured", rep.MarginBefore)
	}
	if rep.MarginAfter > 1e-9 {
		t.Fatalf("MarginAfter = %v after %d iterations", rep.MarginAfter, rep.Iterations)
	}
	// The rewritten store must load cleanly and actually be metric.
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.N() != n {
		t.Fatalf("universe size changed to %d", st.N())
	}
	d := make(map[[2]int]float64)
	if err := st.Replay(func(r Record) bool {
		d[[2]int{r.I, r.J}] = r.Dist
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(d) != rep.Records {
		t.Fatalf("rewritten store holds %d pairs, want %d", len(d), rep.Records)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				a, b, c := d[[2]int{i, j}], d[[2]int{i, k}], d[[2]int{j, k}]
				worst := math.Max(a-b-c, math.Max(b-a-c, c-a-b))
				if worst > 1e-8 {
					t.Fatalf("triangle (%d,%d,%d) still violated by %v", i, j, k, worst)
				}
			}
		}
	}
}

func TestCalibrateNoopOnMetricStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.mpx")
	writeCalibrationStore(t, path, 8, nil)
	before := make(map[[2]int]float64)
	st, _ := Open(path)
	st.Replay(func(r Record) bool { before[[2]int{r.I, r.J}] = r.Dist; return true })
	st.Close()

	rep, err := Calibrate(path, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MarginBefore > 1e-9 || rep.Iterations != 0 {
		t.Fatalf("metric store reported margin %v, %d iterations", rep.MarginBefore, rep.Iterations)
	}
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Replay(func(r Record) bool {
		if before[[2]int{r.I, r.J}] != r.Dist {
			t.Fatalf("pair (%d,%d) changed on a no-op calibration", r.I, r.J)
		}
		return true
	})
}

func TestCalibrateSparseStoreKeepsLonePairs(t *testing.T) {
	// A pair that closes no fully-cached triangle must pass through
	// unchanged, even when other triangles get repaired.
	path := filepath.Join(t.TempDir(), "cache.mpx")
	st, err := Create(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Fully cached triangle (0,1,2) with a violation, plus a lone pair (4,5).
	st.Append(0, 1, 2.0)
	st.Append(0, 2, 0.4)
	st.Append(1, 2, 0.4)
	st.Append(4, 5, 0.123)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Calibrate(path, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triangles != 1 {
		t.Fatalf("Triangles = %d, want 1", rep.Triangles)
	}
	if rep.MarginAfter > 1e-10 {
		t.Fatalf("MarginAfter = %v", rep.MarginAfter)
	}
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := make(map[[2]int]float64)
	st.Replay(func(r Record) bool { got[[2]int{r.I, r.J}] = r.Dist; return true })
	if got[[2]int{4, 5}] != 0.123 {
		t.Fatalf("lone pair rewritten to %v", got[[2]int{4, 5}])
	}
	if got[[2]int{0, 1}] >= 2.0 {
		t.Fatal("violating side not reduced")
	}
}

func TestCalibrateDuplicateKeepsFirst(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.mpx")
	st, err := Create(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	st.Append(0, 1, 0.5)
	st.Append(1, 0, 0.9) // duplicate of (0,1); replay semantics keep 0.5
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Calibrate(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 1 {
		t.Fatalf("Records = %d, want 1 (duplicates collapse)", rep.Records)
	}
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	count := 0
	st.Replay(func(r Record) bool {
		count++
		if r.Dist != 0.5 {
			t.Fatalf("duplicate resolution: kept %v, want first-wins 0.5", r.Dist)
		}
		return true
	})
	if count != 1 {
		t.Fatalf("rewritten store holds %d records, want 1", count)
	}
}

func TestCalibrateMissingFile(t *testing.T) {
	if _, err := Calibrate(filepath.Join(t.TempDir(), "absent.mpx"), 0, 0); err == nil {
		t.Fatal("calibrating a missing store did not error")
	}
}
