// Package cachestore persists resolved distances across process runs.
//
// The library's whole premise is that oracle calls are expensive — a maps
// API bills per request, an edit-distance engine burns minutes of CPU. A
// Store makes those resolutions durable: every (i, j, distance) triple is
// appended to a crash-safe log, and the next session over the same object
// universe replays the log into its partial graph before making a single
// new call.
//
// Format: a 16-byte header (magic, version, object count) followed by
// fixed-width 20-byte records (uint32 i, uint32 j, float64 distance, CRC-
// less — integrity is guarded by a per-record XOR checksum byte folded
// into the layout below). Appends are O(1); a torn final record (crash
// mid-write) is detected and truncated on open.
package cachestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

const (
	magic   = uint32(0x4d505831) // "MPX1"
	version = uint32(1)
	// record: i uint32 | j uint32 | dist float64 | check uint32
	recordSize = 20
	headerSize = 16
)

// ErrCorrupt is returned when the file is not a cachestore or its header
// is damaged. Torn trailing records are repaired silently, not errored.
var ErrCorrupt = errors.New("cachestore: corrupt store")

// ErrSeqGap is returned by AppendFrom when the supplied batch starts past
// the end of the store: applying it would leave a hole in the replicated
// log, so the caller must rewind to LastSeq and resend.
var ErrSeqGap = errors.New("cachestore: sequence gap")

// Store is an append-only distance log bound to one file.
type Store struct {
	f *os.File
	n int // object universe size recorded in the header
}

// Record is one persisted resolution.
type Record struct {
	I, J int
	Dist float64
}

// Create initialises a new store for a universe of n objects, truncating
// any existing file.
func Create(path string, n int) (*Store, error) {
	if n <= 0 || n > math.MaxUint32 {
		return nil, fmt.Errorf("cachestore: invalid universe size %d", n)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(n))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	// The crash-safety story starts at the header: without this fsync a
	// power loss could leave a zero-length or half-written header that
	// Open rejects as corrupt, losing every record appended meanwhile.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Store{f: f, n: n}, nil
}

// Open opens an existing store, verifying the header and truncating a
// torn trailing record if the previous process crashed mid-append.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		f.Close()
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n == 0 || n > math.MaxUint32 {
		f.Close()
		return nil, fmt.Errorf("%w: invalid universe size %d", ErrCorrupt, n)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if tail := (st.Size() - headerSize) % recordSize; tail != 0 {
		// Torn write from a crash: drop the partial record.
		if err := f.Truncate(st.Size() - tail); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Store{f: f, n: int(n)}, nil
}

// OpenOrCreate opens path if it exists and is valid, else creates it.
// It returns an error if an existing store was built for a different
// universe size — replaying distances onto mismatched indices would be
// silent corruption.
func OpenOrCreate(path string, n int) (*Store, error) {
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return Create(path, n)
		}
		return nil, err
	}
	s, err := Open(path)
	if err != nil {
		return nil, err
	}
	if s.n != n {
		s.Close()
		return nil, fmt.Errorf("cachestore: store holds %d objects, caller expects %d", s.n, n)
	}
	return s, nil
}

// N returns the universe size the store was created for.
func (s *Store) N() int { return s.n }

// Append durably records a resolution. The pair is stored normalised
// (i < j); appending the same pair twice is allowed and replay keeps the
// first occurrence.
func (s *Store) Append(i, j int, dist float64) error {
	if i == j || i < 0 || j < 0 || i >= s.n || j >= s.n {
		return fmt.Errorf("cachestore: invalid pair (%d,%d) for universe %d", i, j, s.n)
	}
	if math.IsNaN(dist) || dist < 0 {
		return fmt.Errorf("cachestore: invalid distance %v", dist)
	}
	if i > j {
		i, j = j, i
	}
	var rec [recordSize]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(i))
	binary.LittleEndian.PutUint32(rec[4:], uint32(j))
	binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(dist))
	binary.LittleEndian.PutUint32(rec[16:], checksum(rec[:16]))
	_, err := s.f.Write(rec[:])
	return err
}

// Sync flushes appended records to stable storage.
func (s *Store) Sync() error { return s.f.Sync() }

// Close syncs and closes the underlying file.
func (s *Store) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Replay streams every valid record to fn in append order. A record whose
// checksum fails stops the replay (everything after it is suspect) without
// an error — mirroring the torn-write policy. fn returning false stops
// early.
func (s *Store) Replay(fn func(Record) bool) error {
	if _, err := s.f.Seek(headerSize, io.SeekStart); err != nil {
		return err
	}
	defer s.f.Seek(0, io.SeekEnd) // restore append position
	var rec [recordSize]byte
	for {
		_, err := io.ReadFull(s.f, rec[:])
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			return nil // torn tail
		}
		if err != nil {
			return err
		}
		if binary.LittleEndian.Uint32(rec[16:]) != checksum(rec[:16]) {
			return nil // damaged record: stop replay at the damage point
		}
		r := Record{
			I:    int(binary.LittleEndian.Uint32(rec[0:])),
			J:    int(binary.LittleEndian.Uint32(rec[4:])),
			Dist: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
		}
		if r.I >= s.n || r.J >= s.n || r.I == r.J {
			return nil // damaged indices
		}
		if r.Dist < 0 || math.IsNaN(r.Dist) {
			return nil // damaged payload that slipped past the checksum
		}
		if !fn(r) {
			return nil
		}
	}
}

// Len returns the number of complete records currently in the file.
func (s *Store) Len() (int, error) {
	st, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return int((st.Size() - headerSize) / recordSize), nil
}

// LastSeq returns the store's replication cursor: the sequence number of
// the next record to be appended, equal to the number of complete records
// in the file. Replication is resumable because this is derivable from the
// file alone — after a crash truncates a torn tail, LastSeq names exactly
// the prefix that survived, and the peer resends from there.
func (s *Store) LastSeq() (int64, error) {
	n, err := s.Len()
	return int64(n), err
}

// ReadFrom returns up to max records starting at sequence number seq,
// reading with pread so it is safe to call while another goroutine
// appends — the primary's replicator tails a live session's store this
// way. A record that fails its checksum (a concurrent half-written tail,
// or damage) ends the batch early; the caller simply retries from the
// same cursor once the writer has finished the record. seq past the end
// returns an empty slice, not an error.
func (s *Store) ReadFrom(seq int64, max int) ([]Record, error) {
	if seq < 0 || max <= 0 {
		return nil, fmt.Errorf("cachestore: invalid ReadFrom(seq=%d, max=%d)", seq, max)
	}
	var out []Record
	buf := make([]byte, recordSize)
	for len(out) < max {
		off := headerSize + (seq+int64(len(out)))*recordSize
		_, err := s.f.ReadAt(buf, off)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return out, nil // end of complete records (or torn tail)
		}
		if err != nil {
			return out, err
		}
		if binary.LittleEndian.Uint32(buf[16:]) != checksum(buf[:16]) {
			return out, nil // half-written or damaged: stop, retry later
		}
		r := Record{
			I:    int(binary.LittleEndian.Uint32(buf[0:])),
			J:    int(binary.LittleEndian.Uint32(buf[4:])),
			Dist: math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
		}
		if r.I >= s.n || r.J >= s.n || r.I == r.J || r.Dist < 0 || math.IsNaN(r.Dist) {
			return out, nil // damaged payload that slipped past the checksum
		}
		out = append(out, r)
	}
	return out, nil
}

// AppendFrom applies a replicated batch whose first record carries
// sequence number seq, and returns the store's new LastSeq. The append is
// idempotent: records the store already holds (seq below the current
// cursor) are skipped rather than re-applied, so overlapping retries from
// a primary that never saw an ack are harmless. A batch starting beyond
// the cursor is refused with ErrSeqGap — the replica's file must stay a
// gap-free prefix of the primary's log for promotion to be sound.
func (s *Store) AppendFrom(seq int64, recs []Record) (int64, error) {
	cur, err := s.LastSeq()
	if err != nil {
		return 0, err
	}
	if seq > cur {
		return cur, fmt.Errorf("%w: batch starts at %d, store has %d records", ErrSeqGap, seq, cur)
	}
	skip := cur - seq
	if skip >= int64(len(recs)) {
		return cur, nil // entire batch already present
	}
	for _, r := range recs[skip:] {
		if err := s.Append(r.I, r.J, r.Dist); err != nil {
			return cur, err
		}
		cur++
	}
	return cur, nil
}

// checksum is a small avalanche mix over the record body; it exists to
// catch torn or bit-rotted records, not adversaries.
func checksum(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}
